package wormnet_test

import (
	"fmt"

	"wormnet"
)

// ExampleRun simulates a small torus under moderate uniform traffic with
// the paper's NDM detector and reports what it saw. (A tiny network and
// short run keep the example fast; see DefaultConfig for the paper's
// full-scale 512-node setting.)
func ExampleRun() {
	cfg := wormnet.DefaultConfig()
	cfg.K, cfg.N = 4, 2 // 16-node torus
	cfg.Load = 0.2
	cfg.Warmup, cfg.Measure = 500, 2000

	res, err := wormnet.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("detector: %s\n", res.DetectorName)
	fmt.Printf("deadlocks detected: %d\n", res.Marked)
	// Output:
	// detector: ndm(t2=32)
	// deadlocks detected: 0
}

// ExampleRun_comparison runs the same saturated workload under the previous
// mechanism (PDM) and the paper's (NDM) and compares detection counts: NDM
// marks far fewer messages as deadlocked.
func ExampleRun_comparison() {
	base := wormnet.DefaultConfig()
	base.K, base.N = 4, 2
	base.Load = 2.5 // far beyond saturation
	base.InjectionLimit = -1
	base.Threshold = 8
	base.Warmup, base.Measure = 1000, 8000

	pdmCfg := base
	pdmCfg.Mechanism = wormnet.PDM
	pdm, err := wormnet.Run(pdmCfg)
	if err != nil {
		panic(err)
	}
	ndmCfg := base
	ndmCfg.Mechanism = wormnet.NDM
	ndm, err := wormnet.Run(ndmCfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("NDM detects fewer deadlocks than PDM: %v\n", ndm.Marked < pdm.Marked)
	// Output:
	// NDM detects fewer deadlocks than PDM: true
}
