package traffic

import (
	"fmt"

	"wormnet/internal/rng"
	"wormnet/internal/topology"
)

// Additional workloads beyond the paper's six: a two-state bursty source
// model and two further classic permutations (transpose and tornado). They
// extend the evaluation to the "different message destination distribution"
// robustness claim and give the detection mechanisms a harsher temporal
// profile (bursts produce transient congestion trees that look even more
// like deadlock than steady-state saturation does).

// Transpose sends (x, y, ...) to the coordinate-reversed node — the matrix
// transpose pattern. Fixed points (diagonal nodes) redraw uniformly.
type Transpose struct {
	nodes int
	dest  []int32
}

// NewTranspose returns the transpose permutation over t.
func NewTranspose(t *topology.Torus) *Transpose {
	p := &Transpose{nodes: t.Nodes(), dest: make([]int32, t.Nodes())}
	n := t.N()
	rev := make([]int, n)
	for src := 0; src < t.Nodes(); src++ {
		c := t.Coord(src)
		for d := 0; d < n; d++ {
			rev[d] = c[n-1-d]
		}
		dst := t.ID(rev)
		if dst == src {
			p.dest[src] = -1
		} else {
			p.dest[src] = int32(dst)
		}
	}
	return p
}

// Destination implements Pattern.
func (p *Transpose) Destination(src int, r *rng.Source) int {
	if d := p.dest[src]; d >= 0 {
		return int(d)
	}
	d := r.Intn(p.nodes - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (p *Transpose) Name() string { return "transpose" }

// Tornado sends each message (k/2 - 1) hops around its own dimension-0
// ring: the classic adversarial pattern for minimal routing on tori, which
// loads one rotational direction maximally.
type Tornado struct {
	t *topology.Torus
}

// NewTornado returns the tornado pattern over t.
func NewTornado(t *topology.Torus) *Tornado {
	if t.K() < 3 {
		panic("traffic: tornado requires radix >= 3")
	}
	return &Tornado{t: t}
}

// Destination implements Pattern.
func (p *Tornado) Destination(src int, _ *rng.Source) int {
	c := p.t.Coord(src)
	c[0] = (c[0] + (p.t.K()+1)/2 - 1) % p.t.K()
	dst := p.t.ID(c)
	if dst == src {
		// k <= 2 is rejected at construction; k == 3 gives offset 1 != 0,
		// so this cannot happen, but keep the guard for safety.
		dst = (src + 1) % p.t.Nodes()
	}
	return dst
}

// Name implements Pattern.
func (p *Tornado) Name() string { return "tornado" }

// Bursty wraps a Generator-compatible injection process with a two-state
// (on/off) Markov modulation: in the ON state the node generates at the
// burst rate; in the OFF state it generates nothing. Mean dwell times are
// geometrically distributed. The long-run average load equals the
// configured load, but arrivals cluster.
type Bursty struct {
	pattern Pattern
	lengths LengthDist
	pOn     float64 // per-cycle generation probability while ON
	// pExitOn / pExitOff are the per-cycle state-flip probabilities.
	pExitOn  float64
	pExitOff float64
	// on[node] tracks each node's current state.
	on []bool
}

// NewBursty builds a bursty source model. load is the long-run average in
// flits/cycle/node; burstiness is the ratio of the ON-state rate to the
// average rate (must be > 1, e.g. 4); meanBurst is the mean ON duration in
// cycles.
func NewBursty(t *topology.Torus, pattern Pattern, lengths LengthDist, load, burstiness float64, meanBurst int) *Bursty {
	if burstiness <= 1 {
		panic("traffic: burstiness must be > 1")
	}
	if meanBurst < 1 {
		panic("traffic: meanBurst must be >= 1")
	}
	pOn := load * burstiness / lengths.Mean()
	if pOn > 1 {
		pOn = 1
	}
	// Fraction of time ON must be 1/burstiness to average out:
	//   onFrac = pExitOff / (pExitOff + pExitOn)
	pExitOn := 1 / float64(meanBurst)
	onFrac := 1 / burstiness
	pExitOff := pExitOn * onFrac / (1 - onFrac)
	return &Bursty{
		pattern:  pattern,
		lengths:  lengths,
		pOn:      pOn,
		pExitOn:  pExitOn,
		pExitOff: pExitOff,
		on:       make([]bool, t.Nodes()),
	}
}

// Next reports whether node src generates a message this cycle, advancing
// the node's burst state.
func (b *Bursty) Next(src int, r *rng.Source) (dst, length int, ok bool) {
	if b.on[src] {
		if r.Bool(b.pExitOn) {
			b.on[src] = false
		}
	} else if r.Bool(b.pExitOff) {
		b.on[src] = true
	}
	if !b.on[src] || !r.Bool(b.pOn) {
		return 0, 0, false
	}
	return b.pattern.Destination(src, r), b.lengths.Length(r), true
}

// Name identifies the process in reports.
func (b *Bursty) Name() string {
	return fmt.Sprintf("bursty(%s)", b.pattern.Name())
}
