// Package traffic implements the message workloads used in the paper's
// evaluation (Section 4): six destination distributions (uniform, uniform
// with locality, bit-reversal, perfect-shuffle, butterfly and hot-spot) and
// the message-length mixes (16-flit "s", 64-flit "l", 256-flit "L" and the
// hybrid "sl" of 60% 16-flit plus 40% 64-flit messages), together with the
// Bernoulli injection process that realizes a target load in
// flits/cycle/node.
package traffic

import (
	"fmt"

	"wormnet/internal/rng"
	"wormnet/internal/topology"
)

// Pattern selects destinations for newly generated messages.
type Pattern interface {
	// Destination returns the destination node for a message generated at
	// src. Implementations must never return src itself; if the underlying
	// map sends a node to itself (as bit permutations do for palindromic
	// addresses) the implementation redraws or remaps, and documents how.
	Destination(src int, r *rng.Source) int
	// Name identifies the pattern in reports.
	Name() string
}

// ---------------------------------------------------------------------------
// Uniform

// Uniform sends each message to a destination chosen uniformly among all
// other nodes.
type Uniform struct {
	nodes int
}

// NewUniform returns a uniform pattern over the given topology.
func NewUniform(t *topology.Torus) *Uniform { return &Uniform{nodes: t.Nodes()} }

// Destination implements Pattern.
func (u *Uniform) Destination(src int, r *rng.Source) int {
	d := r.Intn(u.nodes - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (u *Uniform) Name() string { return "uniform" }

// ---------------------------------------------------------------------------
// Locality

// Locality sends each message to a destination chosen uniformly among the
// nodes within a bounded torus distance of the source. The paper does not
// spell out its locality model; radius 2 reproduces the roughly 3.3x higher
// saturation load of the paper's "uniform with locality" workload (Table 3
// uses injection rates up to 2.0 flits/cycle/node versus 0.6 for uniform).
type Locality struct {
	name string
	// candidates[src] lists all nodes within the radius, precomputed.
	candidates [][]int32
}

// NewLocality returns a locality pattern with the given radius (>= 1).
func NewLocality(t *topology.Torus, radius int) *Locality {
	if radius < 1 {
		panic("traffic: locality radius must be >= 1")
	}
	l := &Locality{name: fmt.Sprintf("locality(r=%d)", radius)}
	l.candidates = make([][]int32, t.Nodes())
	// Distance is translation invariant: compute the offset set once from
	// node 0 and translate it to every source.
	var offsets []int
	for v := 1; v < t.Nodes(); v++ {
		if t.Distance(0, v) <= radius {
			offsets = append(offsets, v)
		}
	}
	n := t.N()
	base := make([]int, n)
	off := make([]int, n)
	sum := make([]int, n)
	for src := 0; src < t.Nodes(); src++ {
		copy(base, t.Coord(src))
		list := make([]int32, len(offsets))
		for i, o := range offsets {
			copy(off, t.Coord(o))
			for d := 0; d < n; d++ {
				sum[d] = base[d] + off[d]
			}
			list[i] = int32(t.ID(sum))
		}
		l.candidates[src] = list
	}
	return l
}

// Destination implements Pattern.
func (l *Locality) Destination(src int, r *rng.Source) int {
	c := l.candidates[src]
	return int(c[r.Intn(len(c))])
}

// Name implements Pattern.
func (l *Locality) Name() string { return l.name }

// ---------------------------------------------------------------------------
// Bit permutations
//
// The classic permutation workloads view the node ID as a b-bit string
// (b = log2(N)); they are defined for power-of-two network sizes. Nodes that
// the permutation maps to themselves redraw uniformly, so every node still
// injects traffic (the standard simulator convention).

// bitPermutation is shared machinery for bit-reversal, perfect-shuffle and
// butterfly.
type bitPermutation struct {
	name  string
	nodes int
	dest  []int32 // dest[src], self-maps marked as -1
}

func newBitPermutation(t *topology.Torus, name string, f func(addr uint, bits uint) uint) *bitPermutation {
	nodes := t.Nodes()
	bits := uint(0)
	for 1<<bits < nodes {
		bits++
	}
	if 1<<bits != nodes {
		panic(fmt.Sprintf("traffic: %s pattern requires a power-of-two node count, got %d", name, nodes))
	}
	p := &bitPermutation{name: name, nodes: nodes, dest: make([]int32, nodes)}
	for src := 0; src < nodes; src++ {
		d := int(f(uint(src), bits))
		if d == src {
			p.dest[src] = -1
		} else {
			p.dest[src] = int32(d)
		}
	}
	return p
}

// Destination implements Pattern.
func (p *bitPermutation) Destination(src int, r *rng.Source) int {
	if d := p.dest[src]; d >= 0 {
		return int(d)
	}
	// Fixed point of the permutation: fall back to uniform so the node
	// still participates in the workload.
	d := r.Intn(p.nodes - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (p *bitPermutation) Name() string { return p.name }

// NewBitReversal returns the bit-reversal permutation: destination address
// is the source address with its bits reversed.
func NewBitReversal(t *topology.Torus) Pattern {
	return newBitPermutation(t, "bit-reversal", func(addr uint, bits uint) uint {
		var out uint
		for i := uint(0); i < bits; i++ {
			out = (out << 1) | ((addr >> i) & 1)
		}
		return out
	})
}

// NewPerfectShuffle returns the perfect-shuffle permutation: destination
// address is the source address rotated left by one bit.
func NewPerfectShuffle(t *topology.Torus) Pattern {
	return newBitPermutation(t, "perfect-shuffle", func(addr uint, bits uint) uint {
		msb := (addr >> (bits - 1)) & 1
		return ((addr << 1) | msb) & ((1 << bits) - 1)
	})
}

// NewButterfly returns the butterfly permutation: destination address is the
// source address with its most and least significant bits swapped.
func NewButterfly(t *topology.Torus) Pattern {
	return newBitPermutation(t, "butterfly", func(addr uint, bits uint) uint {
		msb := (addr >> (bits - 1)) & 1
		lsb := addr & 1
		out := addr &^ (1 | 1<<(bits-1))
		return out | (lsb << (bits - 1)) | msb
	})
}

// ---------------------------------------------------------------------------
// Hot-spot

// HotSpot modifies a uniform distribution so that a fixed fraction of all
// messages is destined for a single hot node (5% in the paper).
type HotSpot struct {
	uniform  Uniform
	hot      int
	fraction float64
}

// NewHotSpot returns a hot-spot pattern routing fraction of the traffic to
// the hot node. The paper uses fraction = 0.05.
func NewHotSpot(t *topology.Torus, hot int, fraction float64) *HotSpot {
	if hot < 0 || hot >= t.Nodes() {
		panic("traffic: hot node out of range")
	}
	if fraction < 0 || fraction > 1 {
		panic("traffic: hot-spot fraction out of range")
	}
	return &HotSpot{uniform: Uniform{nodes: t.Nodes()}, hot: hot, fraction: fraction}
}

// Destination implements Pattern.
func (h *HotSpot) Destination(src int, r *rng.Source) int {
	if src != h.hot && r.Bool(h.fraction) {
		return h.hot
	}
	return h.uniform.Destination(src, r)
}

// Name implements Pattern.
func (h *HotSpot) Name() string { return fmt.Sprintf("hot-spot(%.0f%%@%d)", h.fraction*100, h.hot) }

// ---------------------------------------------------------------------------
// Message lengths

// LengthDist draws message lengths in flits.
type LengthDist interface {
	// Length returns the length in flits of the next message.
	Length(r *rng.Source) int
	// Mean returns the expected message length in flits.
	Mean() float64
	// Name identifies the distribution in reports.
	Name() string
}

// Fixed is a constant message length.
type Fixed int

// Length implements LengthDist.
func (f Fixed) Length(*rng.Source) int { return int(f) }

// Mean implements LengthDist.
func (f Fixed) Mean() float64 { return float64(f) }

// Name implements LengthDist.
func (f Fixed) Name() string { return fmt.Sprintf("%d-flit", int(f)) }

// Bimodal mixes two fixed lengths; the paper's "sl" load is
// Bimodal{Short: 16, Long: 64, PShort: 0.6}.
type Bimodal struct {
	Short, Long int
	PShort      float64
}

// Length implements LengthDist.
func (b Bimodal) Length(r *rng.Source) int {
	if r.Bool(b.PShort) {
		return b.Short
	}
	return b.Long
}

// Mean implements LengthDist.
func (b Bimodal) Mean() float64 {
	return b.PShort*float64(b.Short) + (1-b.PShort)*float64(b.Long)
}

// Name implements LengthDist.
func (b Bimodal) Name() string {
	return fmt.Sprintf("%.0f%%x%d+%.0f%%x%d", b.PShort*100, b.Short, (1-b.PShort)*100, b.Long)
}

// ---------------------------------------------------------------------------
// Injection process

// Process is an injection process: each cycle, each node asks whether it
// generates a new message. Generator implements the paper's Bernoulli
// process; Bursty adds two-state burst modulation.
type Process interface {
	// Next reports whether a message is generated this cycle at node src
	// and, if so, its destination and length in flits.
	Next(src int, r *rng.Source) (dst, length int, ok bool)
	// Name identifies the process in reports.
	Name() string
}

// Skipahead is the capability interface for processes whose per-cycle trials
// are independent and identically distributed, so the gap to the next
// arrival can be drawn in closed form instead of running one Bernoulli trial
// per cycle per node. The engine uses it to visit a node only on its arrival
// cycles — O(arrivals) generator work per cycle instead of O(nodes) — which
// is what keeps quiet fabrics cheap.
//
// The contract mirrors a trial-by-trial process exactly: NextGap returns the
// number of failed trials before the next success, and Arrive draws the
// arriving message's destination and length. Cycles on which the engine
// withholds the trial (a full source queue) do not consume the gap; the
// engine re-offers the arrival on the next cycle, exactly as a skipped
// Bernoulli trial would be retried.
//
// Stateful processes (e.g. Bursty, whose per-cycle rate depends on a Markov
// state that must advance every cycle) must NOT implement Skipahead; the
// engine falls back to the dense per-cycle Next path for them.
type Skipahead interface {
	Process
	// NextGap draws the number of failed trials strictly before the next
	// arrival at node src (0 = the very next trial succeeds). ok=false
	// means the node never generates (zero rate) and must not be asked
	// again; no variate is consumed in that case.
	NextGap(src int, r *rng.Source) (gap int, ok bool)
	// Arrive draws the destination and length of the message arriving at
	// node src. It consumes the same variates, in the same order, that
	// Next consumes after a successful trial.
	Arrive(src int, r *rng.Source) (dst, length int)
}

// Generator turns a target load into a stream of messages at one node.
// Each cycle, a new message is generated with probability
// load / meanLength, which yields the requested rate in flits/cycle/node.
// Generated messages wait in an unbounded source queue until the injection
// stage accepts them, matching the paper's methodology (load is an offered
// load; the injection-limitation mechanism may hold messages back).
type Generator struct {
	pattern Pattern
	lengths LengthDist
	pMsg    float64 // per-cycle message generation probability
}

// NewGenerator builds a Generator for one node. load is in
// flits/cycle/node.
func NewGenerator(pattern Pattern, lengths LengthDist, load float64) *Generator {
	if load < 0 {
		panic("traffic: negative load")
	}
	mean := lengths.Mean()
	if mean <= 0 {
		panic("traffic: non-positive mean message length")
	}
	p := load / mean
	if p > 1 {
		p = 1
	}
	return &Generator{pattern: pattern, lengths: lengths, pMsg: p}
}

// MessageProb returns the per-cycle probability of generating a message.
func (g *Generator) MessageProb() float64 { return g.pMsg }

// Name implements Process.
func (g *Generator) Name() string {
	return fmt.Sprintf("bernoulli(%s,%s)", g.pattern.Name(), g.lengths.Name())
}

// Next implements Process.
func (g *Generator) Next(src int, r *rng.Source) (dst, length int, ok bool) {
	if !r.Bool(g.pMsg) {
		return 0, 0, false
	}
	return g.pattern.Destination(src, r), g.lengths.Length(r), true
}

// NextGap implements Skipahead: the number of failed Bernoulli(pMsg) trials
// before the next success is geometric, so one Geometric draw replaces the
// whole run of per-cycle Bool draws. The variate stream differs from Next's
// (one uniform per gap instead of one per trial), which is why switching
// kernels is a documented stream change, not a silent one.
func (g *Generator) NextGap(src int, r *rng.Source) (gap int, ok bool) {
	if g.pMsg <= 0 {
		return 0, false
	}
	return r.Geometric(g.pMsg), true
}

// Arrive implements Skipahead, consuming the destination and length variates
// in the same order as Next's success branch.
func (g *Generator) Arrive(src int, r *rng.Source) (dst, length int) {
	return g.pattern.Destination(src, r), g.lengths.Length(r)
}
