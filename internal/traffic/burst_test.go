package traffic

import (
	"math"
	"testing"

	"wormnet/internal/rng"
	"wormnet/internal/topology"
)

func TestTransposePermutation(t *testing.T) {
	tp := topology.New(4, 2)
	p := NewTranspose(tp)
	r := rng.New(1)
	// (1, 2) -> (2, 1)
	src := tp.ID([]int{1, 2})
	want := tp.ID([]int{2, 1})
	if got := p.Destination(src, r); got != want {
		t.Errorf("transpose(%d) = %d, want %d", src, got, want)
	}
	// Diagonal nodes redraw; never self.
	diag := tp.ID([]int{3, 3})
	for i := 0; i < 100; i++ {
		if p.Destination(diag, r) == diag {
			t.Fatal("diagonal node sent to itself")
		}
	}
	if p.Name() != "transpose" {
		t.Errorf("name %q", p.Name())
	}
}

func TestTransposeThreeDims(t *testing.T) {
	tp := topology.New(3, 3)
	p := NewTranspose(tp)
	r := rng.New(2)
	src := tp.ID([]int{0, 1, 2})
	want := tp.ID([]int{2, 1, 0})
	if got := p.Destination(src, r); got != want {
		t.Errorf("transpose = %d, want %d", got, want)
	}
}

func TestTornado(t *testing.T) {
	tp := topology.New(8, 2)
	p := NewTornado(tp)
	// (2, 5) -> (2 + 3, 5) = (5, 5): k/2 - 1 = 3 hops in dimension 0.
	src := tp.ID([]int{2, 5})
	want := tp.ID([]int{5, 5})
	if got := p.Destination(src, nil); got != want {
		t.Errorf("tornado(%d) = %d, want %d", src, got, want)
	}
	// Wraps around.
	src = tp.ID([]int{7, 0})
	want = tp.ID([]int{2, 0})
	if got := p.Destination(src, nil); got != want {
		t.Errorf("tornado wrap = %d, want %d", got, want)
	}
	if p.Name() != "tornado" {
		t.Errorf("name %q", p.Name())
	}
}

func TestTornadoValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k=2")
		}
	}()
	NewTornado(topology.New(2, 3))
}

func TestBurstyAverageLoad(t *testing.T) {
	tp := topology.New(4, 2)
	b := NewBursty(tp, NewUniform(tp), Fixed(16), 0.4, 4, 64)
	r := rng.New(3)
	const cycles = 400_000
	flits := 0
	for i := 0; i < cycles; i++ {
		if _, length, ok := b.Next(0, r); ok {
			flits += length
		}
	}
	got := float64(flits) / cycles
	if math.Abs(got-0.4) > 0.05 {
		t.Errorf("long-run load %.4f, want about 0.4", got)
	}
}

// TestBurstyIsActuallyBursty: the variance of per-window arrivals must far
// exceed a Bernoulli process at the same average rate.
func TestBurstyIsActuallyBursty(t *testing.T) {
	tp := topology.New(4, 2)
	load := 0.4
	bursty := NewBursty(tp, NewUniform(tp), Fixed(16), load, 8, 128)
	smooth := NewGenerator(NewUniform(tp), Fixed(16), load)
	r1, r2 := rng.New(4), rng.New(5)

	variance := func(next func() bool) float64 {
		const windows, windowLen = 400, 128
		var sum, sumSq float64
		for w := 0; w < windows; w++ {
			count := 0.0
			for c := 0; c < windowLen; c++ {
				if next() {
					count++
				}
			}
			sum += count
			sumSq += count * count
		}
		mean := sum / windows
		return sumSq/windows - mean*mean
	}

	vb := variance(func() bool { _, _, ok := bursty.Next(0, r1); return ok })
	vs := variance(func() bool { _, _, ok := smooth.Next(0, r2); return ok })
	if vb < 2*vs {
		t.Errorf("bursty variance %.2f not clearly above smooth %.2f", vb, vs)
	}
}

func TestBurstyValidation(t *testing.T) {
	tp := topology.New(4, 2)
	for _, fn := range []func(){
		func() { NewBursty(tp, NewUniform(tp), Fixed(16), 0.4, 1.0, 64) },
		func() { NewBursty(tp, NewUniform(tp), Fixed(16), 0.4, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestBurstyName(t *testing.T) {
	tp := topology.New(4, 2)
	b := NewBursty(tp, NewUniform(tp), Fixed(16), 0.4, 4, 64)
	if b.Name() != "bursty(uniform)" {
		t.Errorf("name %q", b.Name())
	}
}

func TestGeneratorName(t *testing.T) {
	tp := topology.New(4, 2)
	g := NewGenerator(NewUniform(tp), Fixed(16), 0.4)
	if g.Name() != "bernoulli(uniform,16-flit)" {
		t.Errorf("name %q", g.Name())
	}
}
