package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"wormnet/internal/rng"
	"wormnet/internal/topology"
)

func torus83() *topology.Torus { return topology.New(8, 3) }

func TestUniformNeverSelf(t *testing.T) {
	tp := topology.New(4, 2)
	p := NewUniform(tp)
	r := rng.New(1)
	for i := 0; i < 10_000; i++ {
		src := i % tp.Nodes()
		if d := p.Destination(src, r); d == src {
			t.Fatal("uniform returned the source")
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	tp := topology.New(4, 2)
	p := NewUniform(tp)
	r := rng.New(2)
	seen := make([]bool, tp.Nodes())
	for i := 0; i < 5000; i++ {
		seen[p.Destination(3, r)] = true
	}
	for id, ok := range seen {
		if id != 3 && !ok {
			t.Errorf("node %d never chosen", id)
		}
		if id == 3 && ok {
			t.Error("source chosen")
		}
	}
}

func TestUniformIsUniform(t *testing.T) {
	tp := topology.New(4, 1)
	p := NewUniform(tp)
	r := rng.New(3)
	const draws = 90_000
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		counts[p.Destination(0, r)]++
	}
	want := float64(draws) / 3
	for d, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("destination %d drawn %d times, want about %.0f", d, c, want)
		}
	}
}

func TestLocalityRespectsRadius(t *testing.T) {
	tp := torus83()
	for _, radius := range []int{1, 2, 3} {
		p := NewLocality(tp, radius)
		r := rng.New(4)
		for i := 0; i < 2000; i++ {
			src := (i * 31) % tp.Nodes()
			d := p.Destination(src, r)
			if d == src {
				t.Fatal("locality returned the source")
			}
			if dist := tp.Distance(src, d); dist > radius {
				t.Fatalf("radius %d: destination at distance %d", radius, dist)
			}
		}
	}
}

func TestLocalityCoversNeighborhood(t *testing.T) {
	tp := topology.New(4, 2)
	p := NewLocality(tp, 1)
	r := rng.New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[p.Destination(5, r)] = true
	}
	want := 0
	for v := 0; v < tp.Nodes(); v++ {
		if v != 5 && tp.Distance(5, v) <= 1 {
			want++
		}
	}
	if len(seen) != want {
		t.Errorf("radius-1 locality reached %d nodes, want %d", len(seen), want)
	}
}

func TestLocalityPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLocality(torus83(), 0)
}

func TestBitReversal(t *testing.T) {
	tp := torus83() // 512 nodes = 9 bits
	p := NewBitReversal(tp)
	r := rng.New(6)
	// 0b000000001 -> 0b100000000
	if d := p.Destination(1, r); d != 256 {
		t.Errorf("bit-reversal(1) = %d, want 256", d)
	}
	if d := p.Destination(0b110000000, r); d != 0b000000011 {
		t.Errorf("bit-reversal(0b110000000) = %#b", d)
	}
}

func TestPerfectShuffle(t *testing.T) {
	tp := torus83()
	p := NewPerfectShuffle(tp)
	r := rng.New(7)
	// Rotate left: 0b100000000 -> 0b000000001
	if d := p.Destination(256, r); d != 1 {
		t.Errorf("shuffle(256) = %d, want 1", d)
	}
	if d := p.Destination(0b000000110, r); d != 0b000001100 {
		t.Errorf("shuffle(6) = %d, want 12", d)
	}
}

func TestButterfly(t *testing.T) {
	tp := torus83()
	p := NewButterfly(tp)
	r := rng.New(8)
	// Swap MSB and LSB: 0b000000001 <-> 0b100000000
	if d := p.Destination(1, r); d != 256 {
		t.Errorf("butterfly(1) = %d, want 256", d)
	}
	if d := p.Destination(256, r); d != 1 {
		t.Errorf("butterfly(256) = %d, want 1", d)
	}
	// Middle bits unaffected.
	if d := p.Destination(0b010101010, r); d != 0b010101010|0 {
		// MSB=0, LSB=0: fixed point -> falls back to uniform, any dest != src.
		if d == 0b010101010 {
			t.Error("fixed point returned itself")
		}
	}
}

func TestBitPermutationsNeverSelf(t *testing.T) {
	tp := topology.New(4, 2) // 16 nodes, includes palindromic addresses
	r := rng.New(9)
	for _, p := range []Pattern{NewBitReversal(tp), NewPerfectShuffle(tp), NewButterfly(tp)} {
		for src := 0; src < tp.Nodes(); src++ {
			for i := 0; i < 50; i++ {
				if d := p.Destination(src, r); d == src {
					t.Fatalf("%s returned the source %d", p.Name(), src)
				}
			}
		}
	}
}

// TestBitPermutationsBijective: excluding fixed points, the deterministic
// part of each bit permutation is a bijection.
func TestBitPermutationsBijective(t *testing.T) {
	tp := torus83()
	r := rng.New(10)
	for _, p := range []Pattern{NewBitReversal(tp), NewPerfectShuffle(tp), NewButterfly(tp)} {
		counts := map[int]int{}
		fixed := 0
		for src := 0; src < tp.Nodes(); src++ {
			d := p.Destination(src, r)
			// Fixed points redraw randomly; identify them by re-drawing:
			// deterministic destinations repeat, random ones almost surely
			// do not.
			if p.Destination(src, r) != d {
				fixed++
				continue
			}
			counts[d]++
		}
		for d, c := range counts {
			if c > 1 {
				t.Errorf("%s maps %d sources to %d", p.Name(), c, d)
			}
		}
		if fixed == 0 {
			t.Errorf("%s found no fixed points on 512 nodes (expected a few)", p.Name())
		}
	}
}

func TestBitPermutationRequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 27 nodes")
		}
	}()
	NewBitReversal(topology.New(3, 3))
}

func TestHotSpotFraction(t *testing.T) {
	tp := torus83()
	p := NewHotSpot(tp, 0, 0.05)
	r := rng.New(11)
	const draws = 200_000
	hot := 0
	for i := 0; i < draws; i++ {
		src := 1 + i%(tp.Nodes()-1) // never the hot node itself
		if p.Destination(src, r) == 0 {
			hot++
		}
	}
	got := float64(hot) / draws
	// 5% hot plus the uniform share that also lands on node 0.
	want := 0.05 + 0.95/float64(tp.Nodes()-1)
	if math.Abs(got-want) > 0.005 {
		t.Errorf("hot fraction %.4f, want about %.4f", got, want)
	}
}

func TestHotSpotFromHotNode(t *testing.T) {
	tp := topology.New(4, 2)
	p := NewHotSpot(tp, 7, 0.05)
	r := rng.New(12)
	for i := 0; i < 5000; i++ {
		if d := p.Destination(7, r); d == 7 {
			t.Fatal("hot node sent to itself")
		}
	}
}

func TestHotSpotValidation(t *testing.T) {
	tp := topology.New(4, 2)
	for _, fn := range []func(){
		func() { NewHotSpot(tp, -1, 0.05) },
		func() { NewHotSpot(tp, 16, 0.05) },
		func() { NewHotSpot(tp, 0, -0.1) },
		func() { NewHotSpot(tp, 0, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestFixedLength(t *testing.T) {
	f := Fixed(16)
	if f.Length(nil) != 16 || f.Mean() != 16 {
		t.Error("Fixed broken")
	}
	if f.Name() != "16-flit" {
		t.Errorf("name %q", f.Name())
	}
}

func TestBimodalLength(t *testing.T) {
	b := Bimodal{Short: 16, Long: 64, PShort: 0.6}
	if got, want := b.Mean(), 0.6*16+0.4*64; got != want {
		t.Errorf("mean %v, want %v", got, want)
	}
	r := rng.New(13)
	const draws = 100_000
	short := 0
	for i := 0; i < draws; i++ {
		switch b.Length(r) {
		case 16:
			short++
		case 64:
		default:
			t.Fatal("unexpected length")
		}
	}
	if got := float64(short) / draws; math.Abs(got-0.6) > 0.01 {
		t.Errorf("short fraction %.4f", got)
	}
}

func TestGeneratorRate(t *testing.T) {
	tp := topology.New(4, 2)
	g := NewGenerator(NewUniform(tp), Fixed(16), 0.4)
	r := rng.New(14)
	const cycles = 200_000
	flits := 0
	for i := 0; i < cycles; i++ {
		if _, length, ok := g.Next(0, r); ok {
			flits += length
		}
	}
	got := float64(flits) / cycles
	if math.Abs(got-0.4) > 0.02 {
		t.Errorf("offered load %.4f flits/cycle, want 0.4", got)
	}
}

func TestGeneratorClampsProbability(t *testing.T) {
	tp := topology.New(4, 2)
	g := NewGenerator(NewUniform(tp), Fixed(2), 100)
	if g.MessageProb() != 1 {
		t.Errorf("probability %v, want clamp to 1", g.MessageProb())
	}
}

func TestGeneratorValidation(t *testing.T) {
	tp := topology.New(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative load")
		}
	}()
	NewGenerator(NewUniform(tp), Fixed(16), -1)
}

func TestGeneratorDestinationsValid(t *testing.T) {
	tp := topology.New(4, 2)
	g := NewGenerator(NewUniform(tp), Bimodal{Short: 16, Long: 64, PShort: 0.6}, 0.9)
	r := rng.New(15)
	if err := quick.Check(func(srcRaw uint8) bool {
		src := int(srcRaw) % tp.Nodes()
		dst, length, ok := g.Next(src, r)
		if !ok {
			return true
		}
		return dst != src && dst >= 0 && dst < tp.Nodes() && (length == 16 || length == 64)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPatternNames(t *testing.T) {
	tp := torus83()
	for _, tc := range []struct {
		p    Pattern
		want string
	}{
		{NewUniform(tp), "uniform"},
		{NewLocality(tp, 2), "locality(r=2)"},
		{NewBitReversal(tp), "bit-reversal"},
		{NewPerfectShuffle(tp), "perfect-shuffle"},
		{NewButterfly(tp), "butterfly"},
		{NewHotSpot(tp, 0, 0.05), "hot-spot(5%@0)"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("Name() = %q, want %q", tc.p.Name(), tc.want)
		}
	}
}
