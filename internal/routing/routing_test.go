package routing

import (
	"testing"
	"testing/quick"

	"wormnet/internal/router"
	"wormnet/internal/topology"
)

func fabric(t *testing.T, k, n, vcs int) *router.Fabric {
	t.Helper()
	f, err := router.NewFabric(topology.New(k, n),
		router.Config{VCsPerLink: vcs, BufFlits: 4, InjPorts: 1, DelPorts: 2})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func msgTo(f *router.Fabric, dst int) *router.Message {
	return f.NewMessage(0, dst, 16, 0)
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"":                    "true-fully-adaptive",
		"adaptive":            "true-fully-adaptive",
		"tfa":                 "true-fully-adaptive",
		"true-fully-adaptive": "true-fully-adaptive",
		"dor":                 "dimension-order",
		"ecube":               "dimension-order",
		"dimension-order":     "dimension-order",
		"duato":               "duato-protocol",
		"duato-protocol":      "duato-protocol",
	} {
		alg, ok := ByName(name)
		if !ok || alg.Name() != want {
			t.Errorf("ByName(%q) = %v, %v", name, alg, ok)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("bogus algorithm resolved")
	}
}

func TestAlgorithmProperties(t *testing.T) {
	for _, tc := range []struct {
		alg          Algorithm
		deadlockFree bool
		uniform      bool
		minVCs       int
	}{
		{TrueFullyAdaptive{}, false, true, 1},
		{DimensionOrder{}, true, false, 2},
		{DuatoProtocol{}, true, false, 3},
	} {
		if tc.alg.DeadlockFree() != tc.deadlockFree {
			t.Errorf("%s: DeadlockFree", tc.alg.Name())
		}
		if tc.alg.UniformVCs() != tc.uniform {
			t.Errorf("%s: UniformVCs", tc.alg.Name())
		}
		if tc.alg.MinVCs() != tc.minVCs {
			t.Errorf("%s: MinVCs", tc.alg.Name())
		}
	}
}

func TestAllAlgorithmsDeliveryCandidates(t *testing.T) {
	f := fabric(t, 4, 2, 3)
	for _, alg := range []Algorithm{TrueFullyAdaptive{}, DimensionOrder{}, DuatoProtocol{}} {
		m := msgTo(f, 5)
		cands := alg.Candidates(f, m, 5, nil)
		if len(cands) != 2 { // two delivery ports
			t.Errorf("%s: %d delivery candidates", alg.Name(), len(cands))
		}
		for _, vc := range cands {
			if f.Links[f.LinkOfVC(vc)].Kind != router.DeliveryLink {
				t.Errorf("%s: non-delivery candidate at destination", alg.Name())
			}
		}
	}
}

func TestTFACandidatesAreAllMinimalVCs(t *testing.T) {
	f := fabric(t, 4, 2, 3)
	dst := f.Topo.ID([]int{1, 1})
	m := msgTo(f, dst)
	cands := TrueFullyAdaptive{}.Candidates(f, m, 0, nil)
	// Two minimal directions x 3 VCs.
	if len(cands) != 6 {
		t.Fatalf("candidates = %d, want 6", len(cands))
	}
}

// TestDORSingleCandidateAndProgress: dimension order always offers exactly
// one VC, on a minimal link in the lowest unresolved dimension.
func TestDORSingleCandidateAndProgress(t *testing.T) {
	f := fabric(t, 5, 3, 2)
	tp := f.Topo
	nodes := tp.Nodes()
	err := quick.Check(func(nRaw, dRaw uint16) bool {
		node, dst := int(nRaw)%nodes, int(dRaw)%nodes
		if node == dst {
			return true
		}
		m := msgTo(f, dst)
		cands := DimensionOrder{}.Candidates(f, m, node, nil)
		if len(cands) != 1 {
			return false
		}
		link := &f.Links[f.LinkOfVC(cands[0])]
		// The hop must reduce distance.
		if tp.Distance(int(link.Dst), dst) != tp.Distance(node, dst)-1 {
			return false
		}
		// And it must be in the lowest unresolved dimension.
		for dim := 0; dim < tp.N(); dim++ {
			if tp.Coord(node)[dim] != tp.Coord(dst)[dim] {
				return link.Dir.Dim() == dim
			}
		}
		return false
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Error(err)
	}
}

// TestDORRouteTermination: following DOR hops always reaches the
// destination in exactly Distance steps.
func TestDORRouteTermination(t *testing.T) {
	f := fabric(t, 8, 2, 2)
	tp := f.Topo
	for _, pair := range [][2]int{{0, 63}, {5, 5 + 8*3}, {7, 56}, {0, 36}, {63, 0}} {
		node, dst := pair[0], pair[1]
		m := msgTo(f, dst)
		steps := 0
		for node != dst {
			cands := DimensionOrder{}.Candidates(f, m, node, nil)
			if len(cands) != 1 {
				t.Fatalf("no candidate at %d", node)
			}
			node = int(f.Links[f.LinkOfVC(cands[0])].Dst)
			steps++
			if steps > 32 {
				t.Fatal("route does not terminate")
			}
		}
		if steps != tp.Distance(pair[0], dst) {
			t.Errorf("%v: %d steps, want %d", pair, steps, tp.Distance(pair[0], dst))
		}
	}
}

// TestDORVCClassBreaksWrapCycle: on a ring, hops before the wraparound use
// class 0 and hops after it use class 1.
func TestDORVCClassBreaksWrapCycle(t *testing.T) {
	f := fabric(t, 8, 1, 2)
	m := msgTo(f, 2) // 6 -> 7 -> 0 -> 1 -> 2 travels "+", wrapping at 7->0
	classOf := func(node int) int {
		cands := DimensionOrder{}.Candidates(f, m, node, nil)
		if len(cands) != 1 {
			t.Fatalf("candidates at %d: %v", node, cands)
		}
		vc := cands[0]
		return int(vc - f.Links[f.LinkOfVC(vc)].FirstVC)
	}
	// Before the wrap (still above dst): class 0.
	if classOf(6) != 0 || classOf(7) != 0 {
		t.Error("pre-wrap hops must use class 0")
	}
	// After the wrap: class 1.
	if classOf(0) != 1 || classOf(1) != 1 {
		t.Error("post-wrap hops must use class 1")
	}
}

// TestDuatoCandidates: adaptive VCs (2..V-1) of all minimal links plus
// exactly one escape VC.
func TestDuatoCandidates(t *testing.T) {
	f := fabric(t, 4, 2, 3)
	dst := f.Topo.ID([]int{1, 1})
	m := msgTo(f, dst)
	cands := DuatoProtocol{}.Candidates(f, m, 0, nil)
	// Two minimal links x 1 adaptive VC + 1 escape VC = 3.
	if len(cands) != 3 {
		t.Fatalf("candidates = %v", cands)
	}
	adaptive := 0
	escape := 0
	for _, vc := range cands {
		link := &f.Links[f.LinkOfVC(vc)]
		idx := int(vc - link.FirstVC)
		if idx >= 2 {
			adaptive++
		} else {
			escape++
		}
	}
	if adaptive != 2 || escape != 1 {
		t.Errorf("adaptive=%d escape=%d", adaptive, escape)
	}
}

// TestDuatoEscapeMatchesDOR: the escape candidate is exactly the DOR hop.
func TestDuatoEscapeMatchesDOR(t *testing.T) {
	f := fabric(t, 8, 3, 3)
	err := quick.Check(func(nRaw, dRaw uint16) bool {
		node, dst := int(nRaw)%512, int(dRaw)%512
		if node == dst {
			return true
		}
		m := msgTo(f, dst)
		duato := DuatoProtocol{}.Candidates(f, m, node, nil)
		dor := DimensionOrder{}.Candidates(f, m, node, nil)
		if len(dor) != 1 {
			return false
		}
		// The DOR VC must appear among Duato's candidates.
		for _, vc := range duato {
			if vc == dor[0] {
				return true
			}
		}
		return false
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

// TestAllCandidatesAreMinimal: no algorithm ever proposes a non-minimal
// network hop.
func TestAllCandidatesAreMinimal(t *testing.T) {
	f := fabric(t, 6, 2, 3)
	tp := f.Topo
	nodes := tp.Nodes()
	for _, alg := range []Algorithm{TrueFullyAdaptive{}, DimensionOrder{}, DuatoProtocol{}} {
		err := quick.Check(func(nRaw, dRaw uint16) bool {
			node, dst := int(nRaw)%nodes, int(dRaw)%nodes
			if node == dst {
				return true
			}
			m := msgTo(f, dst)
			for _, vc := range alg.Candidates(f, m, node, nil) {
				link := &f.Links[f.LinkOfVC(vc)]
				if link.Kind != router.NetworkLink {
					return false
				}
				if tp.Distance(int(link.Dst), dst) != tp.Distance(node, dst)-1 {
					return false
				}
			}
			return true
		}, &quick.Config{MaxCount: 400})
		if err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}
