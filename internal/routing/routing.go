// Package routing implements the routing algorithms the simulator can run:
//
//   - TrueFullyAdaptive — the paper's algorithm: any virtual channel of any
//     minimal physical channel. Maximum flexibility, but deadlock-prone;
//     it is the algorithm deadlock *recovery* (and hence the paper's
//     detection mechanism) exists to serve.
//   - DimensionOrder — deterministic e-cube routing made deadlock-free on
//     tori with the two virtual-channel classes of Dally & Seitz. The
//     classic deadlock *avoidance* baseline.
//   - DuatoProtocol — Duato's adaptive protocol: minimal fully adaptive
//     routing on the "adaptive" virtual channels with a Dally-Seitz
//     dimension-order escape path, deadlock-free by Duato's theory.
//
// Algorithms produce candidate *virtual channels* for a blocked header;
// the engine picks a free one (or reports a failed attempt). Only
// TrueFullyAdaptive uses all virtual channels of a physical channel
// uniformly, which is the property the paper's detection hardware relies
// on to monitor physical channels instead of individual VCs.
package routing

import (
	"wormnet/internal/router"
	"wormnet/internal/topology"
)

// Algorithm computes the virtual channels a message may request next.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Candidates appends the virtual channels the header of m may request
	// at router node, and returns the extended slice. The caller selects
	// among the free ones; if none is free the message is blocked.
	Candidates(f *router.Fabric, m *router.Message, node int, buf []router.VCID) []router.VCID
	// DeadlockFree reports whether the algorithm guarantees the absence of
	// deadlock by construction (avoidance). Deadlock-free algorithms need
	// no detection mechanism.
	DeadlockFree() bool
	// UniformVCs reports whether all virtual channels of each physical
	// channel are used interchangeably — the precondition for the paper's
	// physical-channel detection hardware.
	UniformVCs() bool
	// MinVCs returns the smallest number of virtual channels per physical
	// channel the algorithm requires.
	MinVCs() int
}

// deliveryCandidates lists the node's delivery-port VCs (every algorithm
// delivers the same way).
func deliveryCandidates(f *router.Fabric, node int, buf []router.VCID) []router.VCID {
	for p := 0; p < f.Cfg.DelPorts; p++ {
		buf = append(buf, f.Links[f.DelLink(node, p)].FirstVC)
	}
	return buf
}

// ---------------------------------------------------------------------------
// True fully adaptive

// TrueFullyAdaptive offers every virtual channel of every minimal physical
// channel (the paper's routing algorithm).
type TrueFullyAdaptive struct{}

// Name implements Algorithm.
func (TrueFullyAdaptive) Name() string { return "true-fully-adaptive" }

// DeadlockFree implements Algorithm: unrestricted adaptivity can deadlock.
func (TrueFullyAdaptive) DeadlockFree() bool { return false }

// UniformVCs implements Algorithm.
func (TrueFullyAdaptive) UniformVCs() bool { return true }

// MinVCs implements Algorithm.
func (TrueFullyAdaptive) MinVCs() int { return 1 }

// Candidates implements Algorithm.
func (TrueFullyAdaptive) Candidates(f *router.Fabric, m *router.Message, node int, buf []router.VCID) []router.VCID {
	dst := int(m.Dst)
	if node == dst {
		return deliveryCandidates(f, node, buf)
	}
	var dirs [16]topology.Direction
	for _, d := range f.Topo.MinimalDirections(node, dst, dirs[:0]) {
		id := f.NetLink(node, d)
		if f.LinkFailed(id) {
			continue
		}
		link := &f.Links[id]
		for v := router.VCID(0); v < router.VCID(link.NumVC); v++ {
			buf = append(buf, link.FirstVC+v)
		}
	}
	return buf
}

// ---------------------------------------------------------------------------
// Dimension-order (e-cube) with Dally-Seitz virtual channel classes

// dorHop returns the dimension-order next hop from node toward dst: the
// direction in the lowest unresolved dimension and the Dally-Seitz virtual
// channel class (0 before the wraparound crossing, 1 after), which breaks
// the ring cycle in each dimension.
func dorHop(t *topology.Torus, node, dst int) (dir topology.Direction, vcClass int, ok bool) {
	for dim := 0; dim < t.N(); dim++ {
		cur, want := coordOf(t, node, dim), coordOf(t, dst, dim)
		if cur == want {
			continue
		}
		d := want - cur
		if d < 0 {
			d += t.K()
		}
		// Travel "+" when the forward distance is at most half way (ties
		// resolve deterministically to "+"), else "-".
		if 2*d <= t.K() {
			dir = topology.Direction(dim * 2)
			// Going "+": the path wraps iff cur + d >= k, i.e. cur > want.
			if cur > want {
				vcClass = 0
			} else {
				vcClass = 1
			}
		} else {
			dir = topology.Direction(dim*2 + 1)
			// Going "-": wraps iff cur < want.
			if cur < want {
				vcClass = 0
			} else {
				vcClass = 1
			}
		}
		return dir, vcClass, true
	}
	return 0, 0, false
}

// coordOf extracts one coordinate of node without allocating (the hot
// routing path calls this for every blocked header every cycle).
func coordOf(t *topology.Torus, node, dim int) int {
	k := t.K()
	for d := 0; d < dim; d++ {
		node /= k
	}
	return node % k
}

// DimensionOrder is deterministic e-cube routing with two Dally-Seitz
// virtual channel classes per physical channel; VCs beyond the first two
// are unused. Deadlock-free on any k-ary n-cube.
type DimensionOrder struct{}

// Name implements Algorithm.
func (DimensionOrder) Name() string { return "dimension-order" }

// DeadlockFree implements Algorithm.
func (DimensionOrder) DeadlockFree() bool { return true }

// UniformVCs implements Algorithm.
func (DimensionOrder) UniformVCs() bool { return false }

// MinVCs implements Algorithm.
func (DimensionOrder) MinVCs() int { return 2 }

// Candidates implements Algorithm.
func (DimensionOrder) Candidates(f *router.Fabric, m *router.Message, node int, buf []router.VCID) []router.VCID {
	dst := int(m.Dst)
	if node == dst {
		return deliveryCandidates(f, node, buf)
	}
	dir, class, ok := dorHop(f.Topo, node, dst)
	if !ok {
		return buf
	}
	id := f.NetLink(node, dir)
	if f.LinkFailed(id) {
		// Dimension-order routing is not fault tolerant: with its single
		// path cut, the message cannot advance.
		return buf
	}
	link := &f.Links[id]
	return append(buf, link.FirstVC+router.VCID(class))
}

// ---------------------------------------------------------------------------
// Duato's protocol

// DuatoProtocol routes minimally and fully adaptively on virtual channels
// 2..V-1 of every profitable physical channel, with virtual channels 0 and
// 1 reserved as a dimension-order Dally-Seitz escape path. By Duato's
// theory the escape sub-network makes the whole algorithm deadlock-free
// while retaining most of the adaptivity. Requires at least 3 VCs.
type DuatoProtocol struct{}

// Name implements Algorithm.
func (DuatoProtocol) Name() string { return "duato-protocol" }

// DeadlockFree implements Algorithm.
func (DuatoProtocol) DeadlockFree() bool { return true }

// UniformVCs implements Algorithm.
func (DuatoProtocol) UniformVCs() bool { return false }

// MinVCs implements Algorithm.
func (DuatoProtocol) MinVCs() int { return 3 }

// Candidates implements Algorithm.
func (DuatoProtocol) Candidates(f *router.Fabric, m *router.Message, node int, buf []router.VCID) []router.VCID {
	dst := int(m.Dst)
	if node == dst {
		return deliveryCandidates(f, node, buf)
	}
	// Adaptive class: VCs 2..V-1 of every minimal physical channel.
	var dirs [16]topology.Direction
	for _, d := range f.Topo.MinimalDirections(node, dst, dirs[:0]) {
		id := f.NetLink(node, d)
		if f.LinkFailed(id) {
			continue
		}
		link := &f.Links[id]
		for v := router.VCID(2); v < router.VCID(link.NumVC); v++ {
			buf = append(buf, link.FirstVC+v)
		}
	}
	// Escape: the dimension-order hop on its Dally-Seitz class.
	if dir, class, ok := dorHop(f.Topo, node, dst); ok {
		if id := f.NetLink(node, dir); !f.LinkFailed(id) {
			link := &f.Links[id]
			buf = append(buf, link.FirstVC+router.VCID(class))
		}
	}
	return buf
}

// ByName returns the algorithm with the given name.
func ByName(name string) (Algorithm, bool) {
	switch name {
	case "", "adaptive", "true-fully-adaptive", "tfa":
		return TrueFullyAdaptive{}, true
	case "dor", "dimension-order", "ecube":
		return DimensionOrder{}, true
	case "duato", "duato-protocol":
		return DuatoProtocol{}, true
	default:
		return nil, false
	}
}
