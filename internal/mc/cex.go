package mc

import (
	"fmt"
	"io"
	"slices"

	"wormnet/internal/trace"
)

// verifyPath replays one full choice path and reports the violation it
// produces (safety/lattice during the replay, liveness/mark-economy from
// the terminal state's probe), or nil if the path is clean. Used by the
// minimizer to test candidate simplifications.
func verifyPath(o Options, path [][]uint8) (*Violation, error) {
	if err := o.applyDefaults(); err != nil {
		return nil, err
	}
	r, err := o.newRunner(nil)
	if err != nil {
		return nil, err
	}
	for _, vec := range path {
		if _, _, err := r.step(vec); err != nil {
			return &Violation{Kind: "safety", Detail: err.Error(), Path: path, Cycle: r.eng.Now()}, nil
		}
		if v := r.checkLattice(); v != nil {
			v.Path = path
			return v, nil
		}
	}
	var scratch Result
	if v := r.livenessProbe(&scratch); v != nil {
		v.Path = path
		return v, nil
	}
	return nil, nil
}

// Minimize greedily simplifies a violation's choice path while preserving a
// violation of the same kind: trailing cycles are dropped, then every
// non-default choice is individually lowered to the default, then trailing
// choices within each cycle vector are trimmed (defaults re-derive them).
// The result is the canonical counterexample committed as a regression
// seed: shortest by construction (BFS found the depth), default-most by
// greedy descent.
func Minimize(o Options, v *Violation) (*Violation, error) {
	best := v
	accept := func(path [][]uint8) (bool, error) {
		cand, err := verifyPath(o, path)
		if err != nil {
			return false, err
		}
		if cand != nil && cand.Kind == best.Kind {
			best = cand
			return true, nil
		}
		return false, nil
	}
	// Drop trailing cycles (the default continuation may reach the same
	// violation without the explicit suffix).
	for len(best.Path) > 0 {
		ok, err := accept(slices.Clone(best.Path[:len(best.Path)-1]))
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	// Lower non-default choices.
	for c := 0; c < len(best.Path); c++ {
		for i := 0; i < len(best.Path[c]); i++ {
			if best.Path[c][i] == 0 {
				continue
			}
			cand := clonePath(best.Path)
			cand[c][i] = 0
			if _, err := accept(cand); err != nil {
				return nil, err
			}
		}
	}
	// Trim trailing default choices (pure cosmetics: the chooser derives
	// defaults past the vector's end).
	final := clonePath(best.Path)
	for c := range final {
		vec := final[c]
		for len(vec) > 0 && vec[len(vec)-1] == 0 {
			vec = vec[:len(vec)-1]
		}
		final[c] = vec
	}
	if cand, err := verifyPath(o, final); err != nil {
		return nil, err
	} else if cand != nil && cand.Kind == best.Kind {
		best = cand
	}
	return best, nil
}

func clonePath(p [][]uint8) [][]uint8 {
	out := make([][]uint8, len(p))
	for i := range p {
		out[i] = slices.Clone(p[i])
	}
	return out
}

// WriteTrace replays a violation's choice path with the flight recorder
// streaming into w as JSONL, then continues the deterministic default
// schedule up to the liveness horizon (or until the oracle set drains) so
// the stream shows the failure: formation of the deadlock, the detector's
// flag transitions, and — for liveness violations — the absence of the mark
// that should have come. The output is a standard trace stream; render it
// with cmd/traceview.
func WriteTrace(o Options, path [][]uint8, w io.Writer) error {
	if err := o.applyDefaults(); err != nil {
		return err
	}
	rec := trace.NewStreaming(w, 1024)
	r, err := o.newRunner(rec)
	if err != nil {
		return err
	}
	stepErr := error(nil)
	for _, vec := range path {
		if _, _, err := r.step(vec); err != nil {
			stepErr = err // safety counterexample: the stream ends at the failing cycle
			break
		}
	}
	if stepErr == nil {
		for t := 0; t < o.Horizon && len(r.eng.Oracle().Deadlocked()) > 0; t++ {
			if _, _, err := r.step(nil); err != nil {
				break
			}
		}
	}
	if err := rec.Flush(); err != nil {
		return fmt.Errorf("mc: trace sink: %w", err)
	}
	return nil
}
