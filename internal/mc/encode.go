package mc

import (
	"wormnet/internal/detect"
	"wormnet/internal/router"
)

// encode appends the runner's canonical state to buf. Two runners with
// equal encodings behave identically under identical future choice
// sequences — that is the pruning contract; every behavioral component is
// included and every excluded component is either derived, per-cycle
// scratch that is rewritten before its next read, telemetry, or an
// absolute-time stamp whose behavioral content is captured age-clamped by
// the detector encodings (see detect.Encodable and DESIGN.md §13).
//
// Sections, in order: driver (script position and remaining deferral
// budgets), engine scheduling order (sim.Engine.AppendSchedState), fabric
// virtual-channel occupancy, live message transport state, and the
// detector's own encoding.
func (r *runner) encode(buf []byte) []byte {
	buf = append(buf, byte(r.scriptIdx))
	for _, b := range r.budget[r.scriptIdx:] {
		buf = append(buf, byte(b))
	}
	buf = r.eng.AppendSchedState(buf)
	fab := r.eng.Fabric()
	for i := range fab.VCs {
		vc := &fab.VCs[i]
		var bits byte
		if vc.HasHeader {
			bits |= 1
		}
		if vc.HasTail {
			bits |= 2
		}
		buf = append(buf,
			byte(vc.Occupant), byte(vc.Occupant>>8),
			byte(vc.Flits),
			byte(vc.Next), byte(vc.Next>>8),
			bits)
	}
	fab.LiveMessages(func(m *router.Message) {
		// Attempts is read only as ==0 (never blocked here) and ==1
		// (first failure), so clamping at 2 is exact; Marked gates
		// re-marking. Absolute stamps (GenTime, BlockedSince, ...) are
		// deliberately absent — their behavioral content is age-clamped
		// inside the detector encodings that consume them.
		att := m.Attempts
		if att > 2 {
			att = 2
		}
		var bits byte
		if m.Marked {
			bits |= 1
		}
		buf = append(buf,
			byte(m.ID),
			byte(m.Src), byte(m.Dst), byte(m.Length),
			byte(m.Phase),
			byte(m.HeadVC), byte(m.HeadVC>>8),
			byte(m.TailVC), byte(m.TailVC>>8),
			byte(m.Injected), byte(m.Consumed),
			byte(m.InjLink), byte(m.InjLink>>8),
			byte(att), bits)
	})
	if enc, ok := r.eng.Detector().(detect.Encodable); ok {
		buf = enc.AppendState(buf, r.eng.Now())
	}
	return buf
}

// key is a 128-bit state fingerprint: two independent FNV-1a streams over
// the canonical encoding. At the state-set sizes this package bounds
// (millions), the collision probability is ~2^-85 — far below any chance of
// silently conflating two distinct states.
type key [2]uint64

func hashState(b []byte) key {
	const prime = 0x100000001b3
	h1 := uint64(0xcbf29ce484222325)
	h2 := uint64(0x84222325cbf29ce4)
	for _, c := range b {
		h1 = (h1 ^ uint64(c)) * prime
		h2 = (h2 ^ uint64(c)) * prime
	}
	return key{h1, h2}
}
