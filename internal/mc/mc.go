// Package mc is a bounded model checker for the detection invariants: it
// exhaustively explores every reachable blocking/advancing/injection
// interleaving of a tiny fabric by driving the real simulation engine
// through its nondeterminism seam (sim.Chooser), and checks the paper's
// correctness claims at every reachable state:
//
//   - safety: the fabric structural invariants, the oracle cross-check and
//     the sparse-kernel active-set audits (sim.Config.Debug) hold after
//     every cycle, and NDM's flag lattice stays legal (DT implies I);
//   - liveness: from every reachable state whose global-oracle deadlocked
//     set is non-empty, the detector marks and recovery drains the set
//     within a bounded horizon under the deterministic default schedule;
//   - mark economy: draining a deadlocked set produces at least one
//     true-classified mark (the set can only shrink through marking a
//     member), and under Strict exactly one — the paper's one-victim-per-
//     cycle claim — with no engine cycle carrying two true marks.
//
// The checker is sound for the explored bound because the engine is
// deterministic given a choice sequence: a state is its canonical encoding
// (encode.go), the frontier is explored breadth-first so counterexamples
// are cycle-minimal, and any violation is reproducible from its recorded
// choice path (replayable into a trace stream traceview renders).
package mc

import (
	"fmt"
	"io"

	"wormnet/internal/recovery"
)

// Inject is one scripted message: the model checker explores every
// admissible injection time for it within InjectWindow.
type Inject struct {
	Src, Dst, Length int
}

// Options configures one exhaustive check.
type Options struct {
	// K and N select the k-ary n-cube under test (2,2 = the 2x2 torus;
	// 3,2 = the 3x3 torus).
	K, N int
	// VCs and BufFlits size the router (1 VC and small buffers keep
	// 2-message deadlocks reachable and the state space tiny).
	VCs, BufFlits int
	// Mechanism selects the detector family: "ndm", "pdm", "cmh", or
	// "none" (no detection — every deadlock is a liveness violation; used
	// to generate regression counterexamples).
	Mechanism string
	// Threshold is the mechanism's detection threshold: NDM's t2, PDM's
	// inactivity threshold, CMH's probe initiation delay. Zero selects 4.
	Threshold int64
	// Recovery selects the recovery discipline (default progressive).
	Recovery recovery.Style
	// Script is the workload; messages are injected in order, each
	// deferrable by at most InjectWindow cycles.
	Script []Inject
	// InjectWindow bounds how many cycles each scripted injection may be
	// deferred (every deferral is one explored branch). Zero means
	// immediate injection only.
	InjectWindow int
	// MaxDepth bounds the explored depth in cycles; states at MaxDepth are
	// checked but not expanded. Zero explores to fixpoint.
	MaxDepth int
	// Horizon bounds the liveness continuation: from a deadlocked state,
	// the detector must mark and recovery must drain the oracle set within
	// this many default-schedule cycles. Zero selects 8*Threshold + 16*K*N
	// + 64, which covers detection delay, probe round trips and
	// progressive drain on the tiny fabrics this package targets.
	Horizon int
	// Strict additionally requires exactly one true mark per drained
	// deadlock episode and no engine cycle with two true marks (the
	// paper's strongest reading of one-victim-per-cycle; see DESIGN.md
	// §13 for which mechanisms satisfy it).
	Strict bool
	// MaxStates caps the visited-state set as a safety valve. Zero
	// selects 2,000,000.
	MaxStates int
	// CollectSeeds, when positive, samples up to that many frontier-state
	// encodings into Result.Seeds (fuzz corpus seeding).
	CollectSeeds int
	// Log, when non-nil, receives one-line progress reports.
	Log io.Writer
}

func (o *Options) applyDefaults() error {
	if o.K < 2 || o.N < 1 {
		return fmt.Errorf("mc: invalid fabric %d-ary %d-cube", o.K, o.N)
	}
	if o.VCs == 0 {
		o.VCs = 1
	}
	if o.BufFlits == 0 {
		o.BufFlits = 2
	}
	if o.Threshold == 0 {
		o.Threshold = 4
	}
	if o.Horizon == 0 {
		o.Horizon = int(8*o.Threshold) + 16*o.K*o.N + 64
	}
	if o.MaxStates == 0 {
		o.MaxStates = 2_000_000
	}
	if len(o.Script) == 0 {
		return fmt.Errorf("mc: empty injection script")
	}
	switch o.Mechanism {
	case "ndm", "pdm", "cmh", "none":
	default:
		return fmt.Errorf("mc: unknown mechanism %q", o.Mechanism)
	}
	return nil
}

// Violation is one invariant failure, reproducible from its choice path.
type Violation struct {
	// Kind is "safety", "flag-lattice", "liveness" or "mark-economy".
	Kind string
	// Detail is a human-readable description of the failure.
	Detail string
	// Path holds the choice vector of every cycle from the initial state
	// to the violating state; the liveness continuation beyond it is the
	// deterministic default schedule (all choices 0).
	Path [][]uint8
	// Cycle is the engine cycle the violation was detected at.
	Cycle int64
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s violation at cycle %d after %d explored cycles: %s",
		v.Kind, v.Cycle, len(v.Path), v.Detail)
}

// Result summarizes one exhaustive check.
type Result struct {
	// Mechanism echoes the checked detector family.
	Mechanism string
	// States is the number of distinct canonical states visited.
	States int
	// Leaves is the number of single-cycle replays executed (explored
	// interleavings, counting revisits).
	Leaves int
	// Depth is the deepest cycle boundary reached.
	Depth int
	// Complete reports that the frontier was exhausted without hitting
	// MaxStates: every state reachable within MaxDepth was visited.
	Complete bool
	// DepthCapped reports that at least one frontier state sat at
	// MaxDepth and was checked but not expanded (the run verified the
	// space "to the depth bound" rather than to fixpoint).
	DepthCapped bool
	// DeadlockStates counts visited states whose oracle set was non-empty
	// (each received a liveness probe). Zero means the script never
	// deadlocks and the liveness check was vacuous.
	DeadlockStates int
	// TrueMarks is the total number of true-classified marks observed
	// across all liveness probes.
	TrueMarks int
	// Violation is the first (cycle-minimal) invariant failure, or nil.
	Violation *Violation
	// Seeds holds sampled frontier-state encodings when CollectSeeds > 0.
	Seeds [][]byte
}
