package mc

import (
	"fmt"

	"wormnet/internal/detect"
	"wormnet/internal/probe"
	"wormnet/internal/router"
	"wormnet/internal/sim"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

// chooser records and replays the engine's decision sequence. Choices up to
// len(path) are prescribed; beyond it the default (0) is taken. Every call
// appends its arity, so after a cycle the caller knows the full branching
// structure it just traversed (the odometer in explore.go enumerates
// siblings from it).
type chooser struct {
	path  []uint8
	pos   int
	arity []uint8
}

// Choose implements sim.Chooser.
func (c *chooser) Choose(_ sim.ChoicePoint, n int) int {
	c.arity = append(c.arity, uint8(n))
	var v int
	if c.pos < len(c.path) {
		v = int(c.path[c.pos])
	}
	c.pos++
	if v >= n {
		v = 0 // stale prescription (minimizer edits); fall back to default
	}
	return v
}

// runner owns one engine instance and replays choice sequences against it.
// Runners are disposable: exploration builds one per leaf and replays the
// leaf's prefix from the initial state (the engine is not snapshottable, but
// tiny fabrics make replay cheap).
type runner struct {
	o   *Options
	eng *sim.Engine
	ch  *chooser

	// Injection scripting state: the next script entry to inject and each
	// entry's remaining deferral budget. Entries inject strictly in order;
	// one ChooseInject branch per cycle decides "inject now" vs "defer the
	// rest of the script this cycle", so message IDs are a pure function
	// of injection timing and the state space stays finite.
	scriptIdx int
	budget    []int
}

// newRunner builds a fresh engine at the initial state. rec optionally
// attaches the flight recorder (pure observation; used for counterexample
// emission).
func (o *Options) newRunner(rec *trace.Recorder) (*runner, error) {
	ch := &chooser{}
	rcfg := router.DefaultConfig()
	rcfg.VCsPerLink = o.VCs
	rcfg.BufFlits = o.BufFlits
	rcfg.InjPorts = 1
	rcfg.DelPorts = 1
	cfg := sim.Config{
		K:      o.K,
		N:      o.N,
		Router: rcfg,
		Pattern: func(t *topology.Torus) traffic.Pattern {
			return traffic.NewUniform(t)
		},
		Lengths:        traffic.Fixed(1),
		Load:           0, // scripted workload only: generation never fires
		Detector:       o.detectorFactory(),
		Recovery:       o.Recovery,
		Select:         router.SelectFirst, // unused under a Chooser
		InjectionLimit: -1,
		MaxSourceQueue: len(o.Script) + 1,
		Warmup:         0,
		Measure:        1 << 40, // mark counters accumulate from cycle 0
		OracleEvery:    0,       // the checker consults the oracle itself
		Seed:           1,
		Shards:         1,
		Chooser:        ch,
		Trace:          rec,
		Debug:          true, // per-cycle safety checks surface as Step errors
	}
	if rec != nil {
		// Counterexample emission: run the engine-side oracle sweep every
		// cycle so the stream carries oracle-deadlock events. The sweep is
		// pure observation — replayed behavior is unchanged.
		cfg.OracleEvery = 1
	}
	eng, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	r := &runner{o: o, eng: eng, ch: ch, budget: make([]int, len(o.Script))}
	for i := range r.budget {
		r.budget[i] = o.InjectWindow
	}
	return r, nil
}

// detectorFactory maps the mechanism name onto the real detector
// constructors, at the configured threshold.
func (o *Options) detectorFactory() sim.DetectorFactory {
	th := o.Threshold
	switch o.Mechanism {
	case "ndm":
		return func(f *router.Fabric) detect.Detector {
			return detect.NewNDMOpt(f, 1, th, detect.PromoteAll)
		}
	case "pdm":
		return func(f *router.Fabric) detect.Detector {
			return detect.NewPDM(f, th)
		}
	case "cmh":
		return func(f *router.Fabric) detect.Detector {
			return probe.New(f, probe.Config{InitDelay: th})
		}
	default: // "none"
		return nil
	}
}

// inject runs the driver's injection decision points for this cycle:
// scripted messages enter their source queue strictly in order, each
// deferrable while its budget lasts. A deferral stops the walk (later
// entries cannot overtake), so each cycle contributes at most one
// ChooseInject branch and message IDs stay a pure function of the timing
// choices.
func (r *runner) inject() {
	for r.scriptIdx < len(r.o.Script) {
		in := r.o.Script[r.scriptIdx]
		if r.budget[r.scriptIdx] > 0 {
			if r.ch.Choose(sim.ChooseInject, 2) == 1 {
				r.budget[r.scriptIdx]--
				return
			}
		}
		if m := r.eng.InjectMessage(in.Src, in.Dst, in.Length); m == nil {
			panic("mc: source queue rejected a scripted message (MaxSourceQueue must cover the script)")
		}
		r.scriptIdx++
	}
}

// step advances one cycle under the prescribed choice vector trial (nil =
// all defaults), returning the effective vector actually taken and the
// arity of every decision point encountered. A non-nil error is a safety
// violation (the engine's debug invariants failed).
func (r *runner) step(trial []uint8) (eff, arity []uint8, err error) {
	r.ch.path = trial
	r.ch.pos = 0
	r.ch.arity = r.ch.arity[:0]
	r.inject()
	if err := r.eng.Step(); err != nil {
		return nil, nil, err
	}
	arity = r.ch.arity
	eff = make([]uint8, len(arity))
	for i := range eff {
		if i < len(trial) && trial[i] < arity[i] {
			eff[i] = trial[i]
		}
	}
	return eff, arity, nil
}

// replay builds a fresh runner and replays the given per-cycle choice
// vectors from the initial state. Prefixes explored before must replay
// cleanly; an error here means the engine lost determinism and the whole
// check is invalid.
func (o *Options) replay(path [][]uint8) (*runner, error) {
	r, err := o.newRunner(nil)
	if err != nil {
		return nil, err
	}
	for i, vec := range path {
		if _, _, err := r.step(vec); err != nil {
			return nil, fmt.Errorf("mc: prefix replay diverged at cycle %d: %w", i, err)
		}
	}
	return r, nil
}

// checkLattice asserts NDM's flag lattice (DT implies I on every link): the
// detection-threshold flag can only be set by a counter that already passed
// the shorter inactivity threshold, and both reset together on
// transmission. Other mechanisms have no two-level lattice to check.
func (r *runner) checkLattice() *Violation {
	d, ok := r.eng.Detector().(*detect.NDM)
	if !ok {
		return nil
	}
	fab := r.eng.Fabric()
	for l := 0; l < fab.NumLinks(); l++ {
		id := router.LinkID(l)
		if d.DTFlagSet(id) && !d.IFlagSet(id) {
			return &Violation{
				Kind:   "flag-lattice",
				Detail: fmt.Sprintf("link %d: DT set with I clear", l),
				Cycle:  r.eng.Now(),
			}
		}
	}
	return nil
}

// livenessProbe checks the paper's two invariants from the runner's current
// state. If the global oracle reports a non-empty deadlocked set, the run
// is continued under the deterministic default schedule (all choices 0,
// pending injections proceeding immediately): the set must drain within the
// horizon (liveness), producing at least one — under Strict, exactly one —
// true-classified mark (mark economy). The runner is consumed.
//
// Soundness of "drained implies truly marked": a member of the oracle's
// fixpoint set waits only on virtual channels held by other members, so no
// delivery or false mark outside the set can free one; the set shrinks only
// when a member is marked, and marking a member classifies as true.
func (r *runner) livenessProbe(res *Result) *Violation {
	set := r.eng.Oracle().Deadlocked()
	if len(set) == 0 {
		return nil
	}
	res.DeadlockStates++
	size0 := len(set)
	trueMarks := 0
	doubles := false
	last := r.eng.Stats().TrueMarked
	for t := 0; t < r.o.Horizon; t++ {
		if _, _, err := r.step(nil); err != nil {
			return &Violation{Kind: "safety", Detail: err.Error(), Cycle: r.eng.Now()}
		}
		if v := r.checkLattice(); v != nil {
			return v
		}
		cur := r.eng.Stats().TrueMarked
		d := int(cur - last)
		last = cur
		trueMarks += d
		if d >= 2 {
			doubles = true
		}
		if len(r.eng.Oracle().Deadlocked()) == 0 {
			res.TrueMarks += trueMarks
			switch {
			case trueMarks < 1:
				return &Violation{
					Kind:   "mark-economy",
					Detail: fmt.Sprintf("deadlocked set of %d drained with no true mark", size0),
					Cycle:  r.eng.Now(),
				}
			case r.o.Strict && (trueMarks != 1 || doubles):
				return &Violation{
					Kind: "mark-economy",
					Detail: fmt.Sprintf("strict: deadlocked set of %d drained with %d true marks (same-cycle double: %v)",
						size0, trueMarks, doubles),
					Cycle: r.eng.Now(),
				}
			}
			return nil
		}
	}
	return &Violation{
		Kind: "liveness",
		Detail: fmt.Sprintf("oracle set (size %d) still non-empty after %d default cycles (%s)",
			len(r.eng.Oracle().Deadlocked()), r.o.Horizon, r.eng.Detector().Name()),
		Cycle: r.eng.Now(),
	}
}
