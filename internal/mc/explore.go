package mc

import (
	"fmt"
	"slices"
)

// node is one frontier entry: the per-cycle choice vectors that reach its
// state from the initial state. Depth is len(path); the state itself is
// reconstructed by replay (the engine is deterministic under a recorded
// choice sequence).
type node struct {
	path [][]uint8
}

// Check exhaustively explores the reachable state space of the configured
// fabric and workload, breadth-first over cycle boundaries, and reports the
// first (cycle-minimal) invariant violation, if any.
func Check(o Options) (*Result, error) {
	if err := o.applyDefaults(); err != nil {
		return nil, err
	}
	res := &Result{Mechanism: o.Mechanism}
	visited := make(map[key]struct{})
	var queue []node

	// Root state: cycle 0, nothing injected yet.
	root, err := o.replay(nil)
	if err != nil {
		return nil, err
	}
	visited[hashState(root.encode(nil))] = struct{}{}
	res.States = 1
	queue = append(queue, node{})

	var enc []byte
	capped := false
	// Sample every 31st new state so fuzz seeds spread across depths
	// instead of clustering at the shallow frontier (the second state —
	// the first real step — is always included).
	seedStride := 31
	if o.CollectSeeds > 0 {
		seedStride = max(2, min(seedStride, o.MaxStates/o.CollectSeeds))
	}
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		queue[head].path = nil // release the dequeued path
		depth := len(n.path)
		if depth > res.Depth {
			res.Depth = depth
		}
		if o.MaxDepth > 0 && depth >= o.MaxDepth {
			res.DepthCapped = true
			continue // checked, not expanded
		}
		if len(visited) >= o.MaxStates {
			capped = true
			break
		}
		// Enumerate every decision vector of the next cycle: run with a
		// trial prefix (defaults beyond it), observe the branching
		// structure actually traversed, then advance the trial like an
		// odometer with per-position arities.
		var trial []uint8
		for {
			r, err := o.replay(n.path)
			if err != nil {
				return nil, err
			}
			eff, arity, err := r.step(trial)
			res.Leaves++
			if err != nil {
				res.Violation = &Violation{
					Kind:   "safety",
					Detail: err.Error(),
					Path:   appendPath(n.path, slices.Clone(trial)),
					Cycle:  r.eng.Now(),
				}
				return res, nil
			}
			if v := r.checkLattice(); v != nil {
				v.Path = appendPath(n.path, eff)
				res.Violation = v
				return res, nil
			}
			enc = r.encode(enc[:0])
			k := hashState(enc)
			if _, seen := visited[k]; !seen {
				visited[k] = struct{}{}
				res.States++
				childPath := appendPath(n.path, eff)
				if o.CollectSeeds > 0 && len(res.Seeds) < o.CollectSeeds && (res.States == 2 || res.States%seedStride == 0) {
					res.Seeds = append(res.Seeds, slices.Clone(enc))
				}
				// The liveness probe consumes the runner (it steps past
				// the frontier state), so it runs after encoding.
				if v := r.livenessProbe(res); v != nil {
					v.Path = childPath
					res.Violation = v
					return res, nil
				}
				queue = append(queue, node{path: childPath})
				if o.Log != nil && res.States%50000 == 0 {
					fmt.Fprintf(o.Log, "mc: %s: %d states, %d leaves, depth %d, %d deadlocked\n",
						o.Mechanism, res.States, res.Leaves, res.Depth, res.DeadlockStates)
				}
			}
			if trial = nextTrial(eff, arity); trial == nil {
				break
			}
		}
	}
	res.Complete = !capped
	return res, nil
}

// appendPath clones the prefix and appends one cycle vector (paths are
// shared across frontier entries, so the prefix must not be aliased).
func appendPath(prefix [][]uint8, vec []uint8) [][]uint8 {
	out := make([][]uint8, len(prefix)+1)
	copy(out, prefix)
	out[len(prefix)] = vec
	return out
}

// nextTrial advances the cycle's decision odometer: find the last position
// whose choice has an unexplored sibling, bump it, truncate the rest (they
// re-enumerate from defaults). Determinism guarantees the bumped position
// exists with the same arity on the next run, because the choices before it
// are unchanged.
func nextTrial(eff, arity []uint8) []uint8 {
	for i := len(eff) - 1; i >= 0; i-- {
		if eff[i]+1 < arity[i] {
			t := slices.Clone(eff[:i+1])
			t[i]++
			return t
		}
	}
	return nil
}
