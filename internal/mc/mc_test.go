package mc

import (
	"bytes"
	"os"
	"testing"

	"wormnet/internal/trace"
)

// face22 is the 4-message corner-turning cycle around the unit face of the
// 2x2 torus; face33 the same face on the 3x3. On the 2x2 both directions of
// each dimension are minimal (k=2), so every corner has a parallel escape
// channel and the cycle can never close; on the 3x3 the face links are the
// only minimal channels once the corner is turned, and the deadlock is
// reachable.
var (
	face22 = []Inject{{0, 3, 2}, {1, 2, 2}, {3, 0, 2}, {2, 1, 2}}
	face33 = []Inject{{0, 4, 2}, {1, 3, 2}, {4, 0, 2}, {3, 1, 2}}
)

// TestExhaustive2x2NoDeadlock proves the headline 2x2 result: with one
// virtual channel and the face-cycle script, no interleaving reaches a
// deadlock (k=2 parallel minimal channels always leave an escape), and every
// reachable state passes the structural safety checks and NDM's flag
// lattice.
func TestExhaustive2x2NoDeadlock(t *testing.T) {
	res, err := Check(Options{
		K: 2, N: 2, VCs: 1, Mechanism: "ndm",
		Script: face22, InjectWindow: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if !res.Complete || res.DepthCapped {
		t.Fatalf("expected exhaustive completion, got complete=%v capped=%v", res.Complete, res.DepthCapped)
	}
	if res.DeadlockStates != 0 {
		t.Fatalf("2x2 face cycle reached %d deadlocked states; the parallel-channel argument is wrong", res.DeadlockStates)
	}
	if res.States < 1000 {
		t.Fatalf("suspiciously small state space: %d states", res.States)
	}
}

// TestExhaustive3x3Deadlocks checks the two paper invariants on a fabric
// where deadlock is actually reachable: every mechanism must drain every
// reachable deadlock within the horizon with at least one true mark.
func TestExhaustive3x3Deadlocks(t *testing.T) {
	for _, mech := range []string{"ndm", "pdm", "cmh"} {
		t.Run(mech, func(t *testing.T) {
			res, err := Check(Options{
				K: 3, N: 2, VCs: 1, Mechanism: mech,
				Script: face33, InjectWindow: 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation: %v", res.Violation)
			}
			if !res.Complete {
				t.Fatal("expected exhaustive completion")
			}
			if res.DeadlockStates == 0 {
				t.Fatal("liveness check was vacuous: no deadlocked states reached")
			}
			if res.TrueMarks == 0 {
				t.Fatal("deadlocks drained without any true mark recorded")
			}
		})
	}
}

// TestStrictRejectsSimultaneousMarks documents the engine finding that
// strict one-victim-per-cycle does NOT hold: a symmetric 4-message deadlock
// puts every member over threshold in the same cycle, and all mechanisms
// mark all four before recovery drains the set (DESIGN.md §13).
func TestStrictRejectsSimultaneousMarks(t *testing.T) {
	res, err := Check(Options{
		K: 3, N: 2, VCs: 1, Mechanism: "ndm",
		Script: face33, InjectWindow: 0, Strict: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Kind != "mark-economy" {
		t.Fatalf("expected a strict mark-economy violation, got %v", res.Violation)
	}
}

// TestLivenessCounterexample turns detection off, demands the checker find
// the resulting liveness violation, minimizes it, and replays it into a
// parseable trace stream that shows the oracle observing a deadlock no
// detector ever marks.
func TestLivenessCounterexample(t *testing.T) {
	o := Options{
		K: 3, N: 2, VCs: 1, Mechanism: "none",
		Script: face33, InjectWindow: 0,
	}
	res, err := Check(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Kind != "liveness" {
		t.Fatalf("expected a liveness violation with detection off, got %v", res.Violation)
	}
	minv, err := Minimize(o, res.Violation)
	if err != nil {
		t.Fatal(err)
	}
	if minv.Kind != "liveness" {
		t.Fatalf("minimization changed the violation kind to %q", minv.Kind)
	}
	if len(minv.Path) > len(res.Violation.Path) {
		t.Fatalf("minimization grew the path: %d > %d", len(minv.Path), len(res.Violation.Path))
	}
	// The minimized path must still reproduce.
	rep, err := verifyPath(o, minv.Path)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Kind != "liveness" {
		t.Fatalf("minimized path does not reproduce: %v", rep)
	}
	var buf bytes.Buffer
	if err := WriteTrace(o, minv.Path, &buf); err != nil {
		t.Fatal(err)
	}
	sawOracle, sawDetect := false, false
	if err := trace.Scan(&buf, func(ev trace.Event) error {
		switch ev.Kind {
		case trace.KindOracleDeadlock:
			sawOracle = true
		case trace.KindDetect:
			sawDetect = true
		}
		return nil
	}); err != nil {
		t.Fatalf("counterexample trace does not parse: %v", err)
	}
	if !sawOracle {
		t.Fatal("counterexample trace has no oracle-deadlock event")
	}
	if sawDetect {
		t.Fatal("detection is off, yet the trace has a detect event")
	}
}

// TestCommittedCounterexample is the regression seed: the minimized
// liveness counterexample found by the checker with detection disabled,
// committed as a trace stream (testdata/liveness-cex-3x3-none.jsonl,
// regenerate with `make conformance-cex`). It must stay parseable and keep
// its failure shape — a true deadlock the oracle observes and no detector
// ever marks.
func TestCommittedCounterexample(t *testing.T) {
	f, err := os.Open("testdata/liveness-cex-3x3-none.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	oracle, detect, failTail := 0, 0, int64(-1)
	if err := trace.Scan(f, func(ev trace.Event) error {
		switch ev.Kind {
		case trace.KindOracleDeadlock:
			oracle++
		case trace.KindDetect:
			detect++
		case trace.KindRouteFail:
			failTail = ev.Cycle
		}
		return nil
	}); err != nil {
		t.Fatalf("committed counterexample does not parse: %v", err)
	}
	if oracle == 0 {
		t.Fatal("committed counterexample lost its oracle-deadlock events")
	}
	if detect != 0 {
		t.Fatalf("committed counterexample has %d detect events; it documents a run with detection off", detect)
	}
	if failTail < 64 {
		t.Fatalf("committed counterexample's routing failures end at cycle %d; expected a long undetected stall", failTail)
	}
}

// TestReplayDeterminism is the seam's load-bearing property: the same choice
// path always reproduces the same canonical state. Without it the visited
// set would prune live states and the whole check would be unsound.
func TestReplayDeterminism(t *testing.T) {
	o := Options{
		K: 3, N: 2, VCs: 1, Mechanism: "cmh",
		Script: face33, InjectWindow: 1,
	}
	if err := o.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	path := [][]uint8{{1}, {0, 1}, nil, {1, 1}, nil, nil, {2}}
	var encs [2][]byte
	for i := range encs {
		r, err := o.replay(path)
		if err != nil {
			t.Fatal(err)
		}
		encs[i] = r.encode(nil)
	}
	if !bytes.Equal(encs[0], encs[1]) {
		t.Fatal("same choice path produced different canonical encodings")
	}
}

// TestSeedCollection checks the fuzz-corpus sampling contract: requesting
// seeds yields at least one non-empty encoding, at most the requested count.
func TestSeedCollection(t *testing.T) {
	res, err := Check(Options{
		K: 2, N: 2, VCs: 1, Mechanism: "pdm",
		Script: face22, InjectWindow: 0, CollectSeeds: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) == 0 || len(res.Seeds) > 8 {
		t.Fatalf("collected %d seeds, want 1..8", len(res.Seeds))
	}
	for i, s := range res.Seeds {
		if len(s) == 0 {
			t.Fatalf("seed %d is empty", i)
		}
	}
}
