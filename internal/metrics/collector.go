package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Metric identifies one of the collector's event counters. The engine
// increments them at its instrumentation sites through Inc/Add; each maps
// onto a registered Prometheus counter.
type Metric uint8

// Event counters.
const (
	// MGenerated counts messages created at sources.
	MGenerated Metric = iota
	// MInjected counts messages admitted into the network.
	MInjected
	// MDelivered counts messages fully consumed at their destination.
	MDelivered
	// MDeliveredFlits counts flits of delivered messages.
	MDeliveredFlits
	// MMarkedTrue counts detector marks the oracle confirmed as true
	// deadlocks; MMarkedFalse counts false detections.
	MMarkedTrue
	MMarkedFalse
	// MRecovered counts messages fully removed from the fabric by recovery.
	MRecovered
	// MReinjected counts recovered messages re-entering a source queue.
	MReinjected
	// MAbsorbedFlits counts flits drained through progressive-recovery
	// absorption ports.
	MAbsorbedFlits
	// MLinkFailures counts injected channel faults.
	MLinkFailures
	// MCycles counts simulated cycles.
	MCycles
	// MDTFlagCycles sums, over cycles, the number of output channels whose
	// detection-threshold flag was set at the end of the cycle (the live
	// carrier of the DT-occupancy metric; divide by MCycles for the mean).
	MDTFlagCycles
	// MProbesEmitted..MProbesReturned count CMH probe lifecycle events by
	// outcome; MProbeFlits counts control flits probe movement charged to
	// physical links (the bandwidth cost of edge chasing). Zero for
	// detectors that do not transport probes.
	MProbesEmitted
	MProbesForwarded
	MProbesDropped
	MProbesReturned
	MProbeFlits
	// MEpisodesTrue / MEpisodesFalse count closed deadlock episodes by
	// verdict, fed by the forensics episode correlator when one is attached
	// (zero otherwise).
	MEpisodesTrue
	MEpisodesFalse

	numMetrics
)

// metricSpec declares how each event counter appears in the registry.
var metricSpecs = [numMetrics]struct {
	name, help, labelKey, labelVal string
}{
	MGenerated:       {"wormnet_messages_generated_total", "Messages created at sources.", "", ""},
	MInjected:        {"wormnet_messages_injected_total", "Messages admitted into the network.", "", ""},
	MDelivered:       {"wormnet_messages_delivered_total", "Messages fully consumed at their destination.", "", ""},
	MDeliveredFlits:  {"wormnet_flits_delivered_total", "Flits of delivered messages.", "", ""},
	MMarkedTrue:      {"wormnet_marks_total", "Detector marks by oracle verdict.", "verdict", "true"},
	MMarkedFalse:     {"wormnet_marks_total", "Detector marks by oracle verdict.", "verdict", "false"},
	MRecovered:       {"wormnet_recoveries_total", "Messages fully removed from the fabric by recovery.", "", ""},
	MReinjected:      {"wormnet_messages_reinjected_total", "Recovered messages re-entering a source queue.", "", ""},
	MAbsorbedFlits:   {"wormnet_recovery_absorbed_flits_total", "Flits drained through progressive-recovery absorption.", "", ""},
	MLinkFailures:    {"wormnet_link_failures_total", "Injected channel faults.", "", ""},
	MCycles:          {"wormnet_cycles_total", "Simulated cycles.", "", ""},
	MDTFlagCycles:    {"wormnet_dt_flag_cycle_sum_total", "Sum over cycles of output channels with the DT flag set.", "", ""},
	MProbesEmitted:   {"wormnet_probes_total", "CMH probe lifecycle events, by outcome.", "event", "emit"},
	MProbesForwarded: {"wormnet_probes_total", "CMH probe lifecycle events, by outcome.", "event", "forward"},
	MProbesDropped:   {"wormnet_probes_total", "CMH probe lifecycle events, by outcome.", "event", "drop"},
	MProbesReturned:  {"wormnet_probes_total", "CMH probe lifecycle events, by outcome.", "event", "return"},
	MProbeFlits:      {"wormnet_probe_flits_total", "Control flits charged to physical links by probe movement.", "", ""},
	MEpisodesTrue:    {"wormnet_episodes_total", "Closed deadlock episodes by verdict.", "verdict", "true-deadlock"},
	MEpisodesFalse:   {"wormnet_episodes_total", "Closed deadlock episodes by verdict.", "verdict", "false-positive"},
}

// Sample is one time-series point: the network's state at the end of a
// sampling window, plus the cumulative event counters at that instant
// (consumers difference adjacent samples for per-window rates).
type Sample struct {
	// Cycle is the simulation cycle the sample was taken at.
	Cycle int64 `json:"cycle"`

	// Cumulative event counters at sample time.
	Generated     int64 `json:"generated"`
	Injected      int64 `json:"injected"`
	Delivered     int64 `json:"delivered"`
	DeliveredFlit int64 `json:"deliveredFlits"`
	MarkedTrue    int64 `json:"markedTrue"`
	MarkedFalse   int64 `json:"markedFalse"`
	Recovered     int64 `json:"recovered"`
	Reinjected    int64 `json:"reinjected"`

	// Instantaneous gauges at the end of the window's last cycle.
	Queued         int32 `json:"queued"`         // messages waiting in source queues
	Blocked        int32 `json:"blocked"`        // headers with at least one failed attempt
	BusyVCs        int32 `json:"busyVCs"`        // occupied virtual channels (all classes)
	BusyLinks      int32 `json:"busyLinks"`      // physical channels with >= 1 busy VC
	IFlags         int32 `json:"iFlags"`         // output channels with the I flag set
	DTFlags        int32 `json:"dtFlags"`        // output channels with the DT flag set
	GFlags         int32 `json:"gFlags"`         // input channels holding G
	RecoveryDepth  int32 `json:"recoveryDepth"`  // messages undergoing recovery
	OracleSet      int32 `json:"oracleSet"`      // latest oracle deadlocked-set size
	ProbesInFlight int32 `json:"probesInFlight"` // CMH probes traversing the fabric

	// Sparse-kernel active-set gauges: the sizes of the structures the
	// activity-driven cycle kernel iterates, i.e. how much work one cycle
	// actually is.
	NonemptyQueues int32 `json:"nonemptyQueues"` // nodes with a nonempty source queue
	ActiveLinks    int32 `json:"activeLinks"`    // output links that carried a flit this cycle
	WormsInFlight  int32 `json:"wormsInFlight"`  // messages admitted and not yet delivered/requeued

	// Episode (forensics) families, zero unless an episode correlator feeds
	// the collector: cumulative closed-episode counts by verdict, the
	// cumulative MTTD/MTTR sums and observation counts (difference and
	// divide adjacent samples for windowed means), and the episodes-open
	// gauge.
	EpisodesTrue  int64 `json:"episodesTrue"`
	EpisodesFalse int64 `json:"episodesFalse"`
	MTTDSum       int64 `json:"mttdSum"`
	MTTDCount     int64 `json:"mttdCount"`
	MTTRSum       int64 `json:"mttrSum"`
	MTTRCount     int64 `json:"mttrCount"`
	EpisodesOpen  int32 `json:"episodesOpen"`

	// Per-dimension occupancy of network physical channels. DimVCs[d] is
	// the number of busy VCs on dimension-d network channels; DimLinks[d]
	// counts the busy channels themselves.
	DimVCs   []int32 `json:"dimVCs"`
	DimLinks []int32 `json:"dimLinks"`
}

// copyInto deep-copies s into dst, reusing dst's per-dimension slices.
func (s *Sample) copyInto(dst *Sample) {
	dv, dl := dst.DimVCs[:0], dst.DimLinks[:0]
	*dst = *s
	dst.DimVCs = append(dv, s.DimVCs...)
	dst.DimLinks = append(dl, s.DimLinks...)
}

// Prober supplies the instantaneous gauge fields of a Sample. The
// simulation engine implements it; Probe must fill every gauge field
// (counter fields are stamped by the collector) without retaining s.
type Prober interface {
	ProbeMetrics(s *Sample)
}

// Options configure a Collector.
type Options struct {
	// Window is the sampling window in cycles (default 256): one Sample is
	// taken every Window cycles.
	Window int64
	// Ring bounds how many samples are kept (default 4096); older samples
	// are overwritten. Series dumps emit the ring oldest-first.
	Ring int
}

// DefaultWindow and DefaultRing are the Options defaults.
const (
	DefaultWindow = 256
	DefaultRing   = 4096
)

// Collector is the hot-path façade of the metrics subsystem: the engine
// (and recovery, via the engine's hooks) call its nil-safe methods at
// instrumentation sites, and its sampler snapshots network state every
// window. A Collector is owned by exactly one simulation engine; sweeps
// attach a distinct collector per run. Scrapers (the HTTP exporter, status
// snapshots, series dumps) may read concurrently with the simulation.
type Collector struct {
	reg    *Registry
	window int64

	counts [numMetrics]*Counter

	// Registry views of the latest sample's gauges.
	gQueued, gBlocked, gBusyVCs, gBusyLinks *Gauge
	gIFlags, gDTFlags, gGFlags              *Gauge
	gRecoveryDepth, gOracleSet              *Gauge
	gProbesInFlight                         *Gauge
	gNonemptyQueues, gActiveLinks           *Gauge
	gWormsInFlight                          *Gauge
	dimVCs, dimLinks                        []*Gauge
	classVCs                                [3]*Gauge // net, inj, del busy VCs

	// Latency histograms (cycles), observed over the whole run.
	latency  *Histogram // generation -> delivery
	detDelay *Histogram // first failed attempt -> mark
	detLat   *Histogram // oracle-first-deadlock -> mark

	// Episode families (forensics correlator).
	gEpisodesOpen *Gauge
	epMTTD        *Histogram // episode open -> first mark
	epMTTR        *Histogram // first mark -> episode close

	// Sampler state. nextSample is touched only by the engine goroutine;
	// the ring and scratch are guarded by mu against concurrent scrapes.
	nextSample int64
	scratch    Sample
	mu         sync.Mutex
	ring       []Sample
	next       int
	size       int

	detector string
	dims     int
	attached bool
}

// NewCollector builds a collector. Zero-valued options select the defaults.
func NewCollector(opt Options) *Collector {
	if opt.Window <= 0 {
		opt.Window = DefaultWindow
	}
	if opt.Ring <= 0 {
		opt.Ring = DefaultRing
	}
	c := &Collector{reg: NewRegistry(), window: opt.Window, ring: make([]Sample, opt.Ring)}
	for m := Metric(0); m < numMetrics; m++ {
		spec := metricSpecs[m]
		if spec.labelKey != "" {
			c.counts[m] = c.reg.LabeledCounter(spec.name, spec.help, spec.labelKey, spec.labelVal)
		} else {
			c.counts[m] = c.reg.Counter(spec.name, spec.help)
		}
	}
	c.gQueued = c.reg.Gauge("wormnet_source_queued", "Messages waiting in source queues.")
	c.gBlocked = c.reg.Gauge("wormnet_blocked_headers", "Blocked headers (>= 1 failed routing attempt).")
	c.gBusyVCs = c.reg.Gauge("wormnet_busy_vcs", "Occupied virtual channels.")
	c.gBusyLinks = c.reg.Gauge("wormnet_busy_links", "Physical channels with at least one busy VC.")
	c.gIFlags = c.reg.LabeledGauge("wormnet_flag_occupancy", "Detection flags currently set, by flag.", "flag", "i")
	c.gDTFlags = c.reg.LabeledGauge("wormnet_flag_occupancy", "Detection flags currently set, by flag.", "flag", "dt")
	c.gGFlags = c.reg.LabeledGauge("wormnet_flag_occupancy", "Detection flags currently set, by flag.", "flag", "g")
	c.gRecoveryDepth = c.reg.Gauge("wormnet_recovery_depth", "Messages currently undergoing recovery.")
	c.gOracleSet = c.reg.Gauge("wormnet_oracle_deadlocked", "Latest oracle deadlocked-set size.")
	c.gProbesInFlight = c.reg.Gauge("wormnet_probes_in_flight", "CMH probes currently traversing the fabric.")
	c.gNonemptyQueues = c.reg.Gauge("wormnet_nonempty_queues", "Nodes with a nonempty source queue.")
	c.gActiveLinks = c.reg.Gauge("wormnet_active_links", "Output links that carried a flit in the sampled cycle.")
	c.gWormsInFlight = c.reg.Gauge("wormnet_worms_in_flight", "Messages admitted into the network and not yet delivered or re-queued.")
	c.latency = c.reg.Histogram("wormnet_latency_cycles",
		"Generation-to-delivery latency of delivered messages.", ExpBounds(1<<14))
	c.detDelay = c.reg.Histogram("wormnet_detect_delay_cycles",
		"First failed routing attempt to detector mark.", ExpBounds(1<<12))
	c.detLat = c.reg.Histogram("wormnet_detect_latency_cycles",
		"Oracle-confirmed deadlock to detector mark.", ExpBounds(1<<12))
	c.gEpisodesOpen = c.reg.Gauge("wormnet_episodes_open", "Deadlock episodes currently in flight.")
	c.epMTTD = c.reg.Histogram("wormnet_episode_mttd_cycles",
		"Episode open (first oracle sighting) to first detector mark.", ExpBounds(1<<12))
	c.epMTTR = c.reg.Histogram("wormnet_episode_mttr_cycles",
		"First detector mark to episode close (last member drained).", ExpBounds(1<<14))
	return c
}

// Registry exposes the collector's registry (for the HTTP exporter, tests
// and sweep aggregation). Nil-safe; returns nil on a nil collector.
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Window returns the sampling window in cycles.
func (c *Collector) Window() int64 {
	if c == nil {
		return 0
	}
	return c.window
}

// Attach binds the collector to one simulation: the detector name (for the
// /status snapshot and info metric) and the topology's dimension count,
// which sizes the per-dimension occupancy series. The engine calls it once
// from New; calling Attach twice panics — collectors are single-run.
func (c *Collector) Attach(detector string, dims int) {
	if c == nil {
		return
	}
	if c.attached {
		panic("metrics: Collector attached to a second engine; collectors are single-run")
	}
	c.attached = true
	c.detector = detector
	c.dims = dims
	c.reg.LabeledGauge("wormnet_info", "Static run information.", "detector", detector).Set(1)
	c.dimVCs = make([]*Gauge, dims)
	c.dimLinks = make([]*Gauge, dims)
	for d := 0; d < dims; d++ {
		c.dimVCs[d] = c.reg.LabeledGauge("wormnet_dim_busy_vcs",
			"Busy VCs on network channels, by dimension.", "dim", strconv.Itoa(d))
		c.dimLinks[d] = c.reg.LabeledGauge("wormnet_dim_busy_links",
			"Busy network channels, by dimension.", "dim", strconv.Itoa(d))
	}
	names := [3]string{"net", "inj", "del"}
	for i, n := range names {
		c.classVCs[i] = c.reg.LabeledGauge("wormnet_class_busy_vcs",
			"Busy VCs by physical-channel class.", "class", n)
	}
	c.scratch.DimVCs = make([]int32, dims)
	c.scratch.DimLinks = make([]int32, dims)
	for i := range c.ring {
		c.ring[i].DimVCs = make([]int32, 0, dims)
		c.ring[i].DimLinks = make([]int32, 0, dims)
	}
}

// Inc adds one to event counter m. Safe (and free beyond one branch) on a
// nil receiver.
func (c *Collector) Inc(m Metric) {
	if c == nil {
		return
	}
	c.counts[m].Inc()
}

// Add adds d to event counter m. Nil-safe.
func (c *Collector) Add(m Metric, d int64) {
	if c == nil {
		return
	}
	c.counts[m].Add(d)
}

// Value returns event counter m's current value (0 on a nil receiver).
func (c *Collector) Value(m Metric) int64 {
	if c == nil {
		return 0
	}
	return c.counts[m].Value()
}

// ObserveLatency records one delivered message's generation-to-delivery
// latency. Nil-safe.
func (c *Collector) ObserveLatency(cycles int64) {
	if c == nil {
		return
	}
	c.latency.Observe(cycles)
}

// ObserveDetectDelay records one mark's first-failed-attempt-to-mark delay.
func (c *Collector) ObserveDetectDelay(cycles int64) {
	if c == nil {
		return
	}
	c.detDelay.Observe(cycles)
}

// ObserveDetectLatency records one mark's oracle-to-mark latency.
func (c *Collector) ObserveDetectLatency(cycles int64) {
	if c == nil {
		return
	}
	c.detLat.Observe(cycles)
}

// ObserveEpisode records one closed deadlock episode: its oracle verdict
// and, when known (>= 0), its MTTD (episode open to first mark) and MTTR
// (first mark to close) in cycles. The forensics correlator calls it;
// nil-safe.
func (c *Collector) ObserveEpisode(trueDeadlock bool, mttd, mttr int64) {
	if c == nil {
		return
	}
	if trueDeadlock {
		c.counts[MEpisodesTrue].Inc()
	} else {
		c.counts[MEpisodesFalse].Inc()
	}
	if mttd >= 0 {
		c.epMTTD.Observe(mttd)
	}
	if mttr >= 0 {
		c.epMTTR.Observe(mttr)
	}
}

// SetEpisodesOpen updates the episodes-in-flight gauge. Nil-safe.
func (c *Collector) SetEpisodesOpen(n int) {
	if c == nil {
		return
	}
	c.gEpisodesOpen.Set(int64(n))
}

// EndCycle advances the collector's clock and, on window boundaries, takes
// a sample by probing p. The engine calls it once per Step; on a nil
// receiver it is a single branch.
func (c *Collector) EndCycle(now int64, p Prober) {
	if c == nil {
		return
	}
	c.counts[MCycles].Inc()
	if now < c.nextSample {
		return
	}
	c.nextSample = now + c.window
	c.takeSample(now, p)
}

// takeSample snapshots one Sample into the ring and mirrors its gauges
// into the registry. Runs on the engine goroutine; allocation-free once
// attached (scratch and ring slots are pre-sized).
func (c *Collector) takeSample(now int64, p Prober) {
	s := &c.scratch
	s.Cycle = now
	s.Generated = c.counts[MGenerated].Value()
	s.Injected = c.counts[MInjected].Value()
	s.Delivered = c.counts[MDelivered].Value()
	s.DeliveredFlit = c.counts[MDeliveredFlits].Value()
	s.MarkedTrue = c.counts[MMarkedTrue].Value()
	s.MarkedFalse = c.counts[MMarkedFalse].Value()
	s.Recovered = c.counts[MRecovered].Value()
	s.Reinjected = c.counts[MReinjected].Value()
	s.Queued, s.Blocked, s.BusyVCs, s.BusyLinks = 0, 0, 0, 0
	s.IFlags, s.DTFlags, s.GFlags = 0, 0, 0
	s.RecoveryDepth, s.OracleSet = 0, 0
	s.ProbesInFlight = 0
	s.NonemptyQueues, s.ActiveLinks, s.WormsInFlight = 0, 0, 0
	s.DimVCs = s.DimVCs[:c.dims]
	s.DimLinks = s.DimLinks[:c.dims]
	for i := range s.DimVCs {
		s.DimVCs[i] = 0
		s.DimLinks[i] = 0
	}
	s.EpisodesTrue = c.counts[MEpisodesTrue].Value()
	s.EpisodesFalse = c.counts[MEpisodesFalse].Value()
	s.MTTDSum, s.MTTDCount = c.epMTTD.Sum(), c.epMTTD.Count()
	s.MTTRSum, s.MTTRCount = c.epMTTR.Sum(), c.epMTTR.Count()
	s.EpisodesOpen = int32(c.gEpisodesOpen.Value())
	if p != nil {
		p.ProbeMetrics(s)
	}

	c.gQueued.Set(int64(s.Queued))
	c.gBlocked.Set(int64(s.Blocked))
	c.gBusyVCs.Set(int64(s.BusyVCs))
	c.gBusyLinks.Set(int64(s.BusyLinks))
	c.gIFlags.Set(int64(s.IFlags))
	c.gDTFlags.Set(int64(s.DTFlags))
	c.gGFlags.Set(int64(s.GFlags))
	c.gRecoveryDepth.Set(int64(s.RecoveryDepth))
	c.gOracleSet.Set(int64(s.OracleSet))
	c.gProbesInFlight.Set(int64(s.ProbesInFlight))
	c.gNonemptyQueues.Set(int64(s.NonemptyQueues))
	c.gActiveLinks.Set(int64(s.ActiveLinks))
	c.gWormsInFlight.Set(int64(s.WormsInFlight))
	for d := 0; d < c.dims && d < len(c.dimVCs); d++ {
		c.dimVCs[d].Set(int64(s.DimVCs[d]))
		c.dimLinks[d].Set(int64(s.DimLinks[d]))
	}

	c.mu.Lock()
	s.copyInto(&c.ring[c.next])
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
	}
	if c.size < len(c.ring) {
		c.size++
	}
	c.mu.Unlock()
}

// SetClassVCs lets the prober report busy-VC counts per channel class
// (network, injection, delivery). Called from inside ProbeMetrics; nil-safe.
func (c *Collector) SetClassVCs(net, inj, del int32) {
	if c == nil || c.classVCs[0] == nil {
		return
	}
	c.classVCs[0].Set(int64(net))
	c.classVCs[1].Set(int64(inj))
	c.classVCs[2].Set(int64(del))
}

// Samples appends the ring's contents, oldest first, to buf and returns it.
// The returned samples are deep copies and safe to retain.
func (c *Collector) Samples(buf []Sample) []Sample {
	if c == nil {
		return buf
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	start := c.next - c.size
	if start < 0 {
		start += len(c.ring)
	}
	for i := 0; i < c.size; i++ {
		src := &c.ring[(start+i)%len(c.ring)]
		var dst Sample
		src.copyInto(&dst)
		// copyInto reuses dst's nil slices via append, which allocates fresh
		// backing arrays here — exactly what "safe to retain" needs.
		buf = append(buf, dst)
	}
	return buf
}

// SampleCount returns how many samples the ring currently holds.
func (c *Collector) SampleCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// seriesFields names the CSV columns / JSONL keys of the fixed Sample
// fields, in emission order.
var seriesFields = []string{
	"cycle", "generated", "injected", "delivered", "deliveredFlits",
	"markedTrue", "markedFalse", "recovered", "reinjected",
	"queued", "blocked", "busyVCs", "busyLinks",
	"iFlags", "dtFlags", "gFlags", "recoveryDepth", "oracleSet",
	"probesInFlight", "nonemptyQueues", "activeLinks", "wormsInFlight",
	"episodesTrue", "episodesFalse", "mttdSum", "mttdCount",
	"mttrSum", "mttrCount", "episodesOpen",
}

func (s *Sample) fixedValues() [29]int64 {
	return [29]int64{
		s.Cycle, s.Generated, s.Injected, s.Delivered, s.DeliveredFlit,
		s.MarkedTrue, s.MarkedFalse, s.Recovered, s.Reinjected,
		int64(s.Queued), int64(s.Blocked), int64(s.BusyVCs), int64(s.BusyLinks),
		int64(s.IFlags), int64(s.DTFlags), int64(s.GFlags),
		int64(s.RecoveryDepth), int64(s.OracleSet),
		int64(s.ProbesInFlight), int64(s.NonemptyQueues),
		int64(s.ActiveLinks), int64(s.WormsInFlight),
		s.EpisodesTrue, s.EpisodesFalse, s.MTTDSum, s.MTTDCount,
		s.MTTRSum, s.MTTRCount, int64(s.EpisodesOpen),
	}
}

// WriteSeriesJSONL emits the ring's samples, oldest first, one JSON object
// per line.
func (c *Collector) WriteSeriesJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, s := range c.Samples(nil) {
		if err := enc.Encode(&s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSeriesCSV emits the ring's samples, oldest first, as CSV with a
// header row. Per-dimension columns are dimVCs0..N-1 and dimLinks0..N-1.
func (c *Collector) WriteSeriesCSV(w io.Writer) error {
	if c == nil {
		return nil
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	for i, f := range seriesFields {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(f)
	}
	for d := 0; d < c.dims; d++ {
		fmt.Fprintf(bw, ",dimVCs%d", d)
	}
	for d := 0; d < c.dims; d++ {
		fmt.Fprintf(bw, ",dimLinks%d", d)
	}
	bw.WriteByte('\n')
	for _, s := range c.Samples(nil) {
		vals := s.fixedValues()
		for i, v := range vals {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatInt(v, 10))
		}
		for _, v := range s.DimVCs {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatInt(int64(v), 10))
		}
		for _, v := range s.DimLinks {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatInt(int64(v), 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// DecodeSeries reads a JSONL series written by WriteSeriesJSONL. Errors
// report the 1-based line number of the malformed line.
func DecodeSeries(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Sample
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("metrics: series line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Status is the JSON document served at /status: run identity, cumulative
// counters, and the most recent sample.
type Status struct {
	Detector string           `json:"detector"`
	Window   int64            `json:"windowCycles"`
	Cycles   int64            `json:"cycles"`
	Samples  int              `json:"samples"`
	Counters map[string]int64 `json:"counters"`
	Last     *Sample          `json:"last,omitempty"`
}

// Snapshot assembles a Status document. Nil-safe; returns a zero Status on
// a nil collector.
func (c *Collector) Snapshot() Status {
	if c == nil {
		return Status{}
	}
	st := Status{
		Detector: c.detector,
		Window:   c.window,
		Cycles:   c.counts[MCycles].Value(),
		Counters: make(map[string]int64, int(numMetrics)),
	}
	for m := Metric(0); m < numMetrics; m++ {
		spec := metricSpecs[m]
		key := spec.name
		if spec.labelKey != "" {
			key = fmt.Sprintf("%s{%s=%q}", spec.name, spec.labelKey, spec.labelVal)
		}
		st.Counters[key] = c.counts[m].Value()
	}
	c.mu.Lock()
	st.Samples = c.size
	if c.size > 0 {
		last := c.next - 1
		if last < 0 {
			last += len(c.ring)
		}
		var s Sample
		c.ring[last].copyInto(&s)
		st.Last = &s
	}
	c.mu.Unlock()
	return st
}
