package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	c, _ := meteredCollector(t, 100, 8, 250)
	srv, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, ctype := get(t, base+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ctype)
	}
	if !strings.Contains(body, "wormnet_messages_delivered_total 250") {
		t.Errorf("/metrics missing delivered counter:\n%s", body)
	}
	if !strings.Contains(body, `wormnet_info{detector="test"} 1`) {
		t.Errorf("/metrics missing info metric")
	}

	body, _ = get(t, base+"/status")
	if !strings.Contains(body, `"detector": "test"`) || !strings.Contains(body, `"cycle": 200`) {
		t.Errorf("/status unexpected:\n%s", body)
	}

	body, _ = get(t, base+"/series")
	if got := len(strings.Split(strings.TrimRight(body, "\n"), "\n")); got != 3 {
		t.Errorf("/series returned %d lines, want 3:\n%s", got, body)
	}
	if _, err := DecodeSeries(strings.NewReader(body)); err != nil {
		t.Errorf("/series does not decode: %v", err)
	}

	body, ctype = get(t, base+"/series?format=csv")
	if ctype != "text/csv" {
		t.Errorf("/series?format=csv Content-Type = %q", ctype)
	}
	if !strings.HasPrefix(body, "cycle,") {
		t.Errorf("CSV series missing header:\n%s", body)
	}

	if body, _ = get(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}
