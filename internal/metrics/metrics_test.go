package metrics

import (
	"strings"
	"testing"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 8, 9, 1000} {
		h.Observe(v)
	}
	// v <= bound lands in the first such bucket: {0,1} {2} {3,4} {5,8} {9,1000}.
	want := []int64{2, 1, 2, 2, 2}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d: got %d, want %d", i, got, w)
		}
	}
	if h.Count() != 9 {
		t.Errorf("Count = %d, want 9", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+5+8+9+1000 {
		t.Errorf("Sum = %d", h.Sum())
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted non-ascending bounds")
		}
	}()
	NewHistogram([]int64{1, 4, 4})
}

func TestExpBounds(t *testing.T) {
	got := ExpBounds(16)
	want := []int64{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("ExpBounds(16) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBounds(16) = %v, want %v", got, want)
		}
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x_total", "")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("marks_total", "Marks by verdict.", "verdict", "true").Add(3)
	r.LabeledCounter("marks_total", "Marks by verdict.", "verdict", "false").Add(40)
	r.Gauge("busy", "Busy things.").Set(7)
	h := r.Histogram("lat", "Latency.", []int64{1, 2})
	h.Observe(1)
	h.Observe(2)
	h.Observe(99)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP busy Busy things.
# TYPE busy gauge
busy 7
# HELP lat Latency.
# TYPE lat histogram
lat_bucket{le="1"} 1
lat_bucket{le="2"} 2
lat_bucket{le="+Inf"} 3
lat_sum 102
lat_count 3
# HELP marks_total Marks by verdict.
# TYPE marks_total counter
marks_total{verdict="false"} 40
marks_total{verdict="true"} 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// buildRunRegistry builds a registry shaped like one run's, with the given
// counter value, gauge high-water and one histogram observation.
func buildRunRegistry(c, g, obs int64) *Registry {
	r := NewRegistry()
	r.Counter("events_total", "h").Add(c)
	r.Gauge("depth", "h").Set(g)
	r.Histogram("lat", "h", []int64{4, 16}).Observe(obs)
	return r
}

func TestMergeSemantics(t *testing.T) {
	agg := NewRegistry()
	agg.Merge(buildRunRegistry(10, 3, 2))  // adopted into the empty registry
	agg.Merge(buildRunRegistry(5, 9, 100)) // summed / maxed into the adoptees

	var b strings.Builder
	if err := agg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"events_total 15\n",          // counters sum
		"depth 9\n",                  // gauges keep the high water
		"lat_bucket{le=\"4\"} 1\n",   // histograms sum per bucket
		"lat_bucket{le=\"+Inf\"} 2\n",
		"lat_sum 102\n",
		"lat_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMergeIsCommutative(t *testing.T) {
	runs := []*Registry{
		buildRunRegistry(1, 5, 3),
		buildRunRegistry(100, 2, 17),
		buildRunRegistry(7, 7, 1000),
	}
	render := func(order []int) string {
		agg := NewRegistry()
		for _, i := range order {
			agg.Merge(runs[i])
		}
		var b strings.Builder
		if err := agg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := render([]int{0, 1, 2})
	b := render([]int{2, 0, 1})
	if a != b {
		t.Errorf("merge order changed the aggregate:\n%s\nvs:\n%s", a, b)
	}
}
