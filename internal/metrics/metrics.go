// Package metrics is the simulator's live telemetry layer: a registry of
// monotonic counters, gauges and fixed-bucket histograms that the hot
// simulation path updates without allocating, plus a time-series sampler
// (see collector.go) that snapshots network state into ring-buffered
// per-window series, and an HTTP exporter (see http.go) serving
// Prometheus-text /metrics, /debug/pprof and a JSON /status snapshot while
// a run executes.
//
// Cost contract. Like the flight recorder (internal/trace), a nil
// *Collector is valid everywhere: every hot-path method nil-checks its
// receiver and returns immediately, so an unmetered simulation pays one
// predictable branch per instrumentation site and performs zero
// allocations. With a collector attached, counters and gauges are single
// atomic operations and histogram observations are a bounds walk plus two
// atomic adds — still zero allocations — so scrapers may read concurrently
// with the simulation goroutine.
//
// Metrics are pure observation: they never feed back into simulation
// behavior, so fixed-seed sweep output is byte-identical with metrics on
// or off (CI enforces this).
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram of int64 observations.
// Bucket bounds are set at construction; observation is a linear walk over
// the (small) bound slice plus two atomic adds, with no allocation, so the
// hot path may call Observe freely.
type Histogram struct {
	bounds []int64        // upper bounds (inclusive), ascending
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64
	total  atomic.Int64
}

// NewHistogram builds a histogram with the given ascending inclusive upper
// bounds. An observation v lands in the first bucket with v <= bound, or in
// the implicit overflow bucket.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// ExpBounds returns bounds 1, 2, 4, ... doubling up to and including max.
func ExpBounds(max int64) []int64 {
	var out []int64
	for b := int64(1); b <= max; b *= 2 {
		out = append(out, b)
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the configured upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// BucketCount returns the count of bucket i (i == len(Bounds()) is the
// overflow bucket).
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric (one family member when labeled).
type entry struct {
	name     string // family name, e.g. "wormnet_marks_total"
	help     string
	kind     metricKind
	labelKey string // "" for unlabeled metrics
	labelVal string
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

// sortKey orders family members next to each other, deterministically.
func (e *entry) sortKey() string { return e.name + "\x00" + e.labelKey + "\x00" + e.labelVal }

// Registry holds a set of named metrics and renders them in the Prometheus
// text exposition format. Registration is not hot-path (done once at
// attach time) and is synchronized; reading values is lock-free.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	sorted  bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(e entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, x := range r.entries {
		if x.name == e.name && x.labelKey == e.labelKey && x.labelVal == e.labelVal {
			panic(fmt.Sprintf("metrics: duplicate registration of %s{%s=%q}", e.name, e.labelKey, e.labelVal))
		}
	}
	r.entries = append(r.entries, e)
	r.sorted = false
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(entry{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// LabeledCounter registers one member of a counter family: the metric
// `name{key="val"}`. All members of a family share the name and help.
func (r *Registry) LabeledCounter(name, help, key, val string) *Counter {
	c := &Counter{}
	r.add(entry{name: name, help: help, kind: kindCounter, labelKey: key, labelVal: val, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(entry{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// LabeledGauge registers one member of a gauge family.
func (r *Registry) LabeledGauge(name, help, key, val string) *Gauge {
	g := &Gauge{}
	r.add(entry{name: name, help: help, kind: kindGauge, labelKey: key, labelVal: val, gauge: g})
	return g
}

// Histogram registers and returns a new fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	h := NewHistogram(bounds)
	r.add(entry{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// snapshotEntries returns the entries sorted by (name, label), so exposition
// and merge order are deterministic.
func (r *Registry) snapshotEntries() []entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.sorted {
		sort.Slice(r.entries, func(i, j int) bool {
			return r.entries[i].sortKey() < r.entries[j].sortKey()
		})
		r.sorted = true
	}
	return append([]entry(nil), r.entries...)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name then label, with
// HELP/TYPE headers emitted once per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries := r.snapshotEntries()
	lastFamily := ""
	for _, e := range entries {
		if e.name != lastFamily {
			typ := "counter"
			switch e.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, typ); err != nil {
				return err
			}
			lastFamily = e.name
		}
		if err := writeEntry(w, &e); err != nil {
			return err
		}
	}
	return nil
}

func writeEntry(w io.Writer, e *entry) error {
	label := ""
	if e.labelKey != "" {
		label = fmt.Sprintf("{%s=%q}", e.labelKey, e.labelVal)
	}
	switch e.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", e.name, label, e.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", e.name, label, e.gauge.Value())
		return err
	case kindHistogram:
		h := e.hist
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.BucketCount(i)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, fmt.Sprint(b), cum); err != nil {
				return err
			}
		}
		cum += h.BucketCount(len(h.bounds))
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n", e.name, h.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", e.name, h.Count())
		return err
	}
	return nil
}

// Merge folds other into r: counters and histogram buckets are summed into
// the matching metric (same name, label key and label value); gauges take
// the maximum, treating each run's gauge as a high-water reading. Metrics
// present only in other are adopted (deep-copied), so an empty registry
// accumulates a sweep's schema from its first merge. Matching metrics of
// mismatched kinds are skipped. Both the sums and the max are commutative,
// so merging runs in any order yields identical aggregates (the sweep
// harness relies on this for determinism).
func (r *Registry) Merge(other *Registry) {
	theirs := other.snapshotEntries()
	r.mu.Lock()
	defer r.mu.Unlock()
	byKey := make(map[string]*entry, len(r.entries))
	for i := range r.entries {
		e := &r.entries[i]
		byKey[e.sortKey()] = e
	}
	for i := range theirs {
		t := &theirs[i]
		e, ok := byKey[t.sortKey()]
		if !ok {
			r.adopt(t)
			continue
		}
		if e.kind != t.kind {
			continue
		}
		switch e.kind {
		case kindCounter:
			e.counter.Add(t.counter.Value())
		case kindGauge:
			if v := t.gauge.Value(); v > e.gauge.Value() {
				e.gauge.Set(v)
			}
		case kindHistogram:
			if len(e.hist.bounds) != len(t.hist.bounds) {
				continue
			}
			for b := 0; b <= len(t.hist.bounds); b++ {
				e.hist.counts[b].Add(t.hist.BucketCount(b))
			}
			e.hist.sum.Add(t.hist.Sum())
			e.hist.total.Add(t.hist.Count())
		}
	}
}

// adopt deep-copies a foreign entry into r (caller holds r.mu).
func (r *Registry) adopt(t *entry) {
	ne := entry{name: t.name, help: t.help, kind: t.kind, labelKey: t.labelKey, labelVal: t.labelVal}
	switch t.kind {
	case kindCounter:
		c := &Counter{}
		c.Add(t.counter.Value())
		ne.counter = c
	case kindGauge:
		g := &Gauge{}
		g.Set(t.gauge.Value())
		ne.gauge = g
	case kindHistogram:
		h := NewHistogram(t.hist.bounds)
		for b := 0; b <= len(t.hist.bounds); b++ {
			h.counts[b].Store(t.hist.BucketCount(b))
		}
		h.sum.Store(t.hist.Sum())
		h.total.Store(t.hist.Count())
		ne.hist = h
	}
	r.entries = append(r.entries, ne)
	r.sorted = false
}
