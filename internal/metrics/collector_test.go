package metrics

import (
	"strings"
	"testing"
)

// fakeProber stamps recognizable gauge values, scaled by how often it has
// been probed so adjacent samples differ.
type fakeProber struct{ probes int32 }

func (p *fakeProber) ProbeMetrics(s *Sample) {
	p.probes++
	s.Queued = 10 * p.probes
	s.Blocked = 2
	s.BusyVCs = 5 * p.probes
	s.BusyLinks = 3
	s.IFlags, s.DTFlags, s.GFlags = 1, 2, 3
	s.RecoveryDepth = 4
	s.OracleSet = 1
	for d := range s.DimVCs {
		s.DimVCs[d] = int32(d + 1)
		s.DimLinks[d] = int32(d + 10)
	}
}

func meteredCollector(t *testing.T, window int64, ring int, cycles int64) (*Collector, *fakeProber) {
	t.Helper()
	c := NewCollector(Options{Window: window, Ring: ring})
	c.Attach("test", 2)
	p := &fakeProber{}
	for now := int64(0); now < cycles; now++ {
		c.Inc(MDelivered)
		c.EndCycle(now, p)
	}
	return c, p
}

func TestCollectorSamplesOnWindowBoundaries(t *testing.T) {
	c, p := meteredCollector(t, 100, 64, 1000)
	// Samples at cycles 0, 100, ..., 900.
	if got := c.SampleCount(); got != 10 {
		t.Fatalf("SampleCount = %d, want 10", got)
	}
	if p.probes != 10 {
		t.Fatalf("prober called %d times, want 10", p.probes)
	}
	samples := c.Samples(nil)
	for i, s := range samples {
		if want := int64(i * 100); s.Cycle != want {
			t.Errorf("sample %d at cycle %d, want %d", i, s.Cycle, want)
		}
		if want := int64(i*100) + 1; s.Delivered != want {
			t.Errorf("sample %d: Delivered = %d, want %d", i, s.Delivered, want)
		}
		if want := int32(10 * (i + 1)); s.Queued != want {
			t.Errorf("sample %d: Queued = %d, want %d", i, s.Queued, want)
		}
		if len(s.DimVCs) != 2 || s.DimVCs[1] != 2 || s.DimLinks[1] != 11 {
			t.Errorf("sample %d: per-dim slices wrong: %v %v", i, s.DimVCs, s.DimLinks)
		}
	}
	// Samples are deep copies: mutating one must not affect a re-read.
	samples[0].DimVCs[0] = 99
	if again := c.Samples(nil); again[0].DimVCs[0] == 99 {
		t.Error("Samples returned aliased per-dim slices")
	}
}

func TestCollectorRingOverwritesOldest(t *testing.T) {
	c, _ := meteredCollector(t, 10, 4, 100) // 10 samples into a 4-slot ring
	samples := c.Samples(nil)
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want ring size 4", len(samples))
	}
	for i, want := range []int64{60, 70, 80, 90} {
		if samples[i].Cycle != want {
			t.Errorf("sample %d at cycle %d, want %d (oldest-first)", i, samples[i].Cycle, want)
		}
	}
}

func TestSeriesJSONLRoundTrip(t *testing.T) {
	c, _ := meteredCollector(t, 50, 64, 300)
	var b strings.Builder
	if err := c.WriteSeriesJSONL(&b); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSeries(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	orig := c.Samples(nil)
	if len(decoded) != len(orig) {
		t.Fatalf("decoded %d samples, want %d", len(decoded), len(orig))
	}
	for i := range orig {
		if decoded[i].Cycle != orig[i].Cycle ||
			decoded[i].Delivered != orig[i].Delivered ||
			decoded[i].Queued != orig[i].Queued ||
			len(decoded[i].DimVCs) != len(orig[i].DimVCs) {
			t.Fatalf("sample %d mismatch: %+v vs %+v", i, decoded[i], orig[i])
		}
	}
}

func TestDecodeSeriesReportsLinePosition(t *testing.T) {
	in := `{"cycle":0}
{"cycle":50}
not json
`
	_, err := DecodeSeries(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want mention of line 3", err)
	}
}

func TestSeriesCSVHeader(t *testing.T) {
	c, _ := meteredCollector(t, 100, 8, 200)
	var b strings.Builder
	if err := c.WriteSeriesCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 { // header + 2 samples
		t.Fatalf("got %d CSV lines, want 3:\n%s", len(lines), b.String())
	}
	header := strings.Split(lines[0], ",")
	wantCols := len(seriesFields) + 2*2 // fixed fields + dimVCs0..1 + dimLinks0..1
	if len(header) != wantCols {
		t.Fatalf("header has %d columns, want %d: %v", len(header), wantCols, header)
	}
	if header[0] != "cycle" || header[len(header)-1] != "dimLinks1" {
		t.Fatalf("unexpected header: %v", header)
	}
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != wantCols {
			t.Fatalf("row has %d columns, want %d: %s", got, wantCols, row)
		}
	}
}

func TestSnapshot(t *testing.T) {
	c, _ := meteredCollector(t, 100, 8, 250)
	st := c.Snapshot()
	if st.Detector != "test" {
		t.Errorf("Detector = %q", st.Detector)
	}
	if st.Window != 100 {
		t.Errorf("Window = %d", st.Window)
	}
	if st.Cycles != 250 {
		t.Errorf("Cycles = %d", st.Cycles)
	}
	if st.Samples != 3 {
		t.Errorf("Samples = %d", st.Samples)
	}
	if st.Last == nil || st.Last.Cycle != 200 {
		t.Errorf("Last = %+v, want cycle 200", st.Last)
	}
	if st.Counters["wormnet_messages_delivered_total"] != 250 {
		t.Errorf("delivered counter = %d", st.Counters["wormnet_messages_delivered_total"])
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Inc(MDelivered)
	c.Add(MDeliveredFlits, 5)
	c.ObserveLatency(1)
	c.ObserveDetectDelay(1)
	c.ObserveDetectLatency(1)
	c.EndCycle(0, nil)
	c.SetClassVCs(1, 2, 3)
	c.Attach("x", 3)
	if c.Registry() != nil || c.Window() != 0 || c.Value(MDelivered) != 0 ||
		c.SampleCount() != 0 || c.Samples(nil) != nil {
		t.Error("nil collector accessors returned non-zero values")
	}
	if err := c.WriteSeriesJSONL(nil); err != nil {
		t.Error(err)
	}
	st := c.Snapshot()
	if st.Detector != "" || st.Samples != 0 {
		t.Errorf("nil Snapshot = %+v", st)
	}
}
