package metrics

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a live telemetry endpoint bound to one collector. It serves:
//
//	/metrics      — Prometheus text exposition (version 0.0.4)
//	/status       — JSON Status snapshot (run identity + latest sample)
//	/series       — the sampler ring as JSONL (add ?format=csv for CSV)
//	/debug/pprof/ — the standard runtime profiles
//
// The server runs on its own goroutine and never touches simulation state
// beyond the collector's lock-free counters and mutex-guarded ring, so
// scraping a live run cannot perturb its result.
type Server struct {
	addr string
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts an HTTP exporter for c on addr (e.g. ":9100", or ":0" for an
// ephemeral port). It returns once the listener is bound, so Addr is valid
// immediately.
func Serve(addr string, c *Collector) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		st := c.Snapshot()
		enc.Encode(&st)
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			c.WriteSeriesCSV(w)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		c.WriteSeriesJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.addr }

// Close shuts the exporter down and waits for the serve goroutine to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
