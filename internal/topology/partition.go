package topology

import "fmt"

// Partition splits the node ID space [0, nodes) into contiguous blocks, one
// per shard. Shards are as equal as integer division allows: the first
// nodes%shards shards hold one extra node. Contiguity is what makes sharded
// stepping order-invariant: the canonical serial algorithm visits nodes in
// ascending ID order, so concatenating per-shard results in shard order
// reproduces the exact serial sequence for any shard count.
type Partition struct {
	nodes  int
	shards int
	base   int // minimum block size: nodes / shards
	rem    int // the first rem shards hold base+1 nodes
}

// NewPartition builds a partition of [0, nodes) into shards contiguous
// blocks. It panics unless 1 <= shards <= nodes; callers validate
// user-supplied shard counts before reaching here.
func NewPartition(nodes, shards int) Partition {
	if nodes < 1 {
		panic(fmt.Sprintf("topology: partition of %d nodes", nodes))
	}
	if shards < 1 || shards > nodes {
		panic(fmt.Sprintf("topology: %d shards for %d nodes (want 1..%d)", shards, nodes, nodes))
	}
	return Partition{nodes: nodes, shards: shards, base: nodes / shards, rem: nodes % shards}
}

// Nodes returns the size of the partitioned ID space.
func (p Partition) Nodes() int { return p.nodes }

// Shards returns the number of blocks.
func (p Partition) Shards() int { return p.shards }

// Range returns shard s's half-open node range [lo, hi).
func (p Partition) Range(s int) (lo, hi int) {
	if s < p.rem {
		lo = s * (p.base + 1)
		return lo, lo + p.base + 1
	}
	lo = p.rem*(p.base+1) + (s-p.rem)*p.base
	return lo, lo + p.base
}

// Of returns the shard owning node. O(1): the first rem shards occupy the
// prefix [0, rem*(base+1)), the rest follow in base-sized blocks.
func (p Partition) Of(node int) int {
	split := p.rem * (p.base + 1)
	if node < split {
		return node / (p.base + 1)
	}
	return p.rem + (node-split)/p.base
}

// BoundaryLink identifies one directed network channel that leaves a shard:
// the output channel of Node in direction Dir whose downstream router
// belongs to a different shard. Flits decided across such channels in phase
// A must be committed by the destination shard (or the barrier's serial
// merge) in phase B.
type BoundaryLink struct {
	Node int
	Dir  Direction
}

// Boundary appends shard s's outgoing boundary channels on torus t to buf in
// ascending (node, direction) order and returns the extended slice. The
// ordering is canonical: it matches the order in which the sharded engine's
// phase A scans its routers, so boundary commits replayed from this
// enumeration are deterministic.
func (p Partition) Boundary(t *Torus, s int, buf []BoundaryLink) []BoundaryLink {
	lo, hi := p.Range(s)
	for node := lo; node < hi; node++ {
		for d := 0; d < t.Degree(); d++ {
			if p.Of(t.Neighbor(node, Direction(d))) != s {
				buf = append(buf, BoundaryLink{Node: node, Dir: Direction(d)})
			}
		}
	}
	return buf
}
