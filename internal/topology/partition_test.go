package topology

import "testing"

func TestPartitionCoverageAndBalance(t *testing.T) {
	for _, nodes := range []int{1, 2, 7, 16, 64, 81} {
		for shards := 1; shards <= nodes && shards <= 12; shards++ {
			p := NewPartition(nodes, shards)
			covered := 0
			prevHi := 0
			for s := 0; s < shards; s++ {
				lo, hi := p.Range(s)
				if lo != prevHi {
					t.Fatalf("nodes=%d shards=%d: shard %d starts at %d, want %d (contiguity)",
						nodes, shards, s, lo, prevHi)
				}
				size := hi - lo
				if size != nodes/shards && size != nodes/shards+1 {
					t.Fatalf("nodes=%d shards=%d: shard %d size %d not balanced", nodes, shards, s, size)
				}
				covered += size
				prevHi = hi
			}
			if covered != nodes || prevHi != nodes {
				t.Fatalf("nodes=%d shards=%d: covered %d nodes ending at %d", nodes, shards, covered, prevHi)
			}
		}
	}
}

func TestPartitionOfMatchesRange(t *testing.T) {
	for _, nodes := range []int{1, 5, 16, 60, 128} {
		for shards := 1; shards <= nodes && shards <= 11; shards++ {
			p := NewPartition(nodes, shards)
			for s := 0; s < shards; s++ {
				lo, hi := p.Range(s)
				for node := lo; node < hi; node++ {
					if got := p.Of(node); got != s {
						t.Fatalf("nodes=%d shards=%d: Of(%d)=%d, Range says %d", nodes, shards, node, got, s)
					}
				}
			}
		}
	}
}

func TestPartitionPanicsOnBadShardCount(t *testing.T) {
	for _, shards := range []int{0, -1, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPartition(16, %d) did not panic", shards)
				}
			}()
			NewPartition(16, shards)
		}()
	}
}

// TestPartitionBoundaryBruteForce checks the boundary enumeration against a
// direct scan of every directed network channel on a 4-ary 2-cube.
func TestPartitionBoundaryBruteForce(t *testing.T) {
	tor := New(4, 2)
	for _, shards := range []int{1, 2, 3, 4, 5, 16} {
		p := NewPartition(tor.Nodes(), shards)
		for s := 0; s < shards; s++ {
			var want []BoundaryLink
			for node := 0; node < tor.Nodes(); node++ {
				if p.Of(node) != s {
					continue
				}
				for d := 0; d < tor.Degree(); d++ {
					if p.Of(tor.Neighbor(node, Direction(d))) != s {
						want = append(want, BoundaryLink{Node: node, Dir: Direction(d)})
					}
				}
			}
			got := p.Boundary(tor, s, nil)
			if len(got) != len(want) {
				t.Fatalf("shards=%d shard=%d: %d boundary links, want %d", shards, s, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shards=%d shard=%d: boundary[%d]=%+v, want %+v (canonical order)",
						shards, s, i, got[i], want[i])
				}
			}
		}
		// A single shard has no boundary.
		if shards == 1 {
			if b := p.Boundary(tor, 0, nil); len(b) != 0 {
				t.Fatalf("1 shard has %d boundary links, want 0", len(b))
			}
		}
	}
}
