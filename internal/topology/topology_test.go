package topology

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{1, 3}, {0, 1}, {8, 0}, {-2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.k, tc.n)
				}
			}()
			New(tc.k, tc.n)
		}()
	}
}

func TestSizes(t *testing.T) {
	for _, tc := range []struct{ k, n, nodes, degree int }{
		{8, 3, 512, 6},
		{4, 2, 16, 4},
		{2, 4, 16, 8},
		{3, 3, 27, 6},
		{16, 2, 256, 4},
	} {
		tp := New(tc.k, tc.n)
		if tp.Nodes() != tc.nodes {
			t.Errorf("%d-ary %d-cube: Nodes() = %d, want %d", tc.k, tc.n, tp.Nodes(), tc.nodes)
		}
		if tp.Degree() != tc.degree {
			t.Errorf("%d-ary %d-cube: Degree() = %d, want %d", tc.k, tc.n, tp.Degree(), tc.degree)
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	tp := New(5, 3)
	for id := 0; id < tp.Nodes(); id++ {
		if got := tp.ID(tp.Coord(id)); got != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, got)
		}
	}
}

func TestIDWraps(t *testing.T) {
	tp := New(4, 2)
	if got := tp.ID([]int{5, -1}); got != tp.ID([]int{1, 3}) {
		t.Errorf("wrapped coordinates differ: %d", got)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{8, 3}, {4, 2}, {3, 3}, {2, 3}} {
		tp := New(tc.k, tc.n)
		for id := 0; id < tp.Nodes(); id++ {
			for d := 0; d < tp.Degree(); d++ {
				dir := Direction(d)
				nb := tp.Neighbor(id, dir)
				back := tp.Neighbor(nb, dir.Opposite())
				if back != id {
					t.Fatalf("%d-ary %d-cube: Neighbor(Neighbor(%d,%v),%v) = %d",
						tc.k, tc.n, id, dir, dir.Opposite(), back)
				}
			}
		}
	}
}

func TestNeighborMovesOneHop(t *testing.T) {
	tp := New(8, 3)
	for id := 0; id < tp.Nodes(); id += 7 {
		for d := 0; d < tp.Degree(); d++ {
			nb := tp.Neighbor(id, Direction(d))
			if dist := tp.Distance(id, nb); dist != 1 {
				t.Fatalf("neighbor at distance %d", dist)
			}
		}
	}
}

func TestDistanceMetric(t *testing.T) {
	tp := New(6, 2)
	n := tp.Nodes()
	cfg := &quick.Config{MaxCount: 500}
	// Symmetry and identity.
	if err := quick.Check(func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw)%n, int(bRaw)%n
		if tp.Distance(a, a) != 0 {
			return false
		}
		return tp.Distance(a, b) == tp.Distance(b, a)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Triangle inequality.
	if err := quick.Check(func(aRaw, bRaw, cRaw uint16) bool {
		a, b, c := int(aRaw)%n, int(bRaw)%n, int(cRaw)%n
		return tp.Distance(a, c) <= tp.Distance(a, b)+tp.Distance(b, c)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestDistanceKnownValues(t *testing.T) {
	tp := New(8, 3)
	a := tp.ID([]int{0, 0, 0})
	for _, tc := range []struct {
		coord []int
		want  int
	}{
		{[]int{1, 0, 0}, 1},
		{[]int{7, 0, 0}, 1},  // wraps around
		{[]int{4, 0, 0}, 4},  // exactly half way
		{[]int{5, 0, 0}, 3},  // shorter the other way
		{[]int{4, 4, 4}, 12}, // maximum distance
		{[]int{3, 2, 1}, 6},
	} {
		b := tp.ID(tc.coord)
		if got := tp.Distance(a, b); got != tc.want {
			t.Errorf("Distance(0,%v) = %d, want %d", tc.coord, got, tc.want)
		}
	}
}

// TestMinimalDirectionsProgress: every direction offered strictly reduces
// distance, and at least one direction is offered unless already at the
// destination.
func TestMinimalDirectionsProgress(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{8, 3}, {4, 2}, {5, 2}, {2, 3}} {
		tp := New(tc.k, tc.n)
		nodes := tp.Nodes()
		if err := quick.Check(func(aRaw, bRaw uint16) bool {
			a, b := int(aRaw)%nodes, int(bRaw)%nodes
			dirs := tp.MinimalDirections(a, b, nil)
			if a == b {
				return len(dirs) == 0
			}
			if len(dirs) == 0 {
				return false
			}
			d := tp.Distance(a, b)
			for _, dir := range dirs {
				if tp.Distance(tp.Neighbor(a, dir), b) != d-1 {
					return false
				}
			}
			return true
		}, &quick.Config{MaxCount: 1000}); err != nil {
			t.Errorf("%d-ary %d-cube: %v", tc.k, tc.n, err)
		}
	}
}

// TestMinimalDirectionsComplete: every neighbor that strictly reduces the
// distance is offered.
func TestMinimalDirectionsComplete(t *testing.T) {
	tp := New(8, 3)
	nodes := tp.Nodes()
	if err := quick.Check(func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw)%nodes, int(bRaw)%nodes
		dirs := tp.MinimalDirections(a, b, nil)
		offered := map[Direction]bool{}
		for _, d := range dirs {
			offered[d] = true
		}
		d := tp.Distance(a, b)
		for dd := 0; dd < tp.Degree(); dd++ {
			dir := Direction(dd)
			reduces := tp.Distance(tp.Neighbor(a, dir), b) == d-1
			if reduces != offered[dir] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMinimalDirectionsHalfway(t *testing.T) {
	tp := New(8, 1)
	dirs := tp.MinimalDirections(0, 4, nil)
	if len(dirs) != 2 {
		t.Fatalf("halfway displacement offered %v, want both directions", dirs)
	}
}

func TestDirectionAlgebra(t *testing.T) {
	for d := 0; d < 8; d++ {
		dir := Direction(d)
		if dir.Opposite().Opposite() != dir {
			t.Errorf("double opposite of %v", dir)
		}
		if dir.Opposite().Dim() != dir.Dim() {
			t.Errorf("opposite changes dimension for %v", dir)
		}
		if dir.Negative() == dir.Opposite().Negative() {
			t.Errorf("opposite keeps sign for %v", dir)
		}
	}
	if Direction(0).String() != "X+" || Direction(5).String() != "Z-" {
		t.Errorf("direction names: %v %v", Direction(0), Direction(5))
	}
	if Direction(8).String() != "D4+" {
		t.Errorf("high dimension name: %v", Direction(8))
	}
}

func TestAverageDistance(t *testing.T) {
	// 4-ary 1-cube: distances from 0 are 1,2,1 -> average 4/3.
	tp := New(4, 1)
	if got, want := tp.AverageDistance(), 4.0/3.0; got != want {
		t.Errorf("AverageDistance = %v, want %v", got, want)
	}
	// k-ary n-cube average distance is about n*k/4 for even k.
	tp = New(8, 3)
	if got := tp.AverageDistance(); got < 5.5 || got > 6.5 {
		t.Errorf("8-ary 3-cube AverageDistance = %v, want about 6", got)
	}
}

func TestString(t *testing.T) {
	if got := New(8, 3).String(); got != "8-ary 3-cube (512 nodes)" {
		t.Errorf("String() = %q", got)
	}
}

func TestBisectionLinks(t *testing.T) {
	if got := New(8, 3).BisectionLinks(); got != 256 {
		t.Errorf("8-ary 3-cube BisectionLinks = %d, want 256", got)
	}
	if got := New(3, 2).BisectionLinks(); got != 0 {
		t.Errorf("odd radix BisectionLinks = %d, want 0", got)
	}
}

func BenchmarkMinimalDirections(b *testing.B) {
	tp := New(8, 3)
	var buf [8]Direction
	for i := 0; i < b.N; i++ {
		_ = tp.MinimalDirections(i%512, (i*37+11)%512, buf[:0])
	}
}

func BenchmarkDistance(b *testing.B) {
	tp := New(8, 3)
	for i := 0; i < b.N; i++ {
		_ = tp.Distance(i%512, (i*37+11)%512)
	}
}
