// Package topology models k-ary n-cube interconnection networks
// (bidirectional tori), the substrate evaluated in the paper: a
// bidirectional 8-ary 3-cube with 512 nodes.
//
// Nodes are identified by a dense integer ID in [0, N) and, equivalently,
// by an n-digit radix-k coordinate vector. Each node has 2n network
// directions (one positive and one negative per dimension); when k == 2 the
// positive and negative neighbors coincide and only the positive direction
// is used, yielding a hypercube.
package topology

import (
	"fmt"
	"strings"
)

// Direction identifies one of the 2n network directions of a node.
// Directions are numbered dim*2 for the positive ("+") direction of a
// dimension and dim*2+1 for the negative ("-") direction.
type Direction int

// Dim returns the dimension this direction travels along.
func (d Direction) Dim() int { return int(d) / 2 }

// Negative reports whether the direction decreases the coordinate.
func (d Direction) Negative() bool { return int(d)%2 == 1 }

// Opposite returns the direction that undoes d.
func (d Direction) Opposite() Direction { return d ^ 1 }

// String formats the direction as, e.g., "X+", "Y-", "D3+".
func (d Direction) String() string {
	names := []string{"X", "Y", "Z", "W"}
	dim := d.Dim()
	name := fmt.Sprintf("D%d", dim)
	if dim < len(names) {
		name = names[dim]
	}
	if d.Negative() {
		return name + "-"
	}
	return name + "+"
}

// Torus is a k-ary n-cube with bidirectional links.
type Torus struct {
	k int // radix: nodes per dimension
	n int // number of dimensions
	// nodes = k^n, precomputed.
	nodes int
	// strides[d] = k^d, used to convert between IDs and coordinates.
	strides []int
	// neighbor[id*2n + dir] caches neighbor IDs.
	neighbor []int32
}

// New constructs a k-ary n-cube. It panics if k < 2, n < 1, or the node
// count overflows int32 (the simulator stores node IDs as int32).
func New(k, n int) *Torus {
	if k < 2 {
		panic("topology: radix k must be at least 2")
	}
	if n < 1 {
		panic("topology: dimension n must be at least 1")
	}
	nodes := 1
	strides := make([]int, n)
	for d := 0; d < n; d++ {
		strides[d] = nodes
		nodes *= k
		if nodes > 1<<30 {
			panic("topology: network too large")
		}
	}
	t := &Torus{k: k, n: n, nodes: nodes, strides: strides}
	t.neighbor = make([]int32, nodes*2*n)
	coord := make([]int, n)
	for id := 0; id < nodes; id++ {
		t.coordsInto(id, coord)
		for d := 0; d < n; d++ {
			up := coord[d] + 1
			if up == k {
				up = 0
			}
			down := coord[d] - 1
			if down < 0 {
				down = k - 1
			}
			base := id*2*n + d*2
			t.neighbor[base] = int32(id + (up-coord[d])*strides[d])
			t.neighbor[base+1] = int32(id + (down-coord[d])*strides[d])
		}
	}
	return t
}

// K returns the radix (nodes per dimension).
func (t *Torus) K() int { return t.k }

// N returns the number of dimensions.
func (t *Torus) N() int { return t.n }

// Nodes returns the total number of nodes, k^n.
func (t *Torus) Nodes() int { return t.nodes }

// Degree returns the number of network directions per node, 2n.
func (t *Torus) Degree() int { return 2 * t.n }

// Coord returns the coordinate vector of node id.
func (t *Torus) Coord(id int) []int {
	c := make([]int, t.n)
	t.coordsInto(id, c)
	return c
}

func (t *Torus) coordsInto(id int, c []int) {
	for d := 0; d < t.n; d++ {
		c[d] = (id / t.strides[d]) % t.k
	}
}

// ID returns the node ID of the coordinate vector c. Coordinates are taken
// modulo k, so out-of-range values wrap around the torus.
func (t *Torus) ID(c []int) int {
	if len(c) != t.n {
		panic("topology: coordinate dimension mismatch")
	}
	id := 0
	for d := 0; d < t.n; d++ {
		x := c[d] % t.k
		if x < 0 {
			x += t.k
		}
		id += x * t.strides[d]
	}
	return id
}

// Neighbor returns the node adjacent to id in direction dir.
func (t *Torus) Neighbor(id int, dir Direction) int {
	return int(t.neighbor[id*2*t.n+int(dir)])
}

// delta returns the signed minimal displacement from a to b along one
// dimension, in the range (-k/2, k/2]. A positive value means the "+"
// direction is minimal; when k is even and the displacement is exactly k/2
// both directions are minimal and delta returns +k/2 (MinimalDirections
// handles the tie by offering both).
func (t *Torus) delta(a, b, dim int) int {
	d := (b - a) % t.k
	if d < 0 {
		d += t.k
	}
	if 2*d > t.k {
		d -= t.k
	}
	return d
}

// Distance returns the minimal hop count between nodes a and b.
func (t *Torus) Distance(a, b int) int {
	dist := 0
	for dim := 0; dim < t.n; dim++ {
		ca := (a / t.strides[dim]) % t.k
		cb := (b / t.strides[dim]) % t.k
		d := t.delta(ca, cb, dim)
		if d < 0 {
			d = -d
		}
		dist += d
	}
	return dist
}

// MinimalDirections appends to buf every direction that moves a packet at
// cur strictly closer to dst on a minimal path, and returns the extended
// slice. When the remaining displacement along a dimension is exactly k/2
// (k even) both directions of that dimension are minimal and both are
// offered — this is what gives true fully adaptive routing its flexibility
// on tori. The result is empty iff cur == dst.
func (t *Torus) MinimalDirections(cur, dst int, buf []Direction) []Direction {
	for dim := 0; dim < t.n; dim++ {
		cc := (cur / t.strides[dim]) % t.k
		cd := (dst / t.strides[dim]) % t.k
		d := t.delta(cc, cd, dim)
		switch {
		case d == 0:
			// Aligned in this dimension.
		case 2*d == t.k:
			// Exactly halfway around: both directions are minimal.
			buf = append(buf, Direction(dim*2), Direction(dim*2+1))
		case d > 0:
			buf = append(buf, Direction(dim*2))
		default:
			buf = append(buf, Direction(dim*2+1))
		}
	}
	return buf
}

// String describes the topology, e.g. "8-ary 3-cube (512 nodes)".
func (t *Torus) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d-ary %d-cube (%d nodes)", t.k, t.n, t.nodes)
	return b.String()
}

// AverageDistance returns the mean minimal hop count over all ordered pairs
// of distinct nodes. It is used to size workloads and sanity-check
// saturation estimates in the experiment harness.
func (t *Torus) AverageDistance() float64 {
	// Distance is translation invariant on a torus: average distance from
	// node 0 to all others equals the global average.
	total := 0
	for b := 1; b < t.nodes; b++ {
		total += t.Distance(0, b)
	}
	return float64(total) / float64(t.nodes-1)
}

// BisectionLinks returns the number of unidirectional links crossing the
// bisection of the highest dimension. For k even this is 2 * k^(n-1) * 2
// (two wrap surfaces, both directions); it is a coarse capacity metric used
// only for reporting.
func (t *Torus) BisectionLinks() int {
	if t.k%2 != 0 {
		return 0
	}
	links := 1
	for d := 0; d < t.n-1; d++ {
		links *= t.k
	}
	return 4 * links
}
