// Package recovery implements the deadlock recovery mechanisms that
// consume the detection verdicts.
//
// The paper pairs its detection mechanism with the software-based
// *progressive* recovery of Martínez et al. (ICPP 1997): a message marked
// as deadlocked is absorbed by the local node at the router holding its
// header — as if that node were its destination — which releases the
// virtual channels the worm holds (breaking the cycle) and the message is
// later re-injected toward its real destination. A *regressive*
// (abort-and-retry) alternative kills the worm outright, releasing all its
// buffers at once, and re-injects it at the original source.
package recovery

import (
	"fmt"

	"wormnet/internal/router"
)

// Style selects the recovery discipline.
type Style uint8

// Recovery styles.
const (
	// Progressive absorbs the marked message at the node holding its
	// header (1 flit/cycle through the node's recovery port) and re-injects
	// it there.
	Progressive Style = iota
	// Regressive kills the marked message, releasing every buffer it
	// holds, and re-injects it at its original source.
	Regressive
)

func (s Style) String() string {
	switch s {
	case Progressive:
		return "progressive"
	case Regressive:
		return "regressive"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Hooks let the recovery engine report resource releases and completed
// recoveries to its owner (the simulation engine).
type Hooks struct {
	// VCFreed is called for the physical channel of every virtual channel
	// the recovery releases, so detection flow-control state stays honest.
	VCFreed func(router.LinkID)
	// Recovered is called when a message has been fully removed from the
	// fabric: node is where it must be re-injected from (the absorbing node
	// for progressive recovery, the original source for regressive). If
	// node equals the message's destination the owner should count it as
	// delivered instead of re-injecting.
	Recovered func(m *router.Message, node int)
}

// Engine drains marked messages out of the fabric.
type Engine struct {
	f     *router.Fabric
	style Style
	hooks Hooks
	// active holds messages undergoing progressive absorption.
	active []router.MsgID
	// absorbedFlits counts flits consumed through absorption ports over the
	// whole run (telemetry; never feeds back into recovery decisions).
	absorbedFlits int64
}

// New builds a recovery engine over fabric f.
func New(f *router.Fabric, style Style, hooks Hooks) *Engine {
	if hooks.VCFreed == nil {
		hooks.VCFreed = func(router.LinkID) {}
	}
	if hooks.Recovered == nil {
		panic("recovery: Recovered hook is required")
	}
	return &Engine{f: f, style: style, hooks: hooks}
}

// Style returns the configured recovery discipline.
func (e *Engine) Style() Style { return e.style }

// Active returns the number of messages currently being absorbed.
func (e *Engine) Active() int { return len(e.active) }

// AppendActive appends the IDs of the messages currently being absorbed, in
// absorption-list order, as two little-endian bytes each. The model checker
// folds this into its state encoding: the list's order only affects hook
// call order, but its membership decides which worms drain each cycle.
func (e *Engine) AppendActive(buf []byte) []byte {
	for _, id := range e.active {
		buf = append(buf, byte(id), byte(id>>8))
	}
	return buf
}

// AbsorbedFlits returns the cumulative number of flits consumed through
// absorption ports (progressive recovery only).
func (e *Engine) AbsorbedFlits() int64 { return e.absorbedFlits }

// Mark begins recovery of message m, which a detection mechanism has just
// declared deadlocked.
func (e *Engine) Mark(m *router.Message, now int64) {
	m.Marked = true
	m.MarkTime = now
	switch e.style {
	case Progressive:
		m.Phase = router.PhaseRecovering
		e.active = append(e.active, m.ID)
	case Regressive:
		src := int(m.Src)
		for _, vc := range e.f.ReleaseWorm(m) {
			e.hooks.VCFreed(e.f.LinkOfVC(vc))
		}
		m.Phase = router.PhaseAborted
		e.hooks.Recovered(m, src)
	}
}

// Step advances progressive absorption by one cycle: each recovering
// message's node consumes one flit from the virtual channel holding the
// worm's front. Upstream flits keep flowing toward that buffer through the
// normal transfer pipeline, so the whole worm drains and its channels are
// released as the tail passes.
func (e *Engine) Step() {
	kept := e.active[:0]
	for _, id := range e.active {
		m := e.f.Msg(id)
		if !e.absorbOne(m) {
			kept = append(kept, id)
		}
	}
	e.active = kept
}

// absorbOne consumes at most one flit of m and reports whether the message
// has been fully absorbed.
func (e *Engine) absorbOne(m *router.Message) bool {
	head := m.HeadVC
	if head == router.NilVC {
		panic("recovery: absorbing message without a head VC")
	}
	vc := &e.f.VCs[head]
	if vc.Flits == 0 {
		// Waiting for upstream flits to arrive.
		return false
	}
	tail := vc.HasTail && vc.Flits == 1
	vc.Flits--
	m.Consumed++
	e.absorbedFlits++
	if vc.HasHeader {
		vc.HasHeader = false
	}
	if !tail {
		return false
	}
	// The tail has been absorbed; the front buffer is the last resource.
	link := vc.Link
	e.f.ReleaseEmptyVC(head)
	node := e.f.RouterOf(link)
	m.HeadVC = router.NilVC
	m.TailVC = router.NilVC
	e.hooks.VCFreed(link)
	e.hooks.Recovered(m, node)
	return true
}
