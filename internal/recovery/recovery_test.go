package recovery

import (
	"testing"

	"wormnet/internal/router"
	"wormnet/internal/topology"
)

func ringFabric(t *testing.T) *router.Fabric {
	t.Helper()
	f, err := router.NewFabric(topology.New(8, 1),
		router.Config{VCsPerLink: 1, BufFlits: 4, InjPorts: 1, DelPorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// buildWorm lays a message across the given ring channels with the header
// in the last one, distributing flits flitsPerVC to each and placing the
// tail bit in the first.
func buildWorm(t *testing.T, f *router.Fabric, links []router.LinkID, flitsPerVC int32) *router.Message {
	t.Helper()
	total := int32(len(links)) * flitsPerVC
	m := f.NewMessage(int(f.Links[links[0]].Src), int(f.Links[links[len(links)-1]].Dst), int(total), 0)
	m.Phase = router.PhaseNetwork
	prev := router.NilVC
	for _, l := range links {
		vc := f.FreeVC(l)
		f.Allocate(m, prev, vc)
		f.VCs[vc].Flits = flitsPerVC
		prev = vc
	}
	m.HeadVC = prev
	f.VCs[prev].HasHeader = true
	f.VCs[f.Links[links[0]].FirstVC].HasTail = true
	m.Injected = total
	return m
}

type recording struct {
	freed     []router.LinkID
	recovered []int // node of each Recovered callback
	last      *router.Message
}

func (r *recording) hooks() Hooks {
	return Hooks{
		VCFreed: func(l router.LinkID) { r.freed = append(r.freed, l) },
		Recovered: func(m *router.Message, node int) {
			r.recovered = append(r.recovered, node)
			r.last = m
		},
	}
}

func TestRegressiveReleasesEverything(t *testing.T) {
	f := ringFabric(t)
	rec := &recording{}
	e := New(f, Regressive, rec.hooks())
	links := []router.LinkID{f.NetLink(0, 0), f.NetLink(1, 0), f.NetLink(2, 0)}
	m := buildWorm(t, f, links, 2)

	e.Mark(m, 100)
	if !m.Marked || m.MarkTime != 100 || m.Phase != router.PhaseAborted {
		t.Fatalf("message state after mark: %+v", m)
	}
	if len(rec.freed) != 3 {
		t.Fatalf("freed %d channels, want 3", len(rec.freed))
	}
	if len(rec.recovered) != 1 || rec.recovered[0] != int(m.Src) {
		t.Fatalf("recovered at %v, want source %d", rec.recovered, m.Src)
	}
	for _, l := range links {
		if f.BusyVCs(l) != 0 {
			t.Fatalf("link %d still busy", l)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProgressiveAbsorbsWholeWorm(t *testing.T) {
	f := ringFabric(t)
	rec := &recording{}
	e := New(f, Progressive, rec.hooks())
	links := []router.LinkID{f.NetLink(0, 0), f.NetLink(1, 0)}
	m := buildWorm(t, f, links, 2) // 4 flits total, header at node 2

	e.Mark(m, 50)
	if m.Phase != router.PhaseRecovering {
		t.Fatalf("phase %v", m.Phase)
	}
	if e.Active() != 1 {
		t.Fatalf("active %d", e.Active())
	}

	// The head VC holds 2 flits; absorb them.
	e.Step()
	e.Step()
	if m.Consumed != 2 {
		t.Fatalf("consumed %d, want 2", m.Consumed)
	}
	// Head buffer now empty; upstream flits have not moved (no engine in
	// this test): Step must idle without error.
	e.Step()
	if m.Consumed != 2 {
		t.Fatal("absorbed a non-existent flit")
	}

	// Simulate the transfer stage forwarding the remaining two flits
	// (including the tail) into the head VC.
	headLink := links[1]
	tailVC := f.Links[links[0]].FirstVC
	f.MoveFlit(tailVC)
	f.MoveFlit(tailVC) // tail passes; upstream VC freed by the fabric
	if f.BusyVCs(links[0]) != 0 {
		t.Fatal("upstream VC not released by tail passage")
	}

	e.Step()
	e.Step()
	if m.Consumed != 4 {
		t.Fatalf("consumed %d, want 4", m.Consumed)
	}
	if e.Active() != 0 {
		t.Fatal("still active after full absorption")
	}
	if f.BusyVCs(headLink) != 0 {
		t.Fatal("head VC not released")
	}
	// Recovered at the node that held the header.
	if len(rec.recovered) != 1 || rec.recovered[0] != f.RouterOf(headLink) {
		t.Fatalf("recovered at %v, want %d", rec.recovered, f.RouterOf(headLink))
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProgressiveSingleChannelWorm(t *testing.T) {
	f := ringFabric(t)
	rec := &recording{}
	e := New(f, Progressive, rec.hooks())
	m := buildWorm(t, f, []router.LinkID{f.NetLink(3, 0)}, 3)

	e.Mark(m, 0)
	for i := 0; i < 3; i++ {
		e.Step()
	}
	if m.Consumed != 3 || e.Active() != 0 {
		t.Fatalf("consumed=%d active=%d", m.Consumed, e.Active())
	}
	if rec.recovered[0] != 4 {
		t.Fatalf("recovered at node %d, want 4", rec.recovered[0])
	}
}

func TestHooksValidation(t *testing.T) {
	f := ringFabric(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without Recovered hook")
		}
	}()
	New(f, Progressive, Hooks{})
}

func TestStyleString(t *testing.T) {
	if Progressive.String() != "progressive" || Regressive.String() != "regressive" {
		t.Error("style names")
	}
	if Style(9).String() == "" {
		t.Error("unknown style empty")
	}
}

func TestVCFreedDefaultHook(t *testing.T) {
	f := ringFabric(t)
	called := false
	e := New(f, Regressive, Hooks{Recovered: func(*router.Message, int) { called = true }})
	m := buildWorm(t, f, []router.LinkID{f.NetLink(0, 0)}, 1)
	e.Mark(m, 0) // must not panic despite nil VCFreed
	if !called {
		t.Fatal("Recovered hook not called")
	}
}
