package detect_test

import (
	"math"
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/router"
)

// The timeout heuristics share one contract: strictly greater than the
// threshold marks, exactly at the threshold does not (`now - stamp >
// Threshold`). These tables pin the boundary on both sides of every
// mechanism, including at cycle counts near the top of int64 where a
// careless reformulation (`now > stamp + Threshold`) would overflow and
// flip the verdict.

const bigCycle = math.MaxInt64 - 7 // near-overflow 'now'; stamp+threshold stays representable only via subtraction

func TestSourceAgeTimeoutBoundary(t *testing.T) {
	cases := []struct {
		name       string
		threshold  int64
		injectTime int64
		now        int64
		want       bool
	}{
		{"below", 100, 50, 149, false},
		{"exactly at threshold", 100, 50, 150, false},
		{"one past threshold", 100, 50, 151, true},
		{"threshold one, equal", 1, 0, 1, false},
		{"threshold one, past", 1, 0, 2, true},
		{"zero age", 100, 500, 500, false},
		{"huge cycle, at threshold", 1 << 40, bigCycle - (1 << 40), bigCycle, false},
		{"huge cycle, past threshold", 1 << 40, bigCycle - (1 << 40) - 1, bigCycle, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := detect.NewSourceAgeTimeout(tc.threshold)
			m := &router.Message{InjectTime: tc.injectTime}
			if got := d.RouteFailed(m, 0, nil, false, tc.now); got != tc.want {
				t.Fatalf("th=%d inject=%d now=%d: marked=%v, want %v",
					tc.threshold, tc.injectTime, tc.now, got, tc.want)
			}
		})
	}
}

func TestSourceStallTimeoutBoundary(t *testing.T) {
	cases := []struct {
		name             string
		threshold        int64
		lastSourceFlit   int64
		now              int64
		injected, length int32
		want             bool
	}{
		{"below", 50, 100, 149, 8, 16, false},
		{"exactly at threshold", 50, 100, 150, 8, 16, false},
		{"one past threshold", 50, 100, 151, 8, 16, true},
		{"fully injected, far past", 50, 100, 1 << 30, 16, 16, false},
		{"over-injected, far past", 50, 100, 1 << 30, 17, 16, false},
		{"one flit short, past", 50, 100, 151, 15, 16, true},
		{"huge cycle, at threshold", 1 << 40, bigCycle - (1 << 40), bigCycle, 1, 16, false},
		{"huge cycle, past threshold", 1 << 40, bigCycle - (1 << 40) - 1, bigCycle, 1, 16, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := detect.NewSourceStallTimeout(tc.threshold)
			m := &router.Message{
				Length:         tc.length,
				Injected:       tc.injected,
				LastSourceFlit: tc.lastSourceFlit,
			}
			if got := d.RouteFailed(m, 0, nil, false, tc.now); got != tc.want {
				t.Fatalf("th=%d stall=%d now=%d inj=%d/%d: marked=%v, want %v",
					tc.threshold, tc.lastSourceFlit, tc.now, tc.injected, tc.length, got, tc.want)
			}
		})
	}
}

func TestHeaderBlockTimeoutBoundary(t *testing.T) {
	cases := []struct {
		name         string
		threshold    int64
		blockedSince int64
		now          int64
		first        bool
		want         bool
	}{
		{"below", 30, 100, 129, false, false},
		{"exactly at threshold", 30, 100, 130, false, false},
		{"one past threshold", 30, 100, 131, false, true},
		{"first attempt never marks", 30, 100, 1 << 30, true, false},
		{"threshold zero, same cycle", 0, 100, 100, false, false},
		{"threshold zero, next cycle", 0, 100, 101, false, true},
		{"huge cycle, at threshold", 1 << 40, bigCycle - (1 << 40), bigCycle, false, false},
		{"huge cycle, past threshold", 1 << 40, bigCycle - (1 << 40) - 1, bigCycle, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := detect.NewHeaderBlockTimeout(tc.threshold)
			m := &router.Message{BlockedSince: tc.blockedSince}
			if got := d.RouteFailed(m, 0, nil, tc.first, tc.now); got != tc.want {
				t.Fatalf("th=%d blocked=%d now=%d first=%v: marked=%v, want %v",
					tc.threshold, tc.blockedSince, tc.now, tc.first, got, tc.want)
			}
		})
	}
}
