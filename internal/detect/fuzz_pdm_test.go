package detect

import (
	"testing"

	"wormnet/internal/router"
	"wormnet/internal/topology"
)

// FuzzPDMFlags drives PDM's per-channel counter/flag hardware (paper Figure
// 1) with an arbitrary interleaving of the events the engine can deliver —
// VC allocations and worm releases, routing attempts and end-of-cycle
// transmission bitmaps — and asserts that it never panics and that its state
// stays legal:
//
//   - the cached IF-occupancy count equals the number of set flags;
//   - a set flag implies a counter strictly past the threshold (flag and
//     counter reset together on transmission, and the flag is only set by a
//     counter crossing it);
//   - counters never go negative, and a transmitted channel leaves EndCycle
//     with a zero counter and a clear flag;
//   - RouteFailed presumes deadlock exactly when every feasible output has
//     its flag set.
//
// The byte stream is an op-code program with the same shape as
// FuzzNDMFlags; the shared corpus seeds under testdata (sampled from the
// model checker's frontier states, see `make conformance-fuzz-seeds`) are
// valid programs for both harnesses.
func FuzzPDMFlags(f *testing.F) {
	f.Add([]byte{0, 3, 0, 5, 1, 9, 2, 4})
	f.Add([]byte{1, 4, 0, 1, 0, 2, 4, 0, 4, 3, 4, 7, 4, 1})
	f.Add([]byte{0, 8, 0, 0, 1, 0, 2, 1, 3, 2, 4, 3, 5, 0, 1})
	f.Add([]byte{0, 1, 0, 9, 0, 17, 1, 9, 127, 3, 4, 0, 4, 0, 4, 0, 4, 0, 4, 0, 2, 9, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		threshold := int64(data[1]%8) + 1
		data = data[2:]

		topo := topology.New(3, 2)
		rcfg := router.DefaultConfig()
		rcfg.VCsPerLink = 2
		fab, err := router.NewFabric(topo, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		d := NewPDM(fab, threshold)

		nLinks := fab.NumLinks()
		nNodes := topo.Nodes()
		transmitted := make([]bool, nLinks)
		var txLinks []router.LinkID
		var live []*router.Message
		outsBuf := make([]router.LinkID, 0, 4)
		probe := fab.NewMessage(0, nNodes-1, 4, 0)
		now := int64(0)

		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		link := func() router.LinkID { return router.LinkID(int(next()) % nLinks) }

		for pos < len(data) {
			switch next() % 6 {
			case 0: // occupy a VC with a blocked single-flit worm
				l := link()
				vc := fab.FreeVC(l)
				if vc == router.NilVC {
					break
				}
				m := fab.NewMessage(0, int(next())%nNodes, 1, now)
				fab.Allocate(m, router.NilVC, vc)
				m.HeadVC, m.Phase = vc, router.PhaseNetwork
				fab.VCs[vc].Flits = 1
				fab.VCs[vc].HasHeader = true
				fab.VCs[vc].HasTail = true
				live = append(live, m)
			case 1: // release a worm, firing the flow-control event
				if len(live) == 0 {
					break
				}
				i := int(next()) % len(live)
				m := live[i]
				for _, vc := range fab.ReleaseWorm(m) {
					d.VCFreed(fab.LinkOfVC(vc))
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case 2: // failed routing attempt: verdict must match the flags
				in := link()
				outsBuf = outsBuf[:0]
				for i := int(next())%4 + 1; i > 0; i-- {
					outsBuf = append(outsBuf, link())
				}
				allSet := true
				for _, o := range outsBuf {
					if !d.InactivitySet(o) {
						allSet = false
						break
					}
				}
				first := next()&1 == 0
				if got := d.RouteFailed(probe, in, outsBuf, first, now); got != allSet {
					t.Fatalf("RouteFailed = %v with all-flags-set = %v", got, allSet)
				}
			case 3: // successful routing (a no-op for PDM; must not panic)
				d.RouteSucceeded(probe, link())
			case 4: // end of cycle with an arbitrary transmission bitmap
				txLinks = txLinks[:0]
				for i := range transmitted {
					transmitted[i] = false
				}
				for i := int(next()) % 8; i > 0; i-- {
					l := link()
					if !transmitted[l] {
						transmitted[l] = true
						txLinks = append(txLinks, l)
					}
				}
				d.EndCycle(now, txLinks, transmitted)
				now++
				for _, l := range txLinks {
					if d.counter[l] != 0 || d.ifFlag[l] {
						t.Fatalf("link %d transmitted yet counter=%d flag=%v after EndCycle",
							l, d.counter[l], d.ifFlag[l])
					}
				}
			case 5: // flow-control event on an arbitrary channel
				d.VCFreed(link())
			}

			// Flag/counter invariants, checked after every event.
			ifSet := 0
			for l := 0; l < nLinks; l++ {
				if d.ifFlag[l] {
					ifSet++
					if d.counter[l] <= d.Threshold {
						t.Fatalf("link %d: IF set with counter %d <= threshold %d",
							l, d.counter[l], d.Threshold)
					}
				}
				if d.counter[l] < 0 {
					t.Fatalf("link %d: negative counter %d", l, d.counter[l])
				}
			}
			if ifSet != d.DTCount() {
				t.Fatalf("IF occupancy cache %d != %d set flags", d.DTCount(), ifSet)
			}
		}
	})
}
