// Package detect implements the distributed deadlock detection mechanisms
// compared in the paper:
//
//   - NDM — the paper's contribution (Section 3): per-output-channel
//     inactivity counters with two thresholds (t1 setting the I flag, t2
//     setting the DT flag) plus a per-input-channel Generate/Propagate flag
//     that confines detection to the message waiting on the root of the
//     tree of blocked messages.
//   - PDM — the previous mechanism (Section 2, from Martínez et al.
//     ICPP'97): a single per-output-channel inactivity threshold; a blocked
//     message is marked when every feasible output channel has been
//     inactive past the threshold.
//   - Crude timeouts — source-age (Reeves et al.), source-stall
//     (compressionless routing, Kim/Liu/Chien) and header-blocked (Disha)
//     heuristics, for baseline comparison.
//
// All mechanisms are distributed and use only information local to one
// router, as the paper requires. The simulation engine feeds them routing
// and flow-control events and a per-cycle transmission bitmap.
package detect

import (
	"wormnet/internal/router"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

// Detector observes one simulated network and decides which blocked
// messages to mark as deadlocked. Implementations are not safe for
// concurrent use; each Engine owns one Detector.
type Detector interface {
	// Name identifies the mechanism in reports (e.g. "ndm(t2=32)").
	Name() string

	// RouteFailed is invoked when message m's header fails a routing
	// attempt at the router reached through input channel in. outs lists
	// the feasible output physical channels (all of whose virtual channels
	// are necessarily busy, or routing would have succeeded). first is true
	// on the first failed attempt since the header arrived at this router.
	// It returns true if the mechanism marks m as deadlocked, which
	// triggers recovery.
	RouteFailed(m *router.Message, in router.LinkID, outs []router.LinkID, first bool, now int64) bool

	// RouteSucceeded is invoked when a message whose header arrived through
	// input channel in is successfully routed.
	RouteSucceeded(m *router.Message, in router.LinkID)

	// VCFreed is invoked when a virtual channel of physical channel l is
	// released (a tail passed, or recovery released the worm).
	VCFreed(l router.LinkID)

	// EndCycle is invoked once per cycle after all flit movement. txLinks
	// lists every physical channel a flit was transmitted across this cycle
	// (each at most once), and transmitted is the same information as a
	// bitmap indexed by LinkID. Both are scratch buffers owned by the engine
	// and reused every cycle: implementations must not retain them past the
	// call. txLinks is empty on a quiescent cycle — no flit moved anywhere —
	// and implementations must keep their inactivity counters running across
	// arbitrarily long quiescent stretches (the engine iterates only
	// Fabric.BusyLinks for that, and separately relies on quiescence to
	// short-circuit its deadlock oracle, so EndCycle must not mutate fabric
	// state).
	EndCycle(now int64, txLinks []router.LinkID, transmitted []bool)
}

// Sharded is implemented by detectors whose EndCycle work splits along the
// fabric's occupancy shards: a serial pass over the cycle's transmitted
// links (which may touch state owned by any shard, e.g. NDM's promotion of
// another router's G/P flags) followed by per-shard passes over busy links
// that touch only state owned by that shard. The engine calls EndCycleTx
// once on the barrier's serial spine, then EndCycleShard for every shard,
// possibly concurrently — one call per shard, never two calls for the same
// shard at once. The contract only holds while no tracer is attached
// (trace.Recorder is not safe for concurrent use); the engine falls back to
// the plain EndCycle when tracing. EndCycle and the split must compute
// identical final state, so results are byte-identical either way.
type Sharded interface {
	EndCycleTx(now int64, txLinks []router.LinkID)
	EndCycleShard(shard int, now int64, transmitted []bool)
}

// Traceable is implemented by detectors that can report their internal flag
// transitions to the flight recorder. The engine attaches its recorder (which
// may be nil — trace.Recorder methods are nil-safe) right after construction.
type Traceable interface {
	SetTracer(*trace.Recorder)
}

// DTOccupier is implemented by detectors that maintain a count of output
// channels whose detection-threshold flag is currently set (NDM's DT flag,
// PDM's inactivity flag). The engine samples it once per measured cycle to
// derive the per-channel DT-occupancy metric.
type DTOccupier interface {
	DTCount() int
}

// FlagObserver is implemented by detectors that can report the live
// occupancy of their detection flags: how many output channels have the
// short-term inactivity (I) flag set, how many have the detection-threshold
// (DT) flag set, and how many input channels currently hold G. Mechanisms
// without a flag class report zero for it (PDM has only its inactivity
// flag, which maps onto DT). The metrics sampler probes this once per
// sampling window; the counts are maintained incrementally so probing is
// O(1).
type FlagObserver interface {
	FlagCounts() (iFlags, dtFlags, gFlags int)
}

// ProbeTotals is a snapshot of the cumulative control-message activity of a
// probe-based (edge-chasing) detector. All counters are monotonic totals
// since construction; the engine differences successive snapshots to charge
// per-cycle metrics and the measured window.
type ProbeTotals struct {
	// Emitted counts probes launched by blocked initiators.
	Emitted int64
	// Forwarded counts probe forwardings at blocked headers (each spawned
	// continuation counts once).
	Forwarded int64
	// Dropped counts probes that terminated without returning.
	Dropped int64
	// Returned counts probes that arrived back at a channel held by their
	// own initiator, proving a cycle.
	Returned int64
	// Flits counts control flits charged to physical links: one per
	// link traversal a probe performed (emission, forwarding, and movement
	// along a worm's body all cross exactly one link each).
	Flits int64
	// InFlight is the number of probes currently traversing the fabric
	// (a gauge, not a total).
	InFlight int
}

// ProbeObserver is implemented by detectors that transport probe control
// messages through the fabric (the CMH edge-chasing family). The engine
// samples the totals once per cycle, after EndCycle, to populate the probe
// metric families and the probe-bandwidth counters.
type ProbeObserver interface {
	ProbeTotals() ProbeTotals
}

// Encodable is implemented by detectors whose internal state can be folded
// into the model checker's canonical state encoding (internal/mc). The
// contract: two detector states with equal encodings must behave identically
// under identical future event sequences. Unbounded values (inactivity
// counters, ages derived from now) must be clamped at the point past their
// largest behavioral threshold so the encoding stays finite; absolute cycle
// numbers must never be encoded directly.
type Encodable interface {
	AppendState(buf []byte, now int64) []byte
}

// None is a Detector that never marks anything. It is used to measure raw
// network behavior (including unrecovered deadlocks) and as a baseline in
// tests.
type None struct{}

// Name implements Detector.
func (None) Name() string { return "none" }

// RouteFailed implements Detector.
func (None) RouteFailed(*router.Message, router.LinkID, []router.LinkID, bool, int64) bool {
	return false
}

// RouteSucceeded implements Detector.
func (None) RouteSucceeded(*router.Message, router.LinkID) {}

// VCFreed implements Detector.
func (None) VCFreed(router.LinkID) {}

// EndCycle implements Detector.
func (None) EndCycle(int64, []router.LinkID, []bool) {}

// inputLinksByNode precomputes, for every node, the physical channels that
// can hold message headers at that node's router: the network links arriving
// from each direction plus the node's injection ports.
func inputLinksByNode(f *router.Fabric) [][]router.LinkID {
	t := f.Topo
	deg := t.Degree()
	inputs := make([][]router.LinkID, t.Nodes())
	for x := 0; x < t.Nodes(); x++ {
		list := make([]router.LinkID, 0, deg+f.Cfg.InjPorts)
		for d := 0; d < deg; d++ {
			// The link arriving at x from direction d is the neighbor's
			// output link in the opposite direction.
			b := t.Neighbor(x, topology.Direction(d))
			list = append(list, f.NetLink(b, topology.Direction(d).Opposite()))
		}
		for p := 0; p < f.Cfg.InjPorts; p++ {
			list = append(list, f.InjLink(x, p))
		}
		inputs[x] = list
	}
	return inputs
}
