package detect

import (
	"fmt"
	"slices"

	"wormnet/internal/router"
	"wormnet/internal/trace"
)

// PDM is the previously proposed detection mechanism summarized in Section
// 2 of the paper (from Martínez, López, Duato and Pinkston, ICPP 1997).
//
// Hardware per physical output channel (Figure 1): a counter incremented
// every clock cycle and reset whenever a flit is transmitted across the
// channel, so it holds the number of cycles since the last transmission. A
// one-bit inactivity flag (IF) is set when the counter exceeds the
// threshold and reset on transmission.
//
// Every time a blocked message is routed unsuccessfully, the IFs of all its
// feasible output channels are checked; if all are set, the message is
// presumed deadlocked. Unlike NDM there is no root tracking: every message
// in a blocked cycle eventually marks itself, and the threshold needed to
// avoid false detection grows with message length.
type PDM struct {
	f *router.Fabric

	// Threshold is the inactivity threshold in cycles.
	Threshold int64

	counter []int64
	ifFlag  []bool
	ifBusy  int             // number of links with the inactivity flag set
	busyBuf []router.LinkID // scratch for EndCycle's sorted busy-link pass

	tr *trace.Recorder // flight recorder; nil-safe
}

// NewPDM builds the mechanism over fabric f with the given threshold.
func NewPDM(f *router.Fabric, threshold int64) *PDM {
	if threshold < 1 {
		panic("detect: PDM requires threshold >= 1")
	}
	return &PDM{
		f:         f,
		Threshold: threshold,
		counter:   make([]int64, f.NumLinks()),
		ifFlag:    make([]bool, f.NumLinks()),
		busyBuf:   make([]router.LinkID, 0, f.NumLinks()),
	}
}

// Name implements Detector.
func (d *PDM) Name() string { return fmt.Sprintf("pdm(th=%d)", d.Threshold) }

// SetTracer implements Traceable. PDM's single inactivity flag is its
// detection threshold, so transitions are reported as DT set/clear events.
func (d *PDM) SetTracer(tr *trace.Recorder) { d.tr = tr }

// DTCount implements DTOccupier: the number of output channels whose
// inactivity flag is currently set.
func (d *PDM) DTCount() int { return d.ifBusy }

// FlagCounts implements FlagObserver. PDM's single inactivity flag is its
// detection threshold, so it reports as DT; PDM has no I or G/P hardware.
func (d *PDM) FlagCounts() (iFlags, dtFlags, gFlags int) {
	return 0, d.ifBusy, 0
}

// InactivitySet reports the IF flag of link l (exported for tests).
func (d *PDM) InactivitySet(l router.LinkID) bool { return d.ifFlag[l] }

// AppendState implements Encodable: per link, the inactivity counter clamped
// just past the threshold (beyond which increments are inert — the flag is
// already set and only a transmission resets it) and the IF flag bit.
func (d *PDM) AppendState(buf []byte, _ int64) []byte {
	for l := range d.counter {
		c := d.counter[l]
		if c > d.Threshold {
			c = d.Threshold + 1
		}
		var bit byte
		if d.ifFlag[l] {
			bit = 1
		}
		buf = append(buf, byte(c), byte(c>>8), bit)
	}
	return buf
}

// RouteFailed implements Detector. PDM checks on every unsuccessful
// attempt, including the first.
func (d *PDM) RouteFailed(_ *router.Message, _ router.LinkID, outs []router.LinkID, _ bool, _ int64) bool {
	for _, o := range outs {
		if !d.ifFlag[o] {
			return false
		}
	}
	return true
}

// RouteSucceeded implements Detector.
func (d *PDM) RouteSucceeded(*router.Message, router.LinkID) {}

// VCFreed implements Detector.
func (d *PDM) VCFreed(router.LinkID) {}

// EndCycle implements Detector: the counter hardware of Figure 1. Only
// occupied channels count; an empty channel's counter freezes. (Figure 1's
// counter free-runs even on empty channels, but its value is only ever
// consulted while the channel is fully busy, and any occupancy implies a
// recent transmission that reset it, so the observable behavior is
// identical.)
func (d *PDM) EndCycle(_ int64, txLinks []router.LinkID, transmitted []bool) {
	for _, id := range txLinks {
		d.counter[id] = 0
		if d.ifFlag[id] {
			d.ifFlag[id] = false
			d.ifBusy--
			d.tr.Emit(trace.KindDTClear, router.NilMsg, id, -1, 0, -1)
		}
	}
	// PDM is not Sharded: its flag checks are cheap enough that the engine
	// runs it on the serial spine, iterating every occupancy shard in order.
	// Untraced, the per-shard list order is fine (counting is
	// order-independent per link); traced, the flag events it emits must come
	// out in an order independent of the shard layout, so the busy links are
	// merged and visited ascending.
	d.busyBuf = d.busyBuf[:0]
	for s := 0; s < d.f.NumShards(); s++ {
		d.busyBuf = append(d.busyBuf, d.f.BusyLinksShard(s)...)
	}
	if d.tr != nil {
		slices.Sort(d.busyBuf)
	}
	for _, id := range d.busyBuf {
		l := int(id)
		if transmitted[l] || !d.f.IsMonitored(id) {
			continue
		}
		d.counter[l]++
		if d.counter[l] > d.Threshold && !d.ifFlag[l] {
			d.ifFlag[l] = true
			d.ifBusy++
			d.tr.Emit(trace.KindDTSet, router.NilMsg, id, -1, 0, -1)
		}
	}
}
