package detect

import (
	"testing"

	"wormnet/internal/router"
	"wormnet/internal/topology"
)

// FuzzNDMFlags drives NDM's per-channel flag state machine with an arbitrary
// interleaving of the events the engine can deliver — VC allocations and
// worm releases, first and repeated routing failures, routing successes, and
// end-of-cycle transmission bitmaps — and asserts that it never panics and
// that its state stays inside the legal lattice:
//
//   - DT set on a channel implies I set (t1 <= t2: a counter past the
//     detection threshold is necessarily past the inactivity threshold);
//   - the cached DT-occupancy count equals the number of set DT flags;
//   - inactivity counters never go negative, and a counter at zero never
//     holds a flag it could not have set.
//
// The byte stream is an op-code program: each iteration consumes an op and
// its operands, reducing indices modulo the fabric's sizes so every input is
// valid by construction. Both promotion policies and a spread of thresholds
// are reachable through the header bytes.
func FuzzNDMFlags(f *testing.F) {
	// Seed corpus (alongside the committed files under testdata): one
	// program per op plus one long mixed program.
	f.Add([]byte{0, 3, 0, 5, 1, 9, 2, 4})                      // allocate + route-fail
	f.Add([]byte{1, 4, 0, 1, 0, 2, 4, 0, 4, 3, 4, 7, 4, 1})    // selective promotion, cycles
	f.Add([]byte{0, 8, 0, 0, 1, 0, 2, 1, 3, 2, 4, 3, 5, 0, 1}) // every op once
	f.Add([]byte{0, 1, 0, 9, 0, 17, 1, 9, 127, 3, 4, 0, 4, 0, 4, 0, 4, 0, 4, 0, 2, 9, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		pol := PromoteAll
		if data[0]&1 == 1 {
			pol = PromoteWaiting
		}
		t2 := int64(data[1]%8) + 1
		data = data[2:]

		topo := topology.New(3, 2)
		rcfg := router.DefaultConfig()
		rcfg.VCsPerLink = 2
		fab, err := router.NewFabric(topo, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		d := NewNDMOpt(fab, 1, t2, pol)

		nLinks := fab.NumLinks()
		nNodes := topo.Nodes()
		transmitted := make([]bool, nLinks)
		var txLinks []router.LinkID
		var live []*router.Message // single-flit worms occupying one VC each
		outsBuf := make([]router.LinkID, 0, 4)
		probe := fab.NewMessage(0, nNodes-1, 4, 0) // header for route events
		now := int64(0)

		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		link := func() router.LinkID { return router.LinkID(int(next()) % nLinks) }

		for pos < len(data) {
			switch next() % 6 {
			case 0: // occupy a VC with a blocked single-flit worm
				l := link()
				vc := fab.FreeVC(l)
				if vc == router.NilVC {
					break
				}
				m := fab.NewMessage(0, int(next())%nNodes, 1, now)
				fab.Allocate(m, router.NilVC, vc)
				m.HeadVC, m.Phase = vc, router.PhaseNetwork
				fab.VCs[vc].Flits = 1
				fab.VCs[vc].HasHeader = true
				fab.VCs[vc].HasTail = true
				live = append(live, m)
			case 1: // release a worm, firing the flow-control event
				if len(live) == 0 {
					break
				}
				i := int(next()) % len(live)
				m := live[i]
				for _, vc := range fab.ReleaseWorm(m) {
					d.VCFreed(fab.LinkOfVC(vc))
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case 2: // failed routing attempt
				in := link()
				outsBuf = outsBuf[:0]
				for i := int(next())%4 + 1; i > 0; i-- {
					outsBuf = append(outsBuf, link())
				}
				first := next()&1 == 0
				d.RouteFailed(probe, in, outsBuf, first, now)
			case 3: // successful routing
				d.RouteSucceeded(probe, link())
			case 4: // end of cycle with an arbitrary transmission bitmap
				txLinks = txLinks[:0]
				for i := range transmitted {
					transmitted[i] = false
				}
				for i := int(next()) % 8; i > 0; i-- {
					l := link()
					if !transmitted[l] { // each link at most once, per contract
						transmitted[l] = true
						txLinks = append(txLinks, l)
					}
				}
				d.EndCycle(now, txLinks, transmitted)
				now++
			case 5: // flow-control event on an arbitrary channel
				d.VCFreed(link())
			}

			// Lattice invariants, checked after every event.
			dtSet := 0
			for l := 0; l < nLinks; l++ {
				if d.dtFlag[l] {
					dtSet++
					if !d.iFlag[l] {
						t.Fatalf("link %d: DT set with I clear (t1 <= t2 violated)", l)
					}
				}
				if d.counter[l] < 0 {
					t.Fatalf("link %d: negative inactivity counter %d", l, d.counter[l])
				}
				if d.iFlag[l] && d.counter[l] <= d.T1 {
					t.Fatalf("link %d: I set with counter %d <= t1=%d", l, d.counter[l], d.T1)
				}
			}
			if dtSet != d.DTCount() {
				t.Fatalf("DT occupancy cache %d != %d set flags", d.DTCount(), dtSet)
			}
		}
	})
}
