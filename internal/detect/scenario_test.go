package detect_test

// Scenario reconstruction of Figures 2 through 5 of the paper, driven
// against the real detection hardware. The physical setting is a ring of
// unidirectional channels c0..c7 (an 8-ary 1-cube with one virtual channel
// per physical channel, so one message fills a channel); the harness plays
// the engine's role, deciding which channels transmit each cycle and which
// blocked messages attempt to route where.

import (
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/router"
	"wormnet/internal/topology"
)

// bench drives a Detector the way the simulation engine would.
type bench struct {
	t        *testing.T
	f        *router.Fabric
	det      detect.Detector
	now      int64
	attempts map[router.MsgID]int
	marks    map[string]bool // marked message names
	names    map[router.MsgID]string
}

func newBench(t *testing.T, mk func(*router.Fabric) detect.Detector) *bench {
	t.Helper()
	cfg := router.Config{VCsPerLink: 1, BufFlits: 4, InjPorts: 1, DelPorts: 1}
	f, err := router.NewFabric(topology.New(8, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &bench{
		t:        t,
		f:        f,
		det:      mk(f),
		attempts: map[router.MsgID]int{},
		marks:    map[string]bool{},
		names:    map[router.MsgID]string{},
	}
}

// c returns the ring channel from node i to node i+1.
func (b *bench) c(i int) router.LinkID { return b.f.NetLink(i, 0) }

// place puts a message occupying the single VC of channel l, with its
// header buffered and waiting (the state after the worm advanced into l and
// stalled there). The message's destination is three hops further along the
// ring, so its minimal candidates from the header node are the next ring
// channel (relevant only to the selective promotion policy, which inspects
// real routing candidates).
func (b *bench) place(name string, l router.LinkID, flits int) *router.Message {
	b.t.Helper()
	m := b.f.NewMessage(int(b.f.Links[l].Src), (int(b.f.Links[l].Dst)+3)%8, flits, b.now)
	m.Phase = router.PhaseNetwork
	vc := b.f.Links[l].FirstVC
	b.f.Allocate(m, router.NilVC, vc)
	m.HeadVC = vc
	b.f.VCs[vc].Flits = int32(flits)
	b.f.VCs[vc].HasHeader = true
	b.f.VCs[vc].HasTail = true
	m.Injected = int32(flits)
	b.names[m.ID] = name
	return m
}

// leave removes a message from its channel (its tail passed or it was
// absorbed), raising the flow-control event.
func (b *bench) leave(m *router.Message) {
	vc := m.HeadVC
	l := b.f.LinkOfVC(vc)
	b.f.VCs[vc].Flits = 0
	b.f.ReleaseEmptyVC(vc)
	m.HeadVC = router.NilVC
	m.TailVC = router.NilVC
	b.det.VCFreed(l)
	delete(b.attempts, m.ID)
}

// attempt describes one blocked message's routing attempt this cycle.
type attempt struct {
	m    *router.Message
	in   router.LinkID
	outs []router.LinkID
}

// cycle advances one clock: channels in tx transmitted a flit, then the
// detector hardware updates, then the given routing attempts fail (their
// outputs are all busy by construction). Marked messages are recorded.
func (b *bench) cycle(tx []router.LinkID, atts ...attempt) {
	transmitted := make([]bool, b.f.NumLinks())
	for _, l := range tx {
		transmitted[l] = true
	}
	b.det.EndCycle(b.now, tx, transmitted)
	for _, a := range atts {
		first := b.attempts[a.m.ID] == 0
		b.attempts[a.m.ID]++
		a.m.Attempts++
		if b.det.RouteFailed(a.m, a.in, a.outs, first, b.now) {
			b.marks[b.names[a.m.ID]] = true
		}
	}
	b.now++
}

func (b *bench) assertMarks(want ...string) {
	b.t.Helper()
	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w] = true
	}
	for name := range b.marks {
		if !wantSet[name] {
			b.t.Errorf("message %s was marked as deadlocked but should not be", name)
		}
	}
	for name := range wantSet {
		if !b.marks[name] {
			b.t.Errorf("message %s should have been marked as deadlocked", name)
		}
	}
}

// TestFigure2NDM: messages B, C and D are blocked behind the advancing
// message A. The paper's mechanism must detect no deadlock: B observes
// activity (G but no DT on A's channel), while C and D arrive behind
// already-blocked messages and stay at P.
func TestFigure2NDM(t *testing.T) {
	b := newBench(t, func(f *router.Fabric) detect.Detector {
		return detect.NewNDM(f, 16)
	})
	ndm := b.det.(*detect.NDM)

	_ = b.place("A", b.c(3), 64) // advancing across c3
	mB := b.place("B", b.c(2), 16)
	mC := b.place("C", b.c(1), 16)
	mD := b.place("D", b.c(0), 16)

	// B blocks first; C arrives behind the already-blocked B a few cycles
	// later, and D behind C (staggered arrivals, as in the figure — the
	// paper notes that truly simultaneous blocking is the one case where
	// several messages may detect).
	attB := attempt{mB, b.c(2), []router.LinkID{b.c(3)}}
	attC := attempt{mC, b.c(1), []router.LinkID{b.c(2)}}
	attD := attempt{mD, b.c(0), []router.LinkID{b.c(1)}}
	for i := 0; i < 100; i++ {
		atts := []attempt{attB}
		if i >= 3 {
			atts = append(atts, attC)
		}
		if i >= 6 {
			atts = append(atts, attD)
		}
		b.cycle([]router.LinkID{b.c(3)}, atts...) // A transmits every cycle
	}
	b.assertMarks() // nothing

	// B saw activity on its requested channel: Generate.
	if !ndm.GPIsGenerate(b.c(2)) {
		t.Error("B's input channel should hold G")
	}
	// C and D arrived behind blocked messages: Propagate.
	if ndm.GPIsGenerate(b.c(1)) {
		t.Error("C's input channel should hold P")
	}
	if ndm.GPIsGenerate(b.c(0)) {
		t.Error("D's input channel should hold P")
	}
	// A's channel is active: I clear; the blocked channels are inactive.
	if ndm.IFlagSet(b.c(3)) {
		t.Error("I flag set on the advancing channel")
	}
	for _, ch := range []int{0, 1, 2} {
		if !ndm.IFlagSet(b.c(ch)) {
			t.Errorf("I flag clear on blocked channel c%d", ch)
		}
	}
}

// TestFigure2PDM: in the same configuration the previous mechanism falsely
// detects C and D as deadlocked once the threshold expires (the drawback
// the paper illustrates with Figure 2), while B is saved by A's activity.
func TestFigure2PDM(t *testing.T) {
	b := newBench(t, func(f *router.Fabric) detect.Detector {
		return detect.NewPDM(f, 16)
	})
	_ = b.place("A", b.c(3), 64)
	mB := b.place("B", b.c(2), 16)
	mC := b.place("C", b.c(1), 16)
	mD := b.place("D", b.c(0), 16)

	attB := attempt{mB, b.c(2), []router.LinkID{b.c(3)}}
	attC := attempt{mC, b.c(1), []router.LinkID{b.c(2)}}
	attD := attempt{mD, b.c(0), []router.LinkID{b.c(1)}}
	for i := 0; i < 100; i++ {
		atts := []attempt{attB}
		if i >= 3 {
			atts = append(atts, attC)
		}
		if i >= 6 {
			atts = append(atts, attD)
		}
		b.cycle([]router.LinkID{b.c(3)}, atts...)
	}
	b.assertMarks("C", "D")
}

// figure3 builds the Figure 3 state on top of Figure 2: A drains away, E
// takes over A's channel and then blocks requesting D's channel, closing a
// true deadlock B -> E -> D -> C -> B.
func figure3(t *testing.T, b *bench) (mB, mC, mD, mE *router.Message) {
	mA := b.place("A", b.c(3), 64)
	mB = b.place("B", b.c(2), 16)
	mC = b.place("C", b.c(1), 16)
	mD = b.place("D", b.c(0), 16)

	attB := attempt{mB, b.c(2), []router.LinkID{b.c(3)}}
	attC := attempt{mC, b.c(1), []router.LinkID{b.c(2)}}
	attD := attempt{mD, b.c(0), []router.LinkID{b.c(1)}}

	// Figure 2 regime: A advancing, B/C/D blocking in staggered order.
	for i := 0; i < 30; i++ {
		atts := []attempt{attB}
		if i >= 3 {
			atts = append(atts, attC)
		}
		if i >= 6 {
			atts = append(atts, attD)
		}
		b.cycle([]router.LinkID{b.c(3)}, atts...)
	}
	// A's tail passes; the channel frees.
	b.cycle([]router.LinkID{b.c(3)}, attB, attC, attD)
	b.leave(mA)
	// E's worm advances into c3 over the next two cycles (transmissions
	// across c3), then E's header blocks requesting D's channel c0.
	mE = b.place("E", b.c(3), 16)
	b.cycle([]router.LinkID{b.c(3)}, attC, attD) // E flits arriving; B also waits
	b.cycle([]router.LinkID{b.c(3)}, attB, attC, attD)
	return mB, mC, mD, mE
}

// TestFigure3And4NDM: once E blocks, the deadlock must be detected by B and
// only B — the message that had observed the (then-advancing) root
// position, exactly as in Figure 4.
func TestFigure3And4NDM(t *testing.T) {
	b := newBench(t, func(f *router.Fabric) detect.Detector {
		return detect.NewNDM(f, 16)
	})
	mB, mC, mD, mE := figure3(t, b)
	attB := attempt{mB, b.c(2), []router.LinkID{b.c(3)}}
	attC := attempt{mC, b.c(1), []router.LinkID{b.c(2)}}
	attD := attempt{mD, b.c(0), []router.LinkID{b.c(1)}}
	attE := attempt{mE, b.c(3), []router.LinkID{b.c(0)}}

	// True deadlock: nobody transmits. Run past the threshold.
	for i := 0; i < 40; i++ {
		b.cycle(nil, attB, attC, attD, attE)
	}
	b.assertMarks("B")
}

// TestFigure5NDM: after B recovers, F occupies B's old channel and a second
// deadlock forms. The transmission of F's first flit across c2 resets the
// stale I flag and promotes C to G, so C (and only C) detects the new
// deadlock.
func TestFigure5NDM(t *testing.T) {
	b := newBench(t, func(f *router.Fabric) detect.Detector {
		return detect.NewNDM(f, 16)
	})
	mB, mC, mD, mE := figure3(t, b)
	ndm := b.det.(*detect.NDM)
	attC := attempt{mC, b.c(1), []router.LinkID{b.c(2)}}
	attD := attempt{mD, b.c(0), []router.LinkID{b.c(1)}}
	attE := attempt{mE, b.c(3), []router.LinkID{b.c(0)}}

	// Reach the Figure 4 state: B detects.
	attB := attempt{mB, b.c(2), []router.LinkID{b.c(3)}}
	for i := 0; i < 40; i++ {
		b.cycle(nil, attB, attC, attD, attE)
	}
	b.assertMarks("B")
	b.marks = map[string]bool{}

	// B is absorbed by the recovery mechanism; its channel frees. The I
	// flag of c2 stays set (stale) because no flit was transmitted.
	b.leave(mB)
	if !ndm.IFlagSet(b.c(2)) {
		t.Fatal("I flag of c2 should remain set after B drains without transmission")
	}
	b.cycle(nil, attC, attD, attE)

	// F acquires c2; its first flit transmission resets I(c2), which must
	// promote C from P to G.
	if ndm.GPIsGenerate(b.c(1)) {
		t.Fatal("C should still be P before F arrives")
	}
	mF := b.place("F", b.c(2), 16)
	b.cycle([]router.LinkID{b.c(2)}, attC, attD, attE)
	if !ndm.GPIsGenerate(b.c(1)) {
		t.Fatal("F's transmission across c2 should promote C to G")
	}

	// F blocks requesting E's channel: second deadlock C->F->E->D->C.
	attF := attempt{mF, b.c(2), []router.LinkID{b.c(3)}}
	for i := 0; i < 40; i++ {
		b.cycle(nil, attC, attD, attE, attF)
	}
	b.assertMarks("C")
}

// TestFigure5Selective: the selective promotion policy also detects the
// Figure 5 deadlock (C is genuinely waiting on the channel whose I flag was
// reset), demonstrating the ablation preserves correctness in this case.
func TestFigure5Selective(t *testing.T) {
	b := newBench(t, func(f *router.Fabric) detect.Detector {
		return detect.NewNDMOpt(f, 1, 16, detect.PromoteWaiting)
	})
	mB, mC, mD, mE := figure3(t, b)
	attB := attempt{mB, b.c(2), []router.LinkID{b.c(3)}}
	attC := attempt{mC, b.c(1), []router.LinkID{b.c(2)}}
	attD := attempt{mD, b.c(0), []router.LinkID{b.c(1)}}
	attE := attempt{mE, b.c(3), []router.LinkID{b.c(0)}}
	for i := 0; i < 40; i++ {
		b.cycle(nil, attB, attC, attD, attE)
	}
	b.assertMarks("B")
	b.marks = map[string]bool{}
	b.leave(mB)
	b.cycle(nil, attC, attD, attE)
	mF := b.place("F", b.c(2), 16)
	b.cycle([]router.LinkID{b.c(2)}, attC, attD, attE)
	attF := attempt{mF, b.c(2), []router.LinkID{b.c(3)}}
	for i := 0; i < 40; i++ {
		b.cycle(nil, attC, attD, attE, attF)
	}
	b.assertMarks("C")
}
