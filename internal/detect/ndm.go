package detect

import (
	"fmt"
	"slices"

	"wormnet/internal/router"
	"wormnet/internal/trace"
)

// PromotionPolicy selects how a router re-arms detection when an I flag is
// reset (a message advanced across a previously inactive output channel),
// the Figure 5 situation: some waiting message must become eligible to
// detect the next deadlock through the new root.
type PromotionPolicy uint8

// Promotion policies.
const (
	// PromoteAll is the paper's "simple implementation": when any I flag in
	// a router is reset, every G/P flag in that router currently at P is
	// changed to G. The paper notes this may slightly increase false
	// detections relative to a more selective change.
	PromoteAll PromotionPolicy = iota
	// PromoteWaiting is the selective variant the paper leaves as future
	// work: only input channels holding a blocked header that was actually
	// waiting for the output channel whose I flag was reset are promoted.
	PromoteWaiting
)

func (p PromotionPolicy) String() string {
	if p == PromoteWaiting {
		return "selective"
	}
	return "all"
}

// NDM is the paper's new deadlock detection mechanism (Section 3).
//
// Hardware per physical output channel (Figure 6): an inactivity counter
// (incremented each cycle the channel is idle while at least one of its
// virtual channels is occupied, reset when a flit is transmitted) compared
// against two thresholds, t1 << t2, setting the I and DT flags.
//
// Hardware per physical input channel: a one-bit G/P flag. G means the
// blocked message that last arrived on this channel observed activity on
// some feasible output — it is waiting on the (possible) root of the tree
// of blocked messages and is therefore the one that should detect a
// deadlock. P suppresses detection.
type NDM struct {
	f *router.Fabric

	// T1 and T2 are the two thresholds; T1 is 1 cycle in the paper, T2 is
	// the tunable detection threshold swept in the evaluation.
	T1, T2 int64
	// Promotion selects the P->G re-arming policy.
	Promotion PromotionPolicy

	counter []int64 // per link; only monitored links are maintained
	iFlag   []bool
	dtFlag  []bool
	gp      []bool // true = G, false = P; input-capable links only
	// iBusy[s] and dtBusy[s] count set I and DT flags on links owned by
	// fabric occupancy shard s, so EndCycleShard can maintain its share
	// without synchronization; DTCount and FlagCounts sum them. gBusy is a
	// single count: G/P transitions happen only on the engine's serial
	// spine (route pass, VCFreed replay, promotion).
	iBusy  []int
	dtBusy []int
	gBusy  int // number of input channels currently at G

	inputs [][]router.LinkID // per node: input channels of its router

	candBuf []router.LinkID // scratch for selective promotion
	busyBuf []router.LinkID // scratch for EndCycle's sorted busy-link pass

	tr *trace.Recorder // flight recorder; nil-safe
}

// NewNDM builds the mechanism over fabric f with the paper's t1 = 1 and the
// given t2 threshold.
func NewNDM(f *router.Fabric, t2 int64) *NDM {
	return NewNDMOpt(f, 1, t2, PromoteAll)
}

// NewNDMOpt builds the mechanism with explicit thresholds and promotion
// policy.
func NewNDMOpt(f *router.Fabric, t1, t2 int64, promotion PromotionPolicy) *NDM {
	if t1 < 1 || t2 < t1 {
		panic("detect: NDM requires 1 <= t1 <= t2")
	}
	n := f.NumLinks()
	return &NDM{
		f:         f,
		T1:        t1,
		T2:        t2,
		Promotion: promotion,
		counter:   make([]int64, n),
		iFlag:     make([]bool, n),
		dtFlag:    make([]bool, n),
		gp:        make([]bool, n),
		iBusy:     make([]int, f.NumShards()),
		dtBusy:    make([]int, f.NumShards()),
		inputs:    inputLinksByNode(f),
		busyBuf:   make([]router.LinkID, 0, n),
	}
}

// Name implements Detector.
func (d *NDM) Name() string {
	if d.Promotion == PromoteAll && d.T1 == 1 {
		return fmt.Sprintf("ndm(t2=%d)", d.T2)
	}
	return fmt.Sprintf("ndm(t1=%d,t2=%d,promote=%s)", d.T1, d.T2, d.Promotion)
}

// SetTracer implements Traceable: flag transitions are reported to tr.
func (d *NDM) SetTracer(tr *trace.Recorder) { d.tr = tr }

// DTCount implements DTOccupier: the number of output channels whose DT flag
// is currently set.
func (d *NDM) DTCount() int { return sum(d.dtBusy) }

// FlagCounts implements FlagObserver: the live occupancy of the I, DT and G
// flags.
func (d *NDM) FlagCounts() (iFlags, dtFlags, gFlags int) {
	return sum(d.iBusy), sum(d.dtBusy), d.gBusy
}

func sum(counts []int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// IFlagSet reports the I flag of link l (exported for tests and scenario
// reconstruction).
func (d *NDM) IFlagSet(l router.LinkID) bool { return d.iFlag[l] }

// DTFlagSet reports the DT flag of link l.
func (d *NDM) DTFlagSet(l router.LinkID) bool { return d.dtFlag[l] }

// GPIsGenerate reports whether input channel l currently holds G.
func (d *NDM) GPIsGenerate(l router.LinkID) bool { return d.gp[l] }

// AppendState implements Encodable: per link, the inactivity counter clamped
// just past T2 (beyond which increments are inert — both flags are already
// set and only a transmission resets them) and the I/DT/G-P flag bits. The
// clamp keeps the encoding finite across arbitrarily long inactive
// stretches without conflating any two behaviorally distinct states.
func (d *NDM) AppendState(buf []byte, _ int64) []byte {
	for l := range d.counter {
		c := d.counter[l]
		if c > d.T2 {
			c = d.T2 + 1
		}
		var bits byte
		if d.iFlag[l] {
			bits |= 1
		}
		if d.dtFlag[l] {
			bits |= 2
		}
		if d.gp[l] {
			bits |= 4
		}
		buf = append(buf, byte(c), byte(c>>8), bits)
	}
	return buf
}

// RouteFailed implements Detector.
func (d *NDM) RouteFailed(m *router.Message, in router.LinkID, outs []router.LinkID, first bool, now int64) bool {
	if first {
		// First unsuccessful attempt: decide whether this message is the
		// first of a branch in the tree of blocked messages.
		if !d.f.AllVCsBusy(in) {
			// Some VC of the input channel is still free: this message is
			// not the latest arrival and cannot close a cycle yet.
			d.setP(in, m.ID, trace.PReasonNotLastArrival)
			return false
		}
		for _, o := range outs {
			if !d.iFlag[o] {
				// Some requested channel is still active: the advancing
				// message could be the root of the tree. If it later
				// blocks, this message must detect.
				d.setG(in, m.ID, trace.GRuleFirstAttempt, o)
				return false
			}
		}
		// Every requested channel is already inactive: some other message
		// blocked first and owns detection.
		d.setP(in, m.ID, trace.PReasonAllInactive)
		return false
	}

	// Successive attempts: detect only if the long-term threshold has been
	// exceeded on every feasible output and this message is a branch head.
	if !d.gp[in] {
		return false
	}
	for _, o := range outs {
		if !d.dtFlag[o] {
			return false
		}
	}
	return true
}

// RouteSucceeded implements Detector. A message that was occupying the
// input channel routes: the last arrival on that channel is no longer
// waiting on the root, so the flag returns to P.
func (d *NDM) RouteSucceeded(m *router.Message, in router.LinkID) {
	d.setP(in, m.ID, trace.PReasonRouteOK)
}

// VCFreed implements Detector. Freeing a virtual channel of an input
// physical channel resets its G/P flag to P, exactly like a successful
// routing.
func (d *NDM) VCFreed(l router.LinkID) {
	d.setP(l, router.NilMsg, trace.PReasonVCFreed)
}

// setG raises input channel in to G, tracing the transition with the rule
// that fired and the witness output channel.
func (d *NDM) setG(in router.LinkID, msg router.MsgID, rule int64, out router.LinkID) {
	if d.gp[in] {
		return
	}
	d.gp[in] = true
	d.gBusy++
	d.tr.Emit(trace.KindGSet, msg, in, int32(d.f.RouterOf(in)), rule, int32(out))
}

// setP lowers input channel in to P, tracing the transition with its reason.
func (d *NDM) setP(in router.LinkID, msg router.MsgID, reason int64) {
	if !d.gp[in] {
		return
	}
	d.gp[in] = false
	d.gBusy--
	d.tr.Emit(trace.KindPSet, msg, in, int32(d.f.RouterOf(in)), reason, -1)
}

// EndCycle implements Detector: the counter/flag hardware of Figure 6.
//
// Transmitted channels reset their counter and flags; occupied idle
// channels count up; completely empty channels freeze — their flags are NOT
// cleared, because per Figure 6 they reset only on transmission. The freeze
// is what makes the Figure 5 case work: a stale I flag left by a drained
// message is reset by the first flit of the next message to use the
// channel, and that reset promotes the messages waiting on it from P to G.
func (d *NDM) EndCycle(now int64, txLinks []router.LinkID, transmitted []bool) {
	d.EndCycleTx(now, txLinks)
	if d.tr == nil {
		for s := 0; s < d.f.NumShards(); s++ {
			d.EndCycleShard(s, now, transmitted)
		}
		return
	}
	// Traced: counting is order-independent per link, but the flag events it
	// emits are not — visit busy links in ascending link order so the trace
	// stream is identical for every occupancy-shard layout. The sort is
	// confined to traced runs to keep the untraced hot path list-ordered.
	d.busyBuf = d.busyBuf[:0]
	for s := 0; s < d.f.NumShards(); s++ {
		d.busyBuf = append(d.busyBuf, d.f.BusyLinksShard(s)...)
	}
	slices.Sort(d.busyBuf)
	for _, id := range d.busyBuf {
		d.countLink(id, d.f.ShardOfLink(id), transmitted)
	}
}

// EndCycleTx implements Sharded: the serial half of EndCycle. Resetting an
// I flag promotes G/P flags at the transmitting router — state another
// shard may own — so the transmitted-link pass runs on the barrier's serial
// spine, over the canonically merged txLinks list.
func (d *NDM) EndCycleTx(_ int64, txLinks []router.LinkID) {
	for _, id := range txLinks {
		l := int(id)
		if d.iFlag[l] {
			// An I flag is being reset because a message advanced: re-arm
			// waiting messages in this router (Figure 5).
			d.promote(id)
			d.iFlag[l] = false
			d.iBusy[d.f.ShardOfLink(id)]--
			d.tr.Emit(trace.KindIClear, router.NilMsg, id, -1, 0, -1)
		}
		if d.dtFlag[l] {
			d.dtFlag[l] = false
			d.dtBusy[d.f.ShardOfLink(id)]--
			d.tr.Emit(trace.KindDTClear, router.NilMsg, id, -1, 0, -1)
		}
		d.counter[l] = 0
	}
}

// EndCycleShard implements Sharded: the counting half of EndCycle for one
// occupancy shard. The counter is "only incremented if at least one virtual
// channel is occupied", so visiting the shard's busy links covers every
// counting channel it owns; counters, flags and the per-shard flag counts
// all belong to shard s, so concurrent calls for distinct shards are safe
// (the engine guarantees no tracer is attached on the concurrent path).
func (d *NDM) EndCycleShard(s int, _ int64, transmitted []bool) {
	for _, id := range d.f.BusyLinksShard(s) {
		d.countLink(id, s, transmitted)
	}
}

// countLink runs the Figure 6 counter/threshold hardware for one busy link
// owned by occupancy shard s.
func (d *NDM) countLink(id router.LinkID, s int, transmitted []bool) {
	l := int(id)
	if transmitted[l] || !d.f.IsMonitored(id) {
		return // just reset, or an injection link with no counter
	}
	d.counter[l]++
	if d.counter[l] > d.T1 && !d.iFlag[l] {
		d.iFlag[l] = true
		d.iBusy[s]++
		d.tr.Emit(trace.KindISet, router.NilMsg, id, -1, 0, -1)
	}
	if d.counter[l] > d.T2 && !d.dtFlag[l] {
		d.dtFlag[l] = true
		d.dtBusy[s]++
		d.tr.Emit(trace.KindDTSet, router.NilMsg, id, -1, 0, -1)
	}
}

// promote re-arms G/P flags in the router owning output channel out after
// its I flag was reset.
func (d *NDM) promote(out router.LinkID) {
	node := int(d.f.Links[out].Src)
	if node < 0 {
		return
	}
	for _, in := range d.inputs[node] {
		if d.gp[in] {
			continue // already G
		}
		if d.Promotion == PromoteWaiting && !d.waitingOn(in, out, node) {
			continue
		}
		d.setG(in, router.NilMsg, trace.GRulePromotion, out)
	}
}

// waitingOn reports whether input channel in holds a blocked header whose
// feasible outputs at node include out.
func (d *NDM) waitingOn(in, out router.LinkID, node int) bool {
	link := &d.f.Links[in]
	for v := int32(0); v < link.NumVC; v++ {
		vc := link.FirstVC + router.VCID(v)
		if !d.f.HeaderBlocked(vc) {
			continue
		}
		m := d.f.Msg(d.f.VCs[vc].Occupant)
		d.candBuf = d.f.Candidates(node, int(m.Dst), d.candBuf[:0])
		for _, c := range d.candBuf {
			if c == out {
				return true
			}
		}
	}
	return false
}
