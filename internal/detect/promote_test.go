package detect_test

// Scenario coverage for the PromoteWaiting policy beyond the ring figures:
// the selective variant must promote ONLY the input channels whose blocked
// header is actually waiting on the output channel whose I flag was reset,
// while the paper's simple policy promotes every P input of the router.
// A 1-D ring cannot distinguish the two (each router has one network
// input), so the scenario uses a 4-ary 2-cube router with an X input
// waiting on the X+ output and a Y input waiting on the Y+ output.

import (
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/router"
	"wormnet/internal/topology"
)

// promoteBench drives an NDM instance over a 4-ary 2-cube the way the
// engine would, with hand-placed worms.
type promoteBench struct {
	t   *testing.T
	f   *router.Fabric
	ndm *detect.NDM
	now int64
	att map[router.MsgID]int
}

func newPromoteBench(t *testing.T, policy detect.PromotionPolicy) *promoteBench {
	t.Helper()
	f, err := router.NewFabric(topology.New(4, 2),
		router.Config{VCsPerLink: 1, BufFlits: 4, InjPorts: 1, DelPorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &promoteBench{
		t:   t,
		f:   f,
		ndm: detect.NewNDMOpt(f, 1, 16, policy),
		att: map[router.MsgID]int{},
	}
}

// place puts a blocked worm with an explicit destination on channel l.
func (b *promoteBench) place(l router.LinkID, dst int) *router.Message {
	b.t.Helper()
	m := b.f.NewMessage(int(b.f.Links[l].Src), dst, 8, b.now)
	m.Phase = router.PhaseNetwork
	vc := b.f.Links[l].FirstVC
	b.f.Allocate(m, router.NilVC, vc)
	m.HeadVC = vc
	b.f.VCs[vc].Flits = 8
	b.f.VCs[vc].HasHeader = true
	b.f.VCs[vc].HasTail = true
	m.Injected = 8
	return m
}

// drain removes a worm (recovery absorbed it) and raises the flow-control
// event, exactly as recovery.Engine does through its VCFreed hook.
func (b *promoteBench) drain(m *router.Message) {
	vc := m.HeadVC
	l := b.f.LinkOfVC(vc)
	b.f.VCs[vc].Flits = 0
	b.f.ReleaseEmptyVC(vc)
	m.HeadVC = router.NilVC
	m.TailVC = router.NilVC
	b.ndm.VCFreed(l)
	delete(b.att, m.ID)
}

// cycle advances the clock: tx channels transmitted, then the listed
// messages fail a routing attempt requesting their single candidate output.
func (b *promoteBench) cycle(tx []router.LinkID, fails ...*router.Message) {
	transmitted := make([]bool, b.f.NumLinks())
	for _, l := range tx {
		transmitted[l] = true
	}
	b.ndm.EndCycle(b.now, tx, transmitted)
	for _, m := range fails {
		in := b.f.LinkOfVC(m.HeadVC)
		node := b.f.RouterOf(in)
		outs := b.f.Candidates(node, int(m.Dst), nil)
		first := b.att[m.ID] == 0
		b.att[m.ID]++
		m.Attempts++
		b.ndm.RouteFailed(m, in, outs, first, b.now)
	}
	b.now++
}

// runPromotionScenario builds the two-input configuration, lets a stale I
// flag form on the X+ output, resets it with a new worm's first flit, and
// returns the G/P state of the two input channels at that moment plus the
// bench for further driving.
func runPromotionScenario(t *testing.T, policy detect.PromotionPolicy) (b *promoteBench, inX, inY router.LinkID, mx *router.Message) {
	b = newPromoteBench(t, policy)
	tp := b.f.Topo
	xPlus, yPlus := topology.Direction(0), topology.Direction(2)
	r := tp.ID([]int{1, 1})
	inX = b.f.NetLink(tp.ID([]int{0, 1}), xPlus) // (0,1) -> (1,1)
	inY = b.f.NetLink(tp.ID([]int{1, 0}), yPlus) // (1,0) -> (1,1)
	outX := b.f.NetLink(r, xPlus)                // (1,1) -> (2,1)
	outY := b.f.NetLink(r, yPlus)                // (1,1) -> (1,2)

	// Both outputs are held by blocked worms, so their inactivity counters
	// run and the I flags set before the waiting messages first attempt.
	ox := b.place(outX, tp.ID([]int{3, 1}))
	b.place(outY, tp.ID([]int{1, 3}))
	for i := 0; i < 3; i++ {
		b.cycle(nil)
	}
	if !b.ndm.IFlagSet(outX) || !b.ndm.IFlagSet(outY) {
		t.Fatal("setup: I flags not set on the held outputs")
	}

	// MX waits on outX only (one X+ hop to its destination), MY on outY
	// only. Both first-attempt against already-inactive outputs: P.
	mx = b.place(inX, tp.ID([]int{2, 1}))
	my := b.place(inY, tp.ID([]int{1, 2}))
	b.cycle(nil, mx, my)
	if b.ndm.GPIsGenerate(inX) || b.ndm.GPIsGenerate(inY) {
		t.Fatal("setup: inputs should hold P after blocking on inactive outputs")
	}

	// Recovery absorbs the worm holding outX; the channel frees without a
	// transmission, so its I flag goes stale — the Figure 5 situation.
	b.drain(ox)
	b.cycle(nil, mx, my)
	if !b.ndm.IFlagSet(outX) {
		t.Fatal("setup: I flag of the drained output should stay set")
	}

	// A new worm acquires outX and its first flit crosses it, resetting the
	// stale I flag and triggering promotion in router (1,1).
	b.place(outX, tp.ID([]int{3, 1}))
	b.cycle([]router.LinkID{outX}, mx, my)
	return b, inX, inY, mx
}

// TestPromoteWaitingSelectivity: on the I-flag reset, the selective policy
// promotes the input actually waiting on that output and leaves the other
// input at P; a recovery-driven VCFreed afterwards demotes the promoted
// input again.
func TestPromoteWaitingSelectivity(t *testing.T) {
	b, inX, inY, mx := runPromotionScenario(t, detect.PromoteWaiting)
	if !b.ndm.GPIsGenerate(inX) {
		t.Error("input waiting on the reset output should be promoted to G")
	}
	if b.ndm.GPIsGenerate(inY) {
		t.Error("input waiting on a different output should stay at P")
	}
	// Recovery absorbs MX: the flow-control event on its input channel must
	// return the flag to P (interleaving promotion with recovery events).
	b.drain(mx)
	if b.ndm.GPIsGenerate(inX) {
		t.Error("VCFreed after promotion should demote the input back to P")
	}
}

// TestPromoteAllIsUnselective: the paper's simple policy promotes every P
// input of the router on the same event, including the one whose header is
// not waiting on the reset output — the behavioral difference the selective
// ablation exists to measure.
func TestPromoteAllIsUnselective(t *testing.T) {
	b, inX, inY, _ := runPromotionScenario(t, detect.PromoteAll)
	if !b.ndm.GPIsGenerate(inX) {
		t.Error("PromoteAll should promote the waiting input")
	}
	if !b.ndm.GPIsGenerate(inY) {
		t.Error("PromoteAll should promote the non-waiting input too")
	}
}
