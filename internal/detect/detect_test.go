package detect_test

import (
	"strings"
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/router"
	"wormnet/internal/topology"
)

func ringFabric(t *testing.T) *router.Fabric {
	t.Helper()
	f, err := router.NewFabric(topology.New(8, 1),
		router.Config{VCsPerLink: 1, BufFlits: 4, InjPorts: 1, DelPorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func fabric2D(t *testing.T) *router.Fabric {
	t.Helper()
	f, err := router.NewFabric(topology.New(4, 2), router.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// occupy places a message on the first free VC of link l with one buffered
// flit, marking it as a blocked header.
func occupy(t *testing.T, f *router.Fabric, l router.LinkID, dst int) *router.Message {
	t.Helper()
	m := f.NewMessage(int(f.Links[l].Src), dst, 16, 0)
	m.Phase = router.PhaseNetwork
	vc := f.FreeVC(l)
	if vc == router.NilVC {
		t.Fatalf("link %d full", l)
	}
	f.Allocate(m, router.NilVC, vc)
	m.HeadVC = vc
	f.VCs[vc].Flits = 1
	f.VCs[vc].HasHeader = true
	return m
}

// tick runs detector end-of-cycle with the given transmitted links.
func tick(d detect.Detector, now int64, f *router.Fabric, tx ...router.LinkID) {
	transmitted := make([]bool, f.NumLinks())
	for _, l := range tx {
		transmitted[l] = true
	}
	d.EndCycle(now, tx, transmitted)
}

func TestNDMCounterThresholds(t *testing.T) {
	f := ringFabric(t)
	d := detect.NewNDM(f, 8)
	l := f.NetLink(0, 0)
	occupy(t, f, l, 4)

	// t1=1: I sets after counter exceeds 1, i.e. on the second idle cycle.
	tick(d, 0, f)
	if d.IFlagSet(l) {
		t.Fatal("I set after one idle cycle")
	}
	tick(d, 1, f)
	if !d.IFlagSet(l) {
		t.Fatal("I not set after two idle cycles")
	}
	if d.DTFlagSet(l) {
		t.Fatal("DT set before t2")
	}
	for now := int64(2); now <= 8; now++ {
		tick(d, now, f)
	}
	if !d.DTFlagSet(l) {
		t.Fatal("DT not set after t2 exceeded")
	}
	// A transmission resets everything.
	tick(d, 9, f, l)
	if d.IFlagSet(l) || d.DTFlagSet(l) {
		t.Fatal("flags not reset by transmission")
	}
}

func TestNDMEmptyChannelFreezesCounter(t *testing.T) {
	f := ringFabric(t)
	d := detect.NewNDM(f, 4)
	l := f.NetLink(0, 0)
	// Unoccupied channel must never raise flags.
	for now := int64(0); now < 20; now++ {
		tick(d, now, f)
	}
	if d.IFlagSet(l) || d.DTFlagSet(l) {
		t.Fatal("flags raised on empty channel")
	}
	// Occupied & idle raises them; draining the occupant without a
	// transmission must leave them set (stale, per Figure 6 semantics).
	m := occupy(t, f, l, 4)
	for now := int64(20); now < 30; now++ {
		tick(d, now, f)
	}
	if !d.DTFlagSet(l) {
		t.Fatal("DT not set")
	}
	vc := m.HeadVC
	f.VCs[vc].Flits = 0
	f.ReleaseEmptyVC(vc)
	tick(d, 30, f)
	if !d.IFlagSet(l) || !d.DTFlagSet(l) {
		t.Fatal("stale flags cleared without a transmission")
	}
}

func TestNDMFirstAttemptWithFreeInputVC(t *testing.T) {
	f := fabric2D(t) // 3 VCs per channel
	d := detect.NewNDM(f, 8)
	in := f.NetLink(0, 0) // arrives at node 1
	m := occupy(t, f, in, 3)
	out := f.NetLink(1, 0)
	// Input channel has free VCs: the message cannot close a cycle; P.
	if d.RouteFailed(m, in, []router.LinkID{out}, true, 0) {
		t.Fatal("marked on first attempt")
	}
	if d.GPIsGenerate(in) {
		t.Fatal("G set despite free input VCs")
	}
}

func TestNDMFirstAttemptSetsGOnActivity(t *testing.T) {
	f := ringFabric(t) // 1 VC per channel: occupying it fills the input
	d := detect.NewNDM(f, 8)
	in := f.NetLink(0, 0)
	out := f.NetLink(1, 0)
	m := occupy(t, f, in, 3)
	occupy(t, f, out, 4) // output busy but (so far) active
	if d.RouteFailed(m, in, []router.LinkID{out}, true, 0) {
		t.Fatal("marked on first attempt")
	}
	if !d.GPIsGenerate(in) {
		t.Fatal("G not set when requested channel shows activity")
	}
}

func TestNDMFirstAttemptSetsPWhenOutputsInactive(t *testing.T) {
	f := ringFabric(t)
	d := detect.NewNDM(f, 8)
	in := f.NetLink(0, 0)
	out := f.NetLink(1, 0)
	m := occupy(t, f, in, 3)
	occupy(t, f, out, 4)
	tick(d, 0, f)
	tick(d, 1, f) // I(out) sets
	if !d.IFlagSet(out) {
		t.Fatal("I not set")
	}
	if d.RouteFailed(m, in, []router.LinkID{out}, true, 2) {
		t.Fatal("marked on first attempt")
	}
	if d.GPIsGenerate(in) {
		t.Fatal("G set although every requested channel was already inactive")
	}
}

func TestNDMMarkRequiresAllDTAndG(t *testing.T) {
	f := ringFabric(t)
	d := detect.NewNDM(f, 4)
	in := f.NetLink(0, 0)
	out1, out2 := f.NetLink(1, 0), f.NetLink(1, 1)
	m := occupy(t, f, in, 3)
	occupy(t, f, out1, 4)
	occupy(t, f, out2, 4)
	outs := []router.LinkID{out1, out2}

	// First attempt while out1 is still fresh: G.
	if d.RouteFailed(m, in, outs, true, 0) {
		t.Fatal("marked on first attempt")
	}
	if !d.GPIsGenerate(in) {
		t.Fatal("expected G")
	}
	// Let DT rise on out1 only: keep out2 transmitting.
	for now := int64(0); now < 10; now++ {
		tick(d, now, f, out2)
		if d.RouteFailed(m, in, outs, false, now) {
			t.Fatalf("marked at cycle %d with an active output", now)
		}
	}
	// Now let out2 go idle past t2 as well: mark.
	marked := false
	for now := int64(10); now < 20 && !marked; now++ {
		tick(d, now, f)
		marked = d.RouteFailed(m, in, outs, false, now)
	}
	if !marked {
		t.Fatal("never marked despite all DT set and G")
	}

	// Same configuration with P must not mark.
	d2 := detect.NewNDM(f, 4)
	for now := int64(0); now < 10; now++ {
		tick(d2, now, f)
	}
	if !d2.DTFlagSet(out1) || !d2.DTFlagSet(out2) {
		t.Fatal("DT not set in control run")
	}
	if d2.RouteFailed(m, in, outs, false, 10) {
		t.Fatal("marked with G/P = P")
	}
}

func TestNDMRouteSuccessResetsG(t *testing.T) {
	f := ringFabric(t)
	d := detect.NewNDM(f, 8)
	in := f.NetLink(0, 0)
	out := f.NetLink(1, 0)
	m := occupy(t, f, in, 3)
	occupy(t, f, out, 4)
	d.RouteFailed(m, in, []router.LinkID{out}, true, 0)
	if !d.GPIsGenerate(in) {
		t.Fatal("setup failed")
	}
	d.RouteSucceeded(m, in)
	if d.GPIsGenerate(in) {
		t.Fatal("G survived successful routing")
	}
}

func TestNDMVCFreedResetsG(t *testing.T) {
	f := ringFabric(t)
	d := detect.NewNDM(f, 8)
	in := f.NetLink(0, 0)
	out := f.NetLink(1, 0)
	m := occupy(t, f, in, 3)
	occupy(t, f, out, 4)
	d.RouteFailed(m, in, []router.LinkID{out}, true, 0)
	d.VCFreed(in)
	if d.GPIsGenerate(in) {
		t.Fatal("G survived VC release")
	}
}

// TestNDMPromotionSelective: resetting an I flag promotes, under the
// selective policy, only the inputs whose blocked message actually requests
// that output.
func TestNDMPromotionSelective(t *testing.T) {
	f := ringFabric(t)
	d := detect.NewNDMOpt(f, 1, 8, detect.PromoteWaiting)
	// Router at node 1 has inputs c0 (0->1, X+) and the link 2->1 (X-).
	inPlus := f.NetLink(0, 0)  // carries mPlus heading further in X+
	inMinus := f.NetLink(2, 1) // carries mMinus heading further in X-
	outPlus := f.NetLink(1, 0)
	mPlus := occupy(t, f, inPlus, 3)   // dst 3: candidates from node 1 = {outPlus}
	mMinus := occupy(t, f, inMinus, 7) // dst 7: candidates from node 1 = {1->0}
	_, _ = mPlus, mMinus
	occupy(t, f, outPlus, 5) // a message blocking outPlus

	// Both inputs currently P. Let outPlus accumulate an I flag, then
	// transmit across it: the reset must promote only inPlus.
	tick(d, 0, f)
	tick(d, 1, f)
	if !d.IFlagSet(outPlus) {
		t.Fatal("I not set")
	}
	tick(d, 2, f, outPlus)
	if !d.GPIsGenerate(inPlus) {
		t.Fatal("selective promotion missed the waiting input")
	}
	if d.GPIsGenerate(inMinus) {
		t.Fatal("selective promotion hit an unrelated input")
	}

	// The simple policy promotes both.
	d2 := detect.NewNDMOpt(f, 1, 8, detect.PromoteAll)
	tick(d2, 0, f)
	tick(d2, 1, f)
	tick(d2, 2, f, outPlus)
	if !d2.GPIsGenerate(inPlus) || !d2.GPIsGenerate(inMinus) {
		t.Fatal("PromoteAll did not promote every input")
	}
}

// TestNDMSharedInputFlagMultiVC documents the shared-flag semantics of the
// real hardware on multi-VC input channels: the G/P flag is one bit per
// physical input channel, so once the latest arrival sets it to G, every
// blocked message that arrived through that channel becomes eligible to
// detect. (The paper's single-detection examples use one message per
// channel; with several VCs the paper accepts that "more than a single
// message will be labeled as deadlocked" in some configurations.)
func TestNDMSharedInputFlagMultiVC(t *testing.T) {
	f := fabric2D(t) // 3 VCs per channel
	d := detect.NewNDM(f, 4)
	in := f.NetLink(0, 0)
	out := f.NetLink(1, 0)
	// Fill the output so routing fails, keep it "active" at first.
	occupy(t, f, out, 4)
	occupy(t, f, out, 4)
	occupy(t, f, out, 4)

	// Three messages arrive on the same input channel in sequence.
	m1 := occupy(t, f, in, 3)
	if d.RouteFailed(m1, in, []router.LinkID{out}, true, 0) {
		t.Fatal("marked")
	}
	if d.GPIsGenerate(in) {
		t.Fatal("m1 left free VCs: flag must stay P")
	}
	m2 := occupy(t, f, in, 3)
	d.RouteFailed(m2, in, []router.LinkID{out}, true, 1)
	m3 := occupy(t, f, in, 3) // fills the channel: m3 is the latest arrival
	tick(d, 1, f, out)        // output transmits: I clear when m3 tests it
	if d.RouteFailed(m3, in, []router.LinkID{out}, true, 2) {
		t.Fatal("marked on first attempt")
	}
	if !d.GPIsGenerate(in) {
		t.Fatal("latest arrival saw activity: flag must be G")
	}
	// The output now stalls past t2: every waiting message on this input
	// reads the same G flag and marks.
	for now := int64(2); now < 10; now++ {
		tick(d, now, f)
	}
	for _, m := range []*router.Message{m1, m2, m3} {
		if !d.RouteFailed(m, in, []router.LinkID{out}, false, 10) {
			t.Errorf("message %d not marked despite shared G flag", m.ID)
		}
	}
}

func TestNDMValidation(t *testing.T) {
	f := ringFabric(t)
	for _, fn := range []func(){
		func() { detect.NewNDMOpt(f, 0, 8, detect.PromoteAll) },
		func() { detect.NewNDMOpt(f, 4, 2, detect.PromoteAll) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestNDMNames(t *testing.T) {
	f := ringFabric(t)
	if got := detect.NewNDM(f, 32).Name(); got != "ndm(t2=32)" {
		t.Errorf("Name() = %q", got)
	}
	got := detect.NewNDMOpt(f, 2, 32, detect.PromoteWaiting).Name()
	if !strings.Contains(got, "t1=2") || !strings.Contains(got, "selective") {
		t.Errorf("Name() = %q", got)
	}
}

func TestPDMCounterAndMark(t *testing.T) {
	f := ringFabric(t)
	d := detect.NewPDM(f, 4)
	in := f.NetLink(0, 0)
	out := f.NetLink(1, 0)
	m := occupy(t, f, in, 3)
	occupy(t, f, out, 4)

	// Below threshold: no mark even on later attempts.
	for now := int64(0); now <= 4; now++ {
		if d.RouteFailed(m, in, []router.LinkID{out}, now == 0, now) {
			t.Fatalf("marked at cycle %d", now)
		}
		tick(d, now, f)
	}
	// Threshold exceeded: IF set, mark on the next attempt (first or not).
	if !d.InactivitySet(out) {
		t.Fatal("IF not set")
	}
	if !d.RouteFailed(m, in, []router.LinkID{out}, false, 5) {
		t.Fatal("not marked")
	}
	// Any transmission rescinds it.
	tick(d, 5, f, out)
	if d.InactivitySet(out) {
		t.Fatal("IF survived transmission")
	}
	if d.RouteFailed(m, in, []router.LinkID{out}, false, 6) {
		t.Fatal("marked after activity")
	}
}

func TestPDMMarksEvenOnFirstAttempt(t *testing.T) {
	f := ringFabric(t)
	d := detect.NewPDM(f, 2)
	in := f.NetLink(0, 0)
	out := f.NetLink(1, 0)
	m := occupy(t, f, in, 3)
	occupy(t, f, out, 4)
	for now := int64(0); now < 5; now++ {
		tick(d, now, f)
	}
	if !d.RouteFailed(m, in, []router.LinkID{out}, true, 5) {
		t.Fatal("PDM must mark on the first attempt when all IFs are set")
	}
}

func TestPDMRequiresAllOutputsInactive(t *testing.T) {
	f := ringFabric(t)
	d := detect.NewPDM(f, 2)
	in := f.NetLink(0, 0)
	out1, out2 := f.NetLink(1, 0), f.NetLink(1, 1)
	m := occupy(t, f, in, 3)
	occupy(t, f, out1, 4)
	occupy(t, f, out2, 4)
	for now := int64(0); now < 5; now++ {
		tick(d, now, f, out2) // out2 stays active
	}
	if d.RouteFailed(m, in, []router.LinkID{out1, out2}, false, 5) {
		t.Fatal("marked with one output active")
	}
}

func TestPDMValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	detect.NewPDM(ringFabric(t), 0)
}

func TestSourceAgeTimeout(t *testing.T) {
	d := detect.NewSourceAgeTimeout(100)
	m := &router.Message{InjectTime: 50}
	if d.RouteFailed(m, 0, nil, false, 149) {
		t.Fatal("marked before threshold")
	}
	if !d.RouteFailed(m, 0, nil, false, 151) {
		t.Fatal("not marked after threshold")
	}
	if d.Name() != "src-age(th=100)" {
		t.Errorf("name %q", d.Name())
	}
}

func TestSourceStallTimeout(t *testing.T) {
	d := detect.NewSourceStallTimeout(50)
	m := &router.Message{Length: 16, Injected: 8, LastSourceFlit: 100}
	if d.RouteFailed(m, 0, nil, false, 149) {
		t.Fatal("marked before threshold")
	}
	if !d.RouteFailed(m, 0, nil, false, 151) {
		t.Fatal("not marked after threshold")
	}
	// Fully injected messages cannot be observed by the source.
	m.Injected = 16
	if d.RouteFailed(m, 0, nil, false, 1000) {
		t.Fatal("marked a fully injected message")
	}
}

func TestHeaderBlockTimeout(t *testing.T) {
	d := detect.NewHeaderBlockTimeout(30)
	m := &router.Message{BlockedSince: 100}
	if d.RouteFailed(m, 0, nil, true, 200) {
		t.Fatal("marked on first attempt")
	}
	if d.RouteFailed(m, 0, nil, false, 129) {
		t.Fatal("marked before threshold")
	}
	if !d.RouteFailed(m, 0, nil, false, 131) {
		t.Fatal("not marked after threshold")
	}
}

func TestNoneDetector(t *testing.T) {
	var d detect.None
	if d.Name() != "none" {
		t.Errorf("name %q", d.Name())
	}
	if d.RouteFailed(nil, 0, nil, false, 1<<40) {
		t.Fatal("None marked a message")
	}
	d.RouteSucceeded(nil, 0)
	d.VCFreed(0)
	d.EndCycle(0, nil, nil)
}

func TestTimeoutDetectorNoOps(t *testing.T) {
	// The timer-based detectors keep no channel state; their event hooks
	// must be callable no-ops.
	for _, d := range []detect.Detector{
		detect.NewSourceAgeTimeout(10),
		detect.NewSourceStallTimeout(10),
		detect.NewHeaderBlockTimeout(10),
	} {
		d.RouteSucceeded(nil, 0)
		d.VCFreed(0)
		d.EndCycle(0, nil, nil)
		if d.Name() == "" {
			t.Error("empty name")
		}
	}
}
