package detect

import (
	"fmt"

	"wormnet/internal/router"
)

// The crude timeout heuristics referenced in the paper's introduction.
// They need no channel hardware at all; they consult per-message timers
// maintained by the engine. The paper reports that its previous mechanism
// (PDM) already improved on these by roughly a factor of 10, and NDM by two
// orders of magnitude.
//
// All three mark only blocked messages (a message that is advancing cannot
// trigger recovery in the simulator, and recovering an advancing message
// would be meaningless), which is the natural reading of the original
// proposals.

// SourceAgeTimeout marks a blocked message once the time since it started
// injecting exceeds the threshold (Reeves, Gehringer and Chandiramani:
// "a packet is considered to be deadlocked when the time since it was
// injected is longer than a threshold").
type SourceAgeTimeout struct {
	Threshold int64
}

// NewSourceAgeTimeout returns the mechanism with the given threshold.
func NewSourceAgeTimeout(threshold int64) *SourceAgeTimeout {
	return &SourceAgeTimeout{Threshold: threshold}
}

// Name implements Detector.
func (d *SourceAgeTimeout) Name() string { return fmt.Sprintf("src-age(th=%d)", d.Threshold) }

// RouteFailed implements Detector.
func (d *SourceAgeTimeout) RouteFailed(m *router.Message, _ router.LinkID, _ []router.LinkID, _ bool, now int64) bool {
	return now-m.InjectTime > d.Threshold
}

// RouteSucceeded implements Detector.
func (d *SourceAgeTimeout) RouteSucceeded(*router.Message, router.LinkID) {}

// VCFreed implements Detector.
func (d *SourceAgeTimeout) VCFreed(router.LinkID) {}

// EndCycle implements Detector.
func (d *SourceAgeTimeout) EndCycle(int64, []router.LinkID, []bool) {}

// SourceStallTimeout marks a blocked message once the time since its source
// last managed to inject a flit exceeds the threshold (the compressionless
// routing criterion of Kim, Liu and Chien: "a deadlock is detected if the
// time since the last flit was injected exceeds a threshold"). Once the
// tail has been injected the source can observe no further stall, so fully
// injected messages are exempt; this is the documented limitation of
// source-side detection.
type SourceStallTimeout struct {
	Threshold int64
}

// NewSourceStallTimeout returns the mechanism with the given threshold.
func NewSourceStallTimeout(threshold int64) *SourceStallTimeout {
	return &SourceStallTimeout{Threshold: threshold}
}

// Name implements Detector.
func (d *SourceStallTimeout) Name() string { return fmt.Sprintf("src-stall(th=%d)", d.Threshold) }

// RouteFailed implements Detector.
func (d *SourceStallTimeout) RouteFailed(m *router.Message, _ router.LinkID, _ []router.LinkID, _ bool, now int64) bool {
	if m.Injected >= m.Length {
		return false
	}
	return now-m.LastSourceFlit > d.Threshold
}

// RouteSucceeded implements Detector.
func (d *SourceStallTimeout) RouteSucceeded(*router.Message, router.LinkID) {}

// VCFreed implements Detector.
func (d *SourceStallTimeout) VCFreed(router.LinkID) {}

// EndCycle implements Detector.
func (d *SourceStallTimeout) EndCycle(int64, []router.LinkID, []bool) {}

// HeaderBlockTimeout marks a message once its header has been continuously
// blocked at one node past the threshold (the Disha criterion of Anjan and
// Pinkston: "deadlocks are detected at the node containing the header by
// measuring the time that the header is blocked").
type HeaderBlockTimeout struct {
	Threshold int64
}

// NewHeaderBlockTimeout returns the mechanism with the given threshold.
func NewHeaderBlockTimeout(threshold int64) *HeaderBlockTimeout {
	return &HeaderBlockTimeout{Threshold: threshold}
}

// Name implements Detector.
func (d *HeaderBlockTimeout) Name() string { return fmt.Sprintf("hdr-block(th=%d)", d.Threshold) }

// RouteFailed implements Detector.
func (d *HeaderBlockTimeout) RouteFailed(m *router.Message, _ router.LinkID, _ []router.LinkID, first bool, now int64) bool {
	if first {
		return false
	}
	return now-m.BlockedSince > d.Threshold
}

// RouteSucceeded implements Detector.
func (d *HeaderBlockTimeout) RouteSucceeded(*router.Message, router.LinkID) {}

// VCFreed implements Detector.
func (d *HeaderBlockTimeout) VCFreed(router.LinkID) {}

// EndCycle implements Detector.
func (d *HeaderBlockTimeout) EndCycle(int64, []router.LinkID, []bool) {}
