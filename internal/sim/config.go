// Package sim is the cycle-driven simulation engine that drives the router
// fabric, the traffic workload, the deadlock detection mechanism under test
// and the recovery engine, and accumulates the statistics the paper
// reports.
//
// Timing model (paper Section 4.1): routing takes one cycle (an output
// assigned in cycle T carries its first flit in cycle T+1) and crossbar plus
// channel transmission take one cycle per flit per hop; one flit crosses
// each physical channel per cycle, and one flit leaves each input physical
// channel per cycle (the crossbar port constraint).
package sim

import (
	"fmt"

	"wormnet/internal/detect"
	"wormnet/internal/metrics"
	"wormnet/internal/recovery"
	"wormnet/internal/router"
	"wormnet/internal/routing"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

// PatternFactory builds a traffic pattern once the topology exists.
type PatternFactory func(*topology.Torus) traffic.Pattern

// DetectorFactory builds the detection mechanism once the fabric exists.
type DetectorFactory func(*router.Fabric) detect.Detector

// ProcessFactory builds a custom injection process once the topology
// exists, overriding the default Bernoulli process.
type ProcessFactory func(*topology.Torus) traffic.Process

// Config fully describes one simulation run.
type Config struct {
	// K and N select the k-ary n-cube (the paper uses K=8, N=3).
	K, N int

	// Router holds the fabric parameters (VCs per channel, buffer depth,
	// injection/delivery ports).
	Router router.Config

	// Pattern and Lengths define the workload; Load is the offered traffic
	// in flits/cycle/node.
	Pattern PatternFactory
	Lengths traffic.LengthDist
	Load    float64

	// Process, when non-nil, replaces the default Bernoulli injection
	// process built from Pattern, Lengths and Load (e.g. a bursty source
	// model). Pattern, Lengths and Load are then ignored for generation.
	Process ProcessFactory

	// Routing selects the routing algorithm; nil means the paper's true
	// fully adaptive routing. Deadlock detection requires an algorithm
	// that uses all virtual channels uniformly (only true fully adaptive
	// qualifies), because the detection hardware monitors physical
	// channels.
	Routing routing.Algorithm

	// Detector builds the detection mechanism under test. Nil means no
	// detection (and therefore no recovery).
	Detector DetectorFactory

	// Recovery selects how marked messages are removed from the network.
	Recovery recovery.Style

	// Select is the virtual-channel selection policy for adaptive routing.
	Select router.SelectPolicy

	// InjectionLimit is the injection-limitation threshold of López &
	// Duato: a new message may enter only while the number of busy virtual
	// channels among the node's network output channels is at most this
	// value. Negative disables the mechanism.
	InjectionLimit int

	// MaxSourceQueue bounds each node's source queue; while full, message
	// generation at that node pauses. Zero selects the default (16).
	MaxSourceQueue int

	// Warmup and Measure are the lengths, in cycles, of the warm-up and
	// measurement phases.
	Warmup, Measure int64

	// OracleEvery, when positive, runs the global deadlock oracle every
	// that many cycles to measure actual deadlock frequency. The oracle
	// always runs on the cycles where messages are marked, to classify the
	// detection as true or false.
	OracleEvery int64

	// Seed makes the run reproducible.
	Seed uint64

	// Shards is the number of workers the per-cycle work is partitioned
	// over: the torus is split into Shards contiguous node blocks, each
	// stepped by its own goroutine under a deterministic two-phase cycle
	// barrier. Results are byte-identical for every shard count. Zero
	// selects 1 (fully serial); the count must not exceed the node count.
	Shards int

	// Trace, when non-nil, attaches the flight recorder: the engine (and
	// the detector, if it implements detect.Traceable) emit event records
	// into it. Tracing is pure observation — it never changes simulation
	// behavior — and the nil default costs one branch per emit site and
	// zero allocations. Recorders are not safe for concurrent use, so
	// concurrent sweeps must attach a distinct Recorder per run (the
	// harness's TraceDir option does exactly that).
	Trace *trace.Recorder

	// Metrics, when non-nil, attaches the live telemetry collector: the
	// engine updates its counters at the same instrumentation sites the
	// flight recorder uses and lets its sampler snapshot network state every
	// window. Like tracing, metrics are pure observation — simulation output
	// is byte-identical with or without them — and the nil default costs one
	// branch per site with zero allocations. A Collector is single-run
	// (Attach panics on reuse), so concurrent sweeps must build one per run,
	// as the harness's SeriesDir option does.
	Metrics *metrics.Collector

	// DenseKernel selects the reference cycle kernel that scans the full
	// fabric every cycle (all output links, all delivery VCs, all source
	// queues, all generator countdowns) instead of the default sparse kernel
	// that iterates only the active sets. Results are byte-identical either
	// way — the sparse kernel is a pure iteration-order refactoring and both
	// modes share the same skip-ahead generation stream — so this exists for
	// equivalence testing and as a fallback while diagnosing kernel bugs.
	DenseKernel bool

	// Chooser, when non-nil, resolves the engine's nondeterministic
	// decision points (VC selection, arbitration winners) externally
	// instead of with the seeded RNG and round-robin pointers, so a driver
	// can enumerate every interleaving (see internal/mc). Requires
	// Shards == 1: decisions must occur in one global order.
	Chooser Chooser

	// Debug enables per-cycle fabric invariant checking and active-set
	// auditing (slow): every sparse-kernel list is cross-checked against a
	// full rescan each cycle.
	Debug bool

	// RetainMessages keeps delivered messages allocated instead of
	// recycling them into the pool, so tests and tools can inspect their
	// final state (Phase, DeliverTime). Long measurement runs should leave
	// this off.
	RetainMessages bool
}

// DefaultConfig returns the paper's baseline configuration: an 8-ary 3-cube
// with the default router, uniform traffic, 16-flit messages, NDM detection
// with threshold 32, progressive recovery, and the injection-limitation
// mechanism enabled.
func DefaultConfig() Config {
	return Config{
		K:      8,
		N:      3,
		Router: router.DefaultConfig(),
		Pattern: func(t *topology.Torus) traffic.Pattern {
			return traffic.NewUniform(t)
		},
		Lengths: traffic.Fixed(16),
		Load:    0.2,
		Detector: func(f *router.Fabric) detect.Detector {
			return detect.NewNDM(f, 32)
		},
		Recovery:       recovery.Progressive,
		Select:         router.SelectRandom,
		InjectionLimit: 6,
		MaxSourceQueue: 16,
		Warmup:         10_000,
		Measure:        50_000,
		Seed:           1,
	}
}

func (c *Config) validate() error {
	switch {
	case c.K < 2 || c.N < 1:
		return fmt.Errorf("sim: invalid topology %d-ary %d-cube", c.K, c.N)
	case c.Process == nil && c.Pattern == nil:
		return fmt.Errorf("sim: Pattern is required")
	case c.Process == nil && c.Lengths == nil:
		return fmt.Errorf("sim: Lengths is required")
	case c.Load < 0:
		return fmt.Errorf("sim: negative Load")
	case c.Warmup < 0 || c.Measure <= 0:
		return fmt.Errorf("sim: Warmup must be >= 0 and Measure > 0")
	}
	if c.MaxSourceQueue == 0 {
		c.MaxSourceQueue = 16
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if nodes := pow(c.K, c.N); c.Shards < 0 || c.Shards > nodes {
		return fmt.Errorf("sim: Shards must be between 1 and the node count (%d), got %d", nodes, c.Shards)
	}
	if c.Chooser != nil && c.Shards != 1 {
		return fmt.Errorf("sim: a Chooser requires Shards == 1, got %d", c.Shards)
	}
	if c.Routing == nil {
		c.Routing = routing.TrueFullyAdaptive{}
	}
	if c.Router.VCsPerLink < c.Routing.MinVCs() {
		return fmt.Errorf("sim: %s requires at least %d virtual channels, got %d",
			c.Routing.Name(), c.Routing.MinVCs(), c.Router.VCsPerLink)
	}
	if c.Detector != nil && !c.Routing.UniformVCs() {
		return fmt.Errorf("sim: detection monitors physical channels and requires a routing algorithm that uses all virtual channels uniformly; %s does not (disable detection: it is deadlock-free by construction)",
			c.Routing.Name())
	}
	return nil
}

// pow computes k^n in integer arithmetic (node count of a k-ary n-cube).
func pow(k, n int) int {
	p := 1
	for i := 0; i < n; i++ {
		p *= k
	}
	return p
}
