package sim

import (
	"math/bits"
	"slices"

	"wormnet/internal/metrics"
	"wormnet/internal/router"
	"wormnet/internal/trace"
)

// Sharded execution of one simulation cycle.
//
// The torus is split into Shards contiguous node blocks (topology.Partition)
// and every per-cycle stage runs as a two-phase barrier step: phase A
// computes decisions for each shard against previous-phase state without
// mutating anything another shard may read, phase B commits them. Stages
// whose side effects must interleave in one global order (message-pool
// allocation, trace emission, statistics, detector G/P transitions, the
// recovery engine) replay per-shard record lists on the serial spine between
// phases, concatenated in shard order.
//
// Ownership rules (see DESIGN.md §11):
//
//   - A link and its VCs are owned by the shard of Links[l].Dst — the router
//     at whose input the buffers sit. Occupancy structures are sharded the
//     same way (router.Fabric.SetPartition), so allocation and release are
//     shard-local.
//   - Arbitration state of an output link (round-robin pointer, transmitted
//     bitmap entry, txLinks membership) is owned by the shard of Links[l].Src:
//     all feeder VCs of an output link are input VCs at router Src, so the
//     arbitrating shard is the one that owns every feeder.
//   - Cross-shard flit arrivals (a winner whose target VC is owned by another
//     shard) are deferred as boundary moves and committed serially.
//
// Determinism: every phase iterates its shard's nodes in ascending order and
// canonicalizes any fabric-derived set it consumes (feeder lists are sorted;
// occupancy lists are only used as unordered sets). The shard-order
// concatenation of per-shard record lists is therefore the global
// node-ascending sequence regardless of the shard count, which is what makes
// results byte-identical for every value of Config.Shards.

// phaseID enumerates the parallel phases of one cycle. An int dispatch (not
// closures) keeps the single-shard path allocation-free.
type phaseID uint8

const (
	phaseGenerate phaseID = iota
	phaseAdmit
	phaseTransferA
	phaseTransferB
	phaseDrain
	phaseDetect
	phaseRouteCands
	phaseFeed
)

// genRec is one generation decision awaiting serial commit.
type genRec struct {
	node, dst, length int32
}

// admitRec is one completed admission awaiting serial trace/counter replay.
type admitRec struct {
	id   router.MsgID
	link router.LinkID
	vc   router.VCID
	node int32
}

// freeRec is one VC release performed by a shard's transfer commit, awaiting
// serial trace emission and detector notification.
type freeRec struct {
	msg  router.MsgID
	link router.LinkID
	vc   router.VCID
}

// boundaryMove is the destination half of a flit transfer whose target VC is
// owned by another shard; it is applied on the serial spine.
type boundaryMove struct {
	v            router.VCID
	header, tail bool
}

// shardState is the per-shard slice of engine state plus the record lists
// one cycle's phases fill and the serial spine drains. All slices are
// retained and re-sliced to length zero each cycle, so steady-state
// operation does not allocate.
type shardState struct {
	lo, hi int // node range [lo, hi)

	gens      []genRec        // generate:  decisions for serial commit
	admits    []admitRec      // admit:     trace/counter replay records
	moves     []router.VCID   // transferA: winning source VCs, decision order
	bmoves    []boundaryMove  // transferB: deferred cross-shard arrivals
	frees     []freeRec       // transferB: VC releases for serial replay
	arrivals  []router.MsgID  // transferB: headers that reached a new router
	delivered []router.MsgID  // drain:     tails consumed at destination
	txLinks   []router.LinkID // transferA: links transmitted this cycle (Src-owned)
	injecting []router.MsgID  // persistent: messages this shard is injecting
	fed       []router.MsgID  // feed:      first flits fed this cycle

	// Sparse-kernel state (see the stage comments below). keyBits is the
	// shard's active-output-link bitmap: bit (node-lo)*span+k marks output
	// position k of router node as having acquired feeders this cycle, so a
	// word-ascending, bit-ascending scan visits the active links in
	// canonical arbitration order without sorting. genHeap is the shard's
	// (due, node) min-heap of scheduled generator arrivals; genDefA holds
	// the nodes whose arrival was deferred by a full queue last cycle (due
	// this cycle, node-ascending by construction), genDefB collects this
	// cycle's deferrals, and generateShard swaps the two at the end of the
	// stage.
	keyBits []uint64
	genHeap []int32
	genDefA []int32
	genDefB []int32
}

// runPhase executes one phase across all shards: inline when there is a
// single shard (the default — no goroutines, no allocation), dispatched to
// the persistent shard workers otherwise. Shard 0 runs on the calling
// goroutine. The workers park on unbuffered phase channels between barrier
// steps, so the steady-state cost is two channel operations per worker per
// phase and zero allocations — the previous fork-join (a goroutine spawn
// plus a sync.WaitGroup per phase per cycle) allocated on every step.
func (e *Engine) runPhase(ph phaseID) {
	if len(e.shards) == 1 {
		e.runShardPhase(ph, 0)
		return
	}
	if e.workerCh == nil {
		e.startWorkers()
	}
	for _, ch := range e.workerCh {
		ch <- ph
	}
	e.runShardPhase(ph, 0)
	for range e.workerCh {
		<-e.workerDone
	}
}

// startWorkers launches one parked goroutine per shard beyond the first.
// Channel sends and receives carry the happens-before edges in both
// directions, so each worker's shard mutations are visible to the serial
// spine after the barrier and vice versa — the same guarantee the WaitGroup
// fork-join provided.
func (e *Engine) startWorkers() {
	e.workerCh = make([]chan phaseID, len(e.shards)-1)
	e.workerDone = make(chan struct{}, len(e.shards)-1)
	for i := range e.workerCh {
		ch := make(chan phaseID)
		e.workerCh[i] = ch
		s := i + 1
		go func() {
			for ph := range ch {
				e.runShardPhase(ph, s)
				e.workerDone <- struct{}{}
			}
		}()
	}
}

// StopWorkers terminates the persistent shard workers, if any are running.
// Run calls it on exit; callers driving a multi-shard engine through Step
// directly should call it when done stepping to avoid leaking parked
// goroutines. Safe to call repeatedly and on single-shard engines; the next
// multi-shard runPhase restarts the pool.
func (e *Engine) StopWorkers() {
	if e.workerCh == nil {
		return
	}
	for _, ch := range e.workerCh {
		close(ch)
	}
	e.workerCh = nil
	e.workerDone = nil
}

func (e *Engine) runShardPhase(ph phaseID, s int) {
	switch ph {
	case phaseGenerate:
		e.generateShard(s)
	case phaseAdmit:
		e.admitShard(s)
	case phaseTransferA:
		e.transferDecide(s)
	case phaseTransferB:
		e.transferCommit(s)
	case phaseDrain:
		e.drainShard(s)
	case phaseDetect:
		e.detShard.EndCycleShard(s, e.now, e.transmitted)
	case phaseRouteCands:
		e.routeCandsShard(s)
	case phaseFeed:
		e.feedShard(s)
	}
}

// ---------------------------------------------------------------------------
// Stage 1: message generation.
//
// Phase A: each node draws from its own per-node RNG stream (so the draw
// sequence is independent of the shard count) against the pre-cycle queue
// depths; the only mutation is the node's own stream, its arrival countdown
// and, for stateful processes, per-source process state. Serial commit:
// allocate the messages from the shared pool in node-ascending order
// (canonical MsgID assignment) and push them onto the source queues.
//
// Processes that implement traffic.Skipahead replace the per-cycle Bernoulli
// trial with a geometric inter-arrival countdown: genDue[node] is the cycle
// of the node's next arrival, advanced by one Geometric draw per arrival
// instead of one uniform draw per cycle. A node whose source queue is full
// when its arrival comes due defers to the next cycle WITHOUT consuming a
// draw — exactly the dense semantics, where a full queue skips the trial
// entirely. The sparse kernel keeps the scheduled nodes in a per-shard
// (due, node) min-heap and visits only the nodes due this cycle; the dense
// kernel scans every node's countdown. Both consume the identical stream,
// and the heap's node tie-break makes the sparse pop order node-ascending,
// so the gens record lists are byte-identical across kernels.
//
// Deferred arrivals stay OUT of the heap: at saturation every node defers
// every cycle, and re-heaping the whole population each cycle is exactly
// the O(nodes log nodes) churn the sparse kernel exists to avoid. Instead
// a deferral lands on the genDefB list and is replayed next cycle from
// genDefA (the buffers swap at the end of the stage). genDefA is
// node-ascending by construction — deferrals are appended in processing
// order, and every deferred node shares the same due cycle — and the heap
// never holds a node due before now, so an ascending two-way merge of
// genDefA with the heap's due-now pops reproduces the canonical
// node-ascending arrival order.

func (e *Engine) generateShard(s int) {
	sh := &e.shards[s]
	sh.gens = sh.gens[:0]
	max := e.cfg.MaxSourceQueue
	if e.genSkip == nil {
		// Stateful process (no skip-ahead capability): dense per-cycle
		// draws, advancing per-source process state every cycle.
		for node := sh.lo; node < sh.hi; node++ {
			if e.queues[node].Len() >= max {
				// Source queue full: generation pauses at this node (offered
				// load is capped, which is inevitable beyond saturation).
				continue
			}
			dst, length, ok := e.gen.Next(node, &e.nodeRng[node])
			if !ok {
				continue
			}
			sh.gens = append(sh.gens, genRec{node: int32(node), dst: int32(dst), length: int32(length)})
		}
		return
	}
	if e.cfg.DenseKernel {
		for node := sh.lo; node < sh.hi; node++ {
			due := e.genDue[node]
			if due < 0 || due > e.now {
				continue
			}
			e.generateArrival(sh, node, max)
		}
		return
	}
	// Merge last cycle's deferrals (all due now, node-ascending) with the
	// heap's due-now pops (node-ascending by the heap tie-break) into one
	// node-ascending pass. A node processed here re-enters either the heap
	// (arrival happened, next gap drawn) or genDefB (queue still full), so
	// the two sources stay disjoint.
	def := sh.genDefA
	di := 0
	for {
		hn := int32(-1)
		if len(sh.genHeap) > 0 && e.genDue[sh.genHeap[0]] <= e.now {
			hn = sh.genHeap[0]
		}
		var node int
		switch {
		case di < len(def) && (hn < 0 || def[di] < hn):
			node = int(def[di])
			di++
		case hn >= 0:
			node = int(e.heapPop(sh))
		default:
			sh.genDefA, sh.genDefB = sh.genDefB, sh.genDefA[:0]
			return
		}
		if e.generateArrival(sh, node, max) {
			sh.genDefB = append(sh.genDefB, int32(node))
		} else if e.genDue[node] >= 0 {
			e.heapPush(sh, int32(node))
		}
	}
}

// generateArrival handles one due arrival at node: defer on a full queue
// (due = now+1, no draw consumed, reported to the caller), otherwise record
// the arrival and draw the next gap. Shared by both kernels so the stream
// cannot diverge; the dense kernel ignores the deferral signal (its scan
// finds the node again by its countdown).
func (e *Engine) generateArrival(sh *shardState, node, max int) (deferred bool) {
	if e.queues[node].Len() >= max {
		e.genDue[node] = e.now + 1
		return true
	}
	r := &e.nodeRng[node]
	dst, length := e.genSkip.Arrive(node, r)
	sh.gens = append(sh.gens, genRec{node: int32(node), dst: int32(dst), length: int32(length)})
	gap, ok := e.genSkip.NextGap(node, r)
	if !ok {
		e.genDue[node] = -1
		return false
	}
	e.genDue[node] = e.now + 1 + int64(gap)
	return false
}

func (e *Engine) commitGenerate() {
	for s := range e.shards {
		for _, g := range e.shards[s].gens {
			m := e.fab.NewMessage(int(g.node), int(g.dst), int(g.length), e.now)
			m.Phase = router.PhaseQueued
			e.queuePush(int(g.node), m.ID)
			e.mc.Inc(metrics.MGenerated)
			if e.measuring {
				e.st.Generated++
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Stage 2: injection admission (with the injection-limitation mechanism).
//
// The fabric commit (allocating the injection VC) runs in the parallel
// phase: injection links are owned by their node's shard, and the
// cross-shard reads the phase performs — the busy counts of the node's
// network output links for the injection-limitation check — are stable
// during the phase, since admission only ever allocates injection VCs.
// Trace emission and counters replay serially in node order.

// admitShard admits queued messages into injection VCs. The sparse kernel
// visits only the shard's nonempty source queues, scanning the bitmap
// word-ascending, bit-ascending — node-ascending, the same order the dense
// scan produces by skipping empty queues. Each word is copied before its
// bits are walked: an admission that empties a queue clears that node's
// live bit mid-stage (queueDrained), and the stage must still finish the
// nodes that were nonempty when it started. No bit is ever set during the
// stage (admission only pops queues), so the copies cannot go stale the
// other way.
func (e *Engine) admitShard(s int) {
	sh := &e.shards[s]
	sh.admits = sh.admits[:0]
	if e.cfg.DenseKernel {
		for node := sh.lo; node < sh.hi; node++ {
			e.admitNode(sh, node)
		}
		return
	}
	ne := e.neBits[s]
	for w, word := range ne {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			e.admitNode(sh, sh.lo+w<<6+b)
		}
	}
}

func (e *Engine) admitNode(sh *shardState, node int) {
	fab := e.fab
	limit := e.cfg.InjectionLimit
	q := &e.queues[node]
	if q.Len() == 0 {
		return
	}
	// The injection-limitation check must be re-evaluated per admission,
	// not once per node: a router with several injection ports would
	// otherwise admit up to InjPorts messages in the cycle the busy
	// count is still at the threshold, overshooting the limit. Each
	// message admitted this cycle will occupy a network output VC before
	// the count is observed again, so it is charged immediately.
	busy := 0
	if limit >= 0 {
		busy = fab.BusyNetOutputVCs(node)
	}
	for p := 0; p < e.cfg.Router.InjPorts && q.Len() > 0; p++ {
		if limit >= 0 && busy > limit {
			break
		}
		l := fab.InjLink(node, p)
		vc := fab.FreeVC(l)
		if vc == router.NilVC {
			continue
		}
		m := fab.Msg(q.Pop())
		busy++
		m.Phase = router.PhaseNetwork
		m.InjLink = l
		m.InjectTime = e.now
		m.LastSourceFlit = e.now
		fab.Allocate(m, router.NilVC, vc)
		m.HeadVC = vc
		sh.injecting = append(sh.injecting, m.ID)
		sh.admits = append(sh.admits, admitRec{id: m.ID, link: l, vc: vc, node: int32(node)})
	}
	if q.Len() == 0 {
		// The stage emptied this queue: drop the node from its shard's
		// nonempty list (shard-local — the node belongs to this shard).
		e.queueDrained(node)
	}
}

func (e *Engine) commitAdmit() {
	for s := range e.shards {
		for _, a := range e.shards[s].admits {
			m := e.fab.Msg(a.id)
			e.inFlight++
			e.tr.Emit(trace.KindInject, a.id, a.link, a.node, int64(m.Length), int32(m.Dst))
			e.tr.Emit(trace.KindVCAlloc, a.id, a.link, a.node, 0, int32(a.vc))
			e.mc.Inc(metrics.MInjected)
			if e.measuring {
				e.st.Injected++
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Stage 3: flit transfer (crossbar + channel).
//
// Phase A (transferDecide) arbitrates every output link of the shard's
// routers against pre-cycle state: nothing is mutated except the shard's own
// arbitration state (round-robin pointers, crossbar-port stamps, transmitted
// bits), so reads of remote buffer occupancy are race-free. Phase B
// (transferCommit) applies the decided moves: the source half is always
// shard-local (feeders are input VCs at the arbitrating router); the
// destination half is applied inline when the target VC is shard-local and
// deferred as a boundary move otherwise. Constraints, as before: at most one
// flit crosses each physical channel per cycle, and at most one flit leaves
// each input physical channel per cycle (the crossbar port).

func (e *Engine) transferDecide(s int) {
	sh := &e.shards[s]
	fab := e.fab
	vcs := fab.VCs
	// Clear this shard's transmitted bits from the previous cycle.
	for _, l := range sh.txLinks {
		e.transmitted[l] = false
	}
	sh.txLinks = sh.txLinks[:0]
	sh.moves = sh.moves[:0]
	deg := e.topo.Degree()
	dp := e.cfg.Router.DelPorts
	span := deg + dp
	buf := int32(fab.Cfg.BufFlits)
	dense := e.cfg.DenseKernel
	// Bucket transfer requests by target physical channel, marking each
	// target in the shard's active-link bitmap. The set is unconditional —
	// re-marking an already-active link is idempotent and cheaper than the
	// poorly predicted first-feeder branch it would take to avoid. Every
	// feeder is an input VC at one of this shard's routers, so scanning the
	// shard's occupied VCs covers exactly the output links this shard
	// arbitrates. The bit position encodes the canonical arbitration
	// position (precomputed in linkKey) — routers ascending, network output
	// links before delivery ports, each in port order — NOT raw LinkID
	// order: the crossbar-input constraint (inputUsedAt) couples the
	// arbitrations of one router's outputs, so the order links are decided
	// in is part of the determinism contract.
	relBase := sh.lo * span
	if dense {
		for _, i := range fab.OccupiedShard(s) {
			if vcs[i].Flits > 0 && vcs[i].Next != router.NilVC {
				tl := vcs[vcs[i].Next].Link
				e.feeders[tl] = append(e.feeders[tl], i)
			}
		}
		// Reference kernel: walk every output link of the shard's routers in
		// canonical order, skipping the (typically many) idle ones.
		for node := sh.lo; node < sh.hi; node++ {
			for k := 0; k < span; k++ {
				var tl router.LinkID
				if k < deg {
					tl = router.LinkID(node*deg + k)
				} else {
					tl = fab.DelLink(node, k-deg)
				}
				if len(e.feeders[tl]) == 0 {
					continue
				}
				e.arbitrate(sh, tl, buf)
			}
		}
		return
	}
	for _, i := range fab.OccupiedShard(s) {
		if vcs[i].Flits > 0 && vcs[i].Next != router.NilVC {
			tl := vcs[vcs[i].Next].Link
			rel := int(e.linkKey[tl]) - relBase
			sh.keyBits[rel>>6] |= 1 << (rel & 63)
			e.feeders[tl] = append(e.feeders[tl], i)
		}
	}
	// Sparse kernel: arbitrate only the links that acquired feeders. The
	// word-ascending, bit-ascending scan IS the canonical key order, so no
	// sort is needed; each word is consumed from a copy and cleared for the
	// next cycle before its bits are decoded (arbitration never adds
	// feeders, so no bit can be set mid-scan).
	for w, word := range sh.keyBits {
		if word == 0 {
			continue
		}
		sh.keyBits[w] = 0
		base := relBase + w<<6
		for word != 0 {
			rel := base + bits.TrailingZeros64(word)
			word &= word - 1
			node, k := rel/span, rel%span
			var tl router.LinkID
			if k < deg {
				tl = router.LinkID(node*deg + k)
			} else {
				tl = fab.DelLink(node, k-deg)
			}
			e.arbitrate(sh, tl, buf)
		}
	}
}

// arbitrate picks at most one winner among target link tl's feeders:
// round-robin over the sorted feeder list, skipping feeders without credit
// at the target buffer or whose input channel already sent this cycle. The
// single-feeder case — the overwhelmingly common one at low load — skips the
// sort and the modulo walk outright; it is decision-identical because a sort
// of one element is a no-op, RR()%1 is always 0, and the round-robin pointer
// advances only on a grant in both paths.
func (e *Engine) arbitrate(sh *shardState, tl router.LinkID, buf int32) {
	if e.chooser != nil {
		e.arbitrateChoose(sh, tl, buf)
		return
	}
	fab := e.fab
	vcs := fab.VCs
	req := e.feeders[tl]
	link := &fab.Links[tl]
	if len(req) == 1 {
		u := req[0]
		uv := &vcs[u]
		if vcs[uv.Next].Flits < buf && e.inputUsedAt[uv.Link] != e.now {
			sh.moves = append(sh.moves, u)
			e.inputUsedAt[uv.Link] = e.now
			e.transmitted[tl] = true
			sh.txLinks = append(sh.txLinks, tl)
			link.AdvanceRR()
		}
		e.feeders[tl] = req[:0]
		return
	}
	slices.Sort(req)
	n := len(req)
	start := int(link.RR()) % n
	for j := 0; j < n; j++ {
		u := req[(start+j)%n]
		uv := &vcs[u]
		if vcs[uv.Next].Flits >= buf {
			continue // no credit at the target buffer
		}
		in := uv.Link
		if e.inputUsedAt[in] == e.now {
			continue // crossbar input port already used this cycle
		}
		sh.moves = append(sh.moves, u)
		e.inputUsedAt[in] = e.now
		e.transmitted[tl] = true
		sh.txLinks = append(sh.txLinks, tl)
		link.AdvanceRR()
		break
	}
	e.feeders[tl] = req[:0]
}

func (e *Engine) transferCommit(s int) {
	sh := &e.shards[s]
	fab := e.fab
	sh.bmoves = sh.bmoves[:0]
	sh.frees = sh.frees[:0]
	sh.arrivals = sh.arrivals[:0]
	for _, u := range sh.moves {
		occ := fab.VCs[u].Occupant
		m := fab.Msg(occ)
		v, header, tail := fab.MoveFlitSrc(u)
		if header {
			m.HeadVC = v
			if fab.Links[fab.LinkOfVC(v)].Kind != router.DeliveryLink &&
				m.Phase == router.PhaseNetwork {
				// The header reached a new router: it must route again, one
				// cycle from now.
				m.Attempts = 0
				sh.arrivals = append(sh.arrivals, m.ID)
			}
		}
		if tail {
			m.TailVC = v
			sh.frees = append(sh.frees, freeRec{msg: occ, link: fab.LinkOfVC(u), vc: u})
		}
		if fab.ShardOfLink(fab.LinkOfVC(v)) == s {
			fab.MoveFlitDst(v, header, tail)
		} else {
			sh.bmoves = append(sh.bmoves, boundaryMove{v: v, header: header, tail: tail})
		}
	}
}

func (e *Engine) commitTransfer() {
	fab := e.fab
	for s := range e.shards {
		for _, bm := range e.shards[s].bmoves {
			fab.MoveFlitDst(bm.v, bm.header, bm.tail)
		}
	}
	for s := range e.shards {
		sh := &e.shards[s]
		for _, fr := range sh.frees {
			e.tr.Emit(trace.KindVCFree, fr.msg, fr.link, -1, 0, int32(fr.vc))
			e.det.VCFreed(fr.link)
		}
		e.pendingNew = append(e.pendingNew, sh.arrivals...)
	}
}

// ---------------------------------------------------------------------------
// Stage 4: delivery ports drain one flit per cycle into the local node.
//
// Delivery VCs are owned by their node's shard, so flit consumption and VC
// release run in the parallel phase; message finalization (histograms,
// counters, trace, pool recycling) replays serially in node order — the same
// order the serial engine used, since the drain order is node-ascending by
// construction. The sparse kernel iterates the fabric's occupied-delivery-VC
// bitmap instead of every delivery port: delivery VCs are numbered in link
// order (node-major, port-minor) and the bitmap mirrors that numbering, so
// the word-ascending, bit-ascending scan reproduces the dense scan order
// exactly — no sort. Each word is copied before its bits are walked:
// draining a tail releases the VC, which clears that VC's live bit
// (ReleaseEmptyVC) mid-iteration, and nothing sets bits during the stage.

func (e *Engine) drainShard(s int) {
	sh := &e.shards[s]
	sh.delivered = sh.delivered[:0]
	fab := e.fab
	if e.cfg.DenseKernel {
		dp := e.cfg.Router.DelPorts
		for _, id := range e.deliveryVCs[sh.lo*dp : sh.hi*dp] {
			vc := &fab.VCs[id]
			if vc.Occupant == router.NilMsg || vc.Flits == 0 {
				continue
			}
			e.drainVC(sh, id)
		}
		return
	}
	occ := fab.DeliveryOccBitsShard(s)
	sbase := fab.DeliveryShardBase(s)
	for w, word := range occ {
		base := sbase + router.VCID(w<<6)
		for word != 0 {
			id := base + router.VCID(bits.TrailingZeros64(word))
			word &= word - 1
			if fab.VCs[id].Flits == 0 {
				continue // allocated but no flit buffered yet
			}
			e.drainVC(sh, id)
		}
	}
}

// drainVC consumes one flit from occupied delivery VC id, releasing the VC
// and recording the message once the tail is consumed.
func (e *Engine) drainVC(sh *shardState, id router.VCID) {
	fab := e.fab
	vc := &fab.VCs[id]
	m := fab.Msg(vc.Occupant)
	tail := vc.HasTail && vc.Flits == 1
	vc.Flits--
	m.Consumed++
	if vc.HasHeader {
		vc.HasHeader = false
		m.HeadVC = router.NilVC
	}
	if !tail {
		return
	}
	fab.ReleaseEmptyVC(id)
	m.TailVC = router.NilVC
	sh.delivered = append(sh.delivered, m.ID)
}

func (e *Engine) commitDelivery() {
	for s := range e.shards {
		for _, id := range e.shards[s].delivered {
			e.deliver(e.fab.Msg(id))
		}
	}
}

// mergeTxLinks concatenates the per-shard transmitted-link lists in shard
// order — the canonical Src-node-ascending sequence — for the detectors'
// EndCycle. With a single shard the list is used directly.
func (e *Engine) mergeTxLinks() {
	if len(e.shards) == 1 {
		e.txLinks = e.shards[0].txLinks
		return
	}
	e.txLinks = e.txLinks[:0]
	for s := range e.shards {
		e.txLinks = append(e.txLinks, e.shards[s].txLinks...)
	}
}

// ---------------------------------------------------------------------------
// Stage 5 (parallel half): routing candidate precomputation.
//
// Candidate sets depend only on the topology, the failure map and the
// message's destination — never on occupancy — so they can be computed
// against frozen state and stay valid while the serial commit allocates VCs
// one message at a time. Pending entries are striped across shards by index;
// each entry owns a fixed stride of the flat candidate arena.

func (e *Engine) routeCandsShard(s int) {
	fab := e.fab
	stride := e.candStride
	for i := s; i < len(e.pending); i += len(e.shards) {
		e.routeCandsLen[i] = -1
		m := fab.Msg(e.pending[i])
		if m.Phase != router.PhaseNetwork || m.HeadVC == router.NilVC {
			continue // delivered, recovering or aborted meanwhile
		}
		hv := &fab.VCs[m.HeadVC]
		if !hv.HasHeader || hv.Next != router.NilVC || hv.Flits == 0 {
			continue // stale entry, or header flit not yet arrived
		}
		node := fab.RouterOf(fab.LinkOfVC(m.HeadVC))
		buf := e.routeCands[i*stride : i*stride : (i+1)*stride]
		e.routeCandsLen[i] = int32(len(e.alg.Candidates(fab, m, node, buf)))
	}
}

// ---------------------------------------------------------------------------
// Stage 6 (parallel): sources push flits of admitted messages into injection
// buffers. Injection VCs and the messages being fed are owned by the
// admitting shard. First flits are recorded for the serial pendingNew merge:
// a message's first feed always happens in its admission cycle (the
// injection buffer is empty and at least one flit deep), so the fed list is
// exactly this cycle's admissions in node-ascending order and the shard
// concatenation is canonical.

func (e *Engine) feedShard(s int) {
	sh := &e.shards[s]
	sh.fed = sh.fed[:0]
	fab := e.fab
	kept := sh.injecting[:0]
	for _, id := range sh.injecting {
		m := fab.Msg(id)
		if m.Phase == router.PhaseDelivered || m.Phase == router.PhaseAborted ||
			m.Phase == router.PhaseQueued {
			continue // recovered or delivered while still on the list
		}
		if m.Injected >= m.Length {
			continue // tail already in the network
		}
		l := m.InjLink
		vc := fab.VCOf(l, 0)
		if vc.Occupant != m.ID {
			// The injection VC was released (regressive recovery); drop.
			continue
		}
		if vc.Flits < int32(fab.Cfg.BufFlits) {
			first := m.Injected == 0
			m.Injected++
			vc.Flits++
			m.LastSourceFlit = e.now
			if first {
				vc.HasHeader = true
				sh.fed = append(sh.fed, m.ID)
			}
			if m.Injected == m.Length {
				vc.HasTail = true
			}
		}
		if m.Injected < m.Length {
			kept = append(kept, id)
		}
	}
	sh.injecting = kept
}

func (e *Engine) commitFeed() {
	for s := range e.shards {
		e.pendingNew = append(e.pendingNew, e.shards[s].fed...)
	}
}
