package sim

import (
	"testing"

	"wormnet/internal/router"
)

// quiescent returns an engine with zero background load so hand-injected
// messages move through an otherwise empty network.
func quiescent(t *testing.T, k, n int) *Engine {
	t.Helper()
	cfg := smallConfig()
	cfg.K, cfg.N = k, n
	cfg.Load = 0
	cfg.Warmup, cfg.Measure = 0, 1<<40
	cfg.Debug = true
	cfg.RetainMessages = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func stepN(t *testing.T, e *Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestZeroLoadLatencyExact verifies the engine's timing model cycle by
// cycle. Each hop costs one routing cycle plus one transfer cycle, the
// delivery port costs one more routed transfer, body flits pipeline at one
// per cycle behind the header, and injection adds a one-cycle feed stage:
// a message of L flits crossing d hops through an empty network is
// delivered exactly 2d + L + 2 cycles after it is enqueued.
func TestZeroLoadLatencyExact(t *testing.T) {
	for _, tc := range []struct {
		k, n     int
		src, dst int
		length   int
	}{
		{8, 1, 0, 1, 4},  // 1 hop
		{8, 1, 0, 3, 4},  // 3 hops
		{8, 1, 0, 3, 16}, // longer message
		{4, 2, 0, 5, 8},  // 2D, 2 hops
	} {
		e := quiescent(t, tc.k, tc.n)
		m := e.InjectMessage(tc.src, tc.dst, tc.length)
		d := e.Topology().Distance(tc.src, tc.dst)
		want := int64(2*d + tc.length + 2)
		deadline := want + 10
		var got int64 = -1
		for i := int64(0); i <= deadline; i++ {
			stepN(t, e, 1)
			if m.Phase == router.PhaseDelivered {
				got = e.Now() // cycles elapsed since enqueue at cycle 0
				break
			}
		}
		if got != want {
			t.Errorf("k=%d n=%d %d->%d len=%d: delivered after %d cycles, want %d",
				tc.k, tc.n, tc.src, tc.dst, tc.length, got, want)
		}
	}
}

// TestWormOccupiesChain: a long message in flight holds a contiguous chain
// of VCs from tail to head.
func TestWormOccupiesChain(t *testing.T) {
	e := quiescent(t, 8, 1)
	m := e.InjectMessage(0, 4, 64)
	stepN(t, e, 12) // header well on its way, tail still at the source
	if m.Phase != router.PhaseNetwork {
		t.Fatalf("phase %v", m.Phase)
	}
	fab := e.Fabric()
	count := 0
	for vc := m.TailVC; vc != router.NilVC; vc = fab.VCs[vc].Next {
		if fab.VCs[vc].Occupant != m.ID {
			t.Fatal("chain VC not held by the message")
		}
		count++
		if count > 20 {
			t.Fatal("chain loops")
		}
	}
	if count < 3 {
		t.Errorf("worm spans only %d VCs after 12 cycles", count)
	}
	if !fab.VCs[m.TailVC].HasTail && m.Injected == m.Length {
		t.Error("tail bit missing at the tail VC")
	}
}

// TestSingleFlitPerLinkPerCycle: two messages sharing a physical channel
// deliver at half rate each (virtual channels multiplex the link
// cycle-by-cycle).
func TestSingleFlitPerLinkPerCycle(t *testing.T) {
	// On an 8-ring, both messages go 0 -> 2; they share both links.
	e := quiescent(t, 8, 1)
	const length = 32
	m1 := e.InjectMessage(0, 2, length)
	m2 := e.InjectMessage(0, 2, length)

	delivered := func() int {
		n := 0
		if m1.Phase == router.PhaseDelivered {
			n++
		}
		if m2.Phase == router.PhaseDelivered {
			n++
		}
		return n
	}
	// A single message takes ~1+4+2+1+31 = 39 cycles. Two messages of 32
	// flits each over one shared link need >= 64 link cycles, so completion
	// before ~70 cycles would violate the bandwidth constraint.
	stepN(t, e, 60)
	if delivered() == 2 {
		t.Fatal("both messages delivered too fast: link bandwidth violated")
	}
	stepN(t, e, 60)
	if delivered() != 2 {
		t.Fatal("messages not delivered")
	}
}

// TestBufferBackpressure: with the downstream blocked, an upstream VC never
// exceeds its buffer capacity.
func TestBufferBackpressure(t *testing.T) {
	e := quiescent(t, 8, 1)
	// A long message that will be absorbed slowly: send it to a distant
	// node and watch buffers while it streams.
	m := e.InjectMessage(0, 5, 200)
	fab := e.Fabric()
	for i := 0; i < 300; i++ {
		stepN(t, e, 1)
		for vc := m.TailVC; vc != router.NilVC; vc = fab.VCs[vc].Next {
			if fab.VCs[vc].Flits > int32(fab.Cfg.BufFlits) {
				t.Fatalf("cycle %d: buffer overflow (%d flits)", i, fab.VCs[vc].Flits)
			}
		}
		if m.Phase == router.PhaseDelivered {
			return
		}
	}
	t.Fatal("message never delivered")
}

// TestInjectionPortsParallelism: a node with 4 injection ports can have 4
// messages in flight from the same source concurrently.
func TestInjectionPortsParallelism(t *testing.T) {
	e := quiescent(t, 8, 1)
	var ms []*router.Message
	for i := 0; i < 4; i++ {
		// Different destinations so they do not serialize on one path.
		ms = append(ms, e.InjectMessage(0, 1+i, 8))
	}
	stepN(t, e, 3)
	inNetwork := 0
	for _, m := range ms {
		if m.Phase == router.PhaseNetwork {
			inNetwork++
		}
	}
	if inNetwork != 4 {
		t.Errorf("%d messages admitted concurrently, want 4", inNetwork)
	}
}

// TestOppositeDirectionsDontInterfere: traffic on the + ring does not slow
// traffic on the - ring (separate physical channels).
func TestOppositeDirectionsDontInterfere(t *testing.T) {
	e := quiescent(t, 8, 1)
	a := e.InjectMessage(0, 2, 16) // travels +
	b := e.InjectMessage(0, 6, 16) // travels - (distance 2 the other way)
	stepN(t, e, 40)
	if a.Phase != router.PhaseDelivered || b.Phase != router.PhaseDelivered {
		t.Fatal("not delivered")
	}
	if d := a.DeliverTime - b.DeliverTime; d > 1 || d < -1 {
		t.Errorf("asymmetric delivery times: %d vs %d", a.DeliverTime, b.DeliverTime)
	}
}
