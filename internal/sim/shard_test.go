package sim

import (
	"bytes"
	"reflect"
	"slices"
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/metrics"
	"wormnet/internal/probe"
	"wormnet/internal/recovery"
	"wormnet/internal/router"
	"wormnet/internal/trace"
)

// shardedConfig is a deadlock-prone small network: a single virtual channel
// per link under double-saturation load on a 4-ary 2-cube with the injection
// limiter off, so detection, recovery and the oracle all fire inside a short
// run.
func shardedConfig() Config {
	cfg := smallConfig()
	cfg.Router.VCsPerLink = 1
	cfg.Load = 2.0
	cfg.InjectionLimit = -1
	cfg.OracleEvery = 32
	cfg.Warmup, cfg.Measure = 500, 2500
	cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 16) }
	return cfg
}

// runSharded runs cfg with the given shard count and an attached flight
// recorder streaming to a buffer, returning the result and the raw trace
// bytes.
func runSharded(t *testing.T, cfg Config, shards int, traced bool) (*Result, []byte) {
	t.Helper()
	cfg.Shards = shards
	var buf bytes.Buffer
	if traced {
		rec := trace.NewRecorder(64)
		rec.SetSink(&buf)
		cfg.Trace = rec
	}
	res := mustRun(t, cfg)
	if traced {
		if err := cfg.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return res, buf.Bytes()
}

// TestShardedByteIdentity is the core determinism gate of the sharded
// engine: for every detector family and both recovery styles, the full
// Result (counters and histograms) and the complete trace event stream must
// be byte-identical for shard counts 1, 2, 4 and 8. Untraced runs exercise
// the parallel detector EndCycle split; traced runs exercise the serial
// fallback — both must match the single-shard reference.
func TestShardedByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"ndm-progressive", func(c *Config) {}},
		{"ndm-regressive", func(c *Config) { c.Recovery = recovery.Regressive }},
		{"pdm", func(c *Config) {
			c.Detector = func(f *router.Fabric) detect.Detector { return detect.NewPDM(f, 24) }
		}},
		{"cmh", func(c *Config) {
			c.Detector = func(f *router.Fabric) detect.Detector {
				return probe.New(f, probe.Config{InitDelay: 8})
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := shardedConfig()
			tc.mod(&cfg)
			wantRes, wantTrace := runSharded(t, cfg, 1, true)
			if wantRes.Marked == 0 {
				t.Fatalf("reference run marked no messages; identity over a quiet run proves too little")
			}
			if len(wantTrace) == 0 {
				t.Fatal("reference run produced no trace bytes")
			}
			for _, shards := range []int{2, 4, 8} {
				gotRes, gotTrace := runSharded(t, cfg, shards, true)
				if gotRes.Counters != wantRes.Counters {
					t.Errorf("shards=%d traced: counters diverge\n got %+v\nwant %+v",
						shards, gotRes.Counters, wantRes.Counters)
				}
				if !bytes.Equal(gotTrace, wantTrace) {
					t.Errorf("shards=%d: trace stream diverges (%d vs %d bytes)",
						shards, len(gotTrace), len(wantTrace))
				}
				if !reflect.DeepEqual(gotRes.LatencyHist, wantRes.LatencyHist) ||
					!reflect.DeepEqual(gotRes.DetectDelayHist, wantRes.DetectDelayHist) ||
					!reflect.DeepEqual(gotRes.DetectLatencyHist, wantRes.DetectLatencyHist) {
					t.Errorf("shards=%d: histograms diverge", shards)
				}
				// Untraced: the parallel EndCycle split (for Sharded
				// detectors) must still reproduce the reference counters.
				plainRes, _ := runSharded(t, cfg, shards, false)
				if plainRes.Counters != wantRes.Counters {
					t.Errorf("shards=%d untraced: counters diverge\n got %+v\nwant %+v",
						shards, plainRes.Counters, wantRes.Counters)
				}
			}
		})
	}
}

// TestShardedLockstepTxLinks steps a single-shard and a 3-shard engine in
// lockstep and compares the merged transmitted-link sequence, the pending
// list and the oracle set every cycle — catching any divergence at the cycle
// it first appears rather than in end-of-run aggregates. Three shards gives
// uneven block sizes (16 nodes -> 6/5/5), exercising the remainder handling.
func TestShardedLockstepTxLinks(t *testing.T) {
	cfg := shardedConfig()
	cfg.Debug = false
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfg
	cfgB.Shards = 3
	b, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 800; cyc++ {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(a.txLinks, b.txLinks) {
			t.Fatalf("cycle %d: txLinks diverge:\n 1 shard: %v\n 3 shards: %v", cyc, a.txLinks, b.txLinks)
		}
		if !slices.Equal(a.pending, b.pending) {
			t.Fatalf("cycle %d: pending lists diverge:\n 1 shard: %v\n 3 shards: %v", cyc, a.pending, b.pending)
		}
		setA, setB := a.oracle.Deadlocked(), b.oracle.Deadlocked()
		if !slices.Equal(setA, setB) {
			t.Fatalf("cycle %d: oracle sets diverge: %v vs %v", cyc, setA, setB)
		}
		for i := 1; i < len(setA); i++ {
			if setA[i] <= setA[i-1] {
				t.Fatalf("cycle %d: oracle set not in ascending ID order: %v", cyc, setA)
			}
		}
	}
	if a.st != b.st {
		t.Fatalf("final counters diverge:\n 1 shard: %+v\n 3 shards: %+v", a.st, b.st)
	}
}

// TestShardedBarrierRace hammers the two-phase barrier with the race
// detector's instrumentation in mind (the CI race job runs this package
// with -race): a multi-shard run with metrics attached but no tracer takes
// the parallel detector path; a second run with both tracing and metrics
// takes the serial-detector path while the other phases still fan out.
func TestShardedBarrierRace(t *testing.T) {
	run := func(traced bool) {
		cfg := shardedConfig()
		cfg.Debug = false
		cfg.Warmup, cfg.Measure = 200, 600
		cfg.Shards = 4
		cfg.Metrics = metrics.NewCollector(metrics.Options{Window: 64})
		if traced {
			rec := trace.NewRecorder(256)
			rec.SetSink(&bytes.Buffer{})
			cfg.Trace = rec
		}
		res := mustRun(t, cfg)
		if res.Delivered == 0 {
			t.Fatal("race-run delivered nothing; the barrier was not exercised")
		}
		if cfg.Metrics.Value(metrics.MDelivered) == 0 {
			t.Fatal("collector counted no deliveries under sharding")
		}
	}
	run(false)
	run(true)
}

// TestShardsValidation pins the Config.Shards bounds: zero defaults to one,
// negatives and counts beyond the node count are rejected.
func TestShardsValidation(t *testing.T) {
	cfg := shardedConfig()
	cfg.Shards = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.shards); got != 1 {
		t.Fatalf("Shards=0 built %d shards, want 1", got)
	}
	for _, bad := range []int{-1, 17} { // 4-ary 2-cube has 16 nodes
		cfg := shardedConfig()
		cfg.Shards = bad
		if _, err := New(cfg); err == nil {
			t.Errorf("Shards=%d accepted, want error", bad)
		}
	}
	cfg = shardedConfig()
	cfg.Shards = 16
	if _, err := New(cfg); err != nil {
		t.Errorf("Shards=16 on 16 nodes rejected: %v", err)
	}
}
