package sim

import (
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/recovery"
	"wormnet/internal/router"
	"wormnet/internal/topology"
	"wormnet/internal/traffic"
)

func uniformPattern(tp *topology.Torus) traffic.Pattern { return traffic.NewUniform(tp) }

func bitrevPattern(tp *topology.Torus) traffic.Pattern { return traffic.NewBitReversal(tp) }

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.K, cfg.N = 4, 2
	cfg.Load = 0.2
	cfg.Warmup, cfg.Measure = 1000, 4000
	cfg.Pattern = uniformPattern
	cfg.Debug = true
	return cfg
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.K = 1 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.Pattern = nil },
		func(c *Config) { c.Lengths = nil },
		func(c *Config) { c.Load = -0.1 },
		func(c *Config) { c.Measure = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Router.VCsPerLink = 0 },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLowLoadDeliversEverything(t *testing.T) {
	cfg := smallConfig()
	res := mustRun(t, cfg)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// At 20% load the network is far below saturation: accepted throughput
	// must track offered load closely.
	if thr := res.Throughput(); thr < 0.18 || thr > 0.22 {
		t.Errorf("throughput %.4f, want about 0.20", thr)
	}
	if res.Marked != 0 {
		t.Errorf("marked %d messages at 20%% load", res.Marked)
	}
	// Zero-load latency on a 4x4 torus (average distance 2) with 16-flit
	// messages is roughly 2 hops * 2 cycles + 16 flit cycles + port
	// overheads; anything far above that indicates a pipeline bug.
	if lat := res.AvgLatency(); lat < 16 || lat > 40 {
		t.Errorf("average latency %.1f, want about 20-30", lat)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.Load = 0.8
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Counters != b.Counters {
		t.Fatalf("same seed diverged:\n%v\n%v", a.Counters, b.Counters)
	}
	cfg.Seed = 2
	c := mustRun(t, cfg)
	if a.Counters == c.Counters {
		t.Fatal("different seeds produced identical results")
	}
}

// TestFlitConservation: at any point, every live message's injected minus
// consumed flits are exactly the flits buffered in the fabric.
func TestFlitConservation(t *testing.T) {
	cfg := smallConfig()
	cfg.Load = 1.0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3000; cycle++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if cycle%500 != 0 {
			continue
		}
		var inTransit int64
		e.Fabric().LiveMessages(func(m *router.Message) {
			if m.Injected < m.Consumed || m.Injected > m.Length {
				t.Fatalf("cycle %d: message accounting broken: %v", cycle, m)
			}
			inTransit += int64(m.Injected - m.Consumed)
		})
		var buffered int64
		for i := range e.Fabric().VCs {
			buffered += int64(e.Fabric().VCs[i].Flits)
		}
		if inTransit != buffered {
			t.Fatalf("cycle %d: %d flits in transit but %d buffered", cycle, inTransit, buffered)
		}
	}
}

func TestAllPatternsRun(t *testing.T) {
	patterns := map[string]PatternFactory{
		"uniform":  uniformPattern,
		"locality": func(tp *topology.Torus) traffic.Pattern { return traffic.NewLocality(tp, 2) },
		"bitrev":   func(tp *topology.Torus) traffic.Pattern { return traffic.NewBitReversal(tp) },
		"shuffle":  func(tp *topology.Torus) traffic.Pattern { return traffic.NewPerfectShuffle(tp) },
		"butterfly": func(tp *topology.Torus) traffic.Pattern {
			return traffic.NewButterfly(tp)
		},
		"hotspot": func(tp *topology.Torus) traffic.Pattern { return traffic.NewHotSpot(tp, 0, 0.05) },
	}
	for name, p := range patterns {
		cfg := smallConfig()
		cfg.Pattern = p
		cfg.Warmup, cfg.Measure = 500, 2000
		res := mustRun(t, cfg)
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", name)
		}
	}
}

func TestMessageLengthMixes(t *testing.T) {
	for _, lengths := range []traffic.LengthDist{
		traffic.Fixed(16),
		traffic.Fixed(64),
		traffic.Fixed(256),
		traffic.Bimodal{Short: 16, Long: 64, PShort: 0.6},
		traffic.Fixed(1), // degenerate single-flit messages
		traffic.Fixed(2),
	} {
		cfg := smallConfig()
		cfg.Lengths = lengths
		cfg.Warmup, cfg.Measure = 500, 3000
		res := mustRun(t, cfg)
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", lengths.Name())
		}
	}
}

// TestOverloadLiveness: far beyond saturation with detection and recovery
// the network must keep delivering (no wedge), and marks occur.
func TestOverloadLiveness(t *testing.T) {
	cfg := smallConfig()
	cfg.Router.VCsPerLink = 1 // deadlock-prone configuration
	cfg.InjectionLimit = -1   // no injection limitation
	cfg.Load = 2.0
	cfg.Warmup, cfg.Measure = 2000, 15000
	cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 16) }
	res := mustRun(t, cfg)
	if res.Delivered < 100 {
		t.Fatalf("network wedged: only %d delivered", res.Delivered)
	}
	if res.Marked == 0 {
		t.Fatal("no deadlock detections in a deadlock-prone overload")
	}
	if res.TrueMarked == 0 {
		t.Error("expected at least one true deadlock detection")
	}
}

// TestNoDetectionWedges: same overload without any detection must wedge on
// a true deadlock, which the periodic oracle observes.
func TestNoDetectionWedges(t *testing.T) {
	cfg := smallConfig()
	cfg.Router.VCsPerLink = 1
	cfg.InjectionLimit = -1
	cfg.Load = 2.0
	cfg.Warmup, cfg.Measure = 0, 15000
	cfg.Detector = nil
	cfg.OracleEvery = 100
	res := mustRun(t, cfg)
	if res.DeadlockCycles == 0 {
		t.Fatal("oracle never observed a deadlock without recovery")
	}
	if res.Marked != 0 {
		t.Fatal("messages marked without a detector")
	}
}

func TestRecoveryStyles(t *testing.T) {
	for _, style := range []recovery.Style{recovery.Progressive, recovery.Regressive} {
		cfg := smallConfig()
		cfg.Router.VCsPerLink = 1
		cfg.InjectionLimit = -1
		cfg.Load = 2.0
		cfg.Warmup, cfg.Measure = 2000, 10000
		cfg.Recovery = style
		cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 16) }
		res := mustRun(t, cfg)
		if res.Delivered < 100 {
			t.Fatalf("%v: wedged (%d delivered)", style, res.Delivered)
		}
		if res.Marked > 0 {
			switch style {
			case recovery.Progressive:
				if res.Absorbed == 0 {
					t.Errorf("progressive recovery absorbed nothing despite %d marks", res.Marked)
				}
			case recovery.Regressive:
				if res.Aborted == 0 {
					t.Errorf("regressive recovery aborted nothing despite %d marks", res.Marked)
				}
			}
		}
	}
}

// TestPDMMarksMoreThanNDM: the paper's central comparison, at matched
// thresholds under heavy load.
func TestPDMMarksMoreThanNDM(t *testing.T) {
	run := func(mk DetectorFactory) int64 {
		cfg := smallConfig()
		cfg.Load = 2.5
		cfg.InjectionLimit = -1
		cfg.Warmup, cfg.Measure = 2000, 20000
		cfg.Detector = mk
		return mustRun(t, cfg).Marked
	}
	ndm := run(func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 8) })
	pdm := run(func(f *router.Fabric) detect.Detector { return detect.NewPDM(f, 8) })
	if pdm <= ndm {
		t.Errorf("PDM marked %d, NDM marked %d; expected PDM > NDM", pdm, ndm)
	}
	if pdm == 0 {
		t.Error("PDM marked nothing under heavy overload")
	}
}

func TestInjectionLimitThrottles(t *testing.T) {
	run := func(limit int) *Result {
		cfg := smallConfig()
		cfg.Load = 3.0
		cfg.InjectionLimit = limit
		cfg.Warmup, cfg.Measure = 1000, 5000
		return mustRun(t, cfg)
	}
	free := run(-1)
	limited := run(3)
	if limited.Injected >= free.Injected {
		t.Errorf("limit=3 injected %d, unlimited injected %d", limited.Injected, free.Injected)
	}
}

func TestCrudeTimeoutDetectorsEndToEnd(t *testing.T) {
	for name, mk := range map[string]DetectorFactory{
		"src-age":   func(f *router.Fabric) detect.Detector { return detect.NewSourceAgeTimeout(200) },
		"src-stall": func(f *router.Fabric) detect.Detector { return detect.NewSourceStallTimeout(64) },
		"hdr-block": func(f *router.Fabric) detect.Detector { return detect.NewHeaderBlockTimeout(64) },
	} {
		cfg := smallConfig()
		cfg.Load = 2.5
		cfg.InjectionLimit = -1
		cfg.Warmup, cfg.Measure = 1000, 8000
		cfg.Detector = mk
		res := mustRun(t, cfg)
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", name)
		}
	}
}

func TestSelectPolicies(t *testing.T) {
	for _, pol := range []router.SelectPolicy{router.SelectRandom, router.SelectFirst, router.SelectLeastBusy} {
		cfg := smallConfig()
		cfg.Select = pol
		cfg.Warmup, cfg.Measure = 500, 2000
		res := mustRun(t, cfg)
		if res.Delivered == 0 {
			t.Errorf("policy %d: nothing delivered", pol)
		}
	}
}

func TestHypercube(t *testing.T) {
	cfg := smallConfig()
	cfg.K, cfg.N = 2, 4 // 16-node hypercube exercises the k=2 edge case
	cfg.Warmup, cfg.Measure = 500, 2000
	res := mustRun(t, cfg)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered on a hypercube")
	}
}

func TestOddRadix(t *testing.T) {
	cfg := smallConfig()
	cfg.K, cfg.N = 3, 3
	cfg.Warmup, cfg.Measure = 500, 2000
	res := mustRun(t, cfg)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered on odd radix")
	}
}

func TestMarksHistogramRecorded(t *testing.T) {
	cfg := smallConfig()
	cfg.Router.VCsPerLink = 1
	cfg.InjectionLimit = -1
	cfg.Load = 2.0
	cfg.Warmup, cfg.Measure = 2000, 15000
	cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 16) }
	res := mustRun(t, cfg)
	if res.Marked == 0 {
		t.Skip("no marks this seed")
	}
	var histTotal int64
	for k, c := range res.MarksPerCycleHist {
		if k == 0 {
			histTotal += c * int64(len(res.MarksPerCycleHist))
			continue
		}
		histTotal += int64(k) * c
	}
	if histTotal < res.Marked {
		t.Errorf("histogram accounts for %d marks, want at least %d", histTotal, res.Marked)
	}
}

// TestRecoveredMessagesEventuallyDelivered: with progressive recovery under
// overload, recovered messages re-enter and the sum of deliveries keeps
// growing (no livelock of re-injections).
func TestRecoveredMessagesEventuallyDelivered(t *testing.T) {
	cfg := smallConfig()
	cfg.Router.VCsPerLink = 1
	cfg.InjectionLimit = -1
	cfg.Load = 2.0
	cfg.Warmup = 0
	cfg.Measure = 20000
	cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 8) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := int64(0)
	for i := 0; i < 10000; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	half = e.Stats().Delivered
	for i := 0; i < 10000; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().Delivered <= half {
		t.Fatalf("deliveries stalled: %d then %d", half, e.Stats().Delivered)
	}
	if e.Stats().Reinjected == 0 && e.Stats().Marked > 0 &&
		e.Stats().RecoveredDelivered == 0 {
		t.Error("marks happened but nothing was re-injected or recovered-delivered")
	}
}

// TestMarkClassificationConsistent: every mark is classified as exactly one
// of true or false by the oracle.
func TestMarkClassificationConsistent(t *testing.T) {
	cfg := smallConfig()
	cfg.Router.VCsPerLink = 1
	cfg.InjectionLimit = -1
	cfg.Load = 2.0
	cfg.Warmup, cfg.Measure = 0, 15000
	cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 8) }
	res := mustRun(t, cfg)
	if res.Marked == 0 {
		t.Skip("no marks this configuration")
	}
	if res.TrueMarked+res.FalseMarked != res.Marked {
		t.Errorf("classification leak: %d true + %d false != %d marked",
			res.TrueMarked, res.FalseMarked, res.Marked)
	}
}

func TestStatsAccessors(t *testing.T) {
	cfg := smallConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Topology().Nodes() != 16 {
		t.Error("topology accessor")
	}
	if e.Detector() == nil {
		t.Error("detector accessor")
	}
	if e.Now() != 0 {
		t.Error("clock not at zero")
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != cfg.Warmup+cfg.Measure {
		t.Errorf("TotalCycles = %d", res.TotalCycles)
	}
	if res.Detector == "" {
		t.Error("empty detector name")
	}
}

// TestInjectMessageRespectsQueueCap: manual injection must honor the same
// MaxSourceQueue bound that paces the workload generator — a full source
// queue rejects the message instead of growing without limit.
func TestInjectMessageRespectsQueueCap(t *testing.T) {
	cfg := smallConfig()
	cfg.Load = 0 // the workload generates nothing; only manual injections
	cfg.MaxSourceQueue = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if e.InjectMessage(0, 5, 4) == nil {
			t.Fatalf("injection %d rejected below the cap", i)
		}
	}
	if e.InjectMessage(0, 5, 4) != nil {
		t.Fatal("injection accepted with the source queue at MaxSourceQueue")
	}
	if got := e.queues[0].Len(); got != 4 {
		t.Fatalf("source queue holds %d messages, want 4", got)
	}
	// The cap is per node: a different source still accepts.
	if e.InjectMessage(1, 5, 4) == nil {
		t.Fatal("full queue on node 0 rejected an injection at node 1")
	}
	// Draining the queue reopens the source.
	for i := 0; i < 40 && e.queues[0].Len() == 4; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.InjectMessage(0, 5, 4) == nil {
		t.Fatal("injection still rejected after the queue drained")
	}
}

// TestCyclesCountMeasuredSteps: Stats().Cycles must report the cycles the
// engine actually spent in the measurement phase, not the configured window
// — a manually stepped run that stops early reports only what it measured.
func TestCyclesCountMeasuredSteps(t *testing.T) {
	cfg := smallConfig()
	cfg.Warmup, cfg.Measure = 100, 400
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Cycles; got != 0 {
		t.Fatalf("Cycles = %d during warm-up, want 0", got)
	}
	for i := 0; i < 200; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Cycles; got != 150 {
		t.Fatalf("Cycles = %d after 250 steps with 100 warm-up, want 150", got)
	}
	// A full Run still reports exactly the configured window, and stepping
	// past it does not inflate the count.
	res := mustRun(t, cfg)
	if res.Cycles != cfg.Measure {
		t.Fatalf("full run measured %d cycles, want %d", res.Cycles, cfg.Measure)
	}
}
