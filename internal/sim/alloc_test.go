package sim

import (
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/router"
)

// TestStepSteadyStateAllocationFree: once the network has warmed up, a
// simulation cycle must not allocate — the source queues are ring buffers,
// the engine's scratch buffers are pre-sized from the fabric geometry, and
// the deadlock oracle runs on epoch-stamped flat arrays. The run is held in
// the warm-up phase so histogram growth (a legitimate, amortized cost of
// the measurement window) does not mask a hot-path regression.
func TestStepSteadyStateAllocationFree(t *testing.T) {
	cfg := smallConfig()
	cfg.Debug = false
	cfg.Load = 1.5
	cfg.InjectionLimit = -1
	cfg.Warmup = 1 << 40
	cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 16) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Step allocates %.3f times per cycle, want 0", avg)
	}
}
