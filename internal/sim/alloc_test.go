package sim

import (
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/metrics"
	"wormnet/internal/router"
	"wormnet/internal/trace"
)

// measureStepAllocs warms an engine into steady state and measures the
// allocations of one simulation cycle. The run is held in the warm-up phase
// so histogram growth (a legitimate, amortized cost of the measurement
// window) does not mask a hot-path regression.
func measureStepAllocs(t *testing.T, tr *trace.Recorder, mc *metrics.Collector) float64 {
	return measureShardedStepAllocs(t, tr, mc, 1)
}

func measureShardedStepAllocs(t *testing.T, tr *trace.Recorder, mc *metrics.Collector, shards int) float64 {
	t.Helper()
	cfg := smallConfig()
	cfg.Debug = false
	cfg.Load = 1.5
	cfg.InjectionLimit = -1
	cfg.Warmup = 1 << 40
	cfg.Shards = shards
	cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 16) }
	cfg.Trace = tr
	cfg.Metrics = mc
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.StopWorkers()
	for i := 0; i < 3000; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(500, func() {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStepSteadyStateAllocationFree: once the network has warmed up, a
// simulation cycle must not allocate — the source queues are ring buffers,
// the engine's scratch buffers are pre-sized from the fabric geometry, and
// the deadlock oracle runs on epoch-stamped flat arrays. With tracing
// disabled (the default), every emit site must cost exactly the nil-check
// branch: zero allocations.
func TestStepSteadyStateAllocationFree(t *testing.T) {
	if avg := measureStepAllocs(t, nil, nil); avg != 0 {
		t.Fatalf("steady-state Step allocates %.3f times per cycle, want 0", avg)
	}
}

// TestStepTracedRingAllocationFree: the flight recorder's ring path must
// also be allocation-free — events land in the pre-allocated ring,
// overwriting the oldest.
func TestStepTracedRingAllocationFree(t *testing.T) {
	rec := trace.NewRecorder(1024)
	if avg := measureStepAllocs(t, rec, nil); avg != 0 {
		t.Fatalf("ring-traced steady-state Step allocates %.3f times per cycle, want 0", avg)
	}
	if rec.Total() == 0 {
		t.Fatal("recorder saw no events; the zero-allocation result proves nothing")
	}
}

// TestStepMeteredAllocationFree: with a metrics collector attached, the hot
// path must still not allocate — counters are atomic adds, and the sampler's
// window snapshots land in pre-sized scratch and ring slots. The window is
// set small enough that the measured cycles include sampling boundaries, so
// takeSample itself is under the meter.
func TestStepMeteredAllocationFree(t *testing.T) {
	mc := metrics.NewCollector(metrics.Options{Window: 64})
	if avg := measureStepAllocs(t, nil, mc); avg != 0 {
		t.Fatalf("metered steady-state Step allocates %.3f times per cycle, want 0", avg)
	}
	if mc.SampleCount() == 0 {
		t.Fatal("collector took no samples; the zero-allocation result proves nothing")
	}
	if mc.Value(metrics.MDelivered) == 0 {
		t.Fatal("collector counted no deliveries; instrumentation sites are not firing")
	}
}

// TestStepShardedAllocationFree: the multi-shard barrier must be as
// allocation-free as the serial path. The persistent worker pool parks one
// goroutine per extra shard on a phase channel, so each barrier step is two
// channel operations per worker — the previous per-phase fork-join cost a
// goroutine spawn plus a WaitGroup allocation per phase per cycle
// (24-120 allocs/step at shards 2-8). AllocsPerRun counts mallocs from all
// goroutines, so the workers' own phase work is under the meter too.
func TestStepShardedAllocationFree(t *testing.T) {
	for _, shards := range []int{2, 4} {
		if avg := measureShardedStepAllocs(t, nil, nil, shards); avg != 0 {
			t.Fatalf("shards=%d steady-state Step allocates %.3f times per cycle, want 0", shards, avg)
		}
	}
}

// TestStepShardedMeteredAllocationFree extends the metered zero-alloc gate
// to the multi-shard path (sampling windows included, as above).
func TestStepShardedMeteredAllocationFree(t *testing.T) {
	mc := metrics.NewCollector(metrics.Options{Window: 64})
	if avg := measureShardedStepAllocs(t, nil, mc, 2); avg != 0 {
		t.Fatalf("shards=2 metered steady-state Step allocates %.3f times per cycle, want 0", avg)
	}
	if mc.SampleCount() == 0 {
		t.Fatal("collector took no samples; the zero-allocation result proves nothing")
	}
}
