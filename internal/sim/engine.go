package sim

import (
	"fmt"

	"wormnet/internal/deadlock"
	"wormnet/internal/detect"
	"wormnet/internal/metrics"
	"wormnet/internal/recovery"
	"wormnet/internal/rng"
	"wormnet/internal/router"
	"wormnet/internal/routing"
	"wormnet/internal/stats"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

// Result is what one simulation run produces.
type Result struct {
	stats.Counters
	// Detector names the mechanism that was active.
	Detector string
	// TotalCycles includes warm-up.
	TotalCycles int64
	// LatencyHist is the generation-to-delivery latency distribution over
	// delivered messages in the measurement window.
	LatencyHist *stats.Histogram
	// DetectDelayHist is the distribution of detection delay — cycles from
	// a message's first failed routing attempt at its final node to the
	// moment it was marked as deadlocked.
	DetectDelayHist *stats.Histogram
	// DetectLatencyHist is the distribution of detection latency — cycles
	// from the oracle first observing a message in the deadlocked set to the
	// detector marking it. It only accumulates samples when OracleEvery > 0
	// (the oracle must run independently of marks to provide the reference
	// time) and is empty otherwise.
	DetectLatencyHist *stats.Histogram
}

// Engine simulates one network, cycle by cycle. Build one with New, then
// call Run (or Step repeatedly for fine-grained control).
type Engine struct {
	cfg    Config
	topo   *topology.Torus
	fab    *router.Fabric
	det    detect.Detector
	oracle *deadlock.Oracle
	rec    *recovery.Engine
	rnd    *rng.Source
	gen    traffic.Process
	alg    routing.Algorithm

	now        int64
	measuring  bool
	st         stats.Counters
	latHist    *stats.Histogram
	delayHist  *stats.Histogram
	detLatHist *stats.Histogram

	// tr is the flight recorder; nil when tracing is off. All Recorder
	// methods are nil-safe, so emit sites do not guard the pointer.
	tr *trace.Recorder
	// mc is the live metrics collector; nil when metrics are off. Collector
	// methods are nil-safe, so counter sites do not guard the pointer; the
	// per-cycle block in Step does, to skip its side computations entirely.
	mc *metrics.Collector
	// lastAbsorbedFlits is the recovery absorption total already forwarded
	// to the metrics collector.
	lastAbsorbedFlits int64
	// dtCount samples the detector's DT-flag occupancy; nil when the
	// detector does not implement detect.DTOccupier.
	dtCount func() int
	// flagCounts samples the detector's live I/DT/G flag occupancy for the
	// metrics sampler; nil when the detector is not a detect.FlagObserver.
	flagCounts func() (int, int, int)
	// probeTotals samples the cumulative probe activity of a probe-based
	// detector; nil when the detector is not a detect.ProbeObserver.
	// lastProbe holds the previous cycle's snapshot so Step can charge
	// per-cycle deltas to the measured window and the metrics collector.
	probeTotals func() detect.ProbeTotals
	lastProbe   detect.ProbeTotals
	// oracleSeen[id] is the cycle the oracle first observed message id in
	// the deadlocked set (-1 = not currently deadlocked). Cleared when the
	// message routes, delivers, or is re-queued. Grown on demand; in steady
	// state the message pool is fixed, so no allocation per cycle.
	oracleSeen []int64

	// Per-node FIFO source queues of messages waiting for an injection
	// port (both freshly generated and recovered messages).
	queues []msgQueue
	// Messages whose source is still pushing flits into an injection port.
	injecting []router.MsgID
	// Messages whose header is waiting to be routed. Headers that arrived
	// (or were injected) during cycle T enter pendingNew and become
	// routable in cycle T+1, charging the paper's 1-cycle routing delay.
	pending    []router.MsgID
	pendingNew []router.MsgID

	// Per-cycle scratch state.
	transmitted    []bool          // flit crossed link l this cycle
	txLinks        []router.LinkID // links with transmitted set this cycle
	flitsAtStart   []int32         // VC occupancy snapshot for simultaneous transfer
	feeders        [][]router.VCID // per target link: VCs requesting to send
	activeLinks    []router.LinkID // links with feeders this cycle
	inputUsedAt    []int64         // cycle stamp: input channel already sent a flit
	candBuf        []router.LinkID
	vcCandBuf      []router.VCID
	deliveryVCs    []router.VCID
	marksThisCycle int
	oracleCycle    int64 // last cycle the oracle ran (-1 = never)
	oracleSize     int   // size of the most recent oracle deadlock set
}

// New builds an Engine from cfg. The configuration is validated; defaults
// are filled in for zero-valued optional fields.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	topo := topology.New(cfg.K, cfg.N)
	fab, err := router.NewFabric(topo, cfg.Router)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		topo:        topo,
		fab:         fab,
		oracle:      deadlock.New(fab),
		rnd:         rng.New(cfg.Seed),
		oracleCycle: -1,
		latHist:     stats.NewHistogram(1.25),
		delayHist:   stats.NewHistogram(1.25),
		detLatHist:  stats.NewHistogram(1.25),
		alg:         cfg.Routing,
		tr:          cfg.Trace,
		mc:          cfg.Metrics,
	}
	e.oracle.SetCandidates(func(m *router.Message, node int, buf []router.VCID) []router.VCID {
		return e.alg.Candidates(fab, m, node, buf)
	})
	if cfg.Detector != nil {
		e.det = cfg.Detector(fab)
	} else {
		e.det = detect.None{}
	}
	if t, ok := e.det.(detect.Traceable); ok {
		t.SetTracer(e.tr)
	}
	if o, ok := e.det.(detect.DTOccupier); ok {
		e.dtCount = o.DTCount
	}
	if o, ok := e.det.(detect.FlagObserver); ok {
		e.flagCounts = o.FlagCounts
	}
	if o, ok := e.det.(detect.ProbeObserver); ok {
		e.probeTotals = o.ProbeTotals
	}
	e.mc.Attach(e.det.Name(), topo.N())
	e.rec = recovery.New(fab, cfg.Recovery, recovery.Hooks{
		VCFreed: func(l router.LinkID) {
			e.tr.Emit(trace.KindVCFree, router.NilMsg, l, -1, 0, -1)
			e.det.VCFreed(l)
		},
		Recovered: e.onRecovered,
	})
	if cfg.Process != nil {
		e.gen = cfg.Process(topo)
	} else {
		e.gen = traffic.NewGenerator(cfg.Pattern(topo), cfg.Lengths, cfg.Load)
	}
	e.queues = make([]msgQueue, topo.Nodes())
	e.transmitted = make([]bool, fab.NumLinks())
	e.flitsAtStart = make([]int32, len(fab.VCs))
	e.inputUsedAt = make([]int64, fab.NumLinks())
	for i := range e.inputUsedAt {
		e.inputUsedAt[i] = -1
	}
	// Pre-size the per-cycle scratch buffers to their geometric maxima so
	// the steady-state hot path never grows them: each target VC has at
	// most one upstream feeder (worms occupy distinct VCs), at most every
	// link can transmit in one cycle, and a routing decision considers at
	// most every outgoing link (plus delivery ports) of one router.
	e.feeders = make([][]router.VCID, fab.NumLinks())
	maxVC := int32(0)
	for l := range e.feeders {
		n := fab.Links[l].NumVC
		e.feeders[l] = make([]router.VCID, 0, n)
		if n > maxVC {
			maxVC = n
		}
	}
	e.txLinks = make([]router.LinkID, 0, fab.NumLinks())
	e.activeLinks = make([]router.LinkID, 0, fab.NumLinks())
	maxCands := topo.Degree() + cfg.Router.DelPorts
	e.candBuf = make([]router.LinkID, 0, maxCands)
	e.vcCandBuf = make([]router.VCID, 0, maxCands*int(maxVC))
	e.deliveryVCs = make([]router.VCID, 0, topo.Nodes()*cfg.Router.DelPorts)
	for node := 0; node < topo.Nodes(); node++ {
		for p := 0; p < cfg.Router.DelPorts; p++ {
			l := fab.DelLink(node, p)
			e.deliveryVCs = append(e.deliveryVCs, fab.Links[l].FirstVC)
		}
	}
	e.st.Nodes = topo.Nodes()
	e.st.NetLinks = fab.NumNetLinks()
	return e, nil
}

// Fabric exposes the underlying fabric (for tests and tools).
func (e *Engine) Fabric() *router.Fabric { return e.fab }

// Topology exposes the topology.
func (e *Engine) Topology() *topology.Torus { return e.topo }

// Detector exposes the active detection mechanism.
func (e *Engine) Detector() detect.Detector { return e.det }

// Oracle exposes the global deadlock oracle (for benchmarks and tools).
func (e *Engine) Oracle() *deadlock.Oracle { return e.oracle }

// Now returns the current cycle.
func (e *Engine) Now() int64 { return e.now }

// Stats returns the counters accumulated so far in the measurement window.
func (e *Engine) Stats() *stats.Counters { return &e.st }

// LatencyHistogram returns the generation-to-delivery latency distribution
// accumulated so far in the measurement window.
func (e *Engine) LatencyHistogram() *stats.Histogram { return e.latHist }

// DetectLatencyHistogram returns the oracle-to-detection latency
// distribution accumulated so far (see Result.DetectLatencyHist).
func (e *Engine) DetectLatencyHistogram() *stats.Histogram { return e.detLatHist }

// Tracer returns the attached flight recorder, or nil when tracing is off.
func (e *Engine) Tracer() *trace.Recorder { return e.tr }

// Metrics returns the attached metrics collector, or nil when metrics are
// off.
func (e *Engine) Metrics() *metrics.Collector { return e.mc }

// FailLink injects a fault: physical channel l is taken out of service and
// every worm currently holding one of its virtual channels is killed and
// re-queued at its source (the standard abort-and-retry response to a
// failed channel). Routing algorithms stop proposing the channel; with
// adaptive routing, traffic flows around it as long as alternative minimal
// paths exist.
func (e *Engine) FailLink(l router.LinkID) {
	e.fab.FailLink(l)
	for _, id := range e.fab.OccupantsOf(l) {
		m := e.fab.Msg(id)
		if m.Phase != router.PhaseNetwork && m.Phase != router.PhaseRecovering {
			continue
		}
		for _, vc := range e.fab.ReleaseWorm(m) {
			fl := e.fab.LinkOfVC(vc)
			e.tr.Emit(trace.KindVCFree, m.ID, fl, -1, 0, int32(vc))
			e.det.VCFreed(fl)
		}
		m.Phase = router.PhaseAborted
		if e.measuring {
			e.st.KilledByFault++
		}
		e.requeue(m, int(m.Src))
	}
	e.mc.Inc(metrics.MLinkFailures)
	if e.measuring {
		e.st.LinkFailures++
	}
}

// RepairLink returns a failed channel to service.
func (e *Engine) RepairLink(l router.LinkID) { e.fab.RepairLink(l) }

// InjectMessage enqueues a message at node src's source queue, bypassing
// the random generator. Combined with Load = 0 it gives deterministic,
// hand-scripted workloads (used by tests and teaching examples).
func (e *Engine) InjectMessage(src, dst, length int) *router.Message {
	m := e.fab.NewMessage(src, dst, length, e.now)
	m.Phase = router.PhaseQueued
	e.queues[src].Push(m.ID)
	e.mc.Inc(metrics.MGenerated)
	if e.measuring {
		e.st.Generated++
	}
	return m
}

// Run executes the configured warm-up and measurement phases and returns
// the result.
func (e *Engine) Run() (*Result, error) {
	total := e.cfg.Warmup + e.cfg.Measure
	for e.now < total {
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	e.st.Cycles = e.cfg.Measure
	return &Result{
		Counters:          e.st,
		Detector:          e.det.Name(),
		TotalCycles:       total,
		LatencyHist:       e.latHist,
		DetectDelayHist:   e.delayHist,
		DetectLatencyHist: e.detLatHist,
	}, nil
}

// Step advances the simulation by one cycle.
func (e *Engine) Step() error {
	e.measuring = e.now >= e.cfg.Warmup && e.now < e.cfg.Warmup+e.cfg.Measure
	e.marksThisCycle = 0
	e.tr.BeginCycle(e.now)

	// Headers that arrived last cycle become routable now (routing takes
	// one cycle).
	e.pending = append(e.pending, e.pendingNew...)
	e.pendingNew = e.pendingNew[:0]

	e.generate()
	e.admit()
	e.transfer()
	e.drainDelivery()
	e.det.EndCycle(e.now, e.txLinks, e.transmitted)
	if e.measuring && e.dtCount != nil {
		e.st.DTFlagCycleSum += int64(e.dtCount())
	}
	if e.probeTotals != nil {
		pt := e.probeTotals()
		if e.measuring {
			e.st.ProbesEmitted += pt.Emitted - e.lastProbe.Emitted
			e.st.ProbesForwarded += pt.Forwarded - e.lastProbe.Forwarded
			e.st.ProbesDropped += pt.Dropped - e.lastProbe.Dropped
			e.st.ProbesReturned += pt.Returned - e.lastProbe.Returned
			e.st.ProbeFlits += pt.Flits - e.lastProbe.Flits
		}
		if e.mc != nil {
			e.mc.Add(metrics.MProbesEmitted, pt.Emitted-e.lastProbe.Emitted)
			e.mc.Add(metrics.MProbesForwarded, pt.Forwarded-e.lastProbe.Forwarded)
			e.mc.Add(metrics.MProbesDropped, pt.Dropped-e.lastProbe.Dropped)
			e.mc.Add(metrics.MProbesReturned, pt.Returned-e.lastProbe.Returned)
			e.mc.Add(metrics.MProbeFlits, pt.Flits-e.lastProbe.Flits)
		}
		e.lastProbe = pt
	}
	e.route()
	e.feedSources()
	e.rec.Step()

	if e.cfg.OracleEvery > 0 && e.now%e.cfg.OracleEvery == 0 {
		e.runOracle()
		if e.measuring {
			e.st.OracleRuns++
			if n := e.oracleSize; n > 0 {
				e.st.DeadlockCycles++
				e.st.DeadlockedMsgSum += int64(n)
				if n > e.st.MaxDeadlockSet {
					e.st.MaxDeadlockSet = n
				}
			}
		}
	}
	if e.measuring {
		e.st.RecordMarks(e.marksThisCycle)
	}
	if e.mc != nil {
		// One guarded block rather than three nil-safe calls: the DT-flag
		// probe and absorption delta are side computations the unmetered
		// path must not pay for.
		if e.dtCount != nil {
			e.mc.Add(metrics.MDTFlagCycles, int64(e.dtCount()))
		}
		af := e.rec.AbsorbedFlits()
		e.mc.Add(metrics.MAbsorbedFlits, af-e.lastAbsorbedFlits)
		e.lastAbsorbedFlits = af
		e.mc.EndCycle(e.now, e)
	}

	if e.cfg.Debug {
		if err := e.fab.CheckInvariants(); err != nil {
			return fmt.Errorf("cycle %d: %w", e.now, err)
		}
		if err := e.oracle.CrossCheck(); err != nil {
			return fmt.Errorf("cycle %d: %w", e.now, err)
		}
	}
	e.now++
	return nil
}

// ---------------------------------------------------------------------------
// Stage 1: message generation.

func (e *Engine) generate() {
	for node := 0; node < e.topo.Nodes(); node++ {
		if e.queues[node].Len() >= e.cfg.MaxSourceQueue {
			// Source queue full: generation pauses at this node (offered
			// load is capped, which is inevitable beyond saturation).
			continue
		}
		dst, length, ok := e.gen.Next(node, e.rnd)
		if !ok {
			continue
		}
		m := e.fab.NewMessage(node, dst, length, e.now)
		m.Phase = router.PhaseQueued
		e.queues[node].Push(m.ID)
		e.mc.Inc(metrics.MGenerated)
		if e.measuring {
			e.st.Generated++
		}
	}
}

// ---------------------------------------------------------------------------
// Stage 2: injection admission (with the injection-limitation mechanism).

func (e *Engine) admit() {
	limit := e.cfg.InjectionLimit
	for node := 0; node < e.topo.Nodes(); node++ {
		q := &e.queues[node]
		if q.Len() == 0 {
			continue
		}
		// The injection-limitation check must be re-evaluated per admission,
		// not once per node: a router with several injection ports would
		// otherwise admit up to InjPorts messages in the cycle the busy
		// count is still at the threshold, overshooting the limit. Each
		// message admitted this cycle will occupy a network output VC before
		// the count is observed again, so it is charged immediately.
		busy := 0
		if limit >= 0 {
			busy = e.fab.BusyNetOutputVCs(node)
		}
		for p := 0; p < e.cfg.Router.InjPorts && q.Len() > 0; p++ {
			if limit >= 0 && busy > limit {
				break
			}
			l := e.fab.InjLink(node, p)
			vc := e.fab.FreeVC(l)
			if vc == router.NilVC {
				continue
			}
			m := e.fab.Msg(q.Pop())
			busy++
			m.Phase = router.PhaseNetwork
			m.InjLink = l
			m.InjectTime = e.now
			m.LastSourceFlit = e.now
			e.fab.Allocate(m, router.NilVC, vc)
			m.HeadVC = vc
			e.injecting = append(e.injecting, m.ID)
			e.tr.Emit(trace.KindInject, m.ID, l, int32(node), int64(m.Length), int32(m.Dst))
			e.tr.Emit(trace.KindVCAlloc, m.ID, l, int32(node), 0, int32(vc))
			e.mc.Inc(metrics.MInjected)
			if e.measuring {
				e.st.Injected++
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Stage 3: flit transfer (crossbar + channel).
//
// All moves are decided against a start-of-cycle snapshot of buffer
// occupancy, so a flit advances at most one hop per cycle and flow control
// is credit-exact. Constraints: at most one flit crosses each physical
// channel per cycle (channel bandwidth), and at most one flit leaves each
// input physical channel per cycle (crossbar port).

func (e *Engine) transfer() {
	fab := e.fab
	vcs := fab.VCs
	for _, l := range e.txLinks {
		e.transmitted[l] = false
	}
	e.txLinks = e.txLinks[:0]
	// Snapshot occupancy and collect transfer requests grouped by target
	// physical channel. Only occupied VCs can hold or receive flits, so
	// iterating the occupied list suffices.
	e.activeLinks = e.activeLinks[:0]
	for _, i := range fab.Occupied() {
		e.flitsAtStart[i] = vcs[i].Flits
		if vcs[i].Flits > 0 && vcs[i].Next != router.NilVC {
			tgt := vcs[i].Next
			tl := vcs[tgt].Link
			if len(e.feeders[tl]) == 0 {
				e.activeLinks = append(e.activeLinks, tl)
			}
			e.feeders[tl] = append(e.feeders[tl], i)
		}
	}
	// Arbitrate each target channel: one winner per channel, round-robin
	// over feeders, skipping feeders whose input channel already sent.
	for _, tl := range e.activeLinks {
		req := e.feeders[tl]
		link := &fab.Links[tl]
		n := len(req)
		start := int(link.RR()) % n
		for k := 0; k < n; k++ {
			u := req[(start+k)%n]
			uv := &vcs[u]
			if e.flitsAtStart[u] == 0 {
				continue // flit arrived only this cycle; forward next cycle
			}
			if e.flitsAtStart[uv.Next] >= int32(fab.Cfg.BufFlits) {
				continue // no credit at the target buffer
			}
			in := uv.Link
			if e.inputUsedAt[in] == e.now {
				continue // crossbar input port already used this cycle
			}
			e.moveFlit(u)
			e.inputUsedAt[in] = e.now
			e.transmitted[tl] = true
			e.txLinks = append(e.txLinks, tl)
			link.AdvanceRR()
			break
		}
		e.feeders[tl] = req[:0]
	}
}

// moveFlit performs one flit movement and the associated message and
// detection bookkeeping.
func (e *Engine) moveFlit(u router.VCID) {
	fab := e.fab
	occ := fab.VCs[u].Occupant
	next := fab.VCs[u].Next
	m := fab.Msg(occ)
	header, tail := fab.MoveFlit(u)
	if header {
		m.HeadVC = next
		if fab.Links[fab.LinkOfVC(next)].Kind != router.DeliveryLink &&
			m.Phase == router.PhaseNetwork {
			// The header reached a new router: it must route again, one
			// cycle from now.
			m.Attempts = 0
			e.pendingNew = append(e.pendingNew, m.ID)
		}
	}
	if tail {
		m.TailVC = next
		l := fab.LinkOfVC(u)
		e.tr.Emit(trace.KindVCFree, occ, l, -1, 0, int32(u))
		e.det.VCFreed(l)
	}
}

// ---------------------------------------------------------------------------
// Stage 4: delivery ports drain one flit per cycle into the local node.

func (e *Engine) drainDelivery() {
	fab := e.fab
	for _, id := range e.deliveryVCs {
		vc := &fab.VCs[id]
		if vc.Occupant == router.NilMsg || vc.Flits == 0 {
			continue
		}
		m := fab.Msg(vc.Occupant)
		tail := vc.HasTail && vc.Flits == 1
		vc.Flits--
		m.Consumed++
		if vc.HasHeader {
			vc.HasHeader = false
			m.HeadVC = router.NilVC
		}
		if !tail {
			continue
		}
		fab.ReleaseEmptyVC(id)
		m.TailVC = router.NilVC
		e.deliver(m)
	}
}

// deliver finalizes a message whose tail has been consumed at its
// destination.
func (e *Engine) deliver(m *router.Message) {
	m.Phase = router.PhaseDelivered
	m.DeliverTime = e.now
	e.tr.Emit(trace.KindDeliver, m.ID, router.NilLink, int32(m.Dst), e.now-m.GenTime, -1)
	e.clearOracleSeen(m.ID)
	e.mc.Inc(metrics.MDelivered)
	e.mc.Add(metrics.MDeliveredFlits, int64(m.Length))
	e.mc.ObserveLatency(e.now - m.GenTime)
	if e.measuring {
		e.st.Delivered++
		e.st.DeliveredFlits += int64(m.Length)
		lat := e.now - m.GenTime
		e.st.LatencySum += lat
		e.st.NetLatencySum += e.now - m.InjectTime
		e.latHist.Add(lat)
		if lat > e.st.MaxLatency {
			e.st.MaxLatency = lat
		}
	}
	if !e.cfg.RetainMessages {
		e.fab.FreeMessage(m)
	}
}

// ---------------------------------------------------------------------------
// Stage 5: routing of waiting headers (detection piggybacks on failures).

func (e *Engine) route() {
	fab := e.fab
	kept := e.pending[:0]
	for _, id := range e.pending {
		m := fab.Msg(id)
		if m.Phase != router.PhaseNetwork || m.HeadVC == router.NilVC {
			continue // delivered, recovering or aborted meanwhile
		}
		hv := &fab.VCs[m.HeadVC]
		if !hv.HasHeader || hv.Next != router.NilVC {
			continue // stale entry
		}
		if hv.Flits == 0 {
			// Header flit has not arrived yet (can only happen for freshly
			// admitted messages before the first source feed).
			kept = append(kept, id)
			continue
		}
		in := fab.LinkOfVC(m.HeadVC)
		node := fab.RouterOf(in)
		e.vcCandBuf = e.alg.Candidates(fab, m, node, e.vcCandBuf[:0])
		out := fab.PickVC(e.vcCandBuf, e.cfg.Select, e.rnd)
		if out != router.NilVC {
			fab.Allocate(m, m.HeadVC, out)
			m.Attempts = 0
			// RouteOK precedes the detector call so the conformance replay
			// sees a same-cycle route success before the P transition it
			// causes. A message that routes is no longer deadlocked, so its
			// oracle stamp (if any) is stale.
			e.tr.Emit(trace.KindRouteOK, m.ID, in, int32(node), int64(fab.LinkOfVC(out)), int32(out))
			e.det.RouteSucceeded(m, in)
			e.clearOracleSeen(m.ID)
			continue
		}
		m.Attempts++
		first := m.Attempts == 1
		if first {
			m.BlockedSince = e.now
			// Attempts 0 -> 1 adds this message to the oracle's blocked-set
			// seed without touching fabric state, so the cached deadlocked
			// set must be invalidated explicitly.
			e.oracle.Invalidate()
		}
		// The feasible output physical channels, for the detection
		// hardware (candidate VCs are grouped by link, so deduplicate
		// consecutively).
		e.candBuf = e.candBuf[:0]
		for _, vc := range e.vcCandBuf {
			l := fab.LinkOfVC(vc)
			if len(e.candBuf) == 0 || e.candBuf[len(e.candBuf)-1] != l {
				e.candBuf = append(e.candBuf, l)
			}
		}
		// RouteFail precedes the detector call so G/P transition events
		// caused by this failure follow it in the trace.
		e.tr.Emit(trace.KindRouteFail, m.ID, in, int32(node), int64(m.Attempts), -1)
		if e.det.RouteFailed(m, in, e.candBuf, first, e.now) {
			e.mark(m)
			continue
		}
		kept = append(kept, id)
	}
	e.pending = kept
}

// mark hands a message the detector declared deadlocked to the recovery
// engine and classifies the detection with the oracle.
func (e *Engine) mark(m *router.Message) {
	e.runOracle()
	m.TrueDeadlock = e.oracle.Contains(m.ID)
	var verdict int64
	if m.TrueDeadlock {
		verdict = 1
	}
	var node int32 = -1
	if m.HeadVC != router.NilVC {
		node = int32(e.fab.RouterOf(e.fab.LinkOfVC(m.HeadVC)))
	}
	e.tr.Emit(trace.KindDetect, m.ID, router.NilLink, node, verdict, -1)
	if m.TrueDeadlock {
		e.mc.Inc(metrics.MMarkedTrue)
	} else {
		e.mc.Inc(metrics.MMarkedFalse)
	}
	if e.measuring {
		e.st.Marked++
		if m.TrueDeadlock {
			e.st.TrueMarked++
		} else {
			e.st.FalseMarked++
		}
	}
	e.marksThisCycle++
	e.mc.ObserveDetectDelay(e.now - m.BlockedSince)
	if e.measuring {
		e.delayHist.Add(e.now - m.BlockedSince)
	}
	if m.TrueDeadlock && int(m.ID) < len(e.oracleSeen) {
		if seen := e.oracleSeen[m.ID]; seen >= 0 {
			e.mc.ObserveDetectLatency(e.now - seen)
			if e.measuring {
				e.detLatHist.Add(e.now - seen)
			}
		}
	}
	e.clearOracleSeen(m.ID)
	e.tr.Emit(trace.KindRecoverStart, m.ID, router.NilLink, node, int64(e.cfg.Recovery), -1)
	e.rec.Mark(m, e.now)
	// Progressive recovery flips the message to PhaseRecovering without
	// releasing a VC, which silently removes it from the oracle's seed;
	// regressive recovery releases the worm (tracked by the fabric's
	// generation counter), so the call is redundant but harmless there.
	e.oracle.Invalidate()
}

// runOracle evaluates the global deadlock oracle at most once per cycle and
// stamps newly deadlocked messages for detection-latency measurement.
func (e *Engine) runOracle() {
	if e.oracleCycle == e.now {
		return
	}
	set := e.oracle.Deadlocked()
	e.oracleSize = len(set)
	e.oracleCycle = e.now
	for _, id := range set {
		for int(id) >= len(e.oracleSeen) {
			e.oracleSeen = append(e.oracleSeen, -1)
		}
		if e.oracleSeen[id] < 0 {
			e.oracleSeen[id] = e.now
			e.tr.Emit(trace.KindOracleDeadlock, id, router.NilLink, -1, int64(len(set)), -1)
		}
	}
}

// clearOracleSeen forgets a message's oracle-deadlock stamp (it routed,
// delivered, or was re-queued — any future deadlock is a new one).
func (e *Engine) clearOracleSeen(id router.MsgID) {
	if int(id) < len(e.oracleSeen) {
		e.oracleSeen[id] = -1
	}
}

// ---------------------------------------------------------------------------
// Stage 6: sources push flits of admitted messages into injection buffers.

func (e *Engine) feedSources() {
	fab := e.fab
	kept := e.injecting[:0]
	for _, id := range e.injecting {
		m := fab.Msg(id)
		if m.Phase == router.PhaseDelivered || m.Phase == router.PhaseAborted ||
			m.Phase == router.PhaseQueued {
			continue // recovered or delivered while still on the list
		}
		if m.Injected >= m.Length {
			continue // tail already in the network
		}
		l := m.InjLink
		vc := fab.VCOf(l, 0)
		if vc.Occupant != m.ID {
			// The injection VC was released (regressive recovery); drop.
			continue
		}
		if vc.Flits < int32(fab.Cfg.BufFlits) {
			first := m.Injected == 0
			m.Injected++
			vc.Flits++
			m.LastSourceFlit = e.now
			if first {
				vc.HasHeader = true
				e.pendingNew = append(e.pendingNew, m.ID)
			}
			if m.Injected == m.Length {
				vc.HasTail = true
			}
		}
		if m.Injected < m.Length {
			kept = append(kept, id)
		}
	}
	e.injecting = kept
}

// ---------------------------------------------------------------------------
// Recovery completion.

// onRecovered re-queues (or delivers) a message the recovery engine has
// fully removed from the fabric.
func (e *Engine) onRecovered(m *router.Message, node int) {
	var delivered int64
	if node == int(m.Dst) {
		delivered = 1
	}
	e.tr.Emit(trace.KindRecoverEnd, m.ID, router.NilLink, int32(node), delivered, -1)
	e.mc.Inc(metrics.MRecovered)
	if e.measuring {
		if e.cfg.Recovery == recovery.Progressive {
			e.st.Absorbed++
		} else {
			e.st.Aborted++
		}
	}
	if node == int(m.Dst) {
		// Progressive recovery absorbed the message at its destination:
		// it has been delivered through the recovery path.
		if e.measuring {
			e.st.RecoveredDelivered++
		}
		e.deliver(m)
		return
	}
	e.requeue(m, node)
}

// requeue resets a message's transport state and re-enters it into node's
// source queue.
func (e *Engine) requeue(m *router.Message, node int) {
	e.clearOracleSeen(m.ID)
	m.Phase = router.PhaseQueued
	m.Src = int32(node)
	m.Injected = 0
	m.Consumed = 0
	m.Attempts = 0
	m.Marked = false
	m.InjLink = router.NilLink
	m.Retries++
	e.queues[node].Push(m.ID)
	e.mc.Inc(metrics.MReinjected)
	if e.measuring {
		e.st.Reinjected++
	}
}
