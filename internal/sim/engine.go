package sim

import (
	"fmt"

	"wormnet/internal/deadlock"
	"wormnet/internal/detect"
	"wormnet/internal/metrics"
	"wormnet/internal/recovery"
	"wormnet/internal/rng"
	"wormnet/internal/router"
	"wormnet/internal/routing"
	"wormnet/internal/stats"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

// Result is what one simulation run produces.
type Result struct {
	stats.Counters
	// Detector names the mechanism that was active.
	Detector string
	// TotalCycles includes warm-up.
	TotalCycles int64
	// LatencyHist is the generation-to-delivery latency distribution over
	// delivered messages in the measurement window.
	LatencyHist *stats.Histogram
	// DetectDelayHist is the distribution of detection delay — cycles from
	// a message's first failed routing attempt at its final node to the
	// moment it was marked as deadlocked.
	DetectDelayHist *stats.Histogram
	// DetectLatencyHist is the distribution of detection latency — cycles
	// from the oracle first observing a message in the deadlocked set to the
	// detector marking it. It only accumulates samples when OracleEvery > 0
	// (the oracle must run independently of marks to provide the reference
	// time) and is empty otherwise.
	DetectLatencyHist *stats.Histogram
}

// Engine simulates one network, cycle by cycle. Build one with New, then
// call Run (or Step repeatedly for fine-grained control).
type Engine struct {
	cfg    Config
	topo   *topology.Torus
	fab    *router.Fabric
	det    detect.Detector
	oracle *deadlock.Oracle
	rec    *recovery.Engine
	rnd    *rng.Source
	gen    traffic.Process
	alg    routing.Algorithm

	now        int64
	measuring  bool
	st         stats.Counters
	latHist    *stats.Histogram
	delayHist  *stats.Histogram
	detLatHist *stats.Histogram

	// tr is the flight recorder; nil when tracing is off. All Recorder
	// methods are nil-safe, so emit sites do not guard the pointer.
	tr *trace.Recorder
	// mc is the live metrics collector; nil when metrics are off. Collector
	// methods are nil-safe, so counter sites do not guard the pointer; the
	// per-cycle block in Step does, to skip its side computations entirely.
	mc *metrics.Collector
	// lastAbsorbedFlits is the recovery absorption total already forwarded
	// to the metrics collector.
	lastAbsorbedFlits int64
	// dtCount samples the detector's DT-flag occupancy; nil when the
	// detector does not implement detect.DTOccupier.
	dtCount func() int
	// flagCounts samples the detector's live I/DT/G flag occupancy for the
	// metrics sampler; nil when the detector is not a detect.FlagObserver.
	flagCounts func() (int, int, int)
	// probeTotals samples the cumulative probe activity of a probe-based
	// detector; nil when the detector is not a detect.ProbeObserver.
	// lastProbe holds the previous cycle's snapshot so Step can charge
	// per-cycle deltas to the measured window and the metrics collector.
	probeTotals func() detect.ProbeTotals
	lastProbe   detect.ProbeTotals
	// oracleSeen[id] is the cycle the oracle first observed message id in
	// the deadlocked set (-1 = not currently deadlocked). Cleared when the
	// message routes, delivers, or is re-queued. Grown on demand; in steady
	// state the message pool is fixed, so no allocation per cycle.
	oracleSeen []int64

	// Per-node FIFO source queues of messages waiting for an injection
	// port (both freshly generated and recovered messages).
	queues []msgQueue
	// Messages whose header is waiting to be routed. Headers that arrived
	// (or were injected) during cycle T enter pendingNew and become
	// routable in cycle T+1, charging the paper's 1-cycle routing delay.
	// (Messages still being fed flits live on the per-shard injecting lists.)
	pending    []router.MsgID
	pendingNew []router.MsgID

	// Sharded execution (see shard.go). part is the contiguous node
	// partition; shards holds each shard's node range and per-cycle record
	// lists; nodeRng gives every node its own generation stream so the draw
	// sequence is independent of the shard count; detShard is non-nil when
	// the detector supports per-shard EndCycle splitting.
	part     topology.Partition
	shards   []shardState
	nodeRng  []rng.Source
	detShard detect.Sharded

	// Persistent shard workers (multi-shard only): workerCh[i] feeds shard
	// i+1's parked goroutine one phase per barrier step and workerDone fans
	// completions back in, so the steady-state barrier costs two channel
	// operations per worker instead of a goroutine spawn plus a WaitGroup.
	// Started lazily by the first multi-shard runPhase; StopWorkers parks
	// them for good (Run does this on exit).
	workerCh   []chan phaseID
	workerDone chan struct{}

	// Sparse-kernel active sets (see shard.go). genSkip is non-nil when the
	// injection process supports geometric inter-arrival skip-ahead;
	// genDue[node] is then the node's next arrival cycle (-1 = never), and
	// in sparse mode each shard keeps a binary min-heap of its scheduled
	// nodes keyed by (due, node) plus a deferred list of nodes whose
	// arrival hit a full queue. neBits[s] is shard s's nonempty-queue
	// bitmap: bit i means node lo+i has a waiting source queue, and
	// word-ascending, bit-ascending iteration yields node-ascending
	// (canonical admit) order without sorting. Each shard's bitmap is a
	// separate allocation, so concurrent shard workers never share a word.
	// inFlight counts worms currently in the network (admitted, not yet
	// delivered or re-queued) for the metrics gauge. delBase is the first
	// delivery LinkID, cached for the canonical active-link key encoding.
	// linkKey[l] is output link l's canonical arbitration key node*span+k
	// (network output links before delivery ports, each in port order; -1
	// for injection links, which are never transfer targets), precomputed
	// so the transfer bucketing loop marks active links without a divide.
	genSkip  traffic.Skipahead
	genDue   []int64
	neBits   [][]uint64
	linkKey  []int32
	inFlight int
	delBase  int

	// Per-cycle scratch state.
	transmitted []bool          // flit crossed link l this cycle
	txLinks     []router.LinkID // links with transmitted set this cycle (merged)
	feeders     [][]router.VCID // per target link: VCs requesting to send
	inputUsedAt []int64         // cycle stamp: input channel already sent a flit
	candBuf     []router.LinkID
	deliveryVCs []router.VCID
	// Flat candidate arena for the parallel routing phase: pending entry i
	// owns routeCands[i*candStride : (i+1)*candStride]; routeCandsLen[i] is
	// its candidate count, or -1 for entries that will not route this cycle.
	routeCands    []router.VCID
	routeCandsLen []int32
	candStride    int

	marksThisCycle int
	oracleCycle    int64 // last cycle the oracle ran (-1 = never)
	oracleSize     int   // size of the most recent oracle deadlock set

	// chooser, when non-nil, resolves VC selection and arbitration
	// externally (see choose.go); freeCands and arbElig are its scratch
	// option lists.
	chooser   Chooser
	freeCands []router.VCID
	arbElig   []router.VCID
}

// New builds an Engine from cfg. The configuration is validated; defaults
// are filled in for zero-valued optional fields.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	topo := topology.New(cfg.K, cfg.N)
	fab, err := router.NewFabric(topo, cfg.Router)
	if err != nil {
		return nil, err
	}
	// The partition must be installed before the detector is built: sharded
	// detectors size their per-shard flag counts from Fabric.NumShards.
	part := topology.NewPartition(topo.Nodes(), cfg.Shards)
	fab.SetPartition(part)
	e := &Engine{
		part:        part,
		cfg:         cfg,
		topo:        topo,
		fab:         fab,
		oracle:      deadlock.New(fab),
		rnd:         rng.New(cfg.Seed),
		oracleCycle: -1,
		latHist:     stats.NewHistogram(1.25),
		delayHist:   stats.NewHistogram(1.25),
		detLatHist:  stats.NewHistogram(1.25),
		alg:         cfg.Routing,
		tr:          cfg.Trace,
		mc:          cfg.Metrics,
		chooser:     cfg.Chooser,
	}
	e.oracle.SetCandidates(func(m *router.Message, node int, buf []router.VCID) []router.VCID {
		return e.alg.Candidates(fab, m, node, buf)
	})
	if cfg.Detector != nil {
		e.det = cfg.Detector(fab)
	} else {
		e.det = detect.None{}
	}
	if t, ok := e.det.(detect.Traceable); ok {
		t.SetTracer(e.tr)
	}
	if o, ok := e.det.(detect.DTOccupier); ok {
		e.dtCount = o.DTCount
	}
	if o, ok := e.det.(detect.FlagObserver); ok {
		e.flagCounts = o.FlagCounts
	}
	if o, ok := e.det.(detect.ProbeObserver); ok {
		e.probeTotals = o.ProbeTotals
	}
	if d, ok := e.det.(detect.Sharded); ok {
		e.detShard = d
	}
	e.mc.Attach(e.det.Name(), topo.N())
	e.rec = recovery.New(fab, cfg.Recovery, recovery.Hooks{
		VCFreed: func(l router.LinkID) {
			e.tr.Emit(trace.KindVCFree, router.NilMsg, l, -1, 0, -1)
			e.det.VCFreed(l)
		},
		Recovered: e.onRecovered,
	})
	if cfg.Process != nil {
		e.gen = cfg.Process(topo)
	} else {
		e.gen = traffic.NewGenerator(cfg.Pattern(topo), cfg.Lengths, cfg.Load)
	}
	e.queues = make([]msgQueue, topo.Nodes())
	e.transmitted = make([]bool, fab.NumLinks())
	e.inputUsedAt = make([]int64, fab.NumLinks())
	for i := range e.inputUsedAt {
		e.inputUsedAt[i] = -1
	}
	// Every node draws generation randomness from its own stream derived
	// from the run seed, so the sequence each node sees is a pure function
	// of (seed, node) — independent of shard count and scheduling. The
	// shared stream e.rnd remains for the serial routing commit (PickVC).
	e.nodeRng = make([]rng.Source, topo.Nodes())
	for i := range e.nodeRng {
		e.nodeRng[i] = *rng.New(rng.Derive(cfg.Seed, uint64(i)))
	}
	e.shards = make([]shardState, part.Shards())
	for s := range e.shards {
		e.shards[s].lo, e.shards[s].hi = part.Range(s)
	}
	// Active-set structures. The nonempty-queue bitmaps are maintained in
	// both kernel modes (the dense kernel only ignores them when iterating),
	// so gauges and audits see the same state either way.
	e.delBase = int(fab.DelLink(0, 0))
	e.neBits = make([][]uint64, part.Shards())
	deg := topo.Degree()
	keySpan := deg + cfg.Router.DelPorts
	for s := range e.shards {
		sh := &e.shards[s]
		span := sh.hi - sh.lo
		e.neBits[s] = make([]uint64, (span+63)/64)
		sh.keyBits = make([]uint64, (span*keySpan+63)/64)
	}
	e.linkKey = make([]int32, fab.NumLinks())
	for l := range e.linkKey {
		switch {
		case l < fab.NumNetLinks():
			e.linkKey[l] = int32(l / deg * keySpan + l % deg)
		case l >= e.delBase:
			d := l - e.delBase
			e.linkKey[l] = int32(d/cfg.Router.DelPorts*keySpan + deg + d%cfg.Router.DelPorts)
		default:
			e.linkKey[l] = -1
		}
	}
	// Skip-ahead generation: when the process supports it, every node's
	// per-cycle Bernoulli trial collapses into a geometric inter-arrival
	// countdown. Each node's first gap comes from its own stream, so the
	// schedule stays a pure function of (seed, node) — and both kernel modes
	// consume the identical stream, which is what makes them byte-identical.
	if sk, ok := e.gen.(traffic.Skipahead); ok {
		e.genSkip = sk
		e.genDue = make([]int64, topo.Nodes())
		for node := range e.genDue {
			gap, ok := sk.NextGap(node, &e.nodeRng[node])
			if !ok {
				e.genDue[node] = -1
				continue
			}
			e.genDue[node] = int64(gap)
		}
		if !cfg.DenseKernel {
			for s := range e.shards {
				sh := &e.shards[s]
				span := sh.hi - sh.lo
				sh.genHeap = make([]int32, 0, span)
				sh.genDefA = make([]int32, 0, span)
				sh.genDefB = make([]int32, 0, span)
				for node := sh.lo; node < sh.hi; node++ {
					if e.genDue[node] >= 0 {
						e.heapPush(sh, int32(node))
					}
				}
			}
		}
	}
	// Pre-size the per-cycle scratch buffers to their geometric maxima so
	// the steady-state hot path never grows them: each target VC has at
	// most one upstream feeder (worms occupy distinct VCs), at most every
	// link can transmit in one cycle, and a routing decision considers at
	// most every outgoing link (plus delivery ports) of one router.
	e.feeders = make([][]router.VCID, fab.NumLinks())
	maxVC := int32(0)
	for l := range e.feeders {
		n := fab.Links[l].NumVC
		e.feeders[l] = make([]router.VCID, 0, n)
		if n > maxVC {
			maxVC = n
		}
	}
	e.txLinks = make([]router.LinkID, 0, fab.NumLinks())
	maxCands := topo.Degree() + cfg.Router.DelPorts
	e.candBuf = make([]router.LinkID, 0, maxCands)
	e.candStride = maxCands * int(maxVC)
	e.deliveryVCs = make([]router.VCID, 0, topo.Nodes()*cfg.Router.DelPorts)
	for node := 0; node < topo.Nodes(); node++ {
		for p := 0; p < cfg.Router.DelPorts; p++ {
			l := fab.DelLink(node, p)
			e.deliveryVCs = append(e.deliveryVCs, fab.Links[l].FirstVC)
		}
	}
	e.st.Nodes = topo.Nodes()
	e.st.NetLinks = fab.NumNetLinks()
	return e, nil
}

// Fabric exposes the underlying fabric (for tests and tools).
func (e *Engine) Fabric() *router.Fabric { return e.fab }

// Topology exposes the topology.
func (e *Engine) Topology() *topology.Torus { return e.topo }

// Detector exposes the active detection mechanism.
func (e *Engine) Detector() detect.Detector { return e.det }

// Oracle exposes the global deadlock oracle (for benchmarks and tools).
func (e *Engine) Oracle() *deadlock.Oracle { return e.oracle }

// Now returns the current cycle.
func (e *Engine) Now() int64 { return e.now }

// Stats returns the counters accumulated so far in the measurement window.
func (e *Engine) Stats() *stats.Counters { return &e.st }

// LatencyHistogram returns the generation-to-delivery latency distribution
// accumulated so far in the measurement window.
func (e *Engine) LatencyHistogram() *stats.Histogram { return e.latHist }

// DetectLatencyHistogram returns the oracle-to-detection latency
// distribution accumulated so far (see Result.DetectLatencyHist).
func (e *Engine) DetectLatencyHistogram() *stats.Histogram { return e.detLatHist }

// Tracer returns the attached flight recorder, or nil when tracing is off.
func (e *Engine) Tracer() *trace.Recorder { return e.tr }

// Metrics returns the attached metrics collector, or nil when metrics are
// off.
func (e *Engine) Metrics() *metrics.Collector { return e.mc }

// FailLink injects a fault: physical channel l is taken out of service and
// every worm currently holding one of its virtual channels is killed and
// re-queued at its source (the standard abort-and-retry response to a
// failed channel). Routing algorithms stop proposing the channel; with
// adaptive routing, traffic flows around it as long as alternative minimal
// paths exist.
func (e *Engine) FailLink(l router.LinkID) {
	e.fab.FailLink(l)
	for _, id := range e.fab.OccupantsOf(l) {
		m := e.fab.Msg(id)
		if m.Phase != router.PhaseNetwork && m.Phase != router.PhaseRecovering {
			continue
		}
		for _, vc := range e.fab.ReleaseWorm(m) {
			fl := e.fab.LinkOfVC(vc)
			e.tr.Emit(trace.KindVCFree, m.ID, fl, -1, 0, int32(vc))
			e.det.VCFreed(fl)
		}
		m.Phase = router.PhaseAborted
		if e.measuring {
			e.st.KilledByFault++
		}
		e.requeue(m, int(m.Src))
	}
	e.mc.Inc(metrics.MLinkFailures)
	if e.measuring {
		e.st.LinkFailures++
	}
}

// RepairLink returns a failed channel to service.
func (e *Engine) RepairLink(l router.LinkID) { e.fab.RepairLink(l) }

// InjectMessage enqueues a message at node src's source queue, bypassing
// the random generator. Combined with Load = 0 it gives deterministic,
// hand-scripted workloads (used by tests and teaching examples).
//
// It honors the same MaxSourceQueue bound the generator does: when src's
// queue is full the message is rejected and nil is returned, leaving no
// trace in the pool or the statistics. (Scripted workloads that outrun the
// injection stage would otherwise grow the queue without limit, which the
// random generator is never allowed to do.)
func (e *Engine) InjectMessage(src, dst, length int) *router.Message {
	if e.queues[src].Len() >= e.cfg.MaxSourceQueue {
		return nil
	}
	m := e.fab.NewMessage(src, dst, length, e.now)
	m.Phase = router.PhaseQueued
	e.queuePush(src, m.ID)
	e.mc.Inc(metrics.MGenerated)
	if e.measuring {
		e.st.Generated++
	}
	return m
}

// Run executes the configured warm-up and measurement phases and returns
// the result.
func (e *Engine) Run() (*Result, error) {
	defer e.StopWorkers()
	total := e.cfg.Warmup + e.cfg.Measure
	for e.now < total {
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	// st.Cycles was accumulated by Step, one count per measuring-phase
	// cycle, so a run truncated or extended by manual Step calls reports
	// the cycles it actually measured rather than the configured window.
	return &Result{
		Counters:          e.st,
		Detector:          e.det.Name(),
		TotalCycles:       total,
		LatencyHist:       e.latHist,
		DetectDelayHist:   e.delayHist,
		DetectLatencyHist: e.detLatHist,
	}, nil
}

// Step advances the simulation by one cycle.
//
// Each stage is a two-phase barrier step over the node partition (see
// shard.go): the parallel phase computes and applies shard-local work, the
// serial spine between phases replays per-shard records whose side effects
// must interleave in one global order. With Config.Shards == 1 every phase
// runs inline on the calling goroutine and the cycle is fully serial.
func (e *Engine) Step() error {
	e.measuring = e.now >= e.cfg.Warmup && e.now < e.cfg.Warmup+e.cfg.Measure
	e.marksThisCycle = 0
	e.tr.BeginCycle(e.now)

	// Headers that arrived last cycle become routable now (routing takes
	// one cycle).
	e.pending = append(e.pending, e.pendingNew...)
	e.pendingNew = e.pendingNew[:0]

	e.runPhase(phaseGenerate)
	e.commitGenerate()
	e.runPhase(phaseAdmit)
	e.commitAdmit()
	e.runPhase(phaseTransferA)
	e.runPhase(phaseTransferB)
	e.commitTransfer()
	e.runPhase(phaseDrain)
	e.commitDelivery()
	e.mergeTxLinks()
	if e.detShard != nil && len(e.shards) > 1 && e.tr == nil {
		// Split EndCycle: the transmitted-link pass runs serially (it may
		// promote G/P state owned by any shard), the per-shard busy-link
		// counting runs in parallel. Identical final state by contract;
		// tracing forces the serial path because the recorder is not safe
		// for concurrent use.
		e.detShard.EndCycleTx(e.now, e.txLinks)
		e.runPhase(phaseDetect)
	} else {
		e.det.EndCycle(e.now, e.txLinks, e.transmitted)
	}
	if e.measuring && e.dtCount != nil {
		e.st.DTFlagCycleSum += int64(e.dtCount())
	}
	if e.probeTotals != nil {
		pt := e.probeTotals()
		if e.measuring {
			e.st.ProbesEmitted += pt.Emitted - e.lastProbe.Emitted
			e.st.ProbesForwarded += pt.Forwarded - e.lastProbe.Forwarded
			e.st.ProbesDropped += pt.Dropped - e.lastProbe.Dropped
			e.st.ProbesReturned += pt.Returned - e.lastProbe.Returned
			e.st.ProbeFlits += pt.Flits - e.lastProbe.Flits
		}
		if e.mc != nil {
			e.mc.Add(metrics.MProbesEmitted, pt.Emitted-e.lastProbe.Emitted)
			e.mc.Add(metrics.MProbesForwarded, pt.Forwarded-e.lastProbe.Forwarded)
			e.mc.Add(metrics.MProbesDropped, pt.Dropped-e.lastProbe.Dropped)
			e.mc.Add(metrics.MProbesReturned, pt.Returned-e.lastProbe.Returned)
			e.mc.Add(metrics.MProbeFlits, pt.Flits-e.lastProbe.Flits)
		}
		e.lastProbe = pt
	}
	e.prepareRouteCands()
	e.runPhase(phaseRouteCands)
	e.routeCommit()
	e.runPhase(phaseFeed)
	e.commitFeed()
	e.rec.Step()

	if e.cfg.OracleEvery > 0 && e.now%e.cfg.OracleEvery == 0 {
		e.runOracle()
		if e.measuring {
			e.st.OracleRuns++
			if n := e.oracleSize; n > 0 {
				e.st.DeadlockCycles++
				e.st.DeadlockedMsgSum += int64(n)
				if n > e.st.MaxDeadlockSet {
					e.st.MaxDeadlockSet = n
				}
			}
		}
	}
	if e.measuring {
		e.st.RecordMarks(e.marksThisCycle)
	}
	if e.mc != nil {
		// One guarded block rather than three nil-safe calls: the DT-flag
		// probe and absorption delta are side computations the unmetered
		// path must not pay for.
		if e.dtCount != nil {
			e.mc.Add(metrics.MDTFlagCycles, int64(e.dtCount()))
		}
		af := e.rec.AbsorbedFlits()
		e.mc.Add(metrics.MAbsorbedFlits, af-e.lastAbsorbedFlits)
		e.lastAbsorbedFlits = af
		e.mc.EndCycle(e.now, e)
	}

	if e.cfg.Debug {
		if err := e.fab.CheckInvariants(); err != nil {
			return fmt.Errorf("cycle %d: %w", e.now, err)
		}
		if err := e.oracle.CrossCheck(); err != nil {
			return fmt.Errorf("cycle %d: %w", e.now, err)
		}
		if err := e.auditActiveSets(); err != nil {
			return fmt.Errorf("cycle %d: %w", e.now, err)
		}
	}
	if e.measuring {
		// One measured cycle actually executed; Run reports the total, so
		// truncated or hand-stepped runs stay accounting-exact.
		e.st.Cycles++
	}
	e.now++
	return nil
}

// deliver finalizes a message whose tail has been consumed at its
// destination.
func (e *Engine) deliver(m *router.Message) {
	m.Phase = router.PhaseDelivered
	m.DeliverTime = e.now
	e.inFlight--
	e.tr.Emit(trace.KindDeliver, m.ID, router.NilLink, int32(m.Dst), e.now-m.GenTime, -1)
	e.clearOracleSeen(m.ID)
	e.mc.Inc(metrics.MDelivered)
	e.mc.Add(metrics.MDeliveredFlits, int64(m.Length))
	e.mc.ObserveLatency(e.now - m.GenTime)
	if e.measuring {
		e.st.Delivered++
		e.st.DeliveredFlits += int64(m.Length)
		lat := e.now - m.GenTime
		e.st.LatencySum += lat
		e.st.NetLatencySum += e.now - m.InjectTime
		e.latHist.Add(lat)
		if lat > e.st.MaxLatency {
			e.st.MaxLatency = lat
		}
	}
	if !e.cfg.RetainMessages {
		e.fab.FreeMessage(m)
	}
}

// ---------------------------------------------------------------------------
// Stage 5: routing of waiting headers (detection piggybacks on failures).
//
// Candidate computation — the geometry-heavy part — runs in parallel
// (routeCandsShard); the commit below runs serially because VC allocation,
// selection randomness, detector transitions and recovery must interleave in
// pending order. Staleness is re-checked live: a mark earlier in the commit
// can trigger recovery that releases a later message's worm. The precomputed
// candidate sets stay valid across commits because candidates depend only on
// topology, the failure map and the destination, never on occupancy; PickVC
// re-checks VC occupancy live.

// prepareRouteCands sizes the flat candidate arena for this cycle's pending
// list. Growth is amortized; in steady state the arena is only re-sliced.
func (e *Engine) prepareRouteCands() {
	need := len(e.pending) * e.candStride
	if cap(e.routeCands) < need {
		e.routeCands = make([]router.VCID, need)
	}
	e.routeCands = e.routeCands[:need]
	if cap(e.routeCandsLen) < len(e.pending) {
		e.routeCandsLen = make([]int32, len(e.pending))
	}
	e.routeCandsLen = e.routeCandsLen[:len(e.pending)]
}

func (e *Engine) routeCommit() {
	fab := e.fab
	stride := e.candStride
	kept := e.pending[:0]
	for i, id := range e.pending {
		m := fab.Msg(id)
		if m.Phase != router.PhaseNetwork || m.HeadVC == router.NilVC {
			continue // delivered, recovering or aborted meanwhile
		}
		hv := &fab.VCs[m.HeadVC]
		if !hv.HasHeader || hv.Next != router.NilVC {
			continue // stale entry
		}
		if hv.Flits == 0 {
			// Header flit has not arrived yet (can only happen for freshly
			// admitted messages before the first source feed).
			kept = append(kept, id)
			continue
		}
		in := fab.LinkOfVC(m.HeadVC)
		node := fab.RouterOf(in)
		// Staleness only ever increases during the commit, so an entry that
		// is live here was live in the parallel phase and owns a computed
		// candidate set.
		cands := e.routeCands[i*stride : i*stride+int(e.routeCandsLen[i])]
		var out router.VCID
		if e.chooser != nil {
			out = e.chooseVC(cands)
		} else {
			out = fab.PickVC(cands, e.cfg.Select, e.rnd)
		}
		if out != router.NilVC {
			fab.Allocate(m, m.HeadVC, out)
			m.Attempts = 0
			// RouteOK precedes the detector call so the conformance replay
			// sees a same-cycle route success before the P transition it
			// causes. A message that routes is no longer deadlocked, so its
			// oracle stamp (if any) is stale.
			e.tr.Emit(trace.KindRouteOK, m.ID, in, int32(node), int64(fab.LinkOfVC(out)), int32(out))
			e.det.RouteSucceeded(m, in)
			e.clearOracleSeen(m.ID)
			continue
		}
		m.Attempts++
		first := m.Attempts == 1
		if first {
			m.BlockedSince = e.now
			// Attempts 0 -> 1 adds this message to the oracle's blocked-set
			// seed without touching fabric state, so the cached deadlocked
			// set must be invalidated explicitly.
			e.oracle.Invalidate()
		}
		// The feasible output physical channels, for the detection
		// hardware (candidate VCs are grouped by link, so deduplicate
		// consecutively).
		e.candBuf = e.candBuf[:0]
		for _, vc := range cands {
			l := fab.LinkOfVC(vc)
			if len(e.candBuf) == 0 || e.candBuf[len(e.candBuf)-1] != l {
				e.candBuf = append(e.candBuf, l)
			}
		}
		// RouteFail precedes the detector call so G/P transition events
		// caused by this failure follow it in the trace.
		e.tr.Emit(trace.KindRouteFail, m.ID, in, int32(node), int64(m.Attempts), -1)
		if e.det.RouteFailed(m, in, e.candBuf, first, e.now) {
			e.mark(m)
			continue
		}
		kept = append(kept, id)
	}
	e.pending = kept
}

// mark hands a message the detector declared deadlocked to the recovery
// engine and classifies the detection with the oracle.
func (e *Engine) mark(m *router.Message) {
	e.runOracle()
	m.TrueDeadlock = e.oracle.Contains(m.ID)
	var verdict int64
	if m.TrueDeadlock {
		verdict = 1
	}
	var node int32 = -1
	if m.HeadVC != router.NilVC {
		node = int32(e.fab.RouterOf(e.fab.LinkOfVC(m.HeadVC)))
	}
	e.tr.Emit(trace.KindDetect, m.ID, router.NilLink, node, verdict, -1)
	if m.TrueDeadlock {
		e.mc.Inc(metrics.MMarkedTrue)
	} else {
		e.mc.Inc(metrics.MMarkedFalse)
	}
	if e.measuring {
		e.st.Marked++
		if m.TrueDeadlock {
			e.st.TrueMarked++
		} else {
			e.st.FalseMarked++
		}
	}
	e.marksThisCycle++
	e.mc.ObserveDetectDelay(e.now - m.BlockedSince)
	if e.measuring {
		e.delayHist.Add(e.now - m.BlockedSince)
	}
	if m.TrueDeadlock && int(m.ID) < len(e.oracleSeen) {
		if seen := e.oracleSeen[m.ID]; seen >= 0 {
			e.mc.ObserveDetectLatency(e.now - seen)
			if e.measuring {
				e.detLatHist.Add(e.now - seen)
			}
		}
	}
	e.clearOracleSeen(m.ID)
	e.tr.Emit(trace.KindRecoverStart, m.ID, router.NilLink, node, int64(e.cfg.Recovery), -1)
	e.rec.Mark(m, e.now)
	// Progressive recovery flips the message to PhaseRecovering without
	// releasing a VC, which silently removes it from the oracle's seed;
	// regressive recovery releases the worm (tracked by the fabric's
	// generation counter), so the call is redundant but harmless there.
	e.oracle.Invalidate()
}

// runOracle evaluates the global deadlock oracle at most once per cycle and
// stamps newly deadlocked messages for detection-latency measurement.
func (e *Engine) runOracle() {
	if e.oracleCycle == e.now {
		return
	}
	set := e.oracle.Deadlocked()
	e.oracleSize = len(set)
	e.oracleCycle = e.now
	for _, id := range set {
		for int(id) >= len(e.oracleSeen) {
			e.oracleSeen = append(e.oracleSeen, -1)
		}
		if e.oracleSeen[id] < 0 {
			e.oracleSeen[id] = e.now
			e.tr.Emit(trace.KindOracleDeadlock, id, router.NilLink, -1, int64(len(set)), -1)
		}
	}
}

// clearOracleSeen forgets a message's oracle-deadlock stamp (it routed,
// delivered, or was re-queued — any future deadlock is a new one).
func (e *Engine) clearOracleSeen(id router.MsgID) {
	if int(id) < len(e.oracleSeen) {
		e.oracleSeen[id] = -1
	}
}

// ---------------------------------------------------------------------------
// Recovery completion.

// onRecovered re-queues (or delivers) a message the recovery engine has
// fully removed from the fabric.
func (e *Engine) onRecovered(m *router.Message, node int) {
	var delivered int64
	if node == int(m.Dst) {
		delivered = 1
	}
	e.tr.Emit(trace.KindRecoverEnd, m.ID, router.NilLink, int32(node), delivered, -1)
	e.mc.Inc(metrics.MRecovered)
	if e.measuring {
		if e.cfg.Recovery == recovery.Progressive {
			e.st.Absorbed++
		} else {
			e.st.Aborted++
		}
	}
	if node == int(m.Dst) {
		// Progressive recovery absorbed the message at its destination:
		// it has been delivered through the recovery path.
		if e.measuring {
			e.st.RecoveredDelivered++
		}
		e.deliver(m)
		return
	}
	e.requeue(m, node)
}

// requeue resets a message's transport state and re-enters it into node's
// source queue.
func (e *Engine) requeue(m *router.Message, node int) {
	e.clearOracleSeen(m.ID)
	m.Phase = router.PhaseQueued
	m.Src = int32(node)
	m.Injected = 0
	m.Consumed = 0
	m.Attempts = 0
	m.Marked = false
	m.InjLink = router.NilLink
	m.Retries++
	e.queuePush(node, m.ID)
	e.inFlight--
	e.mc.Inc(metrics.MReinjected)
	if e.measuring {
		e.st.Reinjected++
	}
}
