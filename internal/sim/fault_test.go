package sim

import (
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/router"
	"wormnet/internal/routing"
	"wormnet/internal/topology"
)

// TestFaultMaskingWithAdaptiveRouting: with path diversity, adaptive
// routing delivers traffic around a failed channel; messages holding the
// channel at failure time are killed and retried.
func TestFaultMaskingWithAdaptiveRouting(t *testing.T) {
	cfg := smallConfig()
	cfg.K, cfg.N = 4, 2
	cfg.Load = 0.4
	cfg.Warmup, cfg.Measure = 0, 1<<40
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Stats().Delivered
	// Fail a couple of X+ channels.
	e.FailLink(e.Fabric().NetLink(0, 0))
	e.FailLink(e.Fabric().NetLink(5, 2))
	if e.Stats().LinkFailures != 2 {
		t.Fatalf("LinkFailures = %d", e.Stats().LinkFailures)
	}
	for i := 0; i < 6000; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	after := e.Stats().Delivered
	if after-before < 1000 {
		t.Fatalf("network stalled after faults: %d delivered in 6000 cycles", after-before)
	}
	// Nothing may ever occupy a failed channel again.
	if e.Fabric().BusyVCs(e.Fabric().NetLink(0, 0)) != 0 {
		t.Error("failed channel occupied")
	}
}

// TestFaultKillsOccupants: a worm straddling a channel at failure time is
// evicted, re-queued at its source, and eventually delivered.
func TestFaultKillsOccupants(t *testing.T) {
	e := quiescent(t, 8, 1)
	m := e.InjectMessage(0, 4, 64) // long worm across the + ring
	stepN(t, e, 10)                // worm straddles several channels
	if m.Phase != router.PhaseNetwork {
		t.Fatalf("phase %v", m.Phase)
	}
	l := e.Fabric().LinkOfVC(m.HeadVC)
	if e.Fabric().Links[l].Kind != router.NetworkLink {
		t.Fatalf("head not on a network link yet")
	}
	e.FailLink(l)
	if e.Stats().KilledByFault != 1 {
		t.Fatalf("KilledByFault = %d", e.Stats().KilledByFault)
	}
	if m.Phase != router.PhaseQueued {
		t.Fatalf("victim phase %v, want re-queued", m.Phase)
	}
	if m.Retries != 1 {
		t.Errorf("retries %d", m.Retries)
	}
	// On an 8-ring with one + channel dead the minimal path may be cut, but
	// this message still has the minus ring if distance allows; here 0->4
	// is halfway, so both directions are minimal and it gets through.
	for i := 0; i < 400 && m.Phase != router.PhaseDelivered; i++ {
		stepN(t, e, 1)
	}
	if m.Phase != router.PhaseDelivered {
		t.Fatal("victim never delivered after retry")
	}
	if err := e.Fabric().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRepairLink: traffic uses a channel again after repair.
func TestRepairLink(t *testing.T) {
	e := quiescent(t, 8, 1)
	l := e.Fabric().NetLink(0, 0)
	e.FailLink(l)
	// 0 -> 1 has only the + path of length 1 as minimal; with it cut the
	// message cannot route (minimal routing is not fault tolerant without
	// diversity).
	m := e.InjectMessage(0, 1, 4)
	stepN(t, e, 50)
	if m.Phase == router.PhaseDelivered {
		t.Fatal("message delivered across a failed channel")
	}
	e.RepairLink(l)
	stepN(t, e, 50)
	if m.Phase != router.PhaseDelivered {
		t.Fatal("message not delivered after repair")
	}
}

// TestDetectionUnderFaults: faults + congestion do not wedge the detector;
// the run keeps delivering with NDM active.
func TestDetectionUnderFaults(t *testing.T) {
	cfg := smallConfig()
	cfg.K, cfg.N = 4, 2
	cfg.Load = 1.5
	cfg.Warmup, cfg.Measure = 0, 1<<40
	cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 16) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < 4; d += 2 {
		e.FailLink(e.Fabric().NetLink(d, topology.Direction(d%4)))
	}
	before := e.Stats().Delivered
	for i := 0; i < 8000; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().Delivered-before < 1000 {
		t.Fatal("wedged under faults")
	}
}

// TestDORNotFaultTolerant: dimension-order traffic whose single path is cut
// stops being delivered between the affected pairs (documented behavior).
func TestDORNotFaultTolerant(t *testing.T) {
	cfg := smallConfig()
	cfg.K, cfg.N = 8, 1
	cfg.Routing = routing.DimensionOrder{}
	cfg.Detector = nil
	cfg.Load = 0
	cfg.Warmup, cfg.Measure = 0, 1<<40
	cfg.RetainMessages = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Fabric().FailLink(e.Fabric().NetLink(1, 0)) // cut 1 -> 2 on the + ring
	m := e.InjectMessage(0, 3, 4)                 // DOR goes +: 0,1,2,3
	for i := 0; i < 200; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Phase == router.PhaseDelivered {
		t.Fatal("DOR delivered across its cut path")
	}
}
