package sim

import (
	"fmt"

	"wormnet/internal/router"
)

// Active-set bookkeeping for the sparse cycle kernel (see shard.go): the
// per-shard nonempty-source-queue bitmaps and the per-shard generator
// arrival heaps and deferred lists, plus the Debug-mode audit that
// cross-checks every set against a full rescan.
//
// Mutation discipline: queue pushes happen only on the serial spine
// (commitGenerate, InjectMessage, requeue via recovery and fault injection),
// so setting a node's bit is race-free there; queue pops happen only in
// admitShard, which is parallel but only ever drains queues of its own
// shard's nodes, so clearing is confined to the shard's own (separately
// allocated) bitmap. The generator heaps and deferred lists are touched
// only by generateShard, each shard on its own.

// queuePush pushes id onto node's source queue, setting the node's bit in
// its shard's nonempty-queue bitmap. All engine code must enqueue through
// this wrapper (never q.Push directly) or the admit stage's active set goes
// stale.
func (e *Engine) queuePush(node int, id router.MsgID) {
	s := e.part.Of(node)
	rel := node - e.shards[s].lo
	e.neBits[s][rel>>6] |= 1 << (rel & 63)
	e.queues[node].Push(id)
}

// queueDrained clears node's bit in its shard's nonempty-queue bitmap after
// the admit stage emptied its queue.
func (e *Engine) queueDrained(node int) {
	s := e.part.Of(node)
	rel := node - e.shards[s].lo
	e.neBits[s][rel>>6] &^= 1 << (rel & 63)
}

// genLess orders the generator heap by (due, node): the earliest arrival
// first, ties broken by node so that equal-due pops come out node-ascending
// — which is what keeps the sparse gens record list in the dense kernel's
// canonical order.
func (e *Engine) genLess(a, b int32) bool {
	da, db := e.genDue[a], e.genDue[b]
	return da < db || (da == db && a < b)
}

// heapPush adds node to shard sh's arrival heap.
func (e *Engine) heapPush(sh *shardState, node int32) {
	h := append(sh.genHeap, node)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !e.genLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	sh.genHeap = h
}

// heapPop removes and returns the earliest-due node from shard sh's heap.
func (e *Engine) heapPop(sh *shardState) int32 {
	h := sh.genHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && e.genLess(h[l], h[min]) {
			min = l
		}
		if r < n && e.genLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	sh.genHeap = h
	return top
}

// auditActiveSets cross-checks every sparse-kernel active set against a
// full rescan of the underlying state. It runs at the end of Step in Debug
// mode (next to Fabric.CheckInvariants), in both kernel modes — the sets
// are maintained unconditionally. Allocation is acceptable here; Debug is
// documented slow.
func (e *Engine) auditActiveSets() error {
	// Nonempty-queue bitmaps: bit set if and only if the queue has entries.
	for s := range e.shards {
		sh := &e.shards[s]
		for node := sh.lo; node < sh.hi; node++ {
			rel := node - sh.lo
			bit := e.neBits[s][rel>>6]&(1<<(rel&63)) != 0
			if bit != (e.queues[node].Len() > 0) {
				return fmt.Errorf("sim: node %d nonempty-queue bit %v, queue length %d", node, bit, e.queues[node].Len())
			}
		}
	}

	// Generator arrival heaps and deferred lists (sparse skip-ahead mode
	// only): entries in range and scheduled, heap-ordered, no duplicates,
	// deferred nodes due exactly next cycle and absent from the heap, and
	// heap plus deferrals covering exactly the nodes with a live countdown.
	if e.genSkip != nil && !e.cfg.DenseKernel {
		seen := make(map[int32]bool)
		tracked := 0
		for s := range e.shards {
			sh := &e.shards[s]
			for i, n32 := range sh.genHeap {
				node := int(n32)
				if node < sh.lo || node >= sh.hi {
					return fmt.Errorf("sim: node %d in shard %d arrival heap, owns [%d,%d)", node, s, sh.lo, sh.hi)
				}
				if e.genDue[node] < 0 {
					return fmt.Errorf("sim: node %d heaped with no scheduled arrival", node)
				}
				if seen[n32] {
					return fmt.Errorf("sim: node %d heaped twice", node)
				}
				seen[n32] = true
				if i > 0 {
					p := (i - 1) / 2
					if e.genLess(n32, sh.genHeap[p]) {
						return fmt.Errorf("sim: shard %d arrival heap violates heap order at index %d", s, i)
					}
				}
			}
			if len(sh.genDefB) != 0 {
				return fmt.Errorf("sim: shard %d deferred-arrival fill buffer not swapped after generate", s)
			}
			for _, n32 := range sh.genDefA {
				node := int(n32)
				if node < sh.lo || node >= sh.hi {
					return fmt.Errorf("sim: node %d in shard %d deferred-arrival list, owns [%d,%d)", node, s, sh.lo, sh.hi)
				}
				// A deferred node is due at the next generate stage: now+1
				// when the audit runs inside Step (after this cycle's
				// generate, before the cycle counter advances), now when a
				// test invokes it between Steps.
				if e.genDue[node] != e.now+1 && e.genDue[node] != e.now {
					return fmt.Errorf("sim: node %d deferred but due cycle %d (now %d)", node, e.genDue[node], e.now)
				}
				if seen[n32] {
					return fmt.Errorf("sim: node %d both heaped and deferred", node)
				}
				seen[n32] = true
			}
			tracked += len(sh.genHeap) + len(sh.genDefA)
		}
		scheduled := 0
		for node := range e.genDue {
			if e.genDue[node] >= 0 {
				scheduled++
			}
		}
		if tracked != scheduled {
			return fmt.Errorf("sim: heaps and deferred lists track %d nodes, %d have scheduled arrivals", tracked, scheduled)
		}
	}

	// Feeder buckets must be fully drained by the transfer stage — a
	// leftover entry means the active-link key collection missed a target.
	for l := range e.feeders {
		if len(e.feeders[l]) != 0 {
			return fmt.Errorf("sim: feeder bucket for link %d not drained after transfer", l)
		}
	}
	return nil
}
