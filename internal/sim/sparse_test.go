package sim

import (
	"bytes"
	"reflect"
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/probe"
	"wormnet/internal/router"
	"wormnet/internal/topology"
	"wormnet/internal/traffic"
)

// runKernel runs cfg with the given kernel mode and shard count, tracing to
// a buffer, and returns the result plus the raw trace bytes.
func runKernel(t *testing.T, cfg Config, dense bool, shards int) (*Result, []byte) {
	t.Helper()
	cfg.DenseKernel = dense
	res, tr := runSharded(t, cfg, shards, true)
	return res, tr
}

// TestSparseKernelByteIdentity is the sparse kernel's conformance gate: for
// every detector family, at low load and at saturation, the dense reference
// kernel (full-fabric scans every cycle) and the sparse kernel (active-set
// iteration) must produce byte-identical counters, histograms and trace
// streams, at one shard and at four. Debug mode stays on (via smallConfig),
// so every cycle also cross-checks the active lists against full rescans.
func TestSparseKernelByteIdentity(t *testing.T) {
	detectors := []struct {
		name string
		mod  func(*Config)
	}{
		{"ndm", func(c *Config) {}},
		{"pdm", func(c *Config) {
			c.Detector = func(f *router.Fabric) detect.Detector { return detect.NewPDM(f, 24) }
		}},
		{"cmh", func(c *Config) {
			c.Detector = func(f *router.Fabric) detect.Detector {
				return probe.New(f, probe.Config{InitDelay: 8})
			}
		}},
	}
	loads := []struct {
		name string
		cfg  func() Config
	}{
		{"low", func() Config {
			cfg := shardedConfig()
			cfg.Load = 0.1
			return cfg
		}},
		{"saturated", shardedConfig},
	}
	for _, ld := range loads {
		for _, det := range detectors {
			t.Run(ld.name+"/"+det.name, func(t *testing.T) {
				cfg := ld.cfg()
				det.mod(&cfg)
				wantRes, wantTrace := runKernel(t, cfg, true, 1)
				if len(wantTrace) == 0 {
					t.Fatal("dense reference run produced no trace bytes")
				}
				for _, shards := range []int{1, 4} {
					gotRes, gotTrace := runKernel(t, cfg, false, shards)
					if gotRes.Counters != wantRes.Counters {
						t.Errorf("sparse shards=%d: counters diverge\n got %+v\nwant %+v",
							shards, gotRes.Counters, wantRes.Counters)
					}
					if !bytes.Equal(gotTrace, wantTrace) {
						t.Errorf("sparse shards=%d: trace stream diverges (%d vs %d bytes)",
							shards, len(gotTrace), len(wantTrace))
					}
					if !reflect.DeepEqual(gotRes.LatencyHist, wantRes.LatencyHist) ||
						!reflect.DeepEqual(gotRes.DetectDelayHist, wantRes.DetectDelayHist) ||
						!reflect.DeepEqual(gotRes.DetectLatencyHist, wantRes.DetectLatencyHist) {
						t.Errorf("sparse shards=%d: histograms diverge", shards)
					}
				}
				// The dense kernel sharded must match too: kernel mode and
				// shard count are independent axes of the identity contract.
				denseRes, denseTrace := runKernel(t, cfg, true, 4)
				if denseRes.Counters != wantRes.Counters {
					t.Errorf("dense shards=4: counters diverge\n got %+v\nwant %+v",
						denseRes.Counters, wantRes.Counters)
				}
				if !bytes.Equal(denseTrace, wantTrace) {
					t.Errorf("dense shards=4: trace stream diverges")
				}
			})
		}
	}
}

// TestSparseKernelUntracedSharded closes the race-coverage gap left by
// TestSparseKernelByteIdentity: every run there is traced, and an attached
// recorder forces the detector EndCycle onto the serial fallback — so the
// sparse kernel's *parallel* EndCycle split across worker goroutines never
// executed under the race detector. This variant runs untraced, sparse,
// sharded, for every detector family, and must still match the dense
// serial reference's counters and histograms.
func TestSparseKernelUntracedSharded(t *testing.T) {
	detectors := []struct {
		name string
		mod  func(*Config)
	}{
		{"ndm", func(c *Config) {}},
		{"pdm", func(c *Config) {
			c.Detector = func(f *router.Fabric) detect.Detector { return detect.NewPDM(f, 24) }
		}},
		{"cmh", func(c *Config) {
			c.Detector = func(f *router.Fabric) detect.Detector {
				return probe.New(f, probe.Config{InitDelay: 8})
			}
		}},
	}
	for _, det := range detectors {
		t.Run(det.name, func(t *testing.T) {
			cfg := shardedConfig()
			det.mod(&cfg)
			dense := cfg
			dense.DenseKernel = true
			wantRes, _ := runSharded(t, dense, 1, false)
			for _, shards := range []int{1, 2, 4} {
				gotRes, _ := runSharded(t, cfg, shards, false)
				if gotRes.Counters != wantRes.Counters {
					t.Errorf("untraced sparse shards=%d: counters diverge\n got %+v\nwant %+v",
						shards, gotRes.Counters, wantRes.Counters)
				}
				if !reflect.DeepEqual(gotRes.LatencyHist, wantRes.LatencyHist) ||
					!reflect.DeepEqual(gotRes.DetectDelayHist, wantRes.DetectDelayHist) ||
					!reflect.DeepEqual(gotRes.DetectLatencyHist, wantRes.DetectLatencyHist) {
					t.Errorf("untraced sparse shards=%d: histograms diverge", shards)
				}
			}
		})
	}
}

// TestSparseKernelBursty pins the capability gate: a stateful process (no
// Skipahead) must run the dense per-cycle generation path in both kernel
// modes and still produce identical results — the sparse kernel only
// accelerates the stages it can prove equivalent.
func TestSparseKernelBursty(t *testing.T) {
	cfg := shardedConfig()
	cfg.Process = func(tp *topology.Torus) traffic.Process {
		return traffic.NewBursty(tp, traffic.NewUniform(tp), traffic.Fixed(16), 0.4, 4, 50)
	}
	wantRes, wantTrace := runKernel(t, cfg, true, 1)
	gotRes, gotTrace := runKernel(t, cfg, false, 1)
	if gotRes.Counters != wantRes.Counters {
		t.Errorf("bursty sparse vs dense: counters diverge\n got %+v\nwant %+v",
			gotRes.Counters, wantRes.Counters)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("bursty sparse vs dense: trace stream diverges")
	}
}

// TestBurstyNotSkipahead pins that the stateful burst process does NOT
// satisfy the skip-ahead capability (its per-cycle Markov state must advance
// every cycle), while the Bernoulli generator does.
func TestBurstyNotSkipahead(t *testing.T) {
	tp := topology.New(4, 2)
	var p traffic.Process = traffic.NewBursty(tp, traffic.NewUniform(tp), traffic.Fixed(16), 0.4, 4, 50)
	if _, ok := p.(traffic.Skipahead); ok {
		t.Fatal("Bursty satisfies Skipahead; its Markov state would be frozen between arrivals")
	}
	p = traffic.NewGenerator(traffic.NewUniform(tp), traffic.Fixed(16), 0.4)
	if _, ok := p.(traffic.Skipahead); !ok {
		t.Fatal("Generator does not satisfy Skipahead")
	}
}

// TestSparseActiveSetAudit drives a Debug run at saturation with recovery
// and fault churn (requeues exercise the queuePush registration path) and
// relies on the per-cycle audit to catch any active-list drift.
func TestSparseActiveSetAudit(t *testing.T) {
	cfg := shardedConfig() // Debug=true via smallConfig
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if i == 200 {
			e.FailLink(router.LinkID(3)) // kills worms -> requeue path
		}
		if i == 250 {
			e.RepairLink(router.LinkID(3))
		}
	}
	// InjectMessage must register the node in the nonempty list too.
	if m := e.InjectMessage(0, 5, 4); m == nil {
		// Saturated queue: acceptable, the bound rejected it.
		t.Log("InjectMessage rejected by full queue (acceptable at saturation)")
	}
	if err := e.auditActiveSets(); err != nil {
		t.Fatal(err)
	}
}
