package sim

import "wormnet/internal/router"

// AppendSchedState appends the engine's scheduling-order state — everything
// outside the fabric, the detector and the recovery engine that influences
// future behavior — to buf in a canonical byte encoding, and returns the
// extended slice. The model checker (internal/mc) folds it into its state
// hash; two states with equal encodings (together with the fabric, detector,
// recovery and driver encodings) behave identically under identical future
// choices.
//
// Included, in order: the routable-header list (pending), the headers that
// become routable next cycle (pendingNew), each node's source queue, each
// shard's in-progress injection list, and the recovery engine's active list.
// List order is behavioral: pending order fixes the serial route-commit
// order, queue order fixes admission order, injection-list order fixes
// source-feed order.
//
// Deliberately excluded (stale or unobservable at a cycle boundary):
// transmitted/txLinks and inputUsedAt (cleared or time-stamped scratch,
// rewritten before next use), the per-link round-robin pointers (pinned at
// their initial value under a Chooser — see Chooser), RNG streams (unused at
// Load 0 under a Chooser), and all absolute cycle stamps (the checker's
// encodings are age-clamped where ages are behavioral).
func (e *Engine) AppendSchedState(buf []byte) []byte {
	buf = appendIDList16(buf, e.pending)
	buf = appendIDList16(buf, e.pendingNew)
	for n := range e.queues {
		q := &e.queues[n]
		buf = append(buf, byte(q.Len()))
		for i := 0; i < q.Len(); i++ {
			buf = append(buf, byte(q.At(i)), byte(q.At(i)>>8))
		}
	}
	for s := range e.shards {
		buf = appendIDList16(buf, e.shards[s].injecting)
	}
	buf = append(buf, byte(e.rec.Active()))
	buf = e.rec.AppendActive(buf)
	return buf
}

// appendIDList16 appends a length byte followed by each ID as two
// little-endian bytes (message pools on model-checked fabrics are tiny; -1
// sentinels survive as 0xffff).
func appendIDList16(buf []byte, ids []router.MsgID) []byte {
	buf = append(buf, byte(len(ids)))
	for _, id := range ids {
		buf = append(buf, byte(id), byte(id>>8))
	}
	return buf
}
