package sim

import (
	"math/bits"

	"wormnet/internal/metrics"
	"wormnet/internal/router"
)

// ProbeMetrics implements metrics.Prober: it fills the instantaneous gauge
// fields of one time-series sample from the engine's current state. The
// collector calls it on the engine goroutine at sampling-window boundaries
// only, so the walks below (source queues, pending headers, occupied VCs,
// busy links) are amortized over the window and allocation-free — every
// structure visited is a pre-sized engine or fabric buffer.
func (e *Engine) ProbeMetrics(s *metrics.Sample) {
	// Queued walks only the nonempty-queue bitmaps (the sparse kernel's
	// admit active set), which also directly yield the NonemptyQueues gauge.
	queued, nonempty := 0, 0
	for sh := range e.neBits {
		lo := e.shards[sh].lo
		for w, word := range e.neBits[sh] {
			nonempty += bits.OnesCount64(word)
			for word != 0 {
				node := lo + w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				queued += e.queues[node].Len()
			}
		}
	}
	s.Queued = int32(queued)
	s.NonemptyQueues = int32(nonempty)
	// Links that carried a flit this cycle, and worms the kernel is moving:
	// together with BusyVCs these are the active-set sizes that bound the
	// sparse kernel's per-cycle cost.
	s.ActiveLinks = int32(len(e.txLinks))
	s.WormsInFlight = int32(e.inFlight)

	blocked := 0
	for _, id := range e.pending {
		m := e.fab.Msg(id)
		if m.Phase == router.PhaseNetwork && m.Attempts > 0 {
			blocked++
		}
	}
	s.Blocked = int32(blocked)

	fab := e.fab
	s.BusyVCs = int32(fab.NumOccupied())
	s.BusyLinks = int32(fab.NumBusyLinks())
	var netVCs, injVCs, delVCs int32
	for sh := 0; sh < fab.NumShards(); sh++ {
		for _, vc := range fab.OccupiedShard(sh) {
			link := &fab.Links[fab.LinkOfVC(vc)]
			switch link.Kind {
			case router.NetworkLink:
				netVCs++
				if d := link.Dir.Dim(); d < len(s.DimVCs) {
					s.DimVCs[d]++
				}
			case router.InjectionLink:
				injVCs++
			default:
				delVCs++
			}
		}
		for _, l := range fab.BusyLinksShard(sh) {
			link := &fab.Links[l]
			if link.Kind == router.NetworkLink {
				if d := link.Dir.Dim(); d < len(s.DimLinks) {
					s.DimLinks[d]++
				}
			}
		}
	}
	e.mc.SetClassVCs(netVCs, injVCs, delVCs)

	if e.flagCounts != nil {
		i, dt, g := e.flagCounts()
		s.IFlags, s.DTFlags, s.GFlags = int32(i), int32(dt), int32(g)
	}
	s.RecoveryDepth = int32(e.rec.Active())
	s.OracleSet = int32(e.oracleSize)
	s.ProbesInFlight = int32(e.lastProbe.InFlight)
}
