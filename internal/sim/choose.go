package sim

import (
	"slices"

	"wormnet/internal/router"
)

// ChoicePoint identifies one class of nondeterministic decision the engine
// (or a scripted driver) resolves while stepping a cycle. The model checker
// (internal/mc) enumerates every resolution of every choice point to explore
// all reachable interleavings; a production run resolves the same points with
// the seeded RNG and round-robin pointers instead.
type ChoicePoint uint8

// Choice points, in the order they can occur within one cycle.
const (
	// ChooseInject decides whether a scripted message enters its source
	// queue this cycle (0) or is deferred (1). The engine itself never
	// issues this point; drivers that script workloads (internal/mc) do,
	// before calling Step.
	ChooseInject ChoicePoint = iota
	// ChooseArb picks the winner among a target link's eligible feeders
	// during flit transfer, replacing the round-robin pointer. Options are
	// indices into the eligible-feeder list in ascending source-VC order.
	ChooseArb
	// ChooseVC picks the virtual channel a routing header advances into,
	// replacing the SelectPolicy + RNG draw. Options are indices into the
	// free-candidate list in routing-candidate order.
	ChooseVC
)

// String names the choice point for diagnostics and counterexample listings.
func (p ChoicePoint) String() string {
	switch p {
	case ChooseInject:
		return "inject"
	case ChooseArb:
		return "arb"
	case ChooseVC:
		return "vc"
	}
	return "?"
}

// Chooser resolves the engine's nondeterministic decision points externally.
// Choose is called with n >= 2 options and must return an index in [0, n);
// decisions with a single option are taken directly and never reach the
// Chooser, so implementations observe exactly the branching structure of the
// run. Calls arrive in a deterministic order that is a pure function of the
// simulation state and the choices already made, which is what makes
// record/replay exploration sound.
//
// A Chooser requires Shards == 1 (decisions must occur in one global order)
// and replaces only the decision points listed above; generation randomness
// is untouched, so exhaustive drivers script their workload via
// InjectMessage with Load = 0.
//
// Under a Chooser the engine also stops advancing the per-link round-robin
// pointers: arbitration fairness is subsumed by the chooser, and pinning the
// pointers at their initial value keeps them out of the model checker's
// state encoding (the chooser explores a superset of every pointer setting's
// behavior).
type Chooser interface {
	Choose(p ChoicePoint, n int) int
}

// chooseVC is routeCommit's chooser-mode replacement for Fabric.PickVC: the
// free candidates are gathered in candidate order and the chooser picks one.
// Returns NilVC when none are free.
func (e *Engine) chooseVC(cands []router.VCID) router.VCID {
	fab := e.fab
	e.freeCands = e.freeCands[:0]
	for _, vc := range cands {
		if fab.VCs[vc].Occupant == router.NilMsg {
			e.freeCands = append(e.freeCands, vc)
		}
	}
	switch len(e.freeCands) {
	case 0:
		return router.NilVC
	case 1:
		return e.freeCands[0]
	}
	return e.freeCands[e.chooser.Choose(ChooseVC, len(e.freeCands))]
}

// arbitrateChoose is arbitrate's chooser-mode body: the eligible feeders
// (credit at the target buffer, input channel not yet used this cycle) are
// collected in ascending source-VC order and the chooser picks the winner.
// The round-robin pointer is intentionally not advanced — see Chooser.
func (e *Engine) arbitrateChoose(sh *shardState, tl router.LinkID, buf int32) {
	fab := e.fab
	vcs := fab.VCs
	req := e.feeders[tl]
	slices.Sort(req)
	e.arbElig = e.arbElig[:0]
	for _, u := range req {
		uv := &vcs[u]
		if vcs[uv.Next].Flits >= buf || e.inputUsedAt[uv.Link] == e.now {
			continue
		}
		e.arbElig = append(e.arbElig, u)
	}
	if len(e.arbElig) > 0 {
		u := e.arbElig[0]
		if len(e.arbElig) > 1 {
			u = e.arbElig[e.chooser.Choose(ChooseArb, len(e.arbElig))]
		}
		uv := &vcs[u]
		sh.moves = append(sh.moves, u)
		e.inputUsedAt[uv.Link] = e.now
		e.transmitted[tl] = true
		sh.txLinks = append(sh.txLinks, tl)
	}
	e.feeders[tl] = req[:0]
}
