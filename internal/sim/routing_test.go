package sim

import (
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/router"
	"wormnet/internal/routing"
)

// TestDeadlockFreeAlgorithmsNeverDeadlock: DOR and Duato under heavy
// overload with NO detection must keep delivering, and the periodic oracle
// must never find a deadlocked set — that is what "avoidance" guarantees.
func TestDeadlockFreeAlgorithmsNeverDeadlock(t *testing.T) {
	for _, alg := range []routing.Algorithm{routing.DimensionOrder{}, routing.DuatoProtocol{}} {
		cfg := smallConfig()
		cfg.Routing = alg
		cfg.Detector = nil
		cfg.Load = 3.0
		cfg.InjectionLimit = -1
		cfg.Warmup, cfg.Measure = 0, 12000
		cfg.OracleEvery = 50
		res := mustRun(t, cfg)
		if res.Delivered < 500 {
			t.Errorf("%s: wedged (%d delivered)", alg.Name(), res.Delivered)
		}
		if res.DeadlockCycles != 0 {
			t.Errorf("%s: oracle found deadlock %d times", alg.Name(), res.DeadlockCycles)
		}
	}
}

// TestAdaptiveOutperformsDORBelowSaturation: the motivation for deadlock
// recovery — fully adaptive routing achieves lower latency than
// dimension-order at the same moderate load (bit-reversal traffic, where
// adaptivity matters most).
func TestAdaptiveOutperformsDORBelowSaturation(t *testing.T) {
	run := func(alg routing.Algorithm, det DetectorFactory) *Result {
		cfg := smallConfig()
		cfg.K, cfg.N = 8, 2
		cfg.Routing = alg
		cfg.Detector = det
		cfg.Load = 0.25
		cfg.Warmup, cfg.Measure = 2000, 10000
		cfg.Pattern = bitrevPattern
		return mustRun(t, cfg)
	}
	adaptive := run(routing.TrueFullyAdaptive{}, func(f *router.Fabric) detect.Detector {
		return detect.NewNDM(f, 32)
	})
	dor := run(routing.DimensionOrder{}, nil)
	if adaptive.AvgLatency() >= dor.AvgLatency() {
		t.Errorf("adaptive latency %.1f not better than DOR %.1f",
			adaptive.AvgLatency(), dor.AvgLatency())
	}
}

// TestSelectivePromotionDetectsLess pins the EXPERIMENTS.md finding: the
// selective P->G promotion variant produces no more detections than the
// paper's simple all-P-to-G policy under sustained saturation (in busy
// routers the simple policy re-arms almost continuously, eroding NDM's
// advantage over PDM).
func TestSelectivePromotionDetectsLess(t *testing.T) {
	run := func(prom detect.PromotionPolicy) int64 {
		cfg := smallConfig()
		cfg.K, cfg.N = 8, 2
		cfg.Load = 1.1
		cfg.Warmup, cfg.Measure = 2000, 15000
		cfg.Detector = func(f *router.Fabric) detect.Detector {
			return detect.NewNDMOpt(f, 1, 16, prom)
		}
		return mustRun(t, cfg).Marked
	}
	simple := run(detect.PromoteAll)
	selective := run(detect.PromoteWaiting)
	if simple == 0 {
		t.Skip("no detections at this configuration")
	}
	if selective > simple {
		t.Errorf("selective promotion marked more (%d) than simple (%d)", selective, simple)
	}
}

func TestRoutingValidation(t *testing.T) {
	// DOR needs 2 VCs.
	cfg := smallConfig()
	cfg.Routing = routing.DimensionOrder{}
	cfg.Detector = nil
	cfg.Router.VCsPerLink = 1
	if _, err := New(cfg); err == nil {
		t.Error("DOR accepted with 1 VC")
	}
	// Duato needs 3 VCs.
	cfg = smallConfig()
	cfg.Routing = routing.DuatoProtocol{}
	cfg.Detector = nil
	cfg.Router.VCsPerLink = 2
	if _, err := New(cfg); err == nil {
		t.Error("Duato accepted with 2 VCs")
	}
	// Detection + non-uniform VC usage is rejected.
	cfg = smallConfig()
	cfg.Routing = routing.DimensionOrder{}
	if _, err := New(cfg); err == nil {
		t.Error("detection accepted with dimension-order routing")
	}
}

// TestDuatoUsesEscapePath: under load the escape VCs (classes 0 and 1)
// must actually carry traffic, not just exist.
func TestDuatoUsesEscapePath(t *testing.T) {
	cfg := smallConfig()
	cfg.Routing = routing.DuatoProtocol{}
	cfg.Detector = nil
	cfg.Load = 2.0
	cfg.InjectionLimit = -1
	cfg.Warmup, cfg.Measure = 0, 1<<40
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	escapeSeen := false
	for i := 0; i < 5000 && !escapeSeen; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < e.Fabric().NumNetLinks(); l++ {
			link := &e.Fabric().Links[l]
			for v := router.VCID(0); v < 2 && v < router.VCID(link.NumVC); v++ {
				if e.Fabric().VCs[link.FirstVC+v].Occupant != router.NilMsg {
					escapeSeen = true
				}
			}
		}
	}
	if !escapeSeen {
		t.Error("escape virtual channels never used under overload")
	}
}
