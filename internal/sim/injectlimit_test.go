package sim

import (
	"testing"

	"wormnet/internal/router"
)

// TestInjectionLimitPerAdmission: the injection-limitation check runs once
// per admission, not once per node per cycle. With several injection ports
// and the busy count already at the limit, only as many messages may be
// admitted in one cycle as the remaining allowance; the old per-node check
// admitted up to InjPorts messages at once, overshooting the limit.
func TestInjectionLimitPerAdmission(t *testing.T) {
	cfg := smallConfig()
	cfg.Load = 0
	cfg.Warmup, cfg.Measure = 0, 1 << 40
	cfg.RetainMessages = true
	cfg.Router.InjPorts = 4
	cfg.InjectionLimit = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Queue four messages at node 0. With limit 0 and no busy output VCs,
	// exactly one may be admitted in the first cycle: its charge uses up
	// the allowance for the remaining ports.
	var ms []*router.Message
	for i := 0; i < 4; i++ {
		ms = append(ms, e.InjectMessage(0, 3, 8))
	}
	stepN(t, e, 1)
	if got := inNetwork(ms); got != 1 {
		t.Fatalf("cycle 1: %d messages admitted with limit 0, want 1", got)
	}
}

// TestInjectionLimitAllowsUpToLimit: with allowance for two more busy VCs, a
// multi-port router admits exactly two messages in one cycle — the limit
// neither blocks legitimate admissions nor lets the port loop overshoot.
func TestInjectionLimitAllowsUpToLimit(t *testing.T) {
	cfg := smallConfig()
	cfg.Load = 0
	cfg.Warmup, cfg.Measure = 0, 1 << 40
	cfg.RetainMessages = true
	cfg.Router.InjPorts = 4
	cfg.InjectionLimit = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ms []*router.Message
	for i := 0; i < 4; i++ {
		ms = append(ms, e.InjectMessage(0, 3, 8))
	}
	stepN(t, e, 1)
	// busy=0 <= 1 admits the first, busy=1 <= 1 admits the second,
	// busy=2 > 1 stops the loop.
	if got := inNetwork(ms); got != 2 {
		t.Fatalf("cycle 1: %d messages admitted with limit 1, want 2", got)
	}
}

// TestInjectionLimitDisabled: a negative limit admits through every port in
// one cycle (the pre-existing unlimited behavior is unchanged).
func TestInjectionLimitDisabled(t *testing.T) {
	cfg := smallConfig()
	cfg.Load = 0
	cfg.Warmup, cfg.Measure = 0, 1 << 40
	cfg.RetainMessages = true
	cfg.Router.InjPorts = 4
	cfg.InjectionLimit = -1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ms []*router.Message
	for i := 0; i < 4; i++ {
		ms = append(ms, e.InjectMessage(0, 3, 8))
	}
	stepN(t, e, 1)
	if got := inNetwork(ms); got != 4 {
		t.Fatalf("cycle 1: %d messages admitted with no limit, want 4", got)
	}
}

func inNetwork(ms []*router.Message) int {
	n := 0
	for _, m := range ms {
		if m.Phase == router.PhaseNetwork {
			n++
		}
	}
	return n
}

// TestMsgQueueFIFO exercises the ring buffer through growth and wraparound.
func TestMsgQueueFIFO(t *testing.T) {
	var q msgQueue
	next, want := router.MsgID(0), router.MsgID(0)
	// Interleave pushes and pops at relatively prime rates so head walks
	// the ring across several growth episodes.
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 2 && q.Len() > 0; i++ {
			if got := q.Pop(); got != want {
				t.Fatalf("Pop = %d, want %d", got, want)
			}
			want++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop(); got != want {
			t.Fatalf("drain Pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d IDs, pushed %d", want, next)
	}
}
