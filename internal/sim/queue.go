package sim

import "wormnet/internal/router"

// msgQueue is a FIFO of message IDs backed by a ring buffer. The engine's
// per-node source queues previously re-sliced a plain slice (q = q[1:]) on
// every pop, which kept every popped slot's backing array live for the whole
// run and forced append to reallocate in steady state; the ring reuses its
// backing array forever, so saturated runs neither retain popped IDs nor
// allocate once the queue has reached its working depth.
type msgQueue struct {
	buf  []router.MsgID
	head int
	n    int
}

// Len returns the number of queued IDs.
func (q *msgQueue) Len() int { return q.n }

// Push appends id at the back.
func (q *msgQueue) Push(id router.MsgID) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = id
	q.n++
}

// At returns the i-th queued ID from the front without removing it (used by
// the model-checker state encoding). It panics when i is out of range.
func (q *msgQueue) At(i int) router.MsgID {
	if i < 0 || i >= q.n {
		panic("sim: queue index out of range")
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// Pop removes and returns the front ID. It panics on an empty queue (an
// engine bug: admission checks Len first).
func (q *msgQueue) Pop() router.MsgID {
	if q.n == 0 {
		panic("sim: Pop from empty source queue")
	}
	id := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return id
}

// grow doubles the backing array, linearizing the ring.
func (q *msgQueue) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 8
	}
	buf := make([]router.MsgID, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
