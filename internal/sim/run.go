package sim

// Run builds an Engine from cfg and runs it to completion. It is the
// one-shot entry point used by the parallel sweep harness: every run is an
// independent Engine whose randomness comes solely from cfg.Seed, so runs
// may execute on any goroutine in any order without affecting results.
func Run(cfg Config) (*Result, error) {
	eng, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return eng.Run()
}
