// Incident-record types and their JSONL encoding. One Episode per line,
// encoded with encoding/json over fixed struct layouts, so a report is a
// deterministic function of the episode values — which are themselves a
// deterministic function of the trace byte stream (see forensics.go).
package forensics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Episode is one reconstructed deadlock incident: the temporal span from the
// first oracle sighting (or, for a pure false positive, the first mark) to
// the cycle the last involved message drained or unblocked.
type Episode struct {
	// ID numbers episodes 1.. in open order.
	ID int `json:"id"`
	// Verdict is "true-deadlock" when the oracle sighted at least one
	// member, "false-positive" when the episode consists only of marks the
	// oracle refuted.
	Verdict string `json:"verdict"`
	// Unresolved marks an episode still open when the trace ended (its
	// CloseCycle and MTTR are -1). The committed model-checker
	// counterexample — a true deadlock with detection disabled — decodes as
	// exactly this.
	Unresolved bool `json:"unresolved,omitempty"`
	// OpenCycle is the first oracle sighting (or first mark); CloseCycle is
	// the cycle the last member/victim left the network (-1 if unresolved).
	OpenCycle  int64 `json:"openCycle"`
	CloseCycle int64 `json:"closeCycle"`
	// Mechanism is the detection mechanism inferred from the event stream
	// (or forced by Options.Mechanism): ndm, pdm, cmh, timeout, none.
	Mechanism string `json:"mechanism"`
	// PeakOracleSet is the largest deadlocked-set size the oracle reported
	// during the episode.
	PeakOracleSet int `json:"peakOracleSet"`
	// MTTDCycles is first-mark − OpenCycle for oracle-confirmed episodes
	// (-1 when nothing was marked or the verdict is false-positive). It is
	// only as sharp as the oracle cadence: run with -oracle-every 1 for
	// cycle-accurate values.
	MTTDCycles int64 `json:"mttdCycles"`
	// MTTRCycles is CloseCycle − first-mark (-1 when unresolved or
	// markless).
	MTTRCycles int64 `json:"mttrCycles"`
	// Members are the oracle-sighted messages, in sighting order.
	Members []Member `json:"members,omitempty"`
	// Formation is the channel-wait-for cycle extracted from the members'
	// sighting-time snapshots: each edge says Msg, blocked at router Node,
	// waits on held channel Link occupied by member Next.
	Formation []WaitEdge `json:"formation,omitempty"`
	// Marks are the detector verdicts attributed to this episode, in mark
	// order.
	Marks []Mark `json:"marks,omitempty"`
	// Victims are the messages recovery removed, in recover-start order.
	Victims []Victim `json:"victims,omitempty"`
	// AbsorbedFlitsEst estimates the flits drained by recovery as the sum
	// of the victims' message lengths (the trace's recovery VC releases are
	// anonymous, so the exact in-network flit count is not reconstructible).
	AbsorbedFlitsEst int64 `json:"absorbedFlitsEst"`
}

// Member is one oracle-sighted message with its blocking state snapshotted
// at sighting time.
type Member struct {
	Msg int32 `json:"msg"`
	// Sighted is the cycle the oracle first reported the message deadlocked.
	Sighted int64 `json:"sighted"`
	// Node and InLink are where the header was blocked (router and input
	// channel of its last failed routing attempt; -1 if it never failed).
	Node   int32 `json:"node"`
	InLink int32 `json:"inLink"`
	// BlockedSince is the cycle of the first failed attempt of the current
	// blocking run (-1 unknown).
	BlockedSince int64 `json:"blockedSince"`
	// Holds are the physical channels the worm occupied at sighting time,
	// in allocation order.
	Holds []int32 `json:"holds,omitempty"`
}

// WaitEdge is one channel dependency: Msg, blocked at router Node, waits for
// channel Link (an output of Node) held by Next.
type WaitEdge struct {
	Msg  int32 `json:"msg"`
	Node int32 `json:"node"`
	Link int32 `json:"link"`
	Next int32 `json:"next"`
}

// Mark is one detector verdict with its causal attribution.
type Mark struct {
	Cycle int64 `json:"cycle"`
	Msg   int32 `json:"msg"`
	Node  int32 `json:"node"`
	// True is the oracle's verdict on the mark.
	True bool `json:"true"`
	// Rule names what fired, in the paper's terms: "g1-first-attempt" or
	// "g2-promotion" (the NDM rule arming the input's G flag when its DT
	// expired), "dt-threshold" (PDM), "probe-return" (CMH; Hops is the
	// probe's cycle length), "timeout" for the crude heuristics.
	Rule string `json:"rule"`
	Hops int64  `json:"hops,omitempty"`
	// SinceBlocked is mark − first failed attempt; OracleLatency is mark −
	// oracle sighting (-1 for false positives, which were never sighted).
	SinceBlocked  int64 `json:"sinceBlocked"`
	OracleLatency int64 `json:"oracleLatency"`
	// Chain, for false positives, is the blocking chain walked from the
	// marked message over the channel-occupancy graph at mark time: the
	// dependency path that kept the message inactive long enough to cross
	// the NDM/PDM threshold without a real cycle. ChainEnd says how it
	// terminated: "advancing" (reached a worm that was still moving — the
	// usual explanation for a spurious threshold crossing), "no-holder",
	// "cycle" (the over-approximate graph closed on itself), "truncated".
	Chain    []WaitEdge `json:"chain,omitempty"`
	ChainEnd string     `json:"chainEnd,omitempty"`
}

// Victim is one message removed by recovery.
type Victim struct {
	Msg int32 `json:"msg"`
	// Start and End are the recover-start and recover-end cycles (End -1
	// while draining at trace end). Node is where it re-entered (-1 until
	// End). DrainCycles is End − Start.
	Start       int64 `json:"start"`
	End         int64 `json:"end"`
	Node        int32 `json:"node"`
	DrainCycles int64 `json:"drainCycles"`
	// Delivered reports that the absorbing node was the destination.
	Delivered bool `json:"delivered"`
	// Style is the recovery style (0 progressive, 1 regressive).
	Style int64 `json:"style"`
	// LengthFlits is the message length (the absorbed-flit estimate).
	LengthFlits int32 `json:"lengthFlits"`
}

// FirstMarkCycle returns the cycle of the episode's first mark, or -1.
func (e *Episode) FirstMarkCycle() int64 {
	if len(e.Marks) == 0 {
		return -1
	}
	return e.Marks[0].Cycle
}

// WriteJSONL writes episodes one JSON object per line.
func WriteJSONL(w io.Writer, episodes []*Episode) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, ep := range episodes {
		b, err := json.Marshal(ep)
		if err != nil {
			return err
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// DecodeEpisodes reads an incident report written by WriteJSONL. Errors
// report the 1-based line number of the malformed line. Lines are read
// with an unbounded reader: one merged episode of a pathological run
// (saturation, per-cycle oracle, low threshold) can easily exceed any
// fixed scanner cap.
func DecodeEpisodes(r io.Reader) ([]*Episode, error) {
	var out []*Episode
	br := bufio.NewReaderSize(r, 1<<16)
	line := 0
	for {
		b, err := br.ReadBytes('\n')
		if len(b) > 0 {
			line++
			if trimmed := bytes.TrimRight(b, "\r\n"); len(trimmed) > 0 {
				ep := &Episode{}
				if jerr := json.Unmarshal(trimmed, ep); jerr != nil {
					return nil, fmt.Errorf("forensics: incidents line %d: %w", line, jerr)
				}
				out = append(out, ep)
			}
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
