package forensics_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	wormnet "wormnet"
	"wormnet/internal/forensics"
	"wormnet/internal/trace"
)

// -update regenerates the committed goldens instead of comparing.
var update = flag.Bool("update", false, "rewrite golden incident reports")

// goldenConfig is the fixed-seed 3x3 deadlock run behind the committed
// golden: single-VC saturation with a threshold high enough that real
// cycles persist past oracle confirmation, so the report mixes
// true-deadlock and false-positive episodes.
func goldenConfig() wormnet.Config {
	cfg := wormnet.DefaultConfig()
	cfg.K, cfg.N = 3, 2
	cfg.VirtualChannels = 1
	cfg.Lengths = wormnet.Lengths{Fixed: 16}
	cfg.Load = 2.0
	cfg.Threshold = 48
	cfg.InjectionLimit = -1
	cfg.Warmup, cfg.Measure = 0, 1200
	cfg.Seed = 11
	cfg.OracleEvery = 1
	return cfg
}

// runIncidents executes cfg with forensics attached and returns the raw
// incident-report bytes.
func runIncidents(t *testing.T, cfg wormnet.Config) []byte {
	t.Helper()
	dir := t.TempDir()
	cfg.ForensicsPath = filepath.Join(dir, "incidents.jsonl")
	if _, err := wormnet.Run(cfg); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(cfg.ForensicsPath)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run %s -update)", err, t.Name())
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("incident report differs from %s (%d vs %d bytes); regenerate with -update if the change is intended",
			path, len(got), len(want))
	}
}

// TestMCCounterexampleGolden replays the model checker's committed liveness
// counterexample — a true deadlock with detection disabled — through the
// correlator. It must decode as exactly one unresolved true-deadlock
// episode with mechanism "none", a full 4-member formation cycle and no
// marks or victims, and the encoded report must match the committed golden
// byte for byte.
func TestMCCounterexampleGolden(t *testing.T) {
	f, err := os.Open("../mc/testdata/liveness-cex-3x3-none.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	eps, err := forensics.Correlate(f, forensics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 {
		t.Fatalf("got %d episodes, want 1", len(eps))
	}
	ep := eps[0]
	if ep.Verdict != forensics.VerdictTrueDeadlock || !ep.Unresolved {
		t.Errorf("verdict %q unresolved=%v, want unresolved true-deadlock", ep.Verdict, ep.Unresolved)
	}
	if ep.Mechanism != "none" {
		t.Errorf("mechanism %q, want none (no detector events in the counterexample)", ep.Mechanism)
	}
	if len(ep.Marks) != 0 || len(ep.Victims) != 0 {
		t.Errorf("got %d marks, %d victims; detection was disabled", len(ep.Marks), len(ep.Victims))
	}
	if len(ep.Formation) == 0 {
		t.Error("no formation cycle reconstructed")
	}
	for _, e := range ep.Formation {
		found := false
		for _, m := range ep.Members {
			if m.Msg == e.Next {
				found = true
			}
		}
		if !found {
			t.Errorf("formation edge points at msg %d, not a member", e.Next)
		}
	}
	var buf bytes.Buffer
	if err := forensics.WriteJSONL(&buf, eps); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/liveness-cex-3x3-none.incidents.jsonl", buf.Bytes())
}

// TestGoldenRunByteIdentity is the report determinism gate: the fixed-seed
// 3x3 deadlock run must produce byte-identical incident reports at every
// shard count and under both cycle kernels — the same contract the trace
// rails enforce, which the report inherits by being a pure function of the
// trace stream. The serial sparse run is additionally held to the
// committed golden.
func TestGoldenRunByteIdentity(t *testing.T) {
	base := runIncidents(t, goldenConfig())
	checkGolden(t, "testdata/seed11-3x3.incidents.jsonl", base)
	variants := []struct {
		name string
		mod  func(*wormnet.Config)
	}{
		{"shards1", func(c *wormnet.Config) { c.Shards = 1 }},
		{"shards4", func(c *wormnet.Config) { c.Shards = 4 }},
		{"dense", func(c *wormnet.Config) { c.DenseKernel = true }},
		{"dense-shards4", func(c *wormnet.Config) { c.DenseKernel = true; c.Shards = 4 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := goldenConfig()
			v.mod(&cfg)
			if got := runIncidents(t, cfg); !bytes.Equal(got, base) {
				t.Errorf("incident report differs from serial sparse reference (%d vs %d bytes)",
					len(got), len(base))
			}
		})
	}
}

// TestOnlineMatchesOfflineReplay holds the correlator to its central
// promise: feeding the streamed trace back through Correlate reproduces
// the online observer's report byte for byte (the JSONL trace encoding is
// lossless, so offline replay sees the identical event sequence).
func TestOnlineMatchesOfflineReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := goldenConfig()
	cfg.TracePath = filepath.Join(dir, "events.jsonl")
	cfg.ForensicsPath = filepath.Join(dir, "incidents.jsonl")
	if _, err := wormnet.Run(cfg); err != nil {
		t.Fatal(err)
	}
	online, err := os.ReadFile(cfg.ForensicsPath)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := os.Open(cfg.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	eps, err := forensics.Correlate(tr, forensics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := forensics.WriteJSONL(&buf, eps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(online, buf.Bytes()) {
		t.Errorf("offline replay differs from online report (%d vs %d bytes)",
			len(buf.Bytes()), len(online))
	}
}

// TestEveryOracleSightingHasEpisode checks episode coverage on the golden
// run: every oracle-deadlock sighting in the trace lands in exactly one
// episode's member list, every oracle-confirmed episode carries a
// non-empty formation cycle whose edges stay within the member set, and
// false-positive episodes carry no members.
func TestEveryOracleSightingHasEpisode(t *testing.T) {
	dir := t.TempDir()
	cfg := goldenConfig()
	cfg.TracePath = filepath.Join(dir, "events.jsonl")
	cfg.ForensicsPath = filepath.Join(dir, "incidents.jsonl")
	if _, err := wormnet.Run(cfg); err != nil {
		t.Fatal(err)
	}
	tr, err := os.Open(cfg.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sightings := 0
	if err := trace.Scan(tr, func(ev trace.Event) error {
		if ev.Kind == trace.KindOracleDeadlock {
			sightings++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sightings == 0 {
		t.Fatal("golden run produced no oracle sightings; config no longer deadlocks")
	}
	f, err := os.Open(cfg.ForensicsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	eps, err := forensics.DecodeEpisodes(f)
	if err != nil {
		t.Fatal(err)
	}
	members := 0
	for _, ep := range eps {
		members += len(ep.Members)
		switch ep.Verdict {
		case forensics.VerdictTrueDeadlock:
			if len(ep.Members) == 0 {
				t.Errorf("episode %d: true-deadlock with no members", ep.ID)
			}
			if len(ep.Formation) == 0 {
				t.Errorf("episode %d: oracle-confirmed but no formation cycle", ep.ID)
			}
			inMembers := map[int32]bool{}
			for _, m := range ep.Members {
				inMembers[m.Msg] = true
			}
			for _, e := range ep.Formation {
				if !inMembers[e.Msg] || !inMembers[e.Next] {
					t.Errorf("episode %d: formation edge %d->%d leaves the member set", ep.ID, e.Msg, e.Next)
				}
			}
		case forensics.VerdictFalsePositive:
			if len(ep.Members) != 0 {
				t.Errorf("episode %d: false-positive with %d members", ep.ID, len(ep.Members))
			}
		default:
			t.Errorf("episode %d: unknown verdict %q", ep.ID, ep.Verdict)
		}
	}
	if members != sightings {
		t.Errorf("%d oracle sightings but %d episode members; each sighting must land in exactly one episode",
			sightings, members)
	}
}

// TestShardedObserverUnderRace exists for the CI -race job: the online
// observer runs on the engine's serial commit spine, so a sharded traced
// run with a correlator attached must be data-race free.
func TestShardedObserverUnderRace(t *testing.T) {
	cfg := goldenConfig()
	cfg.K = 4 // 16 nodes so 4 shards get distinct slices
	cfg.Shards = 4
	cfg.Measure = 600
	if got := runIncidents(t, cfg); len(got) == 0 {
		t.Error("sharded forensics run produced an empty report file")
	}
}

// TestNilSafety: a nil correlator ignores everything, and an empty report
// round-trips.
func TestNilSafety(t *testing.T) {
	var c *forensics.Correlator
	c.Observe(trace.Event{Kind: trace.KindDetect})
	c.Finish()
	if eps := c.Episodes(); eps != nil {
		t.Errorf("nil correlator returned episodes: %v", eps)
	}
	if err := c.WriteReport(os.NewFile(0, "discard")); err != nil {
		t.Errorf("nil WriteReport: %v", err)
	}
	var buf bytes.Buffer
	if err := forensics.WriteJSONL(&buf, nil); err != nil {
		t.Fatal(err)
	}
	eps, err := forensics.DecodeEpisodes(&buf)
	if err != nil || len(eps) != 0 {
		t.Errorf("empty roundtrip: %v, %d episodes", err, len(eps))
	}
}

// TestReportRoundTrip: encode -> decode preserves every field the golden
// exercises.
func TestReportRoundTrip(t *testing.T) {
	f, err := os.Open("../mc/testdata/liveness-cex-3x3-none.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	eps, err := forensics.Correlate(f, forensics.Options{Mechanism: "forced"})
	if err != nil {
		t.Fatal(err)
	}
	if eps[0].Mechanism != "forced" {
		t.Errorf("Options.Mechanism not honored: %q", eps[0].Mechanism)
	}
	var buf bytes.Buffer
	if err := forensics.WriteJSONL(&buf, eps); err != nil {
		t.Fatal(err)
	}
	got, err := forensics.DecodeEpisodes(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := forensics.WriteJSONL(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("encode -> decode -> encode is not a fixpoint")
	}
}
