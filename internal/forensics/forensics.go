// Package forensics reconstructs deadlock episodes from the flight
// recorder's event stream: formation (the channel-wait-for cycle,
// cross-checked against oracle sightings), detection (which rule fired,
// oracle→mark latency), verdict provenance (the blocking chain behind a
// false positive) and resolution (victims, drain time). It turns the raw
// trace rails of internal/trace into causal incident records.
//
// The correlator consumes events one at a time, so it runs identically
// offline (Correlate over a JSONL trace via trace.Scan) and online (Observe
// registered as the recorder's observer while the engine runs). Because the
// trace byte stream is already contractually independent of shard count and
// cycle-kernel choice, the incident report — a pure function of that stream
// — is byte-identical across those axes too; tests and the forensics-smoke
// CI gate hold it there.
//
// Episode model. An episode opens at the first oracle-deadlock sighting
// (or, with no sighting, at a mark the oracle refuted) while no episode is
// open, accumulates members/marks/victims, and closes when its last sighted
// member has routed, delivered or been recovered and no recovery is in
// flight. Distinct cycles that overlap in time merge into one episode — the
// correlator is a temporal correlator, not a graph partitioner; the
// formation cycle and per-mark chains carry the finer structure.
package forensics

import (
	"io"
	"sort"

	"wormnet/internal/metrics"
	"wormnet/internal/router"
	"wormnet/internal/trace"
)

// Options configure a Correlator.
type Options struct {
	// Mechanism forces the mechanism name stamped on episodes; "" infers it
	// from the events present (probe-* ⇒ cmh, i-set ⇒ ndm, dt-set ⇒ pdm,
	// marks without flag events ⇒ timeout, otherwise none).
	Mechanism string
	// Metrics, when non-nil, receives the episode metric families as
	// episodes close: wormnet_episodes_total{verdict}, the MTTD/MTTR
	// histograms and the episodes-in-flight gauge.
	Metrics *metrics.Collector
}

// chain length cap for false-positive blocking chains.
const maxChain = 16

// holdRec is one virtual channel a message occupies.
type holdRec struct {
	link router.LinkID
	vc   int32
}

// msgState tracks what the correlator knows about one message id. Ids are
// recycled by the fabric's pool; an inject event resets the slot.
type msgState struct {
	holds        []holdRec
	length       int32
	blockedNode  int32 // -1 when not blocked
	blockedIn    router.LinkID
	blockedSince int64
	sighted      int64 // -1 unless currently oracle-deadlocked
	lastHops     int64 // hop count of the last probe-return targeting this msg
	hasProbe     bool
}

// Correlator is the episode state machine. It is not safe for concurrent
// use; all trace emit sites run on the engine's serial commit spine, so a
// recorder observer needs no locking. A nil *Correlator ignores every call.
type Correlator struct {
	opt Options

	msgs    []msgState
	linkSrc []int32           // link -> source router (-1 unknown)
	nodeOut [][]router.LinkID // node -> learned outgoing links, learn order
	holders [][]router.MsgID  // link -> msgs holding a VC on it (dup per VC)
	gRule   []int8            // input link -> last g-set rule in force (0 none)

	episodes    []*Episode
	open        *Episode
	liveMembers int
	recovering  int

	seenISet, seenDTSet, seenProbe bool
	lastCycle                      int64
	finished                       bool
}

// New builds a correlator.
func New(opt Options) *Correlator {
	return &Correlator{opt: opt}
}

func (c *Correlator) msg(id router.MsgID) *msgState {
	for int(id) >= len(c.msgs) {
		c.msgs = append(c.msgs, msgState{blockedNode: -1, blockedSince: -1, sighted: -1})
	}
	return &c.msgs[id]
}

func (c *Correlator) ensureLink(l router.LinkID) {
	for int(l) >= len(c.linkSrc) {
		c.linkSrc = append(c.linkSrc, -1)
		c.holders = append(c.holders, nil)
		c.gRule = append(c.gRule, 0)
	}
}

// learnSrc records that link l is an output of router node.
func (c *Correlator) learnSrc(l router.LinkID, node int32) {
	if l < 0 || node < 0 {
		return
	}
	c.ensureLink(l)
	if c.linkSrc[l] == node {
		return
	}
	c.linkSrc[l] = node
	for int(node) >= len(c.nodeOut) {
		c.nodeOut = append(c.nodeOut, nil)
	}
	c.nodeOut[node] = append(c.nodeOut[node], l)
}

// addHold records that m occupies a VC on link l.
func (c *Correlator) addHold(id router.MsgID, l router.LinkID, vc int32) {
	if l < 0 {
		return
	}
	c.ensureLink(l)
	c.msg(id).holds = append(c.msg(id).holds, holdRec{link: l, vc: vc})
	c.holders[l] = append(c.holders[l], id)
}

// dropHold releases one VC of m on link l (the oldest hold on that link,
// which matches wormhole FIFO tail passage).
func (c *Correlator) dropHold(id router.MsgID, l router.LinkID) {
	ms := c.msg(id)
	for i, h := range ms.holds {
		if h.link == l {
			ms.holds = append(ms.holds[:i], ms.holds[i+1:]...)
			break
		}
	}
	if int(l) < len(c.holders) {
		hs := c.holders[l]
		for i, h := range hs {
			if h == id {
				c.holders[l] = append(hs[:i], hs[i+1:]...)
				break
			}
		}
	}
}

// dropAllHolds releases every VC of m (recovery completion, delivery,
// id reuse) — this also cleans up holds whose release events were anonymous.
func (c *Correlator) dropAllHolds(id router.MsgID) {
	ms := c.msg(id)
	for _, h := range ms.holds {
		if int(h.link) >= len(c.holders) {
			continue
		}
		hs := c.holders[h.link]
		for i, hm := range hs {
			if hm == id {
				c.holders[h.link] = append(hs[:i], hs[i+1:]...)
				break
			}
		}
	}
	ms.holds = ms.holds[:0]
}

// Observe feeds one event to the state machine. Register it with
// trace.Recorder.SetObserver for online correlation; Correlate drives it
// from a decoded stream. Nil-safe.
func (c *Correlator) Observe(ev trace.Event) {
	if c == nil {
		return
	}
	if ev.Cycle > c.lastCycle {
		c.lastCycle = ev.Cycle
	}
	switch ev.Kind {
	case trace.KindInject:
		ms := c.msg(ev.Msg)
		c.dropAllHolds(ev.Msg) // id reuse: the pool recycled a delivered msg
		c.unsight(ev.Msg, ev.Cycle)
		ms.blockedNode, ms.blockedSince = -1, -1
		ms.length = int32(ev.Arg)
		ms.hasProbe = false
		c.learnSrc(ev.Link, ev.Node)

	case trace.KindVCAlloc:
		c.addHold(ev.Msg, ev.Link, ev.Aux)

	case trace.KindVCFree:
		if ev.Msg != router.NilMsg {
			c.dropHold(ev.Msg, ev.Link)
		}
		// Anonymous frees (recovery absorption) are reconciled wholesale at
		// recover-end.

	case trace.KindRouteOK:
		ms := c.msg(ev.Msg)
		ms.blockedNode, ms.blockedSince = -1, -1
		c.learnSrc(router.LinkID(ev.Arg), ev.Node)
		c.addHold(ev.Msg, router.LinkID(ev.Arg), ev.Aux)
		c.unsight(ev.Msg, ev.Cycle)

	case trace.KindRouteFail:
		ms := c.msg(ev.Msg)
		ms.blockedNode = ev.Node
		ms.blockedIn = ev.Link
		if ev.Arg == 1 || ms.blockedSince < 0 {
			ms.blockedSince = ev.Cycle
		}

	case trace.KindISet:
		c.seenISet = true
	case trace.KindDTSet:
		c.seenDTSet = true
	case trace.KindGSet:
		c.seenISet = true
		c.ensureLink(ev.Link)
		c.gRule[ev.Link] = int8(ev.Arg)
	case trace.KindPSet:
		c.seenISet = true
		c.ensureLink(ev.Link)
		c.gRule[ev.Link] = 0

	case trace.KindProbeEmit, trace.KindProbeForward, trace.KindProbeDrop:
		c.seenProbe = true
	case trace.KindProbeReturn:
		c.seenProbe = true
		victim := router.MsgID(ev.Aux)
		if victim >= 0 {
			ms := c.msg(victim)
			ms.lastHops = ev.Arg
			ms.hasProbe = true
		}

	case trace.KindOracleDeadlock:
		c.sight(ev)

	case trace.KindDetect:
		c.mark(ev)

	case trace.KindRecoverStart:
		if c.open != nil {
			c.recovering++
			c.open.Victims = append(c.open.Victims, Victim{
				Msg: int32(ev.Msg), Start: ev.Cycle, End: -1, Node: -1,
				DrainCycles: -1, Style: ev.Arg, LengthFlits: c.msg(ev.Msg).length,
			})
			c.open.AbsorbedFlitsEst += int64(c.msg(ev.Msg).length)
		}

	case trace.KindRecoverEnd:
		if c.open != nil {
			for i := len(c.open.Victims) - 1; i >= 0; i-- {
				v := &c.open.Victims[i]
				if v.Msg == int32(ev.Msg) && v.End < 0 {
					v.End = ev.Cycle
					v.Node = ev.Node
					v.DrainCycles = ev.Cycle - v.Start
					v.Delivered = ev.Arg == 1
					break
				}
			}
			if c.recovering > 0 {
				c.recovering--
			}
		}
		c.dropAllHolds(ev.Msg)
		ms := c.msg(ev.Msg)
		ms.blockedNode, ms.blockedSince = -1, -1
		c.unsight(ev.Msg, ev.Cycle)
		// unsight only reaches maybeClose for sighted members; a pure
		// false-positive episode closes when its last victim drains.
		c.maybeClose(ev.Cycle)

	case trace.KindDeliver:
		c.dropAllHolds(ev.Msg)
		ms := c.msg(ev.Msg)
		ms.blockedNode, ms.blockedSince = -1, -1
		c.unsight(ev.Msg, ev.Cycle)
	}
}

// sight handles an oracle-deadlock event: open an episode if none is, and
// record the member with a snapshot of its blocking state.
func (c *Correlator) sight(ev trace.Event) {
	if c.open == nil {
		c.open = &Episode{
			ID:         len(c.episodes) + 1,
			OpenCycle:  ev.Cycle,
			CloseCycle: -1, MTTDCycles: -1, MTTRCycles: -1,
		}
		c.opt.Metrics.SetEpisodesOpen(1)
	}
	ms := c.msg(ev.Msg)
	if ms.sighted >= 0 {
		return // already a member (engine emits once, but be safe)
	}
	ms.sighted = ev.Cycle
	c.liveMembers++
	m := Member{
		Msg: int32(ev.Msg), Sighted: ev.Cycle,
		Node: ms.blockedNode, InLink: int32(ms.blockedIn), BlockedSince: ms.blockedSince,
	}
	if ms.blockedNode < 0 {
		m.InLink = -1
	}
	for _, h := range ms.holds {
		m.Holds = append(m.Holds, int32(h.link))
	}
	c.open.Members = append(c.open.Members, m)
	if n := int(ev.Arg); n > c.open.PeakOracleSet {
		c.open.PeakOracleSet = n
	}
}

// unsight removes a message from the open episode's live member set (it
// routed, delivered, recovered or its id was recycled) and closes the
// episode when nothing is left in flight.
func (c *Correlator) unsight(id router.MsgID, cycle int64) {
	ms := c.msg(id)
	if ms.sighted < 0 {
		return
	}
	ms.sighted = -1
	if c.liveMembers > 0 {
		c.liveMembers--
	}
	c.maybeClose(cycle)
}

// maybeClose closes the open episode once its members and victims have all
// drained. Called only from member/victim removal paths, so a mark and its
// same-cycle recover-start can never race it.
func (c *Correlator) maybeClose(cycle int64) {
	if c.open == nil || c.liveMembers > 0 || c.recovering > 0 {
		return
	}
	ep := c.open
	c.open = nil
	ep.CloseCycle = cycle
	c.finalize(ep)
	if first := ep.FirstMarkCycle(); first >= 0 {
		ep.MTTRCycles = cycle - first
	}
	c.episodes = append(c.episodes, ep)
	c.opt.Metrics.SetEpisodesOpen(0)
	c.opt.Metrics.ObserveEpisode(ep.Verdict == VerdictTrueDeadlock, ep.MTTDCycles, ep.MTTRCycles)
}

// Verdict values.
const (
	VerdictTrueDeadlock  = "true-deadlock"
	VerdictFalsePositive = "false-positive"
)

// finalize stamps the episode's verdict, mechanism, MTTD and formation.
func (c *Correlator) finalize(ep *Episode) {
	if len(ep.Members) > 0 {
		ep.Verdict = VerdictTrueDeadlock
		if first := ep.FirstMarkCycle(); first >= 0 {
			ep.MTTDCycles = first - ep.OpenCycle
		}
		ep.Formation = c.formation(ep.Members)
	} else {
		ep.Verdict = VerdictFalsePositive
	}
	ep.Mechanism = c.mechanism()
}

// mechanism infers the active detection mechanism from the kinds seen.
func (c *Correlator) mechanism() string {
	if c.opt.Mechanism != "" {
		return c.opt.Mechanism
	}
	switch {
	case c.seenProbe:
		return "cmh"
	case c.seenISet:
		return "ndm"
	case c.seenDTSet:
		return "pdm"
	case c.marksSeen():
		return "timeout"
	default:
		return "none"
	}
}

func (c *Correlator) marksSeen() bool {
	if c.open != nil && len(c.open.Marks) > 0 {
		return true
	}
	for _, ep := range c.episodes {
		if len(ep.Marks) > 0 {
			return true
		}
	}
	return false
}

// mark handles a detect event: attach it (opening a false-positive episode
// if none is open) with rule attribution and, for refuted marks, the
// blocking chain that explains the spurious threshold crossing.
func (c *Correlator) mark(ev trace.Event) {
	if c.open == nil {
		c.open = &Episode{
			ID:         len(c.episodes) + 1,
			OpenCycle:  ev.Cycle,
			CloseCycle: -1, MTTDCycles: -1, MTTRCycles: -1,
		}
		c.opt.Metrics.SetEpisodesOpen(1)
	}
	ms := c.msg(ev.Msg)
	mk := Mark{
		Cycle: ev.Cycle, Msg: int32(ev.Msg), Node: ev.Node, True: ev.Arg == 1,
		SinceBlocked: -1, OracleLatency: -1,
	}
	if ms.blockedSince >= 0 {
		mk.SinceBlocked = ev.Cycle - ms.blockedSince
	}
	if ms.sighted >= 0 {
		mk.OracleLatency = ev.Cycle - ms.sighted
	}
	mk.Rule, mk.Hops = c.attribute(ms)
	if !mk.True {
		mk.Chain, mk.ChainEnd = c.blockingChain(ev.Msg)
	}
	c.open.Marks = append(c.open.Marks, mk)
}

// attribute names the rule that produced a mark of a message in state ms.
func (c *Correlator) attribute(ms *msgState) (string, int64) {
	if c.seenProbe && ms.hasProbe {
		return "probe-return", ms.lastHops
	}
	if c.seenISet { // NDM: the G rule armed on the blocked input
		rule := int8(0)
		if ms.blockedNode >= 0 && int(ms.blockedIn) < len(c.gRule) {
			rule = c.gRule[ms.blockedIn]
		}
		switch rule {
		case trace.GRuleFirstAttempt:
			return "g1-first-attempt", 0
		case trace.GRulePromotion:
			return "g2-promotion", 0
		default:
			return "g-unknown", 0
		}
	}
	if c.seenDTSet {
		return "dt-threshold", 0
	}
	return "timeout", 0
}

// blockingChain walks the channel-occupancy graph from a falsely marked
// message: at each hop, among the worms holding a channel out of the node
// where the current worm is blocked, it prefers a blocked holder (smallest
// message id, then smallest link) and follows it; reaching a holder that is
// still advancing ends the chain — that moving worm is what kept the
// dependency tree alive and the marked message inactive.
func (c *Correlator) blockingChain(start router.MsgID) ([]WaitEdge, string) {
	var chain []WaitEdge
	visited := map[router.MsgID]bool{start: true}
	cur := start
	for len(chain) < maxChain {
		ms := c.msg(cur)
		node := ms.blockedNode
		if node < 0 {
			return chain, "advancing"
		}
		nextMsg, nextLink, nextBlocked, found := c.holderAt(node, cur)
		if !found {
			return chain, "no-holder"
		}
		chain = append(chain, WaitEdge{
			Msg: int32(cur), Node: node, Link: int32(nextLink), Next: int32(nextMsg),
		})
		if !nextBlocked {
			return chain, "advancing"
		}
		if visited[nextMsg] {
			return chain, "cycle"
		}
		visited[nextMsg] = true
		cur = nextMsg
	}
	return chain, "truncated"
}

// holderAt finds the preferred holder of a channel leaving node, excluding
// skip: blocked holders first, then smallest message id, then smallest link.
func (c *Correlator) holderAt(node int32, skip router.MsgID) (router.MsgID, router.LinkID, bool, bool) {
	var bestMsg router.MsgID
	var bestLink router.LinkID
	bestBlocked, found := false, false
	if int(node) >= len(c.nodeOut) {
		return 0, 0, false, false
	}
	for _, l := range c.nodeOut[node] {
		for _, h := range c.holders[l] {
			if h == skip {
				continue
			}
			blocked := c.msg(h).blockedNode >= 0
			better := !found ||
				(blocked && !bestBlocked) ||
				(blocked == bestBlocked && (h < bestMsg || (h == bestMsg && l < bestLink)))
			if better {
				bestMsg, bestLink, bestBlocked, found = h, l, blocked, true
			}
		}
	}
	return bestMsg, bestLink, bestBlocked, found
}

// formation extracts a channel-wait-for cycle from the members' sighting
// snapshots. Edges are over-approximate (m waits on m' iff m' holds a
// channel leaving m's blocked router), but the true wait-for graph is a
// subgraph and the oracle guarantees every member waits on a member, so a
// deterministic functional walk (smallest successor from the smallest
// member) must revisit — the revisited suffix is the reported cycle.
func (c *Correlator) formation(members []Member) []WaitEdge {
	byMsg := make(map[int32]*Member, len(members))
	ids := make([]int32, 0, len(members))
	for i := range members {
		byMsg[members[i].Msg] = &members[i]
		ids = append(ids, members[i].Msg)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// successor edge per member: smallest holder msg, then smallest link.
	succ := func(m *Member) (int32, int32, bool) {
		if m.Node < 0 {
			return 0, 0, false
		}
		var bm, bl int32
		found := false
		for _, id := range ids {
			if id == m.Msg {
				continue
			}
			for _, l := range byMsg[id].Holds {
				if int(l) >= len(c.linkSrc) || c.linkSrc[l] != m.Node {
					continue
				}
				if !found || id < bm || (id == bm && l < bl) {
					bm, bl, found = id, l, true
				}
			}
		}
		return bm, bl, found
	}

	seenAt := map[int32]int{}
	var path []WaitEdge
	cur := byMsg[ids[0]]
	for steps := 0; steps <= 2*len(members)+2; steps++ {
		if at, dup := seenAt[cur.Msg]; dup {
			return path[at:] // the cycle
		}
		seenAt[cur.Msg] = len(path)
		nm, nl, found := succ(cur)
		if !found {
			// A member with no member successor (snapshot raced a recovery
			// release): restart from the smallest unvisited member.
			var next *Member
			for _, id := range ids {
				if _, dup := seenAt[id]; !dup {
					next = byMsg[id]
					break
				}
			}
			if next == nil {
				return nil
			}
			path = path[:0]
			seenAt = map[int32]int{}
			cur = next
			continue
		}
		path = append(path, WaitEdge{Msg: cur.Msg, Node: cur.Node, Link: nl, Next: nm})
		cur = byMsg[nm]
	}
	return nil
}

// Finish closes out correlation at end of trace: an episode still open is
// recorded as unresolved. Call once; Episodes reflects the final report.
func (c *Correlator) Finish() {
	if c == nil || c.finished {
		return
	}
	c.finished = true
	if ep := c.open; ep != nil {
		c.open = nil
		ep.Unresolved = true
		c.finalize(ep)
		c.episodes = append(c.episodes, ep)
		c.opt.Metrics.SetEpisodesOpen(0)
		c.opt.Metrics.ObserveEpisode(ep.Verdict == VerdictTrueDeadlock, ep.MTTDCycles, ep.MTTRCycles)
	}
}

// Episodes returns the reconstructed episodes in open order. Call Finish
// first for a complete report.
func (c *Correlator) Episodes() []*Episode {
	if c == nil {
		return nil
	}
	return c.episodes
}

// WriteReport finishes correlation and writes the incident report as JSONL.
func (c *Correlator) WriteReport(w io.Writer) error {
	if c == nil {
		return nil
	}
	c.Finish()
	return WriteJSONL(w, c.episodes)
}

// Correlate reconstructs episodes offline from a JSONL trace stream.
func Correlate(r io.Reader, opt Options) ([]*Episode, error) {
	c := New(opt)
	if err := trace.Scan(r, func(ev trace.Event) error {
		c.Observe(ev)
		return nil
	}); err != nil {
		return nil, err
	}
	c.Finish()
	return c.Episodes(), nil
}
