// Package viz renders human-readable snapshots of the simulator state:
// per-channel occupancy summaries, worm dumps (which virtual channels a
// message holds, from tail to head) and, for 2-D networks, an ASCII
// utilization heatmap. It is a debugging and teaching aid; nothing in the
// measurement path depends on it.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wormnet/internal/router"
	"wormnet/internal/topology"
)

// DumpWorm writes the chain of virtual channels message m currently holds,
// from tail to head, one line per VC.
func DumpWorm(w io.Writer, f *router.Fabric, m *router.Message) {
	fmt.Fprintf(w, "message %d: %d -> %d, %d flits, phase %s\n",
		m.ID, m.Src, m.Dst, m.Length, m.Phase)
	if m.TailVC == router.NilVC {
		fmt.Fprintln(w, "  (holds no fabric resources)")
		return
	}
	hop := 0
	for vc := m.TailVC; vc != router.NilVC; vc = f.VCs[vc].Next {
		v := &f.VCs[vc]
		link := &f.Links[v.Link]
		marks := ""
		if v.HasHeader {
			marks += " header"
		}
		if v.HasTail {
			marks += " tail"
		}
		fmt.Fprintf(w, "  [%2d] vc %-5d link %-5d %s %3d->%-3d %d/%d flits%s\n",
			hop, vc, v.Link, link.Kind, link.Src, link.Dst, v.Flits, f.Cfg.BufFlits, marks)
		hop++
		if hop > len(f.VCs) {
			fmt.Fprintln(w, "  ... (chain corrupt: loop)")
			return
		}
	}
}

// ChannelSummary is an aggregate view of the fabric's occupancy.
type ChannelSummary struct {
	NetLinks      int
	BusyNetLinks  int // network links with >= 1 busy VC
	FullNetLinks  int // network links with every VC busy
	BusyVCs       int
	BufferedFlits int64
	LiveMessages  int
	BlockedHeads  int
}

// Summarize computes a ChannelSummary for the fabric.
func Summarize(f *router.Fabric) ChannelSummary {
	var s ChannelSummary
	s.NetLinks = f.NumNetLinks()
	for l := 0; l < f.NumNetLinks(); l++ {
		busy := f.BusyVCs(router.LinkID(l))
		if busy > 0 {
			s.BusyNetLinks++
		}
		if f.AllVCsBusy(router.LinkID(l)) {
			s.FullNetLinks++
		}
	}
	for i := range f.VCs {
		if f.VCs[i].Occupant != router.NilMsg {
			s.BusyVCs++
			s.BufferedFlits += int64(f.VCs[i].Flits)
			if f.HeaderBlocked(router.VCID(i)) {
				s.BlockedHeads++
			}
		}
	}
	f.LiveMessages(func(*router.Message) { s.LiveMessages++ })
	return s
}

// String renders the summary on one line.
func (s ChannelSummary) String() string {
	return fmt.Sprintf("net links: %d/%d busy (%d full), %d busy VCs, %d flits buffered, %d live messages, %d blocked headers",
		s.BusyNetLinks, s.NetLinks, s.FullNetLinks, s.BusyVCs, s.BufferedFlits, s.LiveMessages, s.BlockedHeads)
}

// Heatmap renders, for a 2-dimensional torus, a grid of per-node busy
// output-VC counts as digits (values above 9 print as '+'). For other
// dimensionalities it returns an explanatory line instead.
func Heatmap(f *router.Fabric) string {
	t := f.Topo
	if t.N() != 2 {
		return fmt.Sprintf("(heatmap available only for 2-D tori; this is a %s)", t)
	}
	k := t.K()
	var sb strings.Builder
	coord := make([]int, 2)
	for y := k - 1; y >= 0; y-- {
		for x := 0; x < k; x++ {
			coord[0], coord[1] = x, y
			busy := f.BusyNetOutputVCs(t.ID(coord))
			switch {
			case busy == 0:
				sb.WriteByte('.')
			case busy <= 9:
				sb.WriteByte(byte('0' + busy))
			default:
				sb.WriteByte('+')
			}
			sb.WriteByte(' ')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// BlockedMessages writes, most-stuck first, up to max blocked messages with
// their wait positions — the raw material of the paper's trees of blocked
// messages.
func BlockedMessages(w io.Writer, f *router.Fabric, now int64, max int) {
	type entry struct {
		m     *router.Message
		stuck int64
	}
	var list []entry
	f.LiveMessages(func(m *router.Message) {
		if m.Phase == router.PhaseNetwork && m.Attempts > 0 {
			list = append(list, entry{m, now - m.BlockedSince})
		}
	})
	sort.Slice(list, func(i, j int) bool { return list[i].stuck > list[j].stuck })
	if len(list) > max {
		list = list[:max]
	}
	for _, e := range list {
		node := -1
		if e.m.HeadVC != router.NilVC {
			node = f.RouterOf(f.LinkOfVC(e.m.HeadVC))
		}
		fmt.Fprintf(w, "msg %-6d %3d->%-3d blocked %5d cycles at node %d (attempts %d)\n",
			e.m.ID, e.m.Src, e.m.Dst, e.stuck, node, e.m.Attempts)
	}
	if len(list) == 0 {
		fmt.Fprintln(w, "(no blocked messages)")
	}
}

// DirectionUtilization returns, per direction, the fraction of that
// direction's network links having at least one busy VC — a quick check of
// load balance across dimensions (e.g. tornado loads only dimension 0).
func DirectionUtilization(f *router.Fabric) map[topology.Direction]float64 {
	t := f.Topo
	out := make(map[topology.Direction]float64, t.Degree())
	for d := 0; d < t.Degree(); d++ {
		busy := 0
		for node := 0; node < t.Nodes(); node++ {
			if f.BusyVCs(f.NetLink(node, topology.Direction(d))) > 0 {
				busy++
			}
		}
		out[topology.Direction(d)] = float64(busy) / float64(t.Nodes())
	}
	return out
}
