package viz

import (
	"bytes"
	"strings"
	"testing"

	"wormnet/internal/router"
	"wormnet/internal/topology"
)

func fabric(t *testing.T, k, n int) *router.Fabric {
	t.Helper()
	f, err := router.NewFabric(topology.New(k, n),
		router.Config{VCsPerLink: 2, BufFlits: 4, InjPorts: 1, DelPorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// worm places a message across the given links, header last.
func worm(t *testing.T, f *router.Fabric, links ...router.LinkID) *router.Message {
	t.Helper()
	m := f.NewMessage(int(f.Links[links[0]].Src), int(f.Links[links[len(links)-1]].Dst), 8, 0)
	m.Phase = router.PhaseNetwork
	prev := router.NilVC
	for _, l := range links {
		vc := f.FreeVC(l)
		f.Allocate(m, prev, vc)
		f.VCs[vc].Flits = 2
		prev = vc
	}
	m.HeadVC = prev
	f.VCs[prev].HasHeader = true
	f.VCs[f.Links[links[0]].FirstVC].HasTail = true
	m.Injected = 8
	return m
}

func TestDumpWorm(t *testing.T) {
	f := fabric(t, 4, 2)
	m := worm(t, f, f.NetLink(0, 0), f.NetLink(1, 0))
	var buf bytes.Buffer
	DumpWorm(&buf, f, m)
	out := buf.String()
	if !strings.Contains(out, "header") || !strings.Contains(out, "tail") {
		t.Errorf("worm dump missing markers:\n%s", out)
	}
	if strings.Count(out, "vc ") != 2 {
		t.Errorf("worm dump should list 2 VCs:\n%s", out)
	}
	// A message without resources.
	free := f.NewMessage(0, 3, 8, 0)
	buf.Reset()
	DumpWorm(&buf, f, free)
	if !strings.Contains(buf.String(), "no fabric resources") {
		t.Errorf("empty dump: %s", buf.String())
	}
}

func TestSummarize(t *testing.T) {
	f := fabric(t, 4, 2)
	empty := Summarize(f)
	if empty.BusyVCs != 0 || empty.BusyNetLinks != 0 || empty.LiveMessages != 0 {
		t.Errorf("fresh fabric not empty: %+v", empty)
	}
	m := worm(t, f, f.NetLink(0, 0), f.NetLink(1, 0))
	f.VCs[m.HeadVC].Next = router.NilVC // header waiting
	m.Attempts = 1
	s := Summarize(f)
	if s.BusyVCs != 2 || s.BusyNetLinks != 2 || s.LiveMessages != 1 {
		t.Errorf("summary: %+v", s)
	}
	if s.BufferedFlits != 4 {
		t.Errorf("buffered flits %d", s.BufferedFlits)
	}
	if s.BlockedHeads != 1 {
		t.Errorf("blocked heads %d", s.BlockedHeads)
	}
	if !strings.Contains(s.String(), "2 busy VCs") {
		t.Errorf("String: %s", s)
	}
}

func TestHeatmap(t *testing.T) {
	f := fabric(t, 4, 2)
	hm := Heatmap(f)
	if strings.Count(hm, "\n") != 4 {
		t.Errorf("heatmap rows:\n%s", hm)
	}
	if !strings.Contains(hm, ".") {
		t.Error("idle nodes should render as dots")
	}
	worm(t, f, f.NetLink(0, 0))
	hm = Heatmap(f)
	if !strings.Contains(hm, "1") {
		t.Errorf("busy node not rendered:\n%s", hm)
	}
	// Non-2D fallback.
	f3 := fabric(t, 3, 3)
	if !strings.Contains(Heatmap(f3), "2-D") {
		t.Error("3-D fallback message missing")
	}
}

func TestBlockedMessages(t *testing.T) {
	f := fabric(t, 4, 2)
	var buf bytes.Buffer
	BlockedMessages(&buf, f, 100, 10)
	if !strings.Contains(buf.String(), "no blocked messages") {
		t.Errorf("empty case: %s", buf.String())
	}
	m := worm(t, f, f.NetLink(0, 0))
	m.Attempts = 3
	m.BlockedSince = 40
	buf.Reset()
	BlockedMessages(&buf, f, 100, 10)
	if !strings.Contains(buf.String(), "blocked    60 cycles") {
		t.Errorf("blocked dump: %s", buf.String())
	}
}

func TestDirectionUtilization(t *testing.T) {
	f := fabric(t, 4, 2)
	worm(t, f, f.NetLink(0, 0)) // one X+ link busy
	util := DirectionUtilization(f)
	if util[topology.Direction(0)] != 1.0/16 {
		t.Errorf("X+ utilization %v", util[topology.Direction(0)])
	}
	if util[topology.Direction(2)] != 0 {
		t.Errorf("Y+ utilization %v", util[topology.Direction(2)])
	}
}
