package router

import (
	"testing"

	"wormnet/internal/rng"
	"wormnet/internal/topology"
)

func testFabric(t *testing.T, k, n int) *Fabric {
	t.Helper()
	f, err := NewFabric(topology.New(k, n), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidation(t *testing.T) {
	tp := topology.New(4, 2)
	bad := []Config{
		{VCsPerLink: 0, BufFlits: 4, InjPorts: 4, DelPorts: 4},
		{VCsPerLink: 3, BufFlits: 0, InjPorts: 4, DelPorts: 4},
		{VCsPerLink: 3, BufFlits: 4, InjPorts: 0, DelPorts: 4},
		{VCsPerLink: 3, BufFlits: 4, InjPorts: 4, DelPorts: 0},
	}
	for i, cfg := range bad {
		if _, err := NewFabric(tp, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestFabricLayout(t *testing.T) {
	f := testFabric(t, 8, 3)
	nodes, deg := 512, 6
	if got, want := f.NumNetLinks(), nodes*deg; got != want {
		t.Fatalf("NumNetLinks = %d, want %d", got, want)
	}
	if got, want := f.NumLinks(), nodes*deg+nodes*4+nodes*4; got != want {
		t.Fatalf("NumLinks = %d, want %d", got, want)
	}
	// Every network link: Src's neighbor in Dir is Dst; buffers have 3 VCs.
	for i := 0; i < f.NumNetLinks(); i++ {
		l := &f.Links[i]
		if l.Kind != NetworkLink {
			t.Fatalf("link %d kind %v", i, l.Kind)
		}
		if got := f.Topo.Neighbor(int(l.Src), l.Dir); got != int(l.Dst) {
			t.Fatalf("link %d: neighbor(%d,%v) = %d, want %d", i, l.Src, l.Dir, got, l.Dst)
		}
		if l.NumVC != 3 {
			t.Fatalf("network link with %d VCs", l.NumVC)
		}
	}
	// Injection and delivery ports have a single VC and correct kinds.
	for node := 0; node < nodes; node++ {
		for p := 0; p < 4; p++ {
			inj := &f.Links[f.InjLink(node, p)]
			if inj.Kind != InjectionLink || inj.NumVC != 1 || int(inj.Dst) != node || inj.Src != -1 {
				t.Fatalf("bad injection link %+v", inj)
			}
			del := &f.Links[f.DelLink(node, p)]
			if del.Kind != DeliveryLink || del.NumVC != 1 || int(del.Src) != node {
				t.Fatalf("bad delivery link %+v", del)
			}
		}
	}
}

func TestVCOwnership(t *testing.T) {
	f := testFabric(t, 4, 2)
	for i := range f.VCs {
		l := f.VCs[i].Link
		link := &f.Links[l]
		id := VCID(i)
		if id < link.FirstVC || id >= link.FirstVC+VCID(link.NumVC) {
			t.Fatalf("VC %d claims link %d but is outside its range", i, l)
		}
	}
}

func TestIsMonitored(t *testing.T) {
	f := testFabric(t, 4, 2)
	if !f.IsMonitored(f.NetLink(0, 0)) {
		t.Error("network link not monitored")
	}
	if f.IsMonitored(f.InjLink(0, 0)) {
		t.Error("injection link monitored")
	}
	if !f.IsMonitored(f.DelLink(0, 0)) {
		t.Error("delivery link not monitored")
	}
}

func TestRouterOf(t *testing.T) {
	f := testFabric(t, 4, 2)
	l := f.NetLink(5, topology.Direction(0))
	if got := f.RouterOf(l); got != f.Topo.Neighbor(5, 0) {
		t.Errorf("RouterOf(net) = %d", got)
	}
	if got := f.RouterOf(f.InjLink(7, 2)); got != 7 {
		t.Errorf("RouterOf(inj) = %d", got)
	}
}

func TestFreeAndBusyVCs(t *testing.T) {
	f := testFabric(t, 4, 2)
	l := f.NetLink(0, 0)
	if f.BusyVCs(l) != 0 || f.AllVCsBusy(l) {
		t.Fatal("fresh link not free")
	}
	for i := 0; i < 3; i++ {
		vc := f.FreeVC(l)
		if vc == NilVC {
			t.Fatalf("no free VC at step %d", i)
		}
		f.Allocate(f.NewMessage(0, 5, 16, 0), NilVC, vc)
		if got := f.BusyVCs(l); got != i+1 {
			t.Fatalf("BusyVCs = %d, want %d", got, i+1)
		}
	}
	if !f.AllVCsBusy(l) || f.FreeVC(l) != NilVC {
		t.Fatal("full link reports free capacity")
	}
}

func TestBusyNetOutputVCs(t *testing.T) {
	f := testFabric(t, 4, 2)
	if f.BusyNetOutputVCs(0) != 0 {
		t.Fatal("fresh node has busy outputs")
	}
	f.Allocate(f.NewMessage(0, 5, 16, 0), NilVC, f.Links[f.NetLink(0, 1)].FirstVC)
	f.Allocate(f.NewMessage(0, 5, 16, 0), NilVC, f.Links[f.NetLink(0, 3)].FirstVC)
	if got := f.BusyNetOutputVCs(0); got != 2 {
		t.Fatalf("BusyNetOutputVCs = %d, want 2", got)
	}
	// Injection occupancy must not count.
	f.Allocate(f.NewMessage(0, 5, 16, 0), NilVC, f.Links[f.InjLink(0, 0)].FirstVC)
	if got := f.BusyNetOutputVCs(0); got != 2 {
		t.Fatalf("BusyNetOutputVCs counted injection: %d", got)
	}
}

// buildWorm injects a message and walks it hop by hop along a fixed path,
// returning the chain of VCs. Used by movement tests.
func buildWorm(t *testing.T, f *Fabric, m *Message, path []LinkID) []VCID {
	t.Helper()
	chain := make([]VCID, 0, len(path)+1)
	inj := f.Links[f.InjLink(int(m.Src), 0)].FirstVC
	f.Allocate(m, NilVC, inj)
	m.HeadVC = inj
	chain = append(chain, inj)
	for _, l := range path {
		vc := f.FreeVC(l)
		if vc == NilVC {
			t.Fatalf("no free VC on link %d", l)
		}
		f.Allocate(m, chain[len(chain)-1], vc)
		chain = append(chain, vc)
	}
	return chain
}

func TestMoveFlitHeaderAndTail(t *testing.T) {
	f := testFabric(t, 4, 2)
	m := f.NewMessage(0, 1, 3, 0) // 3-flit message
	path := []LinkID{f.NetLink(0, 0)}
	chain := buildWorm(t, f, m, path)
	src, dst := chain[0], chain[1]
	// Put all three flits in the injection buffer.
	f.VCs[src].Flits = 3
	f.VCs[src].HasHeader = true
	f.VCs[src].HasTail = true

	h, tl := f.MoveFlit(src)
	if !h || tl {
		t.Fatalf("first move: header=%v tail=%v", h, tl)
	}
	if f.VCs[src].HasHeader || !f.VCs[dst].HasHeader {
		t.Fatal("header bit did not move")
	}
	h, tl = f.MoveFlit(src)
	if h || tl {
		t.Fatalf("second move: header=%v tail=%v", h, tl)
	}
	h, tl = f.MoveFlit(src)
	if h || !tl {
		t.Fatalf("third move: header=%v tail=%v", h, tl)
	}
	// Tail passed: the source VC must be fully released.
	if f.VCs[src].Occupant != NilMsg || f.VCs[src].Flits != 0 {
		t.Fatalf("source VC not released: %+v", f.VCs[src])
	}
	if f.VCs[dst].Flits != 3 || !f.VCs[dst].HasTail || !f.VCs[dst].HasHeader {
		t.Fatalf("destination VC wrong: %+v", f.VCs[dst])
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveFlitSingleFlitMessage(t *testing.T) {
	f := testFabric(t, 4, 2)
	m := f.NewMessage(0, 1, 1, 0)
	chain := buildWorm(t, f, m, []LinkID{f.NetLink(0, 0)})
	f.VCs[chain[0]].Flits = 1
	f.VCs[chain[0]].HasHeader = true
	f.VCs[chain[0]].HasTail = true
	h, tl := f.MoveFlit(chain[0])
	if !h || !tl {
		t.Fatalf("single-flit move: header=%v tail=%v", h, tl)
	}
}

func TestMoveFlitPanics(t *testing.T) {
	f := testFabric(t, 4, 2)
	m := f.NewMessage(0, 1, 4, 0)
	chain := buildWorm(t, f, m, []LinkID{f.NetLink(0, 0)})
	// No flits to move.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on empty move")
			}
		}()
		f.MoveFlit(chain[0])
	}()
	// Full destination buffer.
	f.VCs[chain[0]].Flits = 1
	f.VCs[chain[1]].Flits = int32(f.Cfg.BufFlits)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on full destination")
			}
		}()
		f.MoveFlit(chain[0])
	}()
}

func TestAllocatePanicsOnDoubleAllocation(t *testing.T) {
	f := testFabric(t, 4, 2)
	m1 := f.NewMessage(0, 1, 4, 0)
	m2 := f.NewMessage(2, 3, 4, 0)
	vc := f.Links[f.NetLink(0, 0)].FirstVC
	f.Allocate(m1, NilVC, vc)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Allocate(m2, NilVC, vc)
}

func TestReleaseWorm(t *testing.T) {
	f := testFabric(t, 4, 2)
	m := f.NewMessage(0, 2, 16, 0)
	path := []LinkID{f.NetLink(0, 0), f.NetLink(1, 0)}
	chain := buildWorm(t, f, m, path)
	for _, vc := range chain {
		f.VCs[vc].Flits = 2
	}
	f.VCs[chain[0]].HasTail = true
	f.VCs[chain[len(chain)-1]].HasHeader = true

	freed := f.ReleaseWorm(m)
	if len(freed) != len(chain) {
		t.Fatalf("freed %d VCs, want %d", len(freed), len(chain))
	}
	for _, vc := range chain {
		if f.VCs[vc].Occupant != NilMsg {
			t.Fatalf("VC %d still occupied", vc)
		}
	}
	if m.HeadVC != NilVC || m.TailVC != NilVC {
		t.Fatal("message still references VCs")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMessagePoolReuse(t *testing.T) {
	f := testFabric(t, 4, 2)
	m1 := f.NewMessage(0, 1, 16, 5)
	id := m1.ID
	f.FreeMessage(m1)
	m2 := f.NewMessage(2, 3, 64, 9)
	if m2.ID != id {
		t.Fatalf("pool did not reuse ID: got %d, want %d", m2.ID, id)
	}
	if m2.Src != 2 || m2.Dst != 3 || m2.Length != 64 || m2.GenTime != 9 {
		t.Fatalf("recycled message has stale fields: %+v", m2)
	}
	if m2.Injected != 0 || m2.Marked || m2.Attempts != 0 {
		t.Fatal("recycled message not reset")
	}
}

func TestLiveMessages(t *testing.T) {
	f := testFabric(t, 4, 2)
	m1 := f.NewMessage(0, 1, 16, 0)
	m2 := f.NewMessage(2, 3, 16, 0)
	f.FreeMessage(m1)
	var ids []MsgID
	f.LiveMessages(func(m *Message) { ids = append(ids, m.ID) })
	if len(ids) != 1 || ids[0] != m2.ID {
		t.Fatalf("LiveMessages = %v, want [%d]", ids, m2.ID)
	}
}

func TestHeaderBlocked(t *testing.T) {
	f := testFabric(t, 4, 2)
	m := f.NewMessage(0, 2, 16, 0)
	chain := buildWorm(t, f, m, []LinkID{f.NetLink(0, 0)})
	head := chain[1]
	if f.HeaderBlocked(head) {
		t.Fatal("empty buffer reported blocked")
	}
	f.VCs[head].Flits = 1
	f.VCs[head].HasHeader = true
	if !f.HeaderBlocked(head) {
		t.Fatal("waiting header not reported blocked")
	}
	// With an output assigned it is no longer blocked.
	out := f.FreeVC(f.NetLink(1, 0))
	f.Allocate(m, head, out)
	if f.HeaderBlocked(head) {
		t.Fatal("routed header reported blocked")
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	f := testFabric(t, 4, 2)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	f.VCs[0].Flits = 1 // free VC with flits
	if err := f.CheckInvariants(); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestCandidatesMinimal(t *testing.T) {
	f := testFabric(t, 4, 2)
	// From node 0 to node 5 = (1,1): both X+ and Y+ are minimal.
	dst := f.Topo.ID([]int{1, 1})
	cands := f.Candidates(0, dst, nil)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	want := map[LinkID]bool{f.NetLink(0, 0): true, f.NetLink(0, 2): true}
	for _, c := range cands {
		if !want[c] {
			t.Fatalf("unexpected candidate %d", c)
		}
	}
}

func TestCandidatesAtDestination(t *testing.T) {
	f := testFabric(t, 4, 2)
	cands := f.Candidates(9, 9, nil)
	if len(cands) != f.Cfg.DelPorts {
		t.Fatalf("candidates at destination = %v", cands)
	}
	for p, c := range cands {
		if c != f.DelLink(9, p) {
			t.Fatalf("candidate %d = %d, want delivery port", p, c)
		}
	}
}

func TestPickOutputPolicies(t *testing.T) {
	f := testFabric(t, 4, 2)
	r := rng.New(1)
	l1, l2 := f.NetLink(0, 0), f.NetLink(0, 2)
	cands := []LinkID{l1, l2}

	// All free: SelectFirst picks the first VC of the first link.
	if got := f.PickOutput(cands, SelectFirst, r); got != f.Links[l1].FirstVC {
		t.Fatalf("SelectFirst = %d", got)
	}

	// Occupy all of l1 and two VCs of l2: only l2's last VC remains.
	for v := 0; v < 3; v++ {
		f.Allocate(f.NewMessage(0, 5, 16, 0), NilVC, f.Links[l1].FirstVC+VCID(v))
	}
	f.Allocate(f.NewMessage(0, 5, 16, 0), NilVC, f.Links[l2].FirstVC)
	f.Allocate(f.NewMessage(0, 5, 16, 0), NilVC, f.Links[l2].FirstVC+1)
	only := f.Links[l2].FirstVC + 2
	for _, pol := range []SelectPolicy{SelectFirst, SelectRandom, SelectLeastBusy} {
		if got := f.PickOutput(cands, pol, r); got != only {
			t.Fatalf("policy %d picked %d, want %d", pol, got, only)
		}
	}

	// Fully busy: NilVC.
	f.Allocate(f.NewMessage(0, 5, 16, 0), NilVC, only)
	for _, pol := range []SelectPolicy{SelectFirst, SelectRandom, SelectLeastBusy} {
		if got := f.PickOutput(cands, pol, r); got != NilVC {
			t.Fatalf("policy %d picked %d on full network", pol, got)
		}
	}
}

func TestPickOutputRandomIsUniform(t *testing.T) {
	f := testFabric(t, 4, 2)
	r := rng.New(2)
	cands := []LinkID{f.NetLink(0, 0), f.NetLink(0, 2)}
	counts := map[VCID]int{}
	const draws = 6000
	for i := 0; i < draws; i++ {
		counts[f.PickOutput(cands, SelectRandom, r)]++
	}
	if len(counts) != 6 {
		t.Fatalf("random policy hit %d VCs, want 6", len(counts))
	}
	for vc, c := range counts {
		if c < draws/6-300 || c > draws/6+300 {
			t.Errorf("VC %d chosen %d times, want about %d", vc, c, draws/6)
		}
	}
}

func TestPickOutputLeastBusy(t *testing.T) {
	f := testFabric(t, 4, 2)
	l1, l2 := f.NetLink(0, 0), f.NetLink(0, 2)
	f.Allocate(f.NewMessage(0, 5, 16, 0), NilVC, f.Links[l1].FirstVC)
	f.Allocate(f.NewMessage(0, 5, 16, 0), NilVC, f.Links[l1].FirstVC+1)
	// l1 has 2 busy, l2 has 0: least-busy must pick l2.
	got := f.PickOutput([]LinkID{l1, l2}, SelectLeastBusy, nil)
	if f.LinkOfVC(got) != l2 {
		t.Fatalf("least-busy picked link %d, want %d", f.LinkOfVC(got), l2)
	}
}

func TestMessageString(t *testing.T) {
	f := testFabric(t, 4, 2)
	m := f.NewMessage(0, 5, 16, 0)
	if s := m.String(); s == "" {
		t.Error("empty String()")
	}
	if m.Blocked() {
		t.Error("fresh message blocked")
	}
	m.Phase = PhaseNetwork
	m.Attempts = 2
	if !m.Blocked() {
		t.Error("attempted message not blocked")
	}
	if m.Remaining() != 16 {
		t.Errorf("Remaining = %d", m.Remaining())
	}
}
