// Package router models the wormhole router fabric evaluated in the paper
// (Section 4.1): a network of routers with physical channels split into
// virtual channels, small per-VC flit buffers, a crossbar constrained to one
// flit per physical channel per cycle, multi-port injection/delivery (the
// "four port architecture" of McKinley et al.), and true fully adaptive
// minimal routing in which every virtual channel of every profitable
// physical channel is a candidate.
//
// The package provides the structural model and its primitive operations
// (flit movement, channel allocation and release). The cycle-by-cycle
// pipeline that drives it lives in internal/sim; the deadlock detection
// hardware that observes it lives in internal/detect.
package router

import (
	"fmt"
	"math/bits"

	"wormnet/internal/topology"
)

// LinkID identifies a physical channel (network link, injection port or
// delivery port). NilLink means "none".
type LinkID int32

// VCID identifies a virtual channel buffer. NilVC means "none".
type VCID int32

// MsgID identifies a message in the fabric's message pool. NilMsg means
// "none".
type MsgID int32

// Sentinel IDs.
const (
	NilLink LinkID = -1
	NilVC   VCID   = -1
	NilMsg  MsgID  = -1
)

// LinkKind distinguishes the three classes of physical channels.
type LinkKind uint8

// Link kinds.
const (
	// NetworkLink connects two adjacent routers. Its flit buffers sit at
	// the downstream router's input; the upstream router monitors it as an
	// output channel.
	NetworkLink LinkKind = iota
	// InjectionLink connects a node's source interface to its router. It is
	// an input channel of the router; the detection hardware associates a
	// G/P flag with it but no inactivity counter (it is nobody's output).
	InjectionLink
	// DeliveryLink connects a router to its local sink. It is an output
	// channel of the router; the sink drains it every cycle.
	DeliveryLink
)

func (k LinkKind) String() string {
	switch k {
	case NetworkLink:
		return "net"
	case InjectionLink:
		return "inj"
	case DeliveryLink:
		return "del"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Link is one physical channel.
type Link struct {
	// Kind classifies the channel.
	Kind LinkKind
	// Src is the upstream router (whose output channel this is), or -1 for
	// injection links.
	Src int32
	// Dst is the router at whose input the buffers sit; for delivery links
	// it is the node whose sink consumes the flits.
	Dst int32
	// Dir is the network direction for NetworkLink channels.
	Dir topology.Direction
	// FirstVC and NumVC locate this link's virtual channels in Fabric.VCs.
	FirstVC VCID
	NumVC   int32
	// rr is the round-robin pointer used by the transfer stage to arbitrate
	// among feeder VCs competing for this physical channel.
	rr int32
}

// RR returns the link's round-robin arbitration pointer.
func (l *Link) RR() int32 { return l.rr }

// AdvanceRR rotates the round-robin arbitration pointer after a grant.
func (l *Link) AdvanceRR() { l.rr++ }

// VC is one virtual channel buffer. Flits of the single occupying message
// are stored FIFO; because a wormhole buffer only ever holds flits of one
// message in order, the buffer is represented by a count plus header/tail
// presence bits.
type VC struct {
	// Link is the physical channel this VC belongs to.
	Link LinkID
	// Occupant is the message holding this VC, or NilMsg.
	Occupant MsgID
	// Flits is the number of flits currently buffered.
	Flits int32
	// Next is the downstream VC the occupant's worm continues into, or
	// NilVC while the header is still in this buffer (routing pending or in
	// progress).
	Next VCID
	// HasHeader records that the occupant's header flit is buffered here
	// (it is necessarily at the FIFO front).
	HasHeader bool
	// HasTail records that the occupant's tail flit is buffered here (it is
	// necessarily at the FIFO back).
	HasTail bool
}

// Config sizes a Fabric.
type Config struct {
	// VCsPerLink is the number of virtual channels per network physical
	// channel (3 in the paper).
	VCsPerLink int
	// BufFlits is the per-VC buffer capacity in flits (4 in the paper).
	BufFlits int
	// InjPorts and DelPorts are the number of injection and delivery ports
	// per node (4 each in the paper's four-port architecture).
	InjPorts int
	DelPorts int
}

// DefaultConfig returns the paper's router parameters.
func DefaultConfig() Config {
	return Config{VCsPerLink: 3, BufFlits: 4, InjPorts: 4, DelPorts: 4}
}

func (c Config) validate() error {
	switch {
	case c.VCsPerLink < 1:
		return fmt.Errorf("router: VCsPerLink must be >= 1, got %d", c.VCsPerLink)
	case c.BufFlits < 1:
		return fmt.Errorf("router: BufFlits must be >= 1, got %d", c.BufFlits)
	case c.InjPorts < 1:
		return fmt.Errorf("router: InjPorts must be >= 1, got %d", c.InjPorts)
	case c.DelPorts < 1:
		return fmt.Errorf("router: DelPorts must be >= 1, got %d", c.DelPorts)
	}
	return nil
}

// Fabric is the complete structural state of the network: every physical
// channel, every virtual channel buffer, and the message pool.
type Fabric struct {
	Topo *topology.Torus
	Cfg  Config

	Links []Link
	VCs   []VC

	// Index bases into Links.
	netLinks int // number of network links; they occupy [0, netLinks)
	injBase  int // injection links occupy [injBase, injBase+nodes*InjPorts)
	delBase  int // delivery links occupy [delBase, delBase+nodes*DelPorts)

	// Message pool. Entries are individually heap-allocated so that
	// *Message pointers remain valid when the pool grows.
	msgs []*Message
	free []MsgID

	// Occupancy acceleration structures, maintained by Allocate and the
	// release paths, sharded by the owner of each link so that shard
	// workers mutate disjoint lists. A link (and its VCs) is owned by the
	// shard of Links[l].Dst — the router at whose input its buffers sit.
	// busy[l] counts occupied VCs of link l; occupied[s] lists every
	// occupied VC owned by shard s (in no particular order); occIdx[v] is
	// v's position within its owner's list, or -1. busyLinks[s] lists shard
	// s's links with busy > 0; busyLinkIdx[l] is l's position within its
	// owner's list, or -1. An unpartitioned fabric has a single shard
	// owning everything.
	busy        []int16
	occupied    [][]VCID
	occIdx      []int32
	busyLinks   [][]LinkID
	busyLinkIdx []int32
	// delOccBits[s] is shard s's occupied-delivery-VC bitmap (a subset of
	// occupied[s], kept separately so the drain stage touches only delivery
	// traffic). Delivery VCs are numbered contiguously in link order
	// (node-major, port-minor) starting at firstDelVC, and a contiguous
	// node partition owns a contiguous delivery range, so bit i of shard
	// s's bitmap is delivery VC firstDelVC + delLo[s] + i. Word-ascending,
	// bit-ascending iteration therefore yields VCID-ascending — canonical —
	// order without sorting. Each shard's bitmap is a separate allocation,
	// so concurrent shard workers never share a word.
	delOccBits [][]uint64
	delLo      []int32
	firstDelVC VCID
	// shardOf[l] is the shard owning link l; gens[s] is shard s's share of
	// the structural generation counter.
	shardOf []int32
	gens    []uint64

	// failed marks physical channels taken out of service by fault
	// injection; routing algorithms skip them.
	failed []bool

	// wormBuf is ReleaseWorm's reusable result buffer.
	wormBuf []VCID
}

// Gen returns the structural generation counter: the total number of
// changes that can affect routing and deadlock analysis. Every VC
// allocation or release and every link failure or repair bumps it.
// Observers (the deadlock oracle) compare generations to detect that cached
// analyses are still current; each shard owns a monotone share, so the sum
// is monotone too. Message-level state (Phase, Attempts) is not covered;
// owners report those separately.
func (f *Fabric) Gen() uint64 {
	g := f.gens[0]
	for _, s := range f.gens[1:] {
		g += s
	}
	return g
}

// NewFabric builds the fabric for the given topology and configuration.
func NewFabric(t *topology.Torus, cfg Config) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nodes := t.Nodes()
	deg := t.Degree()
	f := &Fabric{Topo: t, Cfg: cfg}
	f.netLinks = nodes * deg
	f.injBase = f.netLinks
	f.delBase = f.injBase + nodes*cfg.InjPorts
	total := f.delBase + nodes*cfg.DelPorts
	f.Links = make([]Link, total)

	var vcCount VCID
	addVCs := func(l *Link, n int) {
		l.FirstVC = vcCount
		l.NumVC = int32(n)
		vcCount += VCID(n)
	}
	for node := 0; node < nodes; node++ {
		for d := 0; d < deg; d++ {
			l := &f.Links[node*deg+d]
			l.Kind = NetworkLink
			l.Src = int32(node)
			l.Dst = int32(t.Neighbor(node, topology.Direction(d)))
			l.Dir = topology.Direction(d)
			addVCs(l, cfg.VCsPerLink)
		}
	}
	for node := 0; node < nodes; node++ {
		for p := 0; p < cfg.InjPorts; p++ {
			l := &f.Links[f.injBase+node*cfg.InjPorts+p]
			l.Kind = InjectionLink
			l.Src = -1
			l.Dst = int32(node)
			addVCs(l, 1)
		}
	}
	for node := 0; node < nodes; node++ {
		for p := 0; p < cfg.DelPorts; p++ {
			l := &f.Links[f.delBase+node*cfg.DelPorts+p]
			l.Kind = DeliveryLink
			l.Src = int32(node)
			l.Dst = int32(node)
			addVCs(l, 1)
		}
	}
	f.VCs = make([]VC, vcCount)
	for li := range f.Links {
		l := &f.Links[li]
		for v := VCID(0); v < VCID(l.NumVC); v++ {
			vc := &f.VCs[l.FirstVC+v]
			vc.Link = LinkID(li)
			vc.Occupant = NilMsg
			vc.Next = NilVC
		}
	}
	f.busy = make([]int16, total)
	f.occIdx = make([]int32, vcCount)
	for i := range f.occIdx {
		f.occIdx[i] = -1
	}
	f.busyLinkIdx = make([]int32, total)
	for i := range f.busyLinkIdx {
		f.busyLinkIdx[i] = -1
	}
	f.failed = make([]bool, total)
	f.shardOf = make([]int32, total)
	f.occupied = make([][]VCID, 1)
	f.busyLinks = make([][]LinkID, 1)
	f.firstDelVC = f.Links[f.delBase].FirstVC
	f.delOccBits = [][]uint64{make([]uint64, (nodes*cfg.DelPorts+63)/64)}
	f.delLo = []int32{0}
	f.gens = make([]uint64, 1)
	return f, nil
}

// SetPartition shards the occupancy structures by the given contiguous node
// partition: each link is owned by the shard of its Dst router, so shard
// workers stepping disjoint node ranges mutate disjoint occupancy lists.
// It must be called on an empty fabric, before any allocation.
func (f *Fabric) SetPartition(p topology.Partition) {
	for s := range f.occupied {
		if len(f.occupied[s]) > 0 {
			panic("router: SetPartition on a fabric with occupied VCs")
		}
	}
	n := p.Shards()
	for l := range f.Links {
		f.shardOf[l] = int32(p.Of(int(f.Links[l].Dst)))
	}
	f.occupied = make([][]VCID, n)
	f.busyLinks = make([][]LinkID, n)
	f.delOccBits = make([][]uint64, n)
	f.delLo = make([]int32, n)
	dp := f.Cfg.DelPorts
	for s := 0; s < n; s++ {
		lo, hi := p.Range(s)
		f.delLo[s] = int32(lo * dp)
		f.delOccBits[s] = make([]uint64, ((hi-lo)*dp+63)/64)
	}
	f.gens = make([]uint64, n)
}

// NumShards returns the number of occupancy shards (1 unless SetPartition
// was called).
func (f *Fabric) NumShards() int { return len(f.occupied) }

// ShardOfLink returns the shard owning link l: the shard of the router at
// whose input l's buffers sit.
func (f *Fabric) ShardOfLink(l LinkID) int { return int(f.shardOf[l]) }

// FailLink takes a physical channel out of service. Routing algorithms
// will no longer propose it. The caller (the engine) is responsible for
// evicting any worms currently holding its virtual channels.
func (f *Fabric) FailLink(l LinkID) { f.failed[l] = true; f.gens[f.shardOf[l]]++ }

// RepairLink returns a failed channel to service.
func (f *Fabric) RepairLink(l LinkID) { f.failed[l] = false; f.gens[f.shardOf[l]]++ }

// LinkFailed reports whether channel l is out of service.
func (f *Fabric) LinkFailed(l LinkID) bool { return f.failed[l] }

// OccupantsOf returns the distinct messages currently holding virtual
// channels of link l.
func (f *Fabric) OccupantsOf(l LinkID) []MsgID {
	var out []MsgID
	link := &f.Links[l]
	for v := VCID(0); v < VCID(link.NumVC); v++ {
		occ := f.VCs[link.FirstVC+v].Occupant
		if occ == NilMsg {
			continue
		}
		dup := false
		for _, o := range out {
			if o == occ {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, occ)
		}
	}
	return out
}

// addOccupied registers vc in its owner shard's occupancy structures.
func (f *Fabric) addOccupied(vc VCID) {
	l := f.VCs[vc].Link
	s := f.shardOf[l]
	f.gens[s]++
	f.busy[l]++
	if f.busy[l] == 1 {
		f.busyLinkIdx[l] = int32(len(f.busyLinks[s]))
		f.busyLinks[s] = append(f.busyLinks[s], l)
	}
	f.occIdx[vc] = int32(len(f.occupied[s]))
	f.occupied[s] = append(f.occupied[s], vc)
	if f.Links[l].Kind == DeliveryLink {
		rel := int(vc-f.firstDelVC) - int(f.delLo[s])
		f.delOccBits[s][rel>>6] |= 1 << (rel & 63)
	}
}

// removeOccupied unregisters vc (swap-remove within its owner shard).
func (f *Fabric) removeOccupied(vc VCID) {
	l := f.VCs[vc].Link
	s := f.shardOf[l]
	f.gens[s]++
	f.busy[l]--
	if f.busy[l] == 0 {
		bl := f.busyLinks[s]
		idx := f.busyLinkIdx[l]
		last := bl[len(bl)-1]
		bl[idx] = last
		f.busyLinkIdx[last] = idx
		f.busyLinks[s] = bl[:len(bl)-1]
		f.busyLinkIdx[l] = -1
	}
	oc := f.occupied[s]
	idx := f.occIdx[vc]
	last := oc[len(oc)-1]
	oc[idx] = last
	f.occIdx[last] = idx
	f.occupied[s] = oc[:len(oc)-1]
	f.occIdx[vc] = -1
	if f.Links[l].Kind == DeliveryLink {
		rel := int(vc-f.firstDelVC) - int(f.delLo[s])
		f.delOccBits[s][rel>>6] &^= 1 << (rel & 63)
	}
}

// OccupiedShard returns shard s's occupied virtual channels, in no
// particular order. The slice is owned by the fabric: callers must not
// mutate it, and any Allocate or release within the shard invalidates it.
func (f *Fabric) OccupiedShard(s int) []VCID { return f.occupied[s] }

// BusyLinksShard returns shard s's physical channels with at least one
// occupied VC, in no particular order, under the same ownership rules as
// OccupiedShard.
func (f *Fabric) BusyLinksShard(s int) []LinkID { return f.busyLinks[s] }

// DeliveryOccBitsShard returns shard s's occupied-delivery-VC bitmap: bit i
// is delivery VC DeliveryShardBase(s) + i. Word-ascending, bit-ascending
// iteration yields VCID-ascending (canonical drain) order. The slice is
// owned by the fabric under the same rules as OccupiedShard; releasing a
// delivery VC of the shard clears its bit in place.
func (f *Fabric) DeliveryOccBitsShard(s int) []uint64 { return f.delOccBits[s] }

// DeliveryShardBase returns the VCID corresponding to bit 0 of shard s's
// delivery-occupancy bitmap.
func (f *Fabric) DeliveryShardBase(s int) VCID { return f.firstDelVC + VCID(f.delLo[s]) }

// NumOccupied returns the total number of occupied virtual channels.
func (f *Fabric) NumOccupied() int {
	n := 0
	for s := range f.occupied {
		n += len(f.occupied[s])
	}
	return n
}

// NumBusyLinks returns the total number of physical channels with at least
// one occupied VC.
func (f *Fabric) NumBusyLinks() int {
	n := 0
	for s := range f.busyLinks {
		n += len(f.busyLinks[s])
	}
	return n
}

// NumLinks returns the total number of physical channels.
func (f *Fabric) NumLinks() int { return len(f.Links) }

// NumNetLinks returns the number of network physical channels; network
// links occupy LinkIDs [0, NumNetLinks).
func (f *Fabric) NumNetLinks() int { return f.netLinks }

// NetLink returns the ID of node's output network link in direction dir.
func (f *Fabric) NetLink(node int, dir topology.Direction) LinkID {
	return LinkID(node*f.Topo.Degree() + int(dir))
}

// InjLink returns the ID of node's injection port p.
func (f *Fabric) InjLink(node, p int) LinkID {
	return LinkID(f.injBase + node*f.Cfg.InjPorts + p)
}

// DelLink returns the ID of node's delivery port p.
func (f *Fabric) DelLink(node, p int) LinkID {
	return LinkID(f.delBase + node*f.Cfg.DelPorts + p)
}

// IsMonitored reports whether the detection hardware keeps an inactivity
// counter on this link (output channels of some router: network and
// delivery links).
func (f *Fabric) IsMonitored(id LinkID) bool {
	return f.Links[id].Kind != InjectionLink
}

// RouterOf returns the router that routes headers arriving on link id: the
// downstream node for network links and the local node for injection links.
// Delivery links carry no headers to route; RouterOf returns their node for
// completeness.
func (f *Fabric) RouterOf(id LinkID) int { return int(f.Links[id].Dst) }

// VCOf returns the vth virtual channel of link id.
func (f *Fabric) VCOf(id LinkID, v int) *VC { return &f.VCs[f.Links[id].FirstVC+VCID(v)] }

// LinkOfVC returns the physical channel that VC id belongs to.
func (f *Fabric) LinkOfVC(id VCID) LinkID { return f.VCs[id].Link }

// FreeVC returns the first free virtual channel of link id, or NilVC.
func (f *Fabric) FreeVC(id LinkID) VCID {
	l := &f.Links[id]
	if f.busy[id] >= int16(l.NumVC) {
		return NilVC
	}
	for v := VCID(0); v < VCID(l.NumVC); v++ {
		if f.VCs[l.FirstVC+v].Occupant == NilMsg {
			return l.FirstVC + v
		}
	}
	return NilVC
}

// BusyVCs returns how many virtual channels of link id are occupied.
func (f *Fabric) BusyVCs(id LinkID) int { return int(f.busy[id]) }

// AllVCsBusy reports whether every virtual channel of link id is occupied.
func (f *Fabric) AllVCsBusy(id LinkID) bool {
	return f.busy[id] >= int16(f.Links[id].NumVC)
}

// BusyNetOutputVCs counts the occupied virtual channels among node's
// network output links. The injection-limitation mechanism (López & Duato)
// admits a new message only while this count is at or below its threshold.
func (f *Fabric) BusyNetOutputVCs(node int) int {
	busy := 0
	deg := f.Topo.Degree()
	base := node * deg
	for d := 0; d < deg; d++ {
		busy += int(f.busy[base+d])
	}
	return busy
}

// Allocate assigns virtual channel vc to message m and links it as the
// continuation of the worm's current head VC (from), which may be NilVC for
// the very first allocation at injection. It panics on double allocation,
// which would indicate an engine bug.
func (f *Fabric) Allocate(m *Message, from VCID, vc VCID) {
	tgt := &f.VCs[vc]
	if tgt.Occupant != NilMsg {
		panic(fmt.Sprintf("router: VC %d already occupied by message %d", vc, tgt.Occupant))
	}
	tgt.Occupant = m.ID
	tgt.Next = NilVC
	f.addOccupied(vc)
	if from != NilVC {
		src := &f.VCs[from]
		if src.Occupant != m.ID {
			panic(fmt.Sprintf("router: allocate from VC %d not held by message %d", from, m.ID))
		}
		src.Next = vc
	}
	if m.TailVC == NilVC {
		m.TailVC = vc
	}
}

// MoveFlit transfers one flit from VC u into VC v = u.Next, updating worm
// bookkeeping. The caller has already verified buffer space, bandwidth and
// arbitration. It returns flags describing the flit that moved so callers
// can update message state and detection hardware.
func (f *Fabric) MoveFlit(u VCID) (header, tail bool) {
	v, header, tail := f.MoveFlitSrc(u)
	f.MoveFlitDst(v, header, tail)
	return header, tail
}

// MoveFlitSrc performs the source half of a decided flit transfer: the flit
// leaves VC u (releasing u if it was the tail) and the destination VC,
// header and tail classification are returned for MoveFlitDst. The split
// exists for the sharded engine's two-phase commit: the shard owning u
// applies the source half, and the shard owning the destination (or the
// barrier's serial merge, for boundary moves) applies the other.
func (f *Fabric) MoveFlitSrc(u VCID) (v VCID, header, tail bool) {
	src := &f.VCs[u]
	if src.Flits <= 0 || src.Next == NilVC {
		panic("router: MoveFlitSrc on VC with no forwardable flit")
	}
	v = src.Next
	header = src.HasHeader
	tail = src.HasTail && src.Flits == 1
	src.Flits--
	if header {
		src.HasHeader = false
	}
	if tail {
		src.HasTail = false
		f.releaseVC(u)
	}
	return v, header, tail
}

// MoveFlitDst performs the destination half of a decided flit transfer: the
// flit enters VC v carrying the classification MoveFlitSrc returned.
func (f *Fabric) MoveFlitDst(v VCID, header, tail bool) {
	dst := &f.VCs[v]
	if dst.Flits >= int32(f.Cfg.BufFlits) {
		panic("router: MoveFlitDst into full buffer")
	}
	dst.Flits++
	if header {
		dst.HasHeader = true
	}
	if tail {
		dst.HasTail = true
	}
}

// releaseVC frees VC u after the occupant's tail has left it.
func (f *Fabric) releaseVC(u VCID) {
	vc := &f.VCs[u]
	f.removeOccupied(u)
	vc.Occupant = NilMsg
	vc.Next = NilVC
	vc.HasHeader = false
	vc.HasTail = false
	if vc.Flits != 0 {
		panic("router: releasing VC with buffered flits")
	}
}

// ReleaseEmptyVC frees VC u after its occupant's remaining flits (including
// the tail) were consumed in place — by the delivery sink or by progressive
// recovery absorption — rather than forwarded. It panics if flits remain.
func (f *Fabric) ReleaseEmptyVC(u VCID) {
	vc := &f.VCs[u]
	if vc.Occupant == NilMsg {
		panic("router: ReleaseEmptyVC on free VC")
	}
	vc.HasHeader = false
	vc.HasTail = false
	f.releaseVC(u)
}

// ReleaseWorm frees every virtual channel still held by message m, dropping
// any buffered flits. It is used by regressive (abort-and-retry) recovery.
// It returns the freed VCs so the caller can raise flow-control events; the
// slice is a reusable scratch buffer invalidated by the next ReleaseWorm
// call, so callers must consume (or copy) it immediately.
func (f *Fabric) ReleaseWorm(m *Message) []VCID {
	freed := f.wormBuf[:0]
	for vc := m.TailVC; vc != NilVC; {
		next := f.VCs[vc].Next
		f.VCs[vc].Flits = 0
		f.releaseVC(vc)
		freed = append(freed, vc)
		vc = next
	}
	m.TailVC = NilVC
	m.HeadVC = NilVC
	f.wormBuf = freed
	return freed
}

// HeaderBlocked reports whether VC id currently holds a header that is
// waiting to be routed (header present, no output assigned).
func (f *Fabric) HeaderBlocked(id VCID) bool {
	vc := &f.VCs[id]
	return vc.HasHeader && vc.Next == NilVC && vc.Flits > 0
}

// Msg returns the message with the given ID.
func (f *Fabric) Msg(id MsgID) *Message { return f.msgs[id] }

// NewMessage obtains a fresh message from the pool.
func (f *Fabric) NewMessage(src, dst, length int, genTime int64) *Message {
	var id MsgID
	if n := len(f.free); n > 0 {
		id = f.free[n-1]
		f.free = f.free[:n-1]
	} else {
		id = MsgID(len(f.msgs))
		f.msgs = append(f.msgs, &Message{})
	}
	m := f.msgs[id]
	*m = Message{
		ID:      id,
		Src:     int32(src),
		Dst:     int32(dst),
		Length:  int32(length),
		GenTime: genTime,
		HeadVC:  NilVC,
		TailVC:  NilVC,
	}
	return m
}

// FreeMessage returns a message to the pool. The caller must have released
// all fabric resources first.
func (f *Fabric) FreeMessage(m *Message) {
	id := m.ID
	*m = Message{ID: id, HeadVC: NilVC, TailVC: NilVC}
	f.free = append(f.free, id)
}

// LiveMessages calls fn for every message that is currently allocated (in a
// source queue, occupying fabric resources, being injected, or retained
// after delivery). It does not allocate: FreeMessage zeroes a recycled
// entry's Length, so pool membership is encoded in the entries themselves
// and the free list never needs to be consulted.
func (f *Fabric) LiveMessages(fn func(*Message)) {
	for _, m := range f.msgs {
		if m.Length > 0 {
			fn(m)
		}
	}
}

// CheckInvariants validates structural consistency of worm state: every
// occupied VC chain is connected, flit counts respect capacity, and header
// and tail bits appear exactly where the occupant's state says they should.
// It is called from tests and (optionally) from the engine in debug mode.
func (f *Fabric) CheckInvariants() error {
	busy := make([]int16, len(f.Links))
	for i := range f.VCs {
		vc := &f.VCs[i]
		if vc.Occupant == NilMsg {
			if vc.Flits != 0 || vc.HasHeader || vc.HasTail || vc.Next != NilVC {
				return fmt.Errorf("router: free VC %d has residual state %+v", i, *vc)
			}
			if f.occIdx[i] != -1 {
				return fmt.Errorf("router: free VC %d still in occupied list", i)
			}
			if f.Links[f.VCs[i].Link].Kind == DeliveryLink && f.delOccBit(VCID(i)) {
				return fmt.Errorf("router: free VC %d still set in delivery-occupancy bitmap", i)
			}
			continue
		}
		busy[vc.Link]++
		s := f.shardOf[vc.Link]
		idx := f.occIdx[i]
		if idx < 0 || int(idx) >= len(f.occupied[s]) || f.occupied[s][idx] != VCID(i) {
			return fmt.Errorf("router: occupied VC %d not tracked in shard %d (idx %d)", i, s, idx)
		}
		if f.Links[vc.Link].Kind == DeliveryLink && !f.delOccBit(VCID(i)) {
			return fmt.Errorf("router: occupied delivery VC %d not set in shard %d's bitmap", i, s)
		}
		if vc.Flits < 0 || vc.Flits > int32(f.Cfg.BufFlits) {
			return fmt.Errorf("router: VC %d flit count %d out of range", i, vc.Flits)
		}
		if vc.Next != NilVC && f.VCs[vc.Next].Occupant != vc.Occupant {
			return fmt.Errorf("router: VC %d next %d held by different message", i, vc.Next)
		}
	}
	for l := range busy {
		if busy[l] != f.busy[l] {
			return fmt.Errorf("router: link %d busy count %d, recount %d", l, f.busy[l], busy[l])
		}
	}
	delOcc := 0
	for s := range f.delOccBits {
		for _, w := range f.delOccBits[s] {
			delOcc += bits.OnesCount64(w)
		}
	}
	delBusy := 0
	for l := f.delBase; l < f.delBase+f.Topo.Nodes()*f.Cfg.DelPorts; l++ {
		delBusy += int(busy[l])
	}
	if delOcc != delBusy {
		return fmt.Errorf("router: delivery-occupancy bitmaps track %d VCs, recount %d", delOcc, delBusy)
	}
	return nil
}

// delOccBit reports delivery VC vc's bit in its owner shard's bitmap.
func (f *Fabric) delOccBit(vc VCID) bool {
	s := f.shardOf[f.VCs[vc].Link]
	rel := int(vc-f.firstDelVC) - int(f.delLo[s])
	return f.delOccBits[s][rel>>6]&(1<<(rel&63)) != 0
}
