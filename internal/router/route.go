package router

import (
	"wormnet/internal/rng"
	"wormnet/internal/topology"
)

// Candidates appends to buf the feasible output physical channels for a
// message headed to dst whose header sits at router node, and returns the
// extended slice. Under true fully adaptive minimal routing these are the
// network links in every minimal direction, or the delivery ports once the
// message has reached its destination.
func (f *Fabric) Candidates(node, dst int, buf []LinkID) []LinkID {
	if node == dst {
		for p := 0; p < f.Cfg.DelPorts; p++ {
			buf = append(buf, f.DelLink(node, p))
		}
		return buf
	}
	var dirs [16]topology.Direction
	for _, d := range f.Topo.MinimalDirections(node, dst, dirs[:0]) {
		buf = append(buf, f.NetLink(node, d))
	}
	return buf
}

// SelectPolicy chooses among free candidate virtual channels when a header
// routes. The paper does not prescribe a selection function for its true
// fully adaptive router; the policy is configurable so its influence can be
// measured.
type SelectPolicy uint8

// Selection policies.
const (
	// SelectRandom picks uniformly among all free VCs of all feasible
	// output channels. This is the default; it spreads load across virtual
	// channels the way the paper's "all VCs used in the same way"
	// assumption expects.
	SelectRandom SelectPolicy = iota
	// SelectFirst picks the first free VC in candidate order
	// (deterministic; useful in tests and scenario reconstruction).
	SelectFirst
	// SelectLeastBusy picks a free VC on the candidate physical channel
	// with the fewest busy VCs, breaking ties by candidate order.
	SelectLeastBusy
)

// PickVC selects a free virtual channel among the explicit VC candidates
// according to the policy, returning NilVC when all are busy. It is the
// VC-granular variant of PickOutput used by routing algorithms that
// restrict which virtual channels a message may take.
func (f *Fabric) PickVC(cands []VCID, pol SelectPolicy, r *rng.Source) VCID {
	switch pol {
	case SelectFirst:
		for _, vc := range cands {
			if f.VCs[vc].Occupant == NilMsg {
				return vc
			}
		}
		return NilVC

	case SelectLeastBusy:
		best := NilVC
		bestBusy := int(^uint(0) >> 1)
		for _, vc := range cands {
			if f.VCs[vc].Occupant != NilMsg {
				continue
			}
			if busy := f.BusyVCs(f.VCs[vc].Link); busy < bestBusy {
				best, bestBusy = vc, busy
			}
		}
		return best

	default: // SelectRandom
		chosen := NilVC
		count := 0
		for _, vc := range cands {
			if f.VCs[vc].Occupant != NilMsg {
				continue
			}
			count++
			if r == nil {
				if chosen == NilVC {
					chosen = vc
				}
			} else if r.Intn(count) == 0 {
				chosen = vc
			}
		}
		return chosen
	}
}

// PickOutput selects a free virtual channel among the candidate physical
// channels according to the policy. It returns NilVC if every candidate VC
// is busy.
func (f *Fabric) PickOutput(cands []LinkID, pol SelectPolicy, r *rng.Source) VCID {
	switch pol {
	case SelectFirst:
		for _, l := range cands {
			if vc := f.FreeVC(l); vc != NilVC {
				return vc
			}
		}
		return NilVC

	case SelectLeastBusy:
		best := NilVC
		bestBusy := int(^uint(0) >> 1)
		for _, l := range cands {
			vc := f.FreeVC(l)
			if vc == NilVC {
				continue
			}
			if busy := f.BusyVCs(l); busy < bestBusy {
				best, bestBusy = vc, busy
			}
		}
		return best

	default: // SelectRandom
		// Reservoir-sample uniformly over all free VCs.
		chosen := NilVC
		count := 0
		for _, l := range cands {
			link := &f.Links[l]
			for v := VCID(0); v < VCID(link.NumVC); v++ {
				id := link.FirstVC + v
				if f.VCs[id].Occupant != NilMsg {
					continue
				}
				count++
				if r == nil {
					if chosen == NilVC {
						chosen = id
					}
				} else if r.Intn(count) == 0 {
					chosen = id
				}
			}
		}
		return chosen
	}
}
