package router

import (
	"testing"

	"wormnet/internal/rng"
	"wormnet/internal/topology"
)

// TestFabricOperationFuzz drives the fabric with a long random sequence of
// legal operations (allocate worms hop by hop, move flits, feed flits,
// drain heads, kill worms) and checks the structural invariants after
// every step. This is the safety net under the engine: any sequence of
// legal primitive operations must keep the fabric consistent.
func TestFabricOperationFuzz(t *testing.T) {
	f, err := NewFabric(topology.New(4, 2), Config{VCsPerLink: 2, BufFlits: 4, InjPorts: 2, DelPorts: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(20260704)

	type worm struct {
		m *Message
	}
	var worms []worm

	checkEvery := 0
	lastOp := -1
	for step := 0; step < 20000; step++ {
		op := r.Intn(10)
		lastOp = op
		switch {
		case op < 2: // start a new worm at a random injection port
			node := r.Intn(f.Topo.Nodes())
			port := r.Intn(f.Cfg.InjPorts)
			vc := f.FreeVC(f.InjLink(node, port))
			if vc == NilVC {
				continue
			}
			dst := r.Intn(f.Topo.Nodes())
			if dst == node {
				continue
			}
			m := f.NewMessage(node, dst, 1+r.Intn(32), 0)
			m.Phase = PhaseNetwork
			f.Allocate(m, NilVC, vc)
			m.HeadVC = vc
			worms = append(worms, worm{m})

		case op < 4: // extend a random worm's head onto a random free candidate
			if len(worms) == 0 {
				continue
			}
			w := worms[r.Intn(len(worms))]
			if w.m.HeadVC == NilVC {
				continue
			}
			hv := &f.VCs[w.m.HeadVC]
			if hv.Next != NilVC || !hv.HasHeader {
				// Routing only ever happens with the header flit waiting at
				// the front of the chain.
				continue
			}
			if f.Links[hv.Link].Kind == DeliveryLink {
				continue // engine never routes out of a delivery buffer
			}
			node := f.RouterOf(hv.Link)
			cands := f.Candidates(node, int(w.m.Dst), nil)
			out := f.PickOutput(cands, SelectRandom, r)
			if out == NilVC {
				continue
			}
			f.Allocate(w.m, w.m.HeadVC, out)

		case op < 6: // feed a flit into a worm's tail (source injection)
			if len(worms) == 0 {
				continue
			}
			w := worms[r.Intn(len(worms))]
			if w.m.TailVC == NilVC || w.m.Injected >= w.m.Length {
				continue
			}
			// Feeding happens at the backmost VC of the chain only while
			// the worm still starts at its injection VC.
			back := w.m.TailVC
			if f.Links[f.VCs[back].Link].Kind != InjectionLink {
				continue
			}
			bv := &f.VCs[back]
			if bv.Flits >= int32(f.Cfg.BufFlits) {
				continue
			}
			first := w.m.Injected == 0
			bv.Flits++
			w.m.Injected++
			if first {
				bv.HasHeader = true
			}
			if w.m.Injected == w.m.Length {
				bv.HasTail = true
			}

		case op < 8: // move a flit forward somewhere in a random worm
			if len(worms) == 0 {
				continue
			}
			w := worms[r.Intn(len(worms))]
			for vc := w.m.TailVC; vc != NilVC; vc = f.VCs[vc].Next {
				v := &f.VCs[vc]
				if v.Flits > 0 && v.Next != NilVC && f.VCs[v.Next].Flits < int32(f.Cfg.BufFlits) {
					// Capture the successor before MoveFlit: a tail passage
					// releases vc and clears its Next pointer.
					next := v.Next
					header, tail := f.MoveFlit(vc)
					if header {
						w.m.HeadVC = next
					}
					if tail {
						w.m.TailVC = next
					}
					break
				}
			}

		case op < 9: // drain one flit at the head (delivery/absorption)
			if len(worms) == 0 {
				continue
			}
			i := r.Intn(len(worms))
			w := worms[i]
			if w.m.HeadVC == NilVC {
				continue
			}
			hv := &f.VCs[w.m.HeadVC]
			if hv.Flits == 0 || hv.Next != NilVC {
				// Draining (delivery or absorption) only happens at the true
				// front of the chain.
				continue
			}
			tail := hv.HasTail && hv.Flits == 1
			hv.Flits--
			hv.HasHeader = false
			w.m.Consumed++
			if tail {
				f.ReleaseEmptyVC(w.m.HeadVC)
				w.m.HeadVC = NilVC
				w.m.TailVC = NilVC
				f.FreeMessage(w.m)
				worms[i] = worms[len(worms)-1]
				worms = worms[:len(worms)-1]
			}

		default: // kill a random worm outright (regressive recovery)
			if len(worms) == 0 {
				continue
			}
			i := r.Intn(len(worms))
			w := worms[i]
			f.ReleaseWorm(w.m)
			f.FreeMessage(w.m)
			worms[i] = worms[len(worms)-1]
			worms = worms[:len(worms)-1]
		}

		checkEvery++
		if checkEvery == 25 {
			checkEvery = 0
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("step %d (op %d): %v", step, lastOp, err)
			}
		}
	}
	// Final teardown: kill everything; fabric must return to pristine.
	for _, w := range worms {
		f.ReleaseWorm(w.m)
		f.FreeMessage(w.m)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := f.NumOccupied(); got != 0 {
		t.Fatalf("%d VCs still occupied after teardown", got)
	}
	if got := f.NumBusyLinks(); got != 0 {
		t.Fatalf("%d links still busy after teardown", got)
	}
}
