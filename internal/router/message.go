package router

import "fmt"

// MsgPhase tracks where a message is in its lifecycle.
type MsgPhase uint8

// Message lifecycle phases.
const (
	// PhaseQueued: generated, waiting in the source queue for an injection
	// port (possibly held back by the injection-limitation mechanism).
	PhaseQueued MsgPhase = iota
	// PhaseNetwork: occupying fabric resources (being injected, advancing
	// or blocked).
	PhaseNetwork
	// PhaseRecovering: marked as deadlocked; its flits are being absorbed
	// by the recovery mechanism at the node holding its header.
	PhaseRecovering
	// PhaseDelivered: all flits consumed at the destination.
	PhaseDelivered
	// PhaseAborted: killed by regressive recovery; will be re-injected.
	PhaseAborted
)

func (p MsgPhase) String() string {
	switch p {
	case PhaseQueued:
		return "queued"
	case PhaseNetwork:
		return "network"
	case PhaseRecovering:
		return "recovering"
	case PhaseDelivered:
		return "delivered"
	case PhaseAborted:
		return "aborted"
	default:
		return fmt.Sprintf("MsgPhase(%d)", int(p))
	}
}

// Message is one wormhole message. Fields are maintained by the engine and
// read by the detection mechanisms, the recovery engine and the oracle.
type Message struct {
	ID     MsgID
	Src    int32
	Dst    int32
	Length int32 // flits, including header and tail
	Phase  MsgPhase

	// HeadVC is the VC containing the header flit (the worm's front) while
	// the header is in the network; NilVC once the header has been consumed
	// at the destination or by recovery.
	HeadVC VCID
	// TailVC is the backmost VC the worm still occupies; NilVC before the
	// first allocation.
	TailVC VCID

	// Injected counts flits the source has pushed into the injection
	// buffer; Consumed counts flits drained at the destination or absorbed
	// by recovery.
	Injected int32
	Consumed int32

	// InjLink is the injection port the message entered through (NilLink
	// once the tail has left it). Used by the source feed stage.
	InjLink LinkID

	// Timestamps (cycle numbers).
	GenTime     int64 // generation (enqueue at source)
	InjectTime  int64 // first flit entered the injection buffer
	DeliverTime int64 // tail consumed at destination

	// Blocked routing state at the current node.
	//
	// Attempts counts failed routing attempts since the header last
	// advanced; it resets to zero whenever the header moves. The first
	// failed attempt at a node runs the G/P-setting logic of the paper's
	// mechanism; later ones run the DT check.
	Attempts     int32
	BlockedSince int64 // cycle of the first failed attempt at this node

	// LastSourceFlit is the last cycle the source pushed a flit into the
	// injection buffer; used by the compressionless-style crude timeout.
	LastSourceFlit int64

	// Marked is set when a detection mechanism declares the message
	// deadlocked; MarkTime records when. TrueDeadlock records the oracle's
	// verdict at mark time.
	Marked       bool
	MarkTime     int64
	TrueDeadlock bool

	// Retries counts how many times the message was re-injected after
	// recovery (progressive re-injection or regressive abort-and-retry).
	Retries int32
}

// Blocked reports whether the message has a header waiting unsuccessfully
// at some router (at least one failed routing attempt and still in the
// network).
func (m *Message) Blocked() bool {
	return m.Phase == PhaseNetwork && m.Attempts > 0
}

// Remaining returns how many flits have not yet been consumed.
func (m *Message) Remaining() int32 { return m.Length - m.Consumed }

// String summarizes the message for debug output.
func (m *Message) String() string {
	return fmt.Sprintf("msg %d %d->%d len=%d phase=%s head=%d tail=%d inj=%d cons=%d att=%d",
		m.ID, m.Src, m.Dst, m.Length, m.Phase, m.HeadVC, m.TailVC, m.Injected, m.Consumed, m.Attempts)
}
