package deadlock

import (
	"testing"

	"wormnet/internal/router"
	"wormnet/internal/topology"
)

func ringFabric(t *testing.T) *router.Fabric {
	t.Helper()
	f, err := router.NewFabric(topology.New(8, 1),
		router.Config{VCsPerLink: 1, BufFlits: 4, InjPorts: 1, DelPorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// blockAt places a blocked message occupying the single VC of channel l
// (header waiting at the downstream router) with the given destination.
func blockAt(t *testing.T, f *router.Fabric, l router.LinkID, dst int) *router.Message {
	t.Helper()
	m := f.NewMessage(int(f.Links[l].Src), dst, 16, 0)
	m.Phase = router.PhaseNetwork
	m.Attempts = 1
	vc := f.FreeVC(l)
	if vc == router.NilVC {
		t.Fatalf("link %d full", l)
	}
	f.Allocate(m, router.NilVC, vc)
	m.HeadVC = vc
	f.VCs[vc].Flits = 1
	f.VCs[vc].HasHeader = true
	return m
}

func ids(ms ...*router.Message) map[router.MsgID]bool {
	set := map[router.MsgID]bool{}
	for _, m := range ms {
		set[m.ID] = true
	}
	return set
}

func TestEmptyNetworkHasNoDeadlock(t *testing.T) {
	f := ringFabric(t)
	o := New(f)
	if got := o.Deadlocked(); len(got) != 0 {
		t.Fatalf("deadlock in empty network: %v", got)
	}
}

// TestFullRingCycleIsDeadlocked: eight messages each hold channel c(i) and
// need c(i+1): the canonical cycle. All eight are truly deadlocked.
func TestFullRingCycleIsDeadlocked(t *testing.T) {
	f := ringFabric(t)
	o := New(f)
	var ms []*router.Message
	for i := 0; i < 8; i++ {
		// Header at node (i+1)%8, destination 3 hops further clockwise:
		// the only minimal direction is X+ through channel c(i+1).
		ms = append(ms, blockAt(t, f, f.NetLink(i, 0), (i+1+3)%8))
	}
	got := o.Deadlocked()
	if len(got) != 8 {
		t.Fatalf("deadlocked set has %d messages, want 8", len(got))
	}
	want := ids(ms...)
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected member %d", id)
		}
	}
	for _, m := range ms {
		if !o.Contains(m.ID) {
			t.Fatalf("Contains(%d) false", m.ID)
		}
	}
}

// TestChainBehindAdvancingMessageIsNotDeadlocked: the Figure 2
// configuration. A chain of blocked messages whose head channel is held by
// nobody (or by an advancing message) can always drain.
func TestChainBehindAdvancingMessageIsNotDeadlocked(t *testing.T) {
	f := ringFabric(t)
	o := New(f)
	// Messages on c0, c1, c2 each waiting for the next channel; c3 is free.
	for i := 0; i < 3; i++ {
		blockAt(t, f, f.NetLink(i, 0), (i+1+3)%8)
	}
	if got := o.Deadlocked(); len(got) != 0 {
		t.Fatalf("false deadlock: %v", got)
	}
}

// TestChainBehindBusyAdvancingMessage: like Figure 2 with A present: the
// head of the chain waits on a channel held by a message that is NOT
// blocked (A is advancing). Still no deadlock.
func TestChainBehindBusyAdvancingMessage(t *testing.T) {
	f := ringFabric(t)
	o := New(f)
	for i := 0; i < 3; i++ {
		blockAt(t, f, f.NetLink(i, 0), (i+1+3)%8)
	}
	// A holds c3 but is advancing (Attempts == 0): not blocked.
	a := blockAt(t, f, f.NetLink(3, 0), 7)
	a.Attempts = 0
	if got := o.Deadlocked(); len(got) != 0 {
		t.Fatalf("false deadlock behind advancing message: %v", got)
	}
}

// TestEscapeThroughSecondVC: with several virtual channels, a cycle on one
// VC is not a deadlock while another VC of a requested channel is free.
func TestEscapeThroughSecondVC(t *testing.T) {
	f, err := router.NewFabric(topology.New(8, 1),
		router.Config{VCsPerLink: 2, BufFlits: 4, InjPorts: 1, DelPorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := New(f)
	for i := 0; i < 8; i++ {
		blockAt(t, f, f.NetLink(i, 0), (i+1+3)%8)
	}
	// Each channel still has a free VC: everyone can escape.
	if got := o.Deadlocked(); len(got) != 0 {
		t.Fatalf("false deadlock with free VCs: %v", got)
	}
	// Fill the second VC of every channel with blocked messages too: now
	// it is a real deadlock involving all 16.
	for i := 0; i < 8; i++ {
		blockAt(t, f, f.NetLink(i, 0), (i+1+3)%8)
	}
	if got := o.Deadlocked(); len(got) != 16 {
		t.Fatalf("deadlocked set has %d messages, want 16", len(got))
	}
}

// TestVictimRemovalBreaksDeadlock: draining one member (as recovery would)
// leaves the rest escapable.
func TestVictimRemovalBreaksDeadlock(t *testing.T) {
	f := ringFabric(t)
	o := New(f)
	var ms []*router.Message
	for i := 0; i < 8; i++ {
		ms = append(ms, blockAt(t, f, f.NetLink(i, 0), (i+1+3)%8))
	}
	if len(o.Deadlocked()) != 8 {
		t.Fatal("setup: no deadlock")
	}
	// Recovery marks ms[0]: it is draining, no longer blocked. A pure phase
	// change is invisible to the fabric's generation counter, so the owner
	// must invalidate the cached set explicitly (as sim.Engine.mark does).
	ms[0].Phase = router.PhaseRecovering
	o.Invalidate()
	if got := o.Deadlocked(); len(got) != 0 {
		t.Fatalf("deadlock persists after victim marked: %v", got)
	}
}

// TestCachedResultAndGenTracking: the cached set is returned while the
// fabric generation is unchanged, a VC release invalidates it
// automatically, and CrossCheck accepts a correctly maintained cache.
func TestCachedResultAndGenTracking(t *testing.T) {
	f := ringFabric(t)
	o := New(f)
	var ms []*router.Message
	for i := 0; i < 8; i++ {
		ms = append(ms, blockAt(t, f, f.NetLink(i, 0), (i+1+3)%8))
	}
	if len(o.Deadlocked()) != 8 {
		t.Fatal("setup: no deadlock")
	}
	if err := o.CrossCheck(); err != nil {
		t.Fatalf("CrossCheck on fresh cache: %v", err)
	}
	// Unchanged fabric: repeated evaluations answer from the cache.
	if len(o.Deadlocked()) != 8 || len(o.Deadlocked()) != 8 {
		t.Fatal("cached evaluation diverged")
	}
	// Releasing one worm bumps the fabric generation; the next evaluation
	// must recompute without an explicit Invalidate.
	f.ReleaseWorm(ms[0])
	ms[0].Phase = router.PhaseAborted
	if got := o.Deadlocked(); len(got) != 0 {
		t.Fatalf("stale cache survived a VC release: %v", got)
	}
	if err := o.CrossCheck(); err != nil {
		t.Fatalf("CrossCheck after release: %v", err)
	}
}

// TestCrossCheckDetectsMissedInvalidate: a phase mutation hidden from both
// the generation counter and Invalidate makes the cache stale, and
// CrossCheck reports it.
func TestCrossCheckDetectsMissedInvalidate(t *testing.T) {
	f := ringFabric(t)
	o := New(f)
	for i := 0; i < 8; i++ {
		blockAt(t, f, f.NetLink(i, 0), (i+1+3)%8)
	}
	set := o.Deadlocked()
	if len(set) != 8 {
		t.Fatal("setup: no deadlock")
	}
	f.Msg(set[0]).Phase = router.PhaseRecovering // deliberately not reported
	if err := o.CrossCheck(); err == nil {
		t.Fatal("CrossCheck missed a stale cached set")
	}
}

// TestDisjointCycles: two independent deadlocks are both found.
func TestDisjointCycles(t *testing.T) {
	// Two parallel rows of a 4x4 torus, cycling in X.
	f, err := router.NewFabric(topology.New(4, 2),
		router.Config{VCsPerLink: 1, BufFlits: 4, InjPorts: 1, DelPorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	tp := f.Topo
	o := New(f)
	count := 0
	for _, row := range []int{0, 2} {
		for i := 0; i < 4; i++ {
			src := tp.ID([]int{i, row})
			l := f.NetLink(src, 0) // X+ channel
			// Destination one further X+ hop past the header: from header
			// node (i+1, row) the single minimal direction is X+.
			dst := tp.ID([]int{(i + 2) % 4, row})
			_ = dst
			m := f.NewMessage(src, dst, 16, 0)
			m.Phase = router.PhaseNetwork
			m.Attempts = 1
			vc := f.FreeVC(l)
			f.Allocate(m, router.NilVC, vc)
			m.HeadVC = vc
			f.VCs[vc].Flits = 1
			f.VCs[vc].HasHeader = true
			count++
		}
	}
	got := o.Deadlocked()
	if len(got) != count {
		t.Fatalf("deadlocked %d messages, want %d", len(got), count)
	}
}

// TestSoundness: every member of the reported set is blocked and all its
// candidate VCs are held by other members (the defining property).
func TestSoundness(t *testing.T) {
	f := ringFabric(t)
	o := New(f)
	for i := 0; i < 8; i++ {
		blockAt(t, f, f.NetLink(i, 0), (i+1+3)%8)
	}
	set := o.Deadlocked()
	member := map[router.MsgID]bool{}
	for _, id := range set {
		member[id] = true
	}
	for _, id := range set {
		m := f.Msg(id)
		node := f.RouterOf(f.LinkOfVC(m.HeadVC))
		for _, l := range f.Candidates(node, int(m.Dst), nil) {
			link := &f.Links[l]
			for v := int32(0); v < link.NumVC; v++ {
				occ := f.VCs[link.FirstVC+router.VCID(v)].Occupant
				if occ == router.NilMsg || !member[occ] {
					t.Fatalf("member %d has an escape through link %d", id, l)
				}
			}
		}
	}
}
