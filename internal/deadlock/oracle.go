// Package deadlock provides a global, omniscient deadlock oracle for the
// simulator. The distributed mechanisms in internal/detect only see local
// router state; the oracle sees the whole network and computes the set of
// messages that are *truly* deadlocked, so that every detection can be
// classified as true or false, and the actual frequency of deadlock (the
// paper's "(*)" table annotations) can be measured.
//
// Definition. Under fully adaptive routing a blocked message escapes if
// ANY of its feasible output virtual channels becomes available (OR
// semantics). A set S of blocked messages is deadlocked iff it is
// non-empty and, for every message in S, every feasible output virtual
// channel is occupied by a message that is itself in S. The largest such
// set is the greatest fixpoint of the "cannot escape" operator and is
// computed by iteratively discarding messages with any escape route:
// a free candidate VC, or a candidate VC held by a message that is
// advancing, draining (recovering/delivering) or already discarded.
//
// The oracle runs on the hot path of every marked message, so the kernel is
// allocation-free: set membership is tracked in an epoch-stamped flat array
// indexed by MsgID (bumping the epoch clears the set in O(1)), and the
// result is cached until the owner reports a fabric change through
// Invalidate. On a quiescent fabric — no flit transmitted, no virtual
// channel freed or allocated, no message newly blocked, marked or killed —
// the blocked set and the occupancy relation are both unchanged, so the
// greatest fixpoint provably cannot shrink or grow; CrossCheck asserts this
// invariant against a full recomputation in debug mode.
package deadlock

import (
	"fmt"

	"wormnet/internal/router"
)

// CandidateFunc enumerates the virtual channels a blocked message may
// request at the given router, mirroring the active routing algorithm.
type CandidateFunc func(m *router.Message, node int, buf []router.VCID) []router.VCID

// Oracle computes truly deadlocked message sets over one fabric. It keeps
// scratch buffers so repeated calls do not allocate, and caches the most
// recent result until Invalidate is called.
type Oracle struct {
	f     *router.Fabric
	cands CandidateFunc

	// Epoch-stamped membership: stamp[id] == epoch means message id is in
	// the current deadlocked candidate set. Bumping epoch empties the set
	// without touching the array.
	epoch uint64
	stamp []uint64

	blocked  []router.MsgID
	checkBuf []router.MsgID // CrossCheck's copy of the cached set
	vcBuf    []router.VCID
	linkBuf  []router.LinkID

	// valid marks blocked/stamp as current with respect to the fabric; it
	// is cleared by Invalidate and set by Deadlocked. seenGen records the
	// fabric's structural generation at the last recomputation, so any VC
	// allocation/release or link failure/repair invalidates the cache
	// automatically; Invalidate covers the remaining inputs the generation
	// counter cannot see (message phase and attempt-count changes).
	valid   bool
	seenGen uint64
}

// New returns an Oracle over fabric f using true fully adaptive candidates
// (every VC of every minimal physical channel); SetCandidates overrides
// this for other routing algorithms.
func New(f *router.Fabric) *Oracle {
	return &Oracle{f: f}
}

// SetCandidates installs the routing algorithm's candidate function.
func (o *Oracle) SetCandidates(fn CandidateFunc) { o.cands = fn }

// Invalidate marks the cached deadlocked set stale. Virtual-channel
// allocations/releases and link failures/repairs are tracked automatically
// through the fabric's structural generation counter; the owner must call
// Invalidate only for input changes invisible to that counter — a message
// failing its first routing attempt (Attempts 0 -> 1) or changing phase
// without releasing a VC (a progressive-recovery mark, a header consumed at
// a delivery port).
func (o *Oracle) Invalidate() { o.valid = false }

// Deadlocked returns the IDs of all messages involved in a true deadlock,
// in ascending order of discovery. While the fabric is unchanged since the
// last evaluation — same structural generation and no Invalidate call — the
// cached set is returned without recomputation. The result slice is reused
// across calls; callers that retain it must copy.
func (o *Oracle) Deadlocked() []router.MsgID {
	if !o.valid || o.seenGen != o.f.Gen() {
		o.recompute()
		o.valid = true
	}
	return o.blocked
}

// recompute runs the greatest-fixpoint kernel from scratch.
func (o *Oracle) recompute() {
	f := o.f
	o.epoch++
	o.seenGen = f.Gen()
	// Seed: every blocked message (header waiting, at least one failed
	// routing attempt, not being drained by recovery).
	o.blocked = o.blocked[:0]
	f.LiveMessages(func(m *router.Message) {
		if m.Phase == router.PhaseNetwork && m.Attempts > 0 &&
			m.HeadVC != router.NilVC && f.HeaderBlocked(m.HeadVC) {
			o.blocked = append(o.blocked, m.ID)
			o.add(m.ID)
		}
	})
	if len(o.blocked) == 0 {
		return
	}

	// Greatest fixpoint: repeatedly remove messages with an escape.
	for changed := true; changed; {
		changed = false
		kept := o.blocked[:0]
		for _, id := range o.blocked {
			if o.canEscape(f.Msg(id)) {
				o.remove(id)
				changed = true
				continue
			}
			kept = append(kept, id)
		}
		o.blocked = kept
	}
}

// add stamps id as a member of the current set, growing the stamp array to
// cover the message pool when needed.
func (o *Oracle) add(id router.MsgID) {
	if int(id) >= len(o.stamp) {
		grown := make([]uint64, 2*int(id)+8)
		copy(grown, o.stamp)
		o.stamp = grown
	}
	o.stamp[id] = o.epoch
}

// remove unstamps id. Epochs start at 1, so zero never matches.
func (o *Oracle) remove(id router.MsgID) { o.stamp[id] = 0 }

// inSet reports membership in the current set.
func (o *Oracle) inSet(id router.MsgID) bool {
	return int(id) < len(o.stamp) && o.stamp[id] == o.epoch
}

// canEscape reports whether message m has at least one feasible output
// virtual channel that is free or held by a message outside the current
// candidate set.
func (o *Oracle) canEscape(m *router.Message) bool {
	f := o.f
	node := f.RouterOf(f.LinkOfVC(m.HeadVC))
	if o.cands != nil {
		o.vcBuf = o.cands(m, node, o.vcBuf[:0])
		for _, vc := range o.vcBuf {
			occ := f.VCs[vc].Occupant
			if occ == router.NilMsg || !o.inSet(occ) {
				return true
			}
		}
		return false
	}
	o.linkBuf = f.Candidates(node, int(m.Dst), o.linkBuf[:0])
	for _, l := range o.linkBuf {
		link := &f.Links[l]
		for v := int32(0); v < link.NumVC; v++ {
			occ := f.VCs[link.FirstVC+router.VCID(v)].Occupant
			if occ == router.NilMsg || !o.inSet(occ) {
				return true
			}
		}
	}
	return false
}

// Contains reports whether id was in the set produced by the most recent
// Deadlocked call.
func (o *Oracle) Contains(id router.MsgID) bool { return o.inSet(id) }

// CrossCheck verifies the cached deadlocked set against a full
// recomputation. It is the debug-mode assertion of the dirty-tracking
// invariant: if the owner reported every relevant fabric change through
// Invalidate, a cached set must be exactly what a fresh evaluation yields.
// It is a no-op when no cached set exists, and leaves the oracle holding
// the (identical) freshly computed set.
func (o *Oracle) CrossCheck() error {
	if !o.valid {
		return nil
	}
	o.checkBuf = append(o.checkBuf[:0], o.blocked...)
	o.recompute()
	if len(o.blocked) != len(o.checkBuf) {
		return fmt.Errorf("deadlock: cached set has %d members, recomputation %d (missed Invalidate)",
			len(o.checkBuf), len(o.blocked))
	}
	for i, id := range o.blocked {
		if o.checkBuf[i] != id {
			return fmt.Errorf("deadlock: cached set diverges at index %d: cached %d, recomputed %d (missed Invalidate)",
				i, o.checkBuf[i], id)
		}
	}
	return nil
}
