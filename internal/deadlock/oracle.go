// Package deadlock provides a global, omniscient deadlock oracle for the
// simulator. The distributed mechanisms in internal/detect only see local
// router state; the oracle sees the whole network and computes the set of
// messages that are *truly* deadlocked, so that every detection can be
// classified as true or false, and the actual frequency of deadlock (the
// paper's "(*)" table annotations) can be measured.
//
// Definition. Under fully adaptive routing a blocked message escapes if
// ANY of its feasible output virtual channels becomes available (OR
// semantics). A set S of blocked messages is deadlocked iff it is
// non-empty and, for every message in S, every feasible output virtual
// channel is occupied by a message that is itself in S. The largest such
// set is the greatest fixpoint of the "cannot escape" operator and is
// computed by iteratively discarding messages with any escape route:
// a free candidate VC, or a candidate VC held by a message that is
// advancing, draining (recovering/delivering) or already discarded.
package deadlock

import (
	"wormnet/internal/router"
)

// CandidateFunc enumerates the virtual channels a blocked message may
// request at the given router, mirroring the active routing algorithm.
type CandidateFunc func(m *router.Message, node int, buf []router.VCID) []router.VCID

// Oracle computes truly deadlocked message sets over one fabric. It keeps
// scratch buffers so repeated calls do not allocate.
type Oracle struct {
	f       *router.Fabric
	cands   CandidateFunc
	inSet   map[router.MsgID]bool
	blocked []router.MsgID
	vcBuf   []router.VCID
	linkBuf []router.LinkID
}

// New returns an Oracle over fabric f using true fully adaptive candidates
// (every VC of every minimal physical channel); SetCandidates overrides
// this for other routing algorithms.
func New(f *router.Fabric) *Oracle {
	return &Oracle{f: f, inSet: make(map[router.MsgID]bool)}
}

// SetCandidates installs the routing algorithm's candidate function.
func (o *Oracle) SetCandidates(fn CandidateFunc) { o.cands = fn }

// Deadlocked returns the IDs of all messages involved in a true deadlock,
// in ascending order of discovery. The result slice is reused across calls;
// callers that retain it must copy.
func (o *Oracle) Deadlocked() []router.MsgID {
	f := o.f
	// Seed: every blocked message (header waiting, at least one failed
	// routing attempt, not being drained by recovery).
	o.blocked = o.blocked[:0]
	for id := range o.inSet {
		delete(o.inSet, id)
	}
	f.LiveMessages(func(m *router.Message) {
		if m.Phase == router.PhaseNetwork && m.Attempts > 0 &&
			m.HeadVC != router.NilVC && f.HeaderBlocked(m.HeadVC) {
			o.blocked = append(o.blocked, m.ID)
			o.inSet[m.ID] = true
		}
	})
	if len(o.blocked) == 0 {
		return o.blocked
	}

	// Greatest fixpoint: repeatedly remove messages with an escape.
	for changed := true; changed; {
		changed = false
		kept := o.blocked[:0]
		for _, id := range o.blocked {
			if !o.inSet[id] {
				continue
			}
			if o.canEscape(f.Msg(id)) {
				delete(o.inSet, id)
				changed = true
				continue
			}
			kept = append(kept, id)
		}
		o.blocked = kept
	}
	return o.blocked
}

// canEscape reports whether message m has at least one feasible output
// virtual channel that is free or held by a message outside the current
// candidate set.
func (o *Oracle) canEscape(m *router.Message) bool {
	f := o.f
	node := f.RouterOf(f.LinkOfVC(m.HeadVC))
	if o.cands != nil {
		o.vcBuf = o.cands(m, node, o.vcBuf[:0])
		for _, vc := range o.vcBuf {
			occ := f.VCs[vc].Occupant
			if occ == router.NilMsg || !o.inSet[occ] {
				return true
			}
		}
		return false
	}
	o.linkBuf = f.Candidates(node, int(m.Dst), o.linkBuf[:0])
	for _, l := range o.linkBuf {
		link := &f.Links[l]
		for v := int32(0); v < link.NumVC; v++ {
			occ := f.VCs[link.FirstVC+router.VCID(v)].Occupant
			if occ == router.NilMsg || !o.inSet[occ] {
				return true
			}
		}
	}
	return false
}

// Contains reports whether id was in the set produced by the most recent
// Deadlocked call.
func (o *Oracle) Contains(id router.MsgID) bool { return o.inSet[id] }
