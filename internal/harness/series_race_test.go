package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"wormnet/internal/metrics"
)

// TestSeriesSweepRace is the worker-pool regression test for per-run metrics
// collectors, mirroring TestTracedSweepRace: Point.Config is shared across
// replicates, so a single shared collector would race (its sampler ring and
// scratch are single-owner) the moment two replicates of a point run
// concurrently. Under `go test -race` this sweep fails loudly if the harness
// ever reintroduces collector sharing; without -race it still verifies that
// every run dumped a decodable series, that the sweep aggregate merged every
// run's registry, and that metering never perturbs results: the metered
// concurrent sweep must be bit-identical to a serial unmetered one.
func TestSeriesSweepRace(t *testing.T) {
	points := tracedSweepPoints()
	dir := t.TempDir()
	const replicates = 4
	metered, err := Run(points, Options{
		Workers:    4,
		Replicates: replicates,
		BaseSeed:   7,
		Observe:    Observe{SeriesDir: dir, SeriesWindow: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range metered {
		if !pr.OK() {
			t.Fatalf("point %d failed: %s", pr.Index, pr.Err())
		}
	}

	// Every completed run left a decodable per-run series with monotonically
	// increasing sample cycles and live occupancy (the sweep saturates, so a
	// series of all-zero gauges would mean the prober is disconnected).
	files, err := filepath.Glob(filepath.Join(dir, "p*-r*-*.series.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if want := len(points) * replicates; len(files) != want {
		t.Fatalf("got %d series files, want %d (one per run)", len(files), want)
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := metrics.DecodeSeries(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(samples) == 0 {
			t.Fatalf("%s: empty series", name)
		}
		busy := false
		for i, s := range samples {
			if i > 0 && s.Cycle <= samples[i-1].Cycle {
				t.Fatalf("%s: sample %d cycle %d not after %d", name, i, s.Cycle, samples[i-1].Cycle)
			}
			if s.BusyVCs > 0 {
				busy = true
			}
		}
		if !busy {
			t.Errorf("%s: no sample saw a busy VC in a saturated sweep", name)
		}
	}

	// The aggregate registry merged every run: its cycle counter is the sum
	// of all runs' cycles, which is at least Measure per run.
	agg, err := os.ReadFile(filepath.Join(dir, "aggregate.prom"))
	if err != nil {
		t.Fatal(err)
	}
	cycles := int64(-1)
	for _, line := range strings.Split(string(agg), "\n") {
		if v, ok := strings.CutPrefix(line, "wormnet_cycles_total "); ok {
			if cycles, err = strconv.ParseInt(strings.TrimSpace(v), 10, 64); err != nil {
				t.Fatalf("aggregate.prom: %v", err)
			}
		}
	}
	if min := int64(len(points) * replicates * 800); cycles < min {
		t.Fatalf("aggregate wormnet_cycles_total = %d, want >= %d (sum over all runs)", cycles, min)
	}

	// Metering is pure observation: a serial unmetered sweep of the same
	// spec must produce bit-identical results.
	plain, err := Run(tracedSweepPoints(), Options{Workers: 1, Replicates: replicates, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(metered)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("metered concurrent sweep and unmetered serial sweep disagree")
	}
}
