package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wormnet/internal/forensics"
	"wormnet/internal/metrics"
	"wormnet/internal/sim"
	"wormnet/internal/trace"
)

// Observe bundles the per-run observation options shared by every sweep
// CLI (cmd/loadsweep, cmd/compare, cmd/tables): flight-recorder trace
// dumps and metrics time-series dumps. Embedding it in Options (and in
// exp.Options) replaces the flag definitions, validation and per-run
// recorder construction that used to be copied across the commands.
//
// Both observers are pure: attaching them never changes simulation output
// (CI holds a fixed-seed sweep to byte-identity with them on and off).
// Output directories are created on demand, including missing parents.
type Observe struct {
	// TraceDir, when non-empty, attaches a distinct flight recorder to
	// every run (recorders are single-owner, so sharing one across the
	// worker pool would race) and dumps its ring to
	// TraceDir/p<point>-r<rep>-<key>.jsonl for each run that failed or
	// recorded a detection verdict. Healthy, detection-free runs leave no
	// file.
	TraceDir string
	// TraceLast bounds each run's ring to the most recent TraceLast events
	// (trace.DefaultCapacity when <= 0).
	TraceLast int
	// SeriesDir, when non-empty, attaches a distinct metrics collector to
	// every run (collectors are single-run) and dumps its sampled time
	// series to SeriesDir/p<point>-r<rep>-<key>.series.jsonl for each run
	// that completed. The per-run registries of the runs executed in this
	// invocation (journal-loaded runs carry no collector) are merged into
	// SeriesDir/aggregate.prom in the Prometheus text format.
	SeriesDir string
	// SeriesWindow is the sampling window in cycles
	// (metrics.DefaultWindow when <= 0).
	SeriesWindow int64
	// SeriesRing bounds each run's sample ring (metrics.DefaultRing
	// when <= 0).
	SeriesRing int
	// ForensicsDir, when non-empty, attaches an episode correlator to every
	// run (as an observer on a per-run flight recorder, attached implicitly
	// if TraceDir is off) and dumps the per-episode incident report to
	// ForensicsDir/p<point>-r<rep>-<key>.incidents.jsonl for each run that
	// failed or reconstructed at least one episode. Clean runs leave no
	// file.
	ForensicsDir string
}

// AddFlags registers the standard observation flags (-trace-dir,
// -trace-last, -series-dir, -series-window) on fs, populating o.
func (o *Observe) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.TraceDir, "trace-dir", "",
		"dump per-run flight-recorder traces for failed/detecting runs into this directory")
	fs.IntVar(&o.TraceLast, "trace-last", 0,
		"per-run flight-recorder ring capacity (default 4096; requires -trace-dir)")
	fs.StringVar(&o.SeriesDir, "series-dir", "",
		"dump per-run metrics time series and a sweep-aggregate registry into this directory")
	fs.Int64Var(&o.SeriesWindow, "series-window", 0,
		"metrics sampling window in cycles (default 256; requires -series-dir)")
	fs.StringVar(&o.ForensicsDir, "forensics-dir", "",
		"dump per-run deadlock incident reports for failed/episode-bearing runs into this directory")
}

// Validate rejects option combinations AddFlags can produce that make no
// sense on their own.
func (o *Observe) Validate() error {
	if o.TraceLast != 0 && o.TraceDir == "" {
		return fmt.Errorf("-trace-last requires -trace-dir")
	}
	if o.SeriesWindow != 0 && o.SeriesDir == "" {
		return fmt.Errorf("-series-window requires -series-dir")
	}
	return nil
}

// WithSuffix returns a copy with suffix appended to each configured output
// directory, so commands that run several sweeps (compare's -pdm/-ndm
// tables, tables' per-table runs) keep their dumps apart.
func (o Observe) WithSuffix(suffix string) Observe {
	if o.TraceDir != "" {
		o.TraceDir += suffix
	}
	if o.SeriesDir != "" {
		o.SeriesDir += suffix
	}
	if o.ForensicsDir != "" {
		o.ForensicsDir += suffix
	}
	return o
}

// prepare creates the configured output directories (and missing parents).
func (o *Observe) prepare() error {
	for _, dir := range []string{o.TraceDir, o.SeriesDir, o.ForensicsDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("harness: observation dir: %w", err)
		}
	}
	return nil
}

// attach builds this run's observers and wires them into cfg. Each run gets
// its own recorder and collector: Point.Config is shared across replicates
// and both observers are single-owner.
func (o *Observe) attach(cfg *sim.Config) (*trace.Recorder, *metrics.Collector, *forensics.Correlator) {
	var rec *trace.Recorder
	if o.TraceDir != "" {
		rec = trace.NewRecorder(o.TraceLast)
		cfg.Trace = rec
	}
	var mc *metrics.Collector
	if o.SeriesDir != "" {
		mc = metrics.NewCollector(metrics.Options{Window: o.SeriesWindow, Ring: o.SeriesRing})
		cfg.Metrics = mc
	}
	var fc *forensics.Correlator
	if o.ForensicsDir != "" {
		if rec == nil {
			// The correlator observes the trace stream; give it a ring-only
			// recorder when trace dumps themselves are off.
			rec = trace.NewRecorder(o.TraceLast)
			cfg.Trace = rec
		}
		fc = forensics.New(forensics.Options{Metrics: mc})
		rec.SetObserver(fc.Observe)
	}
	return rec, mc, fc
}

// dumpSeries writes one completed run's sampled time series to its per-run
// file.
func dumpSeries(dir string, point, rep int, key string, mc *metrics.Collector) error {
	name := fmt.Sprintf("p%03d-r%d-%s.series.jsonl", point, rep, sanitizeKey(key))
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	err = mc.WriteSeriesJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// dumpForensics writes one run's incident report to its per-run file.
func dumpForensics(dir string, point, rep int, key string, fc *forensics.Correlator) error {
	name := fmt.Sprintf("p%03d-r%d-%s.incidents.jsonl", point, rep, sanitizeKey(key))
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	err = fc.WriteReport(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeAggregate writes the sweep's merged registry in the Prometheus text
// format.
func writeAggregate(dir string, agg *metrics.Registry) error {
	f, err := os.Create(filepath.Join(dir, "aggregate.prom"))
	if err != nil {
		return err
	}
	err = agg.WritePrometheus(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
