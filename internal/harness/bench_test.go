package harness

import (
	"fmt"
	"testing"

	"wormnet/internal/sim"
)

// benchGrid is a 12-point load sweep on a 16-node torus, sized so one
// iteration is a realistic mini-experiment rather than a trivial stub.
func benchGrid() []Point {
	pts := make([]Point, 12)
	for i := range pts {
		cfg := sim.DefaultConfig()
		cfg.K, cfg.N = 4, 2
		cfg.Load = 0.1 + 0.05*float64(i)
		cfg.Warmup, cfg.Measure = 200, 1000
		pts[i] = Point{Key: fmt.Sprintf("load=%.2f", cfg.Load), Config: cfg}
	}
	return pts
}

func benchSweep(b *testing.B, workers int) {
	pts := benchGrid()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(pts, Options{Workers: workers, BaseSeed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !res[0].OK() {
			b.Fatal(res[0].Err())
		}
	}
}

// BenchmarkSweepSerial and BenchmarkSweep4Workers measure the wall-clock
// win of the worker pool on the same 12-point grid; the ratio is the
// sweep-level speedup (compare with `go test -bench Sweep -cpu 4`).
func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweep2Workers(b *testing.B) { benchSweep(b, 2) }
func BenchmarkSweep4Workers(b *testing.B) { benchSweep(b, 4) }
