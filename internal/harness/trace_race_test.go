package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/router"
	"wormnet/internal/sim"
	"wormnet/internal/trace"
)

// tracedSweepPoints builds a small deadlock-prone sweep: single-VC fully
// adaptive routing past saturation marks messages within a few hundred
// cycles, so every run has a detection verdict to dump.
func tracedSweepPoints() []Point {
	points := make([]Point, 3)
	for i := range points {
		cfg := sim.DefaultConfig()
		cfg.K, cfg.N = 3, 2
		cfg.Router.VCsPerLink = 1
		cfg.Load = 1.5 + 0.5*float64(i)
		cfg.InjectionLimit = -1
		cfg.Warmup = 0
		cfg.Measure = 800
		cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 8) }
		points[i] = Point{Key: "traced", Config: cfg}
	}
	return points
}

// TestTracedSweepRace is the worker-pool regression test for per-run flight
// recorders: Point.Config is shared across replicates, so a single shared
// recorder would race (and corrupt its ring) the moment two replicates of a
// point run concurrently. Under `go test -race` this sweep fails loudly if
// the harness ever reintroduces recorder sharing; without -race it still
// verifies that concurrent traced runs produce decodable per-run dumps and
// results identical to an untraced serial sweep.
func TestTracedSweepRace(t *testing.T) {
	points := tracedSweepPoints()
	dir := t.TempDir()
	traced, err := Run(points, Options{
		Workers:    4,
		Replicates: 4,
		BaseSeed:   7,
		Observe:    Observe{TraceDir: dir, TraceLast: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range traced {
		if !pr.OK() {
			t.Fatalf("point %d failed: %s", pr.Index, pr.Err())
		}
	}

	// Every run that recorded a detection left a decodable per-run dump.
	files, err := filepath.Glob(filepath.Join(dir, "p*-r*-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("saturated sweep dumped no traces; detections were expected")
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		events, err := trace.Decode(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		found := false
		for _, ev := range events {
			if ev.Kind == trace.KindDetect {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: dumped without a detection event", name)
		}
	}

	// Tracing is pure observation: a serial untraced sweep of the same spec
	// must produce bit-identical results.
	plain, err := Run(tracedSweepPoints(), Options{Workers: 1, Replicates: 4, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(traced)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("traced concurrent sweep and untraced serial sweep disagree")
	}
}
