package harness

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// progress renders throttled one-line status reports: points and runs
// completed, an ETA extrapolated from the runs finished this session, and
// worker utilization. All output goes to the writer handed to Options
// (stderr in the CLIs), never stdout, so sweep output stays clean.
type progress struct {
	w           io.Writer
	start       time.Time
	last        time.Time
	every       time.Duration
	totalPoints int
	totalRuns   int
	sessionRuns int // runs to execute this session (excludes resumed ones)
	width       int
	wrote       bool
}

func newProgress(w io.Writer, totalPoints, totalRuns, sessionRuns int) *progress {
	return &progress{
		w:           w,
		start:       time.Now(),
		every:       200 * time.Millisecond,
		totalPoints: totalPoints,
		totalRuns:   totalRuns,
		sessionRuns: sessionRuns,
	}
}

// report emits a status line when forced or when the throttle interval has
// elapsed. sessionDone counts runs finished this session, the basis of the
// ETA; busy is the number of workers executing right now.
func (p *progress) report(pointsDone, runsDone, sessionDone, busy int, force bool) {
	if p.w == nil {
		return
	}
	now := time.Now()
	if !force && now.Sub(p.last) < p.every {
		return
	}
	p.last = now

	eta := "--"
	if sessionDone > 0 && sessionDone < p.sessionRuns {
		perRun := now.Sub(p.start) / time.Duration(sessionDone)
		eta = (perRun * time.Duration(p.sessionRuns-sessionDone)).Round(time.Second).String()
	}
	line := fmt.Sprintf("harness: %d/%d points | %d/%d runs | eta %s | workers %d busy",
		pointsDone, p.totalPoints, runsDone, p.totalRuns, eta, busy)
	// Pad to cover the previous line when rewriting in place.
	pad := ""
	if n := p.width - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	p.width = len(line)
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.wrote = true
}

// finish terminates the in-place status line.
func (p *progress) finish() {
	if p.w == nil || !p.wrote {
		return
	}
	fmt.Fprintln(p.w)
}
