package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"wormnet/internal/sim"
)

const (
	journalMagic   = "wormnet-harness"
	journalVersion = 1
)

// header is the first line of a journal: enough of the sweep spec to refuse
// resuming against a different sweep.
type header struct {
	Journal    string `json:"journal"`
	Version    int    `json:"version"`
	Points     int    `json:"points"`
	Replicates int    `json:"replicates"`
	BaseSeed   uint64 `json:"baseSeed"`
}

// record is one completed run: either Result or Error is set.
type record struct {
	Point  int         `json:"point"`
	Rep    int         `json:"rep"`
	Key    string      `json:"key"`
	Seed   uint64      `json:"seed"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// readJournal loads the journal at path and validates it against the
// expected header. A missing file yields no records and no error (a fresh
// sweep). A truncated final line — the signature of a killed process — is
// dropped; corruption anywhere else is an error. validLen is the byte
// length of the well-formed prefix: resuming truncates the file there
// before appending, so a dropped partial tail cannot corrupt new records.
func readJournal(path string, want header) (recs []record, validLen int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<20)
	lineNo := 0
	for {
		line, rerr := r.ReadBytes('\n')
		if len(line) > 0 {
			if rerr != nil {
				// The writer emits each line (payload + newline) in one
				// write, so a line without its newline is a torn tail from
				// an interrupted process: drop it.
				return recs, validLen, nil
			}
			lineNo++
			if lineNo == 1 {
				var got header
				if uerr := json.Unmarshal(line, &got); uerr != nil || got.Journal != journalMagic {
					return nil, 0, fmt.Errorf("harness: %s is not a harness journal", path)
				}
				if got.Version != want.Version {
					return nil, 0, fmt.Errorf("harness: journal %s has version %d, want %d", path, got.Version, want.Version)
				}
				if got.Points != want.Points || got.Replicates != want.Replicates || got.BaseSeed != want.BaseSeed {
					return nil, 0, fmt.Errorf("harness: journal %s records a %d-point x%d sweep with seed %d; this sweep is %d-point x%d with seed %d",
						path, got.Points, got.Replicates, got.BaseSeed, want.Points, want.Replicates, want.BaseSeed)
				}
			} else {
				var rec record
				if uerr := json.Unmarshal(line, &rec); uerr != nil {
					return nil, 0, fmt.Errorf("harness: journal %s line %d: %v", path, lineNo, uerr)
				}
				recs = append(recs, rec)
			}
			validLen += int64(len(line))
		}
		if rerr == io.EOF {
			return recs, validLen, nil
		}
		if rerr != nil {
			return nil, 0, rerr
		}
	}
}

// journalWriter appends records as one JSON line each, flushed per record so
// a kill loses at most the run in flight.
type journalWriter struct {
	f  *os.File
	bw *bufio.Writer
}

// openJournal opens path for appending. When resume is false (or the file
// was missing/empty) the journal is recreated with a fresh header; when
// resuming, the file is first truncated to validLen so a torn tail from the
// interrupted process cannot run into newly appended records.
func openJournal(path string, resume bool, validLen int64, hdr header) (*journalWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: open journal: %w", err)
	}
	if resume {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("harness: truncate journal tail: %w", err)
		}
		if _, err := f.Seek(validLen, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("harness: seek journal: %w", err)
		}
	}
	w := &journalWriter{f: f, bw: bufio.NewWriter(f)}
	if !resume {
		if err := w.writeLine(hdr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

func (w *journalWriter) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: encode journal line: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.bw.Write(data); err != nil {
		return fmt.Errorf("harness: write journal: %w", err)
	}
	return w.bw.Flush()
}

func (w *journalWriter) append(rec record) error { return w.writeLine(rec) }

func (w *journalWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
