package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"wormnet/internal/sim"
)

// tinyConfig is a fast 9-node simulation used as the unit of sweep work.
func tinyConfig(load float64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.K, cfg.N = 3, 2
	cfg.Load = load
	cfg.Warmup, cfg.Measure = 100, 400
	return cfg
}

// grid builds n points with distinct loads and keys.
func grid(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		load := 0.05 + 0.03*float64(i)
		pts[i] = Point{Key: fmt.Sprintf("load=%.2f", load), Config: tinyConfig(load)}
	}
	return pts
}

// marshal serializes results for bit-exact comparison.
func marshal(t *testing.T, res []PointResult) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSweepWithPanicOnFourWorkers(t *testing.T) {
	// A 16-point sweep on 4 workers; point 5 deliberately panics. The
	// acceptance criterion for the harness: the panic is recorded as that
	// point's failure and every other point still completes. Run under
	// `go test -race` this also exercises the pool for data races.
	pts := grid(16)
	pts[5].Key = "boom"
	res, err := Run(pts, Options{
		Workers: 4,
		Run: func(key string, cfg sim.Config) (*sim.Result, error) {
			if key == "boom" {
				panic("deliberate divergence")
			}
			return sim.Run(cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 16 {
		t.Fatalf("%d results, want 16", len(res))
	}
	for i, pr := range res {
		if i == 5 {
			if pr.OK() {
				t.Fatal("panicking point reported OK")
			}
			if !strings.Contains(pr.Err(), "deliberate divergence") {
				t.Errorf("panic message lost: %q", pr.Err())
			}
			if pr.Runs[0] != nil {
				t.Error("failed replicate has a result")
			}
			continue
		}
		if !pr.OK() {
			t.Errorf("point %d failed: %s", i, pr.Err())
		}
		if pr.Runs[0] == nil || pr.Runs[0].Delivered == 0 {
			t.Errorf("point %d delivered nothing", i)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	pts := grid(8)
	serial, err := Run(pts, Options{Workers: 1, Replicates: 2, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(pts, Options{Workers: 8, Replicates: 2, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, b := marshal(t, serial), marshal(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatal("1-worker and 8-worker sweeps differ")
	}
	// Replicates with different derived seeds are distinct runs.
	r0 := serial[0]
	if r0.Runs[0].Delivered == r0.Runs[1].Delivered &&
		r0.Runs[0].LatencySum == r0.Runs[1].LatencySum {
		t.Error("replicates look identical; seed derivation suspect")
	}
	// Aggregation helpers are deterministic and sane.
	m := r0.Metric(func(r *sim.Result) float64 { return float64(r.Delivered) })
	if m.N != 2 || m.Mean <= 0 {
		t.Errorf("metric summary %+v", m)
	}
	if r0.MergedLatency().Count() !=
		r0.Runs[0].LatencyHist.Count()+r0.Runs[1].LatencyHist.Count() {
		t.Error("merged latency histogram lost samples")
	}
}

func TestDifferentBaseSeedDiffers(t *testing.T) {
	pts := grid(2)
	a, err := Run(pts, Options{BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pts, Options{BaseSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(marshal(t, a), marshal(t, b)) {
		t.Fatal("different base seeds produced identical sweeps")
	}
}

func TestJournalAndResume(t *testing.T) {
	pts := grid(6)
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	opts := Options{Workers: 3, Replicates: 2, BaseSeed: 3, Journal: path}

	full, err := Run(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, full)

	// Simulate a kill: keep the header and the first 5 completed runs, plus
	// a truncated half-written record at the tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 7 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	cut := bytes.Join(lines[:6], nil)
	cut = append(cut, []byte(`{"point":3,"rep":1,"ke`)...) // partial tail, no newline
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: only the missing runs execute, and the aggregate matches the
	// uninterrupted sweep bit for bit.
	var executed atomic.Int32
	resumeOpts := opts
	resumeOpts.Resume = true
	resumeOpts.Run = func(_ string, cfg sim.Config) (*sim.Result, error) {
		executed.Add(1)
		return sim.Run(cfg)
	}
	resumed, err := Run(pts, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(executed.Load()); got != 12-5 {
		t.Errorf("resume executed %d runs, want %d", got, 12-5)
	}
	if !bytes.Equal(marshal(t, resumed), want) {
		t.Fatal("resumed sweep differs from uninterrupted sweep")
	}

	// The journal is now complete: resuming again runs nothing.
	executed.Store(0)
	again, err := Run(pts, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 0 {
		t.Errorf("complete journal still executed %d runs", executed.Load())
	}
	if !bytes.Equal(marshal(t, again), want) {
		t.Fatal("journal-only sweep differs")
	}
}

func TestResumeJournalsFailures(t *testing.T) {
	// A failed run is journaled with its error and not retried on resume.
	pts := grid(3)
	pts[1].Key = "boom"
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	boom := func(key string, cfg sim.Config) (*sim.Result, error) {
		if key == "boom" {
			panic("deliberate divergence")
		}
		return sim.Run(cfg)
	}
	first, err := Run(pts, Options{Journal: path, Run: boom})
	if err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int32
	resumed, err := Run(pts, Options{Journal: path, Resume: true,
		Run: func(key string, cfg sim.Config) (*sim.Result, error) {
			executed.Add(1)
			return boom(key, cfg)
		}})
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 0 {
		t.Errorf("resume re-executed %d journaled runs", executed.Load())
	}
	if resumed[1].OK() || !strings.Contains(resumed[1].Err(), "deliberate divergence") {
		t.Errorf("journaled failure lost: %+v", resumed[1].Errs)
	}
	if !bytes.Equal(marshal(t, first), marshal(t, resumed)) {
		t.Fatal("resumed sweep with failure differs")
	}
}

func TestResumeRejectsMismatchedSweep(t *testing.T) {
	pts := grid(4)
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	if _, err := Run(pts, Options{Journal: path, BaseSeed: 1}); err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]Options{
		"seed":       {Journal: path, Resume: true, BaseSeed: 2},
		"replicates": {Journal: path, Resume: true, BaseSeed: 1, Replicates: 3},
	} {
		if _, err := Run(pts, bad); err == nil {
			t.Errorf("resume with different %s accepted", name)
		}
	}
	if _, err := Run(grid(5), Options{Journal: path, Resume: true, BaseSeed: 1}); err == nil {
		t.Error("resume with different point count accepted")
	}
	// A different spec at the same shape is caught by the key check.
	other := grid(4)
	other[2].Key = "renamed"
	if _, err := Run(other, Options{Journal: path, Resume: true, BaseSeed: 1}); err == nil {
		t.Error("resume with changed point key accepted")
	}
	// Not a journal at all.
	garbage := filepath.Join(t.TempDir(), "garbage.jsonl")
	if err := os.WriteFile(garbage, []byte("hello\nworld\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pts, Options{Journal: garbage, Resume: true, BaseSeed: 1}); err == nil {
		t.Error("garbage journal accepted")
	}
}

func TestResumeWithMissingJournalStartsFresh(t *testing.T) {
	pts := grid(2)
	path := filepath.Join(t.TempDir(), "new.jsonl")
	res, err := Run(pts, Options{Journal: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK() || !res[1].OK() {
		t.Fatal("fresh resume sweep failed")
	}
	if _, err := os.Stat(path); err != nil {
		t.Error("journal was not created")
	}
}

func TestOnPointDoneAndProgress(t *testing.T) {
	pts := grid(5)
	var calls []int
	var buf bytes.Buffer
	_, err := Run(pts, Options{
		Workers:  2,
		Progress: &buf,
		OnPointDone: func(done, total int) {
			if total != 5 {
				t.Errorf("total = %d", total)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 5 || calls[4] != 5 {
		t.Errorf("OnPointDone calls = %v", calls)
	}
	out := buf.String()
	if !strings.Contains(out, "5/5 points") || !strings.Contains(out, "workers") {
		t.Errorf("progress output missing fields: %q", out)
	}
}

func TestEmptySweepRejected(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestConfigErrorRecordedPerPoint(t *testing.T) {
	// An invalid config fails its point (sim.New error) without aborting.
	pts := grid(3)
	pts[2].Config.K = 0
	res, err := Run(pts, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res[2].OK() {
		t.Fatal("invalid config reported OK")
	}
	if !res[0].OK() || !res[1].OK() {
		t.Fatal("valid points affected by invalid one")
	}
}
