// Package harness schedules sweeps of independent simulation runs across a
// bounded pool of worker goroutines, with deterministic seeding, a
// checkpoint journal for interrupt/resume, per-worker panic isolation and
// replicate aggregation.
//
// The experiment CLIs (cmd/loadsweep, cmd/compare, cmd/tables via
// internal/exp) all expand their sweep specification into a flat list of
// Points — one fully described sim.Config per grid coordinate — and hand it
// to Run. The harness guarantees:
//
//   - Determinism. Run (point p, replicate r) simulates with seed
//     SeedFunc(p, r) — by default rng.Derive(BaseSeed, p, r) — which is a
//     pure function of the sweep parameters. Results are keyed by (p, r),
//     never by completion order, so a sweep on 8 workers is bit-identical
//     to the same sweep on 1 worker, and to any re-run or resumed run.
//   - Fault tolerance. A run that panics or returns an error fails only its
//     own (point, replicate): the failure is recorded (and journaled) and
//     the sweep continues.
//   - Checkpointing. With Options.Journal set, every finished run is
//     appended to a JSONL journal; with Options.Resume, journaled runs are
//     loaded instead of re-executed, so an interrupted sweep continues from
//     where it was killed.
package harness

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"wormnet/internal/metrics"
	"wormnet/internal/rng"
	"wormnet/internal/sim"
	"wormnet/internal/stats"
	"wormnet/internal/trace"
)

// Point is one coordinate of a sweep: a stable identifying key plus a fully
// specified simulation. The harness overrides Config.Seed per replicate;
// everything else is taken as-is. Configs may share factory closures — they
// must be pure constructors, which all of this module's are.
type Point struct {
	Key    string
	Config sim.Config
}

// Options control sweep execution. The zero value runs serially, one
// replicate per point, seeded from base seed 0, with no journal and no
// progress output.
type Options struct {
	// Workers bounds the number of concurrently running simulations.
	// Values < 1 select GOMAXPROCS.
	Workers int
	// Replicates is the number of independently seeded runs per point
	// (values < 1 mean 1).
	Replicates int
	// BaseSeed is the sweep's base seed; per-run seeds derive from it.
	BaseSeed uint64
	// SeedFunc overrides the per-run seed derivation. The default is
	// rng.Derive(BaseSeed, point, rep). Override only to preserve a legacy
	// derivation; the function must be pure.
	SeedFunc func(point, rep int) uint64
	// Journal is the path of the JSONL checkpoint journal ("" disables
	// checkpointing). Without Resume an existing journal is overwritten.
	Journal string
	// Resume loads completed runs from Journal instead of re-executing
	// them. A missing journal file starts a fresh sweep. Journaled
	// failures are kept as failures, not retried.
	Resume bool
	// Progress, when non-nil, receives one-line progress reports
	// (points done/total, runs done/total, ETA, worker utilization).
	Progress io.Writer
	// OnPointDone, when non-nil, is called — serialized, from the
	// collector — each time all replicates of a point have finished, with
	// the number of finished points and the total.
	OnPointDone func(done, total int)
	// Observe configures per-run flight-recorder and metrics-series dumps
	// (shared with the sweep CLIs; see its field docs).
	Observe
	// Run overrides the run function (default sim.Run), mainly for tests.
	Run func(key string, cfg sim.Config) (*sim.Result, error)
}

// PointResult collects the outcome of all replicates of one point. Runs and
// Errs are indexed by replicate: a nil run with a non-empty error string is
// a failed replicate.
type PointResult struct {
	Index int
	Key   string
	Runs  []*sim.Result
	Errs  []string
}

// OK reports whether every replicate completed.
func (p *PointResult) OK() bool {
	for _, e := range p.Errs {
		if e != "" {
			return false
		}
	}
	return true
}

// Err returns the first recorded failure, or "".
func (p *PointResult) Err() string {
	for _, e := range p.Errs {
		if e != "" {
			return e
		}
	}
	return ""
}

// Completed returns the successful runs in replicate order.
func (p *PointResult) Completed() []*sim.Result {
	var out []*sim.Result
	for _, r := range p.Runs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Metric summarizes f over the successful replicates, in replicate order,
// so the summary is deterministic for a given set of completed runs.
func (p *PointResult) Metric(f func(*sim.Result) float64) stats.Summary {
	var vals []float64
	for _, r := range p.Runs {
		if r != nil {
			vals = append(vals, f(r))
		}
	}
	return stats.Summarize(vals)
}

// MergedLatency merges the latency histograms of all successful replicates.
func (p *PointResult) MergedLatency() *stats.Histogram {
	return p.merged(func(r *sim.Result) *stats.Histogram { return r.LatencyHist })
}

// MergedDetectDelay merges the detection-delay histograms of all successful
// replicates.
func (p *PointResult) MergedDetectDelay() *stats.Histogram {
	return p.merged(func(r *sim.Result) *stats.Histogram { return r.DetectDelayHist })
}

// MergedDetectLatency merges the oracle-to-detection latency histograms of
// all successful replicates (empty unless the runs set OracleEvery > 0).
func (p *PointResult) MergedDetectLatency() *stats.Histogram {
	return p.merged(func(r *sim.Result) *stats.Histogram { return r.DetectLatencyHist })
}

func (p *PointResult) merged(pick func(*sim.Result) *stats.Histogram) *stats.Histogram {
	out := stats.NewHistogram(1.25)
	for _, r := range p.Runs {
		if r == nil {
			continue
		}
		if h := pick(r); h != nil {
			out.Merge(h)
		}
	}
	return out
}

// job identifies one unit of work; outcome is its completion message.
type job struct {
	point, rep int
	seed       uint64
}

type outcome struct {
	job
	res *sim.Result
	err error
	mc  *metrics.Collector
}

// Run executes every (point, replicate) of the sweep and returns one
// PointResult per point, in point order. It returns an error only for
// harness-level failures (bad options, unusable journal); failures of
// individual runs are recorded in the PointResults.
func Run(points []Point, opt Options) ([]PointResult, error) {
	if len(points) == 0 {
		return nil, errors.New("harness: empty sweep")
	}
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	replicates := opt.Replicates
	if replicates < 1 {
		replicates = 1
	}
	seedFor := opt.SeedFunc
	if seedFor == nil {
		base := opt.BaseSeed
		seedFor = func(point, rep int) uint64 {
			return rng.Derive(base, uint64(point), uint64(rep))
		}
	}
	run := opt.Run
	if run == nil {
		run = func(_ string, cfg sim.Config) (*sim.Result, error) { return sim.Run(cfg) }
	}
	if err := opt.Observe.prepare(); err != nil {
		return nil, err
	}

	results := make([]PointResult, len(points))
	remaining := make([]int, len(points)) // replicates still to finish, per point
	for i, p := range points {
		results[i] = PointResult{
			Index: i,
			Key:   p.Key,
			Runs:  make([]*sim.Result, replicates),
			Errs:  make([]string, replicates),
		}
		remaining[i] = replicates
	}

	// Checkpoint journal: preload on resume, then open for appending.
	hdr := header{Journal: journalMagic, Version: journalVersion,
		Points: len(points), Replicates: replicates, BaseSeed: opt.BaseSeed}
	loaded := map[[2]int]bool{}
	var journalLen int64
	if opt.Journal != "" && opt.Resume {
		recs, validLen, err := readJournal(opt.Journal, hdr)
		if err != nil {
			return nil, err
		}
		journalLen = validLen
		for _, rec := range recs {
			if rec.Point < 0 || rec.Point >= len(points) || rec.Rep < 0 || rec.Rep >= replicates {
				return nil, fmt.Errorf("harness: journal record (%d,%d) outside sweep", rec.Point, rec.Rep)
			}
			if rec.Key != points[rec.Point].Key {
				return nil, fmt.Errorf("harness: journal point %d is %q, sweep has %q (spec changed?)",
					rec.Point, rec.Key, points[rec.Point].Key)
			}
			if want := seedFor(rec.Point, rec.Rep); rec.Seed != want {
				return nil, fmt.Errorf("harness: journal run (%d,%d) used seed %d, sweep derives %d (seed changed?)",
					rec.Point, rec.Rep, rec.Seed, want)
			}
			if loaded[[2]int{rec.Point, rec.Rep}] {
				continue // duplicate record; first wins
			}
			loaded[[2]int{rec.Point, rec.Rep}] = true
			results[rec.Point].Runs[rec.Rep] = rec.Result
			results[rec.Point].Errs[rec.Rep] = rec.Error
			remaining[rec.Point]--
		}
	}
	var journal *journalWriter
	if opt.Journal != "" {
		var err error
		journal, err = openJournal(opt.Journal, opt.Resume && journalLen > 0, journalLen, hdr)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	// Jobs not satisfied by the journal, in deterministic order.
	var jobs []job
	for pi := range points {
		for rep := 0; rep < replicates; rep++ {
			if !loaded[[2]int{pi, rep}] {
				jobs = append(jobs, job{point: pi, rep: rep, seed: seedFor(pi, rep)})
			}
		}
	}
	pointsDone := 0
	for pi := range points {
		if remaining[pi] == 0 {
			pointsDone++
		}
	}

	prog := newProgress(opt.Progress, len(points), len(points)*replicates, len(jobs))
	prog.report(pointsDone, len(loaded), 0, workers, false)

	var agg *metrics.Registry
	if opt.SeriesDir != "" {
		agg = metrics.NewRegistry()
	}

	if len(jobs) > 0 {
		jobCh := make(chan job)
		outCh := make(chan outcome)
		var busy atomic.Int32
		var obsErrOnce sync.Once
		var obsErr error
		for w := 0; w < workers; w++ {
			go func() {
				for j := range jobCh {
					busy.Add(1)
					cfg := points[j.point].Config
					cfg.Seed = j.seed
					rec, mc, fc := opt.Observe.attach(&cfg)
					res, err := safeRun(run, points[j.point].Key, cfg)
					if rec != nil && opt.TraceDir != "" && (err != nil || rec.Contains(trace.KindDetect)) {
						if terr := dumpTrace(opt.TraceDir, j.point, j.rep, points[j.point].Key, rec); terr != nil {
							obsErrOnce.Do(func() { obsErr = terr })
						}
					}
					if fc != nil {
						fc.Finish()
						if err != nil || len(fc.Episodes()) > 0 {
							if ferr := dumpForensics(opt.ForensicsDir, j.point, j.rep, points[j.point].Key, fc); ferr != nil {
								obsErrOnce.Do(func() { obsErr = ferr })
							}
						}
					}
					if mc != nil && err == nil {
						if serr := dumpSeries(opt.SeriesDir, j.point, j.rep, points[j.point].Key, mc); serr != nil {
							obsErrOnce.Do(func() { obsErr = serr })
						}
					}
					busy.Add(-1)
					outCh <- outcome{job: j, res: res, err: err, mc: mc}
				}
			}()
		}
		go func() {
			for _, j := range jobs {
				jobCh <- j
			}
			close(jobCh)
		}()

		runsDone := len(loaded)
		for range jobs {
			o := <-outCh
			if agg != nil && o.mc != nil && o.err == nil {
				// Merge is commutative, so folding in completion order still
				// yields a deterministic aggregate.
				agg.Merge(o.mc.Registry())
			}
			pr := &results[o.point]
			pr.Runs[o.rep] = o.res
			if o.err != nil {
				pr.Errs[o.rep] = o.err.Error()
			}
			if journal != nil {
				rec := record{Point: o.point, Rep: o.rep, Key: pr.Key, Seed: o.seed, Result: o.res}
				if o.err != nil {
					rec.Error = o.err.Error()
				}
				if err := journal.append(rec); err != nil {
					return nil, err
				}
			}
			remaining[o.point]--
			if remaining[o.point] == 0 {
				pointsDone++
				if opt.OnPointDone != nil {
					opt.OnPointDone(pointsDone, len(points))
				}
			}
			runsDone++
			prog.report(pointsDone, runsDone, runsDone-len(loaded), int(busy.Load()), runsDone == len(points)*replicates)
		}
		if obsErr != nil {
			return nil, fmt.Errorf("harness: writing observation files: %w", obsErr)
		}
	}
	if agg != nil {
		if err := writeAggregate(opt.SeriesDir, agg); err != nil {
			return nil, fmt.Errorf("harness: writing sweep aggregate: %w", err)
		}
	}
	prog.finish()
	return results, nil
}

// dumpTrace writes one run's flight-recorder ring to its per-run file.
func dumpTrace(dir string, point, rep int, key string, rec *trace.Recorder) error {
	name := fmt.Sprintf("p%03d-r%d-%s.jsonl", point, rep, sanitizeKey(key))
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	err = rec.Dump(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// sanitizeKey maps a point key to a safe file-name fragment.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
}

// safeRun isolates one simulation: a panic in the engine (a diverging
// configuration, an invariant violation) becomes an error for that run
// alone instead of killing the whole sweep.
func safeRun(run func(string, sim.Config) (*sim.Result, error), key string, cfg sim.Config) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return run(key, cfg)
}
