// Package stats accumulates the measurements the paper reports: the
// percentage of messages detected as possibly deadlocked (the central
// figure of merit of Tables 1–7), whether detections corresponded to true
// deadlocks (the "(*)" annotations), and the usual network metrics
// (latency, throughput) used to locate the saturation point.
package stats

import "fmt"

// Counters is the set of measurements accumulated over the measurement
// window of one simulation run.
type Counters struct {
	// Cycles is the number of measured cycles.
	Cycles int64
	// Nodes is the network size, for per-node rates.
	Nodes int
	// NetLinks is the number of network physical channels, for probe
	// bandwidth-overhead rates.
	NetLinks int

	// Message lifecycle counts.
	Generated      int64 // messages created at sources
	Injected       int64 // messages admitted into the network
	Delivered      int64 // messages fully consumed at their destination
	DeliveredFlits int64

	// Detection counts.
	Marked      int64 // messages marked as possibly deadlocked
	TrueMarked  int64 // marks the oracle confirmed as true deadlocks
	FalseMarked int64 // marks on messages not truly deadlocked

	// Recovery counts.
	Absorbed           int64 // progressive recoveries completed
	Aborted            int64 // regressive recoveries
	Reinjected         int64 // recovered messages re-entered a source queue
	RecoveredDelivered int64 // recoveries that completed at the destination

	// Latency in cycles, over delivered messages (generation to tail
	// consumption, and injection to tail consumption).
	LatencySum    int64
	NetLatencySum int64
	MaxLatency    int64

	// Fault injection.
	LinkFailures  int64 // channels failed during the window
	KilledByFault int64 // worms killed because their channel failed

	// Oracle observations (only populated when the oracle runs
	// periodically).
	OracleRuns       int64
	DeadlockCycles   int64 // oracle runs that found a non-empty deadlock set
	MaxDeadlockSet   int
	DeadlockedMsgSum int64 // sum of deadlock set sizes over runs that found one

	// DTFlagCycleSum sums, over measured cycles, the number of output
	// channels whose detection-threshold flag (NDM's DT, PDM's IF) was set
	// at the end of the cycle. Divided by Cycles it gives the mean DT-flag
	// occupancy of the network; only populated when the detector implements
	// detect.DTOccupier.
	DTFlagCycleSum int64

	// Probe-based (CMH edge-chasing) detection activity over the window:
	// probe lifecycle counts by outcome, and the control flits probe
	// movement charged to physical links. All zero for router-local
	// mechanisms (NDM, PDM), which send no control messages.
	ProbesEmitted   int64
	ProbesForwarded int64
	ProbesDropped   int64
	ProbesReturned  int64
	ProbeFlits      int64

	// MarksPerCycleHist[k] counts cycles in which exactly k messages were
	// marked, for k in [1, len); index 0 aggregates overflow. It quantifies
	// the paper's claim that in most cases a single message is detected per
	// deadlocked configuration.
	MarksPerCycleHist [9]int64
}

// RecordMarks folds the number of messages marked in one cycle into the
// histogram.
func (c *Counters) RecordMarks(n int) {
	if n <= 0 {
		return
	}
	if n < len(c.MarksPerCycleHist) {
		c.MarksPerCycleHist[n]++
	} else {
		c.MarksPerCycleHist[0]++
	}
}

// PctMarked returns 100 * Marked / Delivered, the paper's "percentage of
// messages detected as possibly deadlocked". It returns 0 when nothing was
// delivered.
func (c *Counters) PctMarked() float64 {
	if c.Delivered == 0 {
		return 0
	}
	return 100 * float64(c.Marked) / float64(c.Delivered)
}

// PctFalseMarked returns 100 * FalseMarked / Delivered.
func (c *Counters) PctFalseMarked() float64 {
	if c.Delivered == 0 {
		return 0
	}
	return 100 * float64(c.FalseMarked) / float64(c.Delivered)
}

// AvgLatency returns the mean generation-to-delivery latency in cycles.
func (c *Counters) AvgLatency() float64 {
	if c.Delivered == 0 {
		return 0
	}
	return float64(c.LatencySum) / float64(c.Delivered)
}

// AvgNetLatency returns the mean injection-to-delivery latency in cycles.
func (c *Counters) AvgNetLatency() float64 {
	if c.Delivered == 0 {
		return 0
	}
	return float64(c.NetLatencySum) / float64(c.Delivered)
}

// Throughput returns accepted traffic in flits/cycle/node.
func (c *Counters) Throughput() float64 {
	if c.Cycles == 0 || c.Nodes == 0 {
		return 0
	}
	return float64(c.DeliveredFlits) / float64(c.Cycles) / float64(c.Nodes)
}

// AvgDTFlags returns the mean number of output channels holding a set
// detection-threshold flag per measured cycle.
func (c *Counters) AvgDTFlags() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.DTFlagCycleSum) / float64(c.Cycles)
}

// ProbeBandwidthPct returns probe control-flit traffic as a percentage of
// aggregate network link capacity: 100 * ProbeFlits / (Cycles * NetLinks).
// Each network link can carry one flit per cycle, so this is the fraction
// of raw link bandwidth the detector's control messages consumed.
func (c *Counters) ProbeBandwidthPct() float64 {
	if c.Cycles == 0 || c.NetLinks == 0 {
		return 0
	}
	return 100 * float64(c.ProbeFlits) / (float64(c.Cycles) * float64(c.NetLinks))
}

// MarksPerCycle returns Marked / Cycles, the mean number of messages marked
// per measured cycle.
func (c *Counters) MarksPerCycle() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Marked) / float64(c.Cycles)
}

// SawTrueDeadlock reports whether any true deadlock was confirmed during
// the window, the condition the paper marks with "(*)".
func (c *Counters) SawTrueDeadlock() bool {
	return c.TrueMarked > 0 || c.DeadlockCycles > 0
}

// String renders a one-line summary.
func (c *Counters) String() string {
	return fmt.Sprintf(
		"cycles=%d gen=%d inj=%d del=%d thr=%.4f lat=%.1f marked=%d (%.3f%%) true=%d false=%d",
		c.Cycles, c.Generated, c.Injected, c.Delivered, c.Throughput(), c.AvgLatency(),
		c.Marked, c.PctMarked(), c.TrueMarked, c.FalseMarked)
}
