package stats

import (
	"fmt"
	"math"
)

// Summary condenses a scalar metric observed over N replicate runs into the
// numbers the experiment tables report: the sample mean, the sample standard
// deviation, and the half-width of a 95% confidence interval for the mean
// (normal approximation). The zero value describes an empty sample.
type Summary struct {
	// N is the number of observations summarized.
	N int `json:"n"`
	// Mean is the sample mean (0 when N == 0).
	Mean float64 `json:"mean"`
	// Std is the sample standard deviation with n-1 normalization (0 when
	// N < 2).
	Std float64 `json:"std,omitempty"`
	// CI95 is the 95% confidence half-width, 1.96*Std/sqrt(N) (0 when N < 2).
	CI95 float64 `json:"ci95,omitempty"`
	// Min and Max are the observed extremes (0 when N == 0).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Summarize computes the Summary of vals. The computation is sequential and
// depends only on the order of vals, so callers that fix the order (e.g. by
// replicate index) get bit-identical summaries regardless of how the
// observations were produced.
func Summarize(vals []float64) Summary {
	s := Summary{N: len(vals)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = vals[0], vals[0]
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = 1.96 * s.Std / math.Sqrt(float64(s.N))
	return s
}

// String renders "mean ± ci95" for multi-observation summaries and the bare
// mean otherwise.
func (s Summary) String() string {
	if s.N < 2 {
		return fmt.Sprintf("%.4f", s.Mean)
	}
	return fmt.Sprintf("%.4f ± %.4f", s.Mean, s.CI95)
}
