package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeHandComputed(t *testing.T) {
	// vals = {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance
	// sum((v-5)^2)/(8-1) = 32/7, std = sqrt(32/7), ci95 = 1.96*std/sqrt(8).
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(vals)
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almost(s.Mean, 5) {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	wantStd := math.Sqrt(32.0 / 7.0)
	if !almost(s.Std, wantStd) {
		t.Errorf("std = %v, want %v", s.Std, wantStd)
	}
	wantCI := 1.96 * wantStd / math.Sqrt(8)
	if !almost(s.CI95, wantCI) {
		t.Errorf("ci95 = %v, want %v", s.CI95, wantCI)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("extremes = %v..%v", s.Min, s.Max)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.CI95 != 0 {
		t.Errorf("singleton summary = %+v", s)
	}
	if s.Min != 3.5 || s.Max != 3.5 {
		t.Errorf("singleton extremes = %v..%v", s.Min, s.Max)
	}
	// Constant sample: zero spread, exact mean.
	c := Summarize([]float64{2, 2, 2, 2})
	if c.Mean != 2 || c.Std != 0 || c.CI95 != 0 {
		t.Errorf("constant summary = %+v", c)
	}
}

func TestSummaryString(t *testing.T) {
	if got := Summarize([]float64{1}).String(); got != "1.0000" {
		t.Errorf("singleton String = %q", got)
	}
	multi := Summarize([]float64{1, 3}).String()
	if multi == "" || multi == "2.0000" {
		t.Errorf("multi String = %q, want mean ± ci", multi)
	}
}

func TestHistogramMergeEmptyIntoNonEmpty(t *testing.T) {
	// Merging into an empty histogram must adopt the other's extremes
	// rather than keeping the zero-value min.
	empty := NewHistogram(1.5)
	full := NewHistogram(1.5)
	for _, v := range []int64{10, 20, 30} {
		full.Add(v)
	}
	empty.Merge(full)
	if empty.Count() != 3 || empty.Min() != 10 || empty.Max() != 30 {
		t.Errorf("empty.Merge(full): %s", empty)
	}
	if empty.Mean() != 20 {
		t.Errorf("mean = %v", empty.Mean())
	}

	// And the reverse direction leaves the non-empty side untouched.
	full2 := NewHistogram(1.5)
	for _, v := range []int64{10, 20, 30} {
		full2.Add(v)
	}
	full2.Merge(NewHistogram(1.5))
	if full2.Count() != 3 || full2.Min() != 10 || full2.Max() != 30 {
		t.Errorf("full.Merge(empty): %s", full2)
	}
}

func TestHistogramMergeDisjointRanges(t *testing.T) {
	lo, hi := NewHistogram(1.25), NewHistogram(1.25)
	for i := int64(1); i <= 10; i++ {
		lo.Add(i)
	}
	for i := int64(1000); i < 1010; i++ {
		hi.Add(i)
	}
	lo.Merge(hi)
	if lo.Count() != 20 || lo.Min() != 1 || lo.Max() != 1009 {
		t.Fatalf("disjoint merge: %s", lo)
	}
	// The median sits in the gap; the p90 must land in the upper cluster.
	if q := lo.Quantile(0.9); q < 500 {
		t.Errorf("p90 = %d, want within the upper cluster", q)
	}
	if q := lo.Quantile(0.25); q > 500 {
		t.Errorf("p25 = %d, want within the lower cluster", q)
	}
}

func TestHistogramMergeQuantileStability(t *testing.T) {
	// Quantiles of a merged histogram must equal quantiles of a single
	// histogram fed all samples: merging shards (as the parallel harness
	// does per replicate) cannot change the distribution.
	whole := NewHistogram(1.25)
	shards := []*Histogram{NewHistogram(1.25), NewHistogram(1.25), NewHistogram(1.25)}
	for i := int64(0); i < 3000; i++ {
		v := (i * 7919) % 2048 // deterministic spread over several buckets
		whole.Add(v)
		shards[i%3].Add(v)
	}
	merged := NewHistogram(1.25)
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() {
		t.Fatalf("merged %s vs whole %s", merged, whole)
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Errorf("quantile %.2f: merged %d, whole %d", q, m, w)
		}
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(1.25)
	for i := int64(0); i < 500; i++ {
		h.Add(i * i % 700)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Mean() != h.Mean() ||
		back.Min() != h.Min() || back.Max() != h.Max() {
		t.Fatalf("round trip lost moments: %s vs %s", &back, h)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Errorf("quantile %v differs after round trip", q)
		}
	}
	// Re-serialization is byte-identical (resume determinism).
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("re-serialization differs:\n%s\n%s", data, data2)
	}
	// A restored histogram is live: it accepts further samples and merges.
	back.Add(9999)
	if back.Max() != 9999 {
		t.Error("restored histogram did not accept new samples")
	}
}

func TestHistogramJSONEmptyAndErrors(t *testing.T) {
	empty := NewHistogram(2)
	data, err := json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != 0 {
		t.Errorf("empty round trip has %d samples", back.Count())
	}
	back.Add(5)
	if back.Min() != 5 || back.Max() != 5 {
		t.Error("restored empty histogram mishandled first sample")
	}

	for _, bad := range []string{
		`{"growth":0.5,"total":0,"sum":0,"min":0,"max":0}`,
		`{"growth":1.5,"counts":[1,2],"total":5,"sum":0,"min":0,"max":0}`,
		`{"growth":1.5,"counts":[-1],"total":-1,"sum":0,"min":0,"max":0}`,
		`{broken`,
	} {
		var h Histogram
		if err := json.Unmarshal([]byte(bad), &h); err == nil {
			t.Errorf("accepted invalid histogram JSON %s", bad)
		}
	}
}
