package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates int64 samples (latencies, queue depths, blocked
// durations) in logarithmic buckets, supporting approximate quantiles with
// bounded relative error and O(1) insertion. Bucket 0 holds samples <= 0;
// bucket b >= 1 covers roughly [growth^(b-1), growth^b), with the exact
// integer boundaries defined by bucket and mirrored by lowerBound.
type Histogram struct {
	growth  float64
	logG    float64
	counts  []int64
	total   int64
	sum     int64
	min     int64
	max     int64
	samples bool
}

// NewHistogram returns a histogram with the given bucket growth factor
// (e.g. 1.25 for ~12% relative quantile error). It panics if growth <= 1.
func NewHistogram(growth float64) *Histogram {
	if growth <= 1 {
		panic("stats: histogram growth must be > 1")
	}
	return &Histogram{growth: growth, logG: math.Log(growth)}
}

// bucket returns the bucket index for value v (>= 0).
func (h *Histogram) bucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return int(math.Log(float64(v))/h.logG) + 1
}

// lowerBound returns the smallest value that bucket maps into bucket b (or
// into a later bucket, for indices no integer value maps to exactly). It is
// defined in terms of bucket itself, so for every sample v the invariant
// lowerBound(bucket(v)) <= v < lowerBound(bucket(v)+1) holds even where
// math.Log and math.Exp round to opposite sides of an exact power of the
// growth factor.
func (h *Histogram) lowerBound(b int) int64 {
	if b <= 0 {
		return 0
	}
	x := math.Exp(float64(b-1) * h.logG)
	if x >= math.MaxInt64 {
		return math.MaxInt64
	}
	v := int64(x)
	if v < 1 {
		v = 1
	}
	// The closed form can be off by a few ulps around exact powers of the
	// growth factor; bucket is monotone in v, so nudge v to the true
	// boundary.
	for v > 1 && h.bucket(v-1) >= b {
		v--
	}
	for h.bucket(v) < b {
		v++
	}
	return v
}

// Add records one sample. Negative samples are clamped to zero.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	b := h.bucket(v)
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.total++
	h.sum += v
	if !h.samples || v < h.min {
		h.min = v
	}
	if !h.samples || v > h.max {
		h.max = v
	}
	h.samples = true
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the exact sample mean (sums are tracked exactly).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min and Max return the exact extremes.
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1), exact
// to within one bucket.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(q * float64(h.total))
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum > target {
			// Midpoint of the bucket, clamped to the observed extremes.
			lo, hi := h.lowerBound(b), h.lowerBound(b+1)
			mid := (lo + hi) / 2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// Merge folds other into h. Both histograms must share the growth factor.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	if other.growth != h.growth {
		panic("stats: merging histograms with different growth factors")
	}
	for len(h.counts) < len(other.counts) {
		h.counts = append(h.counts, 0)
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	if !h.samples || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
	h.samples = true
}

// histogramJSON is the serialized form of a Histogram, used by the sweep
// harness to journal per-run distributions so a resumed sweep aggregates
// exactly what a fresh one would.
type histogramJSON struct {
	Growth float64 `json:"growth"`
	Counts []int64 `json:"counts,omitempty"`
	Total  int64   `json:"total"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

// MarshalJSON encodes the histogram, including exact sum and extremes.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	// Trim trailing empty buckets so equivalent histograms serialize
	// identically regardless of transient bucket-slice growth.
	counts := h.counts
	for len(counts) > 0 && counts[len(counts)-1] == 0 {
		counts = counts[:len(counts)-1]
	}
	return json.Marshal(histogramJSON{
		Growth: h.growth,
		Counts: counts,
		Total:  h.total,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	})
}

// UnmarshalJSON restores a histogram written by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histogramJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Growth <= 1 {
		return fmt.Errorf("stats: histogram growth %v out of range", j.Growth)
	}
	var total int64
	for _, c := range j.Counts {
		if c < 0 {
			return fmt.Errorf("stats: negative bucket count %d", c)
		}
		total += c
	}
	if total != j.Total {
		return fmt.Errorf("stats: histogram total %d does not match bucket sum %d", j.Total, total)
	}
	*h = Histogram{
		growth:  j.Growth,
		logG:    math.Log(j.Growth),
		counts:  j.Counts,
		total:   j.Total,
		sum:     j.Sum,
		min:     j.Min,
		max:     j.Max,
		samples: j.Total > 0,
	}
	return nil
}

// String renders a compact summary with common percentiles.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "histogram(empty)"
	}
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50=%d p90=%d p99=%d max=%d",
		h.total, h.Mean(), h.min, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.max)
}

// Bars renders an ASCII bar chart of the distribution with up to width
// characters per bar, skipping empty leading/trailing buckets.
func (h *Histogram) Bars(width int) string {
	if h.total == 0 || width < 1 {
		return ""
	}
	first, last := -1, -1
	var peak int64
	for b, c := range h.counts {
		if c > 0 {
			if first == -1 {
				first = b
			}
			last = b
			if c > peak {
				peak = c
			}
		}
	}
	var sb strings.Builder
	for b := first; b <= last; b++ {
		n := int(float64(h.counts[b]) / float64(peak) * float64(width))
		if h.counts[b] > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "%8d.. %s %d\n", h.lowerBound(b), strings.Repeat("#", n), h.counts[b])
	}
	return sb.String()
}

// Series is a collection of scalar observations from repeated runs (e.g.
// the detection percentage across seeds), summarized with mean, deviation
// and a normal-approximation confidence interval.
type Series struct {
	vals []float64
}

// Add records an observation.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// N returns the number of observations.
func (s *Series) N() int { return len(s.vals) }

// Mean returns the sample mean.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// StdDev returns the sample standard deviation (n-1 normalization).
func (s *Series) StdDev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// using the normal approximation (adequate for the >= 5 seeds the harness
// uses).
func (s *Series) CI95() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(n))
}

// Median returns the sample median.
func (s *Series) Median() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// String renders "mean ± ci95 (n=N)".
func (s *Series) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean(), s.CI95(), s.N())
}
