package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersPercentages(t *testing.T) {
	c := Counters{Delivered: 2000, Marked: 5, FalseMarked: 3}
	if got := c.PctMarked(); got != 0.25 {
		t.Errorf("PctMarked = %v", got)
	}
	if got := c.PctFalseMarked(); got != 0.15 {
		t.Errorf("PctFalseMarked = %v", got)
	}
	var empty Counters
	if empty.PctMarked() != 0 || empty.PctFalseMarked() != 0 {
		t.Error("division by zero not guarded")
	}
}

func TestCountersLatencyAndThroughput(t *testing.T) {
	c := Counters{
		Delivered:      4,
		LatencySum:     400,
		NetLatencySum:  200,
		DeliveredFlits: 640,
		Cycles:         100,
		Nodes:          16,
	}
	if got := c.AvgLatency(); got != 100 {
		t.Errorf("AvgLatency = %v", got)
	}
	if got := c.AvgNetLatency(); got != 50 {
		t.Errorf("AvgNetLatency = %v", got)
	}
	if got := c.Throughput(); got != 0.4 {
		t.Errorf("Throughput = %v", got)
	}
	var empty Counters
	if empty.AvgLatency() != 0 || empty.Throughput() != 0 {
		t.Error("zero guards missing")
	}
}

func TestRecordMarks(t *testing.T) {
	var c Counters
	c.RecordMarks(0)  // ignored
	c.RecordMarks(-1) // ignored
	c.RecordMarks(1)
	c.RecordMarks(1)
	c.RecordMarks(3)
	c.RecordMarks(100) // overflow bucket
	if c.MarksPerCycleHist[1] != 2 || c.MarksPerCycleHist[3] != 1 || c.MarksPerCycleHist[0] != 1 {
		t.Errorf("histogram %v", c.MarksPerCycleHist)
	}
}

func TestSawTrueDeadlock(t *testing.T) {
	empty := Counters{}
	if empty.SawTrueDeadlock() {
		t.Error("empty counters saw deadlock")
	}
	marked := Counters{TrueMarked: 1}
	if !marked.SawTrueDeadlock() {
		t.Error("true mark not seen")
	}
	oracled := Counters{DeadlockCycles: 2}
	if !oracled.SawTrueDeadlock() {
		t.Error("oracle deadlock not seen")
	}
}

func TestCountersString(t *testing.T) {
	c := Counters{Delivered: 10, Marked: 1, Cycles: 100, Nodes: 4}
	if s := c.String(); !strings.Contains(s, "del=10") {
		t.Errorf("String: %s", s)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1.25)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram not zeroed")
	}
	for i := int64(1); i <= 100; i++ {
		h.Add(i)
	}
	if h.Count() != 100 {
		t.Errorf("count %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("extremes %d..%d", h.Min(), h.Max())
	}
	if m := h.Mean(); m != 50.5 {
		t.Errorf("mean %v", m)
	}
	// Quantiles within one bucket (25% growth): generous tolerance.
	if q := h.Quantile(0.5); q < 35 || q > 70 {
		t.Errorf("p50 = %d", q)
	}
	if q := h.Quantile(0.99); q < 70 || q > 100 {
		t.Errorf("p99 = %d", q)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Error("extreme quantiles")
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram(2)
	h.Add(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Error("negative sample not clamped")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(1.5), NewHistogram(1.5)
	for i := int64(0); i < 50; i++ {
		a.Add(i)
	}
	for i := int64(50); i < 100; i++ {
		b.Add(i)
	}
	a.Merge(b)
	if a.Count() != 100 || a.Min() != 0 || a.Max() != 99 {
		t.Errorf("merged: %s", a)
	}
	if m := a.Mean(); m != 49.5 {
		t.Errorf("merged mean %v", m)
	}
	// Merging an empty histogram is a no-op.
	a.Merge(NewHistogram(1.5))
	if a.Count() != 100 {
		t.Error("empty merge changed count")
	}
}

func TestHistogramMergeGrowthMismatch(t *testing.T) {
	a, b := NewHistogram(1.5), NewHistogram(2)
	b.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.Merge(b)
}

func TestHistogramGrowthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(1.0)
}

// TestHistogramQuantileBounds: quantiles always land within [min, max] and
// are monotone in q.
func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram(1.3)
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		hh := NewHistogram(1.3)
		for _, v := range raw {
			hh.Add(int64(v))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := hh.Quantile(q)
			if v < hh.Min() || v > hh.Max() || v < prev {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
	_ = h
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(1.25)
	if h.String() != "histogram(empty)" {
		t.Error("empty string form")
	}
	h.Add(10)
	if !strings.Contains(h.String(), "n=1") {
		t.Errorf("String: %s", h.String())
	}
}

func TestHistogramBars(t *testing.T) {
	h := NewHistogram(2)
	if h.Bars(10) != "" {
		t.Error("bars of empty histogram")
	}
	for i := 0; i < 32; i++ {
		h.Add(int64(i))
	}
	bars := h.Bars(20)
	if !strings.Contains(bars, "#") {
		t.Errorf("bars:\n%s", bars)
	}
	if h.Bars(0) != "" {
		t.Error("width 0 should render nothing")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.StdDev() != 0 || s.CI95() != 0 || s.Median() != 0 {
		t.Error("empty series not zeroed")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Median() != 3 {
		t.Errorf("series stats: %s", s.String())
	}
	if sd := s.StdDev(); math.Abs(sd-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev %v", sd)
	}
	want := 1.96 * math.Sqrt(2.5) / math.Sqrt(5)
	if ci := s.CI95(); math.Abs(ci-want) > 1e-12 {
		t.Errorf("ci95 %v, want %v", ci, want)
	}
	var even Series
	for _, v := range []float64{4, 1, 3, 2} {
		even.Add(v)
	}
	if even.Median() != 2.5 {
		t.Errorf("even median %v", even.Median())
	}
}
