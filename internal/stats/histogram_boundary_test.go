package stats

import (
	"encoding/json"
	"math"
	"testing"
)

// boundaryValues returns the integers near every exact power of growth that
// fits in an int64: the values where math.Log (in bucket) and math.Exp (in
// lowerBound) historically rounded to opposite sides of the boundary.
func boundaryValues(growth float64) []int64 {
	var vals []int64
	for p := 1.0; p < math.MaxInt64/4; p *= growth {
		v := int64(p)
		for _, d := range []int64{-1, 0, 1} {
			if v+d >= 1 {
				vals = append(vals, v+d)
			}
		}
	}
	return vals
}

// TestHistogramBucketBoundsConsistent sweeps exact powers of several growth
// factors and asserts the defining invariant of the bucket/lowerBound pair:
// every sample lies inside the bounds of the bucket it was assigned to.
// Before lowerBound was derived from bucket itself, a sample at an exact
// power could land in a bucket whose lower bound exceeded it (e.g. growth 10,
// v=1000 went to bucket 3 while lowerBound(4) was 999).
func TestHistogramBucketBoundsConsistent(t *testing.T) {
	for _, growth := range []float64{1.1, 1.25, 1.5, 2, 3, 10} {
		h := NewHistogram(growth)
		for _, v := range boundaryValues(growth) {
			b := h.bucket(v)
			lo, hi := h.lowerBound(b), h.lowerBound(b+1)
			if v < lo || v >= hi {
				t.Errorf("growth %v: sample %d in bucket %d but bounds are [%d, %d)",
					growth, v, b, lo, hi)
			}
		}
		// lowerBound must be monotone so Quantile's midpoints are ordered.
		prev := int64(-1)
		for b := 0; b < 64; b++ {
			lb := h.lowerBound(b)
			if lb < prev {
				t.Fatalf("growth %v: lowerBound(%d) = %d < lowerBound(%d) = %d",
					growth, b, lb, b-1, prev)
			}
			prev = lb
		}
	}
}

// TestHistogramQuantileAtBoundaries adds samples exactly at bucket
// boundaries and checks quantiles stay within the observed extremes (a
// quantile outside [min, max] is the visible symptom of inconsistent
// bounds).
func TestHistogramQuantileAtBoundaries(t *testing.T) {
	for _, growth := range []float64{1.25, 2, 10} {
		h := NewHistogram(growth)
		for _, v := range boundaryValues(growth) {
			h.Add(v)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			got := h.Quantile(q)
			if got < h.Min() || got > h.Max() {
				t.Errorf("growth %v: Quantile(%v) = %d outside [%d, %d]",
					growth, q, got, h.Min(), h.Max())
			}
		}
	}
}

// TestHistogramBoundaryJSONRoundTrip verifies that a histogram holding
// boundary samples survives MarshalJSON/UnmarshalJSON with identical counts,
// quantiles and a working Merge (the sweep journal depends on this to make
// resumed aggregation exact).
func TestHistogramBoundaryJSONRoundTrip(t *testing.T) {
	for _, growth := range []float64{1.25, 2, 10} {
		h := NewHistogram(growth)
		for _, v := range boundaryValues(growth) {
			h.Add(v)
		}
		data, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		var back Histogram
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Count() != h.Count() || back.Min() != h.Min() || back.Max() != h.Max() {
			t.Fatalf("growth %v: round-trip changed summary: %v vs %v", growth, &back, h)
		}
		for _, q := range []float64{0.1, 0.5, 0.99} {
			if back.Quantile(q) != h.Quantile(q) {
				t.Errorf("growth %v: Quantile(%v) changed across round-trip: %d vs %d",
					growth, q, back.Quantile(q), h.Quantile(q))
			}
		}
		// Merging the round-tripped copy into a fresh histogram must equal
		// the original's distribution exactly.
		merged := NewHistogram(growth)
		merged.Merge(&back)
		merged.Merge(&back)
		if merged.Count() != 2*h.Count() {
			t.Fatalf("growth %v: merge lost samples: %d vs %d", growth, merged.Count(), 2*h.Count())
		}
		if merged.Quantile(0.5) != h.Quantile(0.5) {
			t.Errorf("growth %v: merged median %d != original %d",
				growth, merged.Quantile(0.5), h.Quantile(0.5))
		}
	}
}
