package probe

import (
	"testing"

	"wormnet/internal/router"
	"wormnet/internal/topology"
)

// ringFixture is a 3-ary 1-cube (a 3-node ring) with one VC per link, the
// smallest fabric that supports a genuine wait-for cycle:
//
//	A holds L01, header at node 1, wants L12 (held by B)
//	B holds L12, header at node 2, wants L20 (held by C)
//	C holds L20, header at node 0, wants L01 (held by A)
type ringFixture struct {
	fab     *router.Fabric
	a, b, c *router.Message
	l01     router.LinkID // node 0 -> node 1
	l12     router.LinkID
	l20     router.LinkID
}

// netLink finds the network channel src -> dst.
func netLink(t *testing.T, f *router.Fabric, src, dst int) router.LinkID {
	t.Helper()
	for l := 0; l < f.NumNetLinks(); l++ {
		lk := &f.Links[l]
		if int(lk.Src) == src && int(lk.Dst) == dst {
			return router.LinkID(l)
		}
	}
	t.Fatalf("no network link %d -> %d", src, dst)
	return router.NilLink
}

// blockWorm parks a single-flit worm of m on the sole VC of link l and
// marks it wait-blocked there.
func blockWorm(f *router.Fabric, m *router.Message, l router.LinkID) {
	vc := f.FreeVC(l)
	f.Allocate(m, router.NilVC, vc)
	m.HeadVC, m.Phase = vc, router.PhaseNetwork
	f.VCs[vc].Flits = 1
	f.VCs[vc].HasHeader = true
	f.VCs[vc].HasTail = true
	m.Attempts = 1
	m.BlockedSince = 0
}

func newRing(t *testing.T) *ringFixture {
	t.Helper()
	topo := topology.New(3, 1)
	rcfg := router.DefaultConfig()
	rcfg.VCsPerLink = 1
	fab, err := router.NewFabric(topo, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &ringFixture{
		fab: fab,
		l01: netLink(t, fab, 0, 1),
		l12: netLink(t, fab, 1, 2),
		l20: netLink(t, fab, 2, 0),
	}
	r.a = fab.NewMessage(0, 2, 1, 10)
	r.b = fab.NewMessage(1, 0, 1, 5)
	r.c = fab.NewMessage(2, 1, 1, 7)
	blockWorm(fab, r.a, r.l01)
	blockWorm(fab, r.b, r.l12)
	blockWorm(fab, r.c, r.l20)
	return r
}

// registerBlocked announces m to the detector the way the engine does on
// its first failed routing attempt.
func registerBlocked(d *Detector, f *router.Fabric, m *router.Message, now int64) bool {
	node := f.RouterOf(f.LinkOfVC(m.HeadVC))
	outs := f.Candidates(node, int(m.Dst), nil)
	return d.RouteFailed(m, f.LinkOfVC(m.HeadVC), outs, true, now)
}

// cycleN runs n empty-transmission EndCycles starting at cycle 1.
func cycleN(d *Detector, f *router.Fabric, n int) int64 {
	transmitted := make([]bool, f.NumLinks())
	now := int64(1)
	for i := 0; i < n; i++ {
		d.EndCycle(now, nil, transmitted)
		now++
	}
	return now
}

// TestProbeReturnMarksInitiator walks a single probe around the 3-cycle:
// emitted at cycle 1 (one flit on L12), forwarded at cycle 2 (one flit on
// L20), and returning at cycle 3 when it finds L01 held by its own
// initiator. The return schedules the initiator for marking on its next
// failed routing attempt and consumes no flit.
func TestProbeReturnMarksInitiator(t *testing.T) {
	r := newRing(t)
	d := New(r.fab, Config{InitDelay: 1})
	r.b.Attempts, r.c.Attempts = 1, 1 // blocked, but only A initiates
	if registerBlocked(d, r.fab, r.a, 0) {
		t.Fatal("RouteFailed marked A before any probe ran")
	}

	now := cycleN(d, r.fab, 3)
	pt := d.ProbeTotals()
	if pt.Emitted != 1 || pt.Forwarded != 1 || pt.Returned != 1 || pt.Dropped != 0 {
		t.Fatalf("probe lifecycle = %+v, want 1 emitted, 1 forwarded, 1 returned, 0 dropped", pt)
	}
	if pt.Flits != 2 {
		t.Fatalf("probe flits = %d, want 2 (emit + forward; returns are free)", pt.Flits)
	}
	if pt.InFlight != 0 {
		t.Fatalf("probes in flight = %d after return, want 0", pt.InFlight)
	}

	outs := r.fab.Candidates(1, int(r.a.Dst), nil)
	if !d.RouteFailed(r.a, r.fab.LinkOfVC(r.a.HeadVC), outs, false, now) {
		t.Fatal("RouteFailed did not deliver the pending mark to the initiator")
	}
	if d.RouteFailed(r.a, r.fab.LinkOfVC(r.a.HeadVC), outs, false, now) {
		t.Fatal("pending mark delivered twice")
	}
}

// TestThreeInitiators registers all three members of the cycle: each
// launches its own probe, and all three return.
func TestThreeInitiators(t *testing.T) {
	r := newRing(t)
	d := New(r.fab, Config{InitDelay: 1})
	registerBlocked(d, r.fab, r.a, 0)
	registerBlocked(d, r.fab, r.b, 0)
	registerBlocked(d, r.fab, r.c, 0)

	cycleN(d, r.fab, 3)
	pt := d.ProbeTotals()
	if pt.Emitted != 3 || pt.Forwarded != 3 || pt.Returned != 3 {
		t.Fatalf("probe lifecycle = %+v, want 3 emitted, 3 forwarded, 3 returned", pt)
	}
}

// TestDigestDedupe keeps cycling within one wave: the initiator re-launches
// every cycle, but the digest window suppresses duplicates until
// ReprobeEvery reopens it.
func TestDigestDedupe(t *testing.T) {
	r := newRing(t)
	d := New(r.fab, Config{InitDelay: 1, ReprobeEvery: 1 << 30})
	r.b.Attempts, r.c.Attempts = 1, 1
	registerBlocked(d, r.fab, r.a, 0)

	cycleN(d, r.fab, 10)
	if pt := d.ProbeTotals(); pt.Emitted != 1 {
		t.Fatalf("emitted %d probes in one dedupe wave, want 1", pt.Emitted)
	}

	// A short reprobe window re-opens the wave and re-probes the edge.
	d2 := New(r.fab, Config{InitDelay: 1, ReprobeEvery: 4})
	registerBlocked(d2, r.fab, r.a, 0)
	cycleN(d2, r.fab, 10)
	if pt := d2.ProbeTotals(); pt.Emitted < 2 {
		t.Fatalf("emitted %d probes across reprobe windows, want >= 2", pt.Emitted)
	}
}

// TestStealIdleYieldsToData verifies the transport models: with StealIdle a
// data transmission on the requested link starves the emission, while the
// dedicated control VC proceeds.
func TestStealIdleYieldsToData(t *testing.T) {
	for _, tc := range []struct {
		transport Transport
		want      int64
	}{
		{TransportStealIdle, 0},
		{TransportControlVC, 1},
	} {
		r := newRing(t)
		d := New(r.fab, Config{InitDelay: 1, Transport: tc.transport})
		r.b.Attempts, r.c.Attempts = 1, 1
		registerBlocked(d, r.fab, r.a, 0)

		transmitted := make([]bool, r.fab.NumLinks())
		transmitted[r.l12] = true // data flit crossed A's requested output
		d.EndCycle(1, []router.LinkID{r.l12}, transmitted)
		if pt := d.ProbeTotals(); pt.Emitted != tc.want {
			t.Fatalf("%v: emitted %d with the link busy, want %d", tc.transport, pt.Emitted, tc.want)
		}

		// The gated edge is retried as soon as the link idles.
		transmitted[r.l12] = false
		d.EndCycle(2, nil, transmitted)
		if pt := d.ProbeTotals(); pt.Emitted != 1 {
			t.Fatalf("%v: emitted %d after the link idled, want 1", tc.transport, pt.Emitted)
		}
	}
}

// TestVictimOldest checks age-based victim selection: the probe visits B
// (gen 5) and C (gen 7); the oldest, B, is scheduled instead of the
// initiator A (gen 10).
func TestVictimOldest(t *testing.T) {
	r := newRing(t)
	d := New(r.fab, Config{InitDelay: 1, Victim: VictimOldest})
	r.b.Attempts, r.c.Attempts = 1, 1
	registerBlocked(d, r.fab, r.a, 0)

	now := cycleN(d, r.fab, 3)
	if pt := d.ProbeTotals(); pt.Returned != 1 {
		t.Fatalf("returned = %d, want 1", pt.Returned)
	}
	outsA := r.fab.Candidates(1, int(r.a.Dst), nil)
	if d.RouteFailed(r.a, r.fab.LinkOfVC(r.a.HeadVC), outsA, false, now) {
		t.Fatal("initiator A marked under VictimOldest; the oldest visited message owns the mark")
	}
	outsB := r.fab.Candidates(2, int(r.b.Dst), nil)
	if !d.RouteFailed(r.b, r.fab.LinkOfVC(r.b.HeadVC), outsB, false, now) {
		t.Fatal("oldest message B was not marked")
	}
}

// TestMaxHopsDropsProbe caps probes at one hop: the emission is allowed but
// the probe is discarded on arrival at the next header.
func TestMaxHopsDropsProbe(t *testing.T) {
	r := newRing(t)
	d := New(r.fab, Config{InitDelay: 1, MaxHops: 1})
	r.b.Attempts, r.c.Attempts = 1, 1
	registerBlocked(d, r.fab, r.a, 0)

	cycleN(d, r.fab, 4)
	pt := d.ProbeTotals()
	if pt.Returned != 0 {
		t.Fatalf("probe returned despite a 1-hop cap (lifecycle %+v)", pt)
	}
	if pt.Dropped == 0 {
		t.Fatal("capped probe was never dropped")
	}
}

// TestRoutableHeaderStopsChase frees the channel C waits on: when a probe
// reaches a header that has a free feasible output it must stop, because
// that worm is not wait-blocked.
func TestRoutableHeaderStopsChase(t *testing.T) {
	r := newRing(t)
	d := New(r.fab, Config{InitDelay: 1})
	r.b.Attempts, r.c.Attempts = 1, 1
	registerBlocked(d, r.fab, r.a, 0)

	// Break the cycle: release A's worm on L01 so C's requested output has
	// a free VC (C will route next cycle). The probe chasing B then C must
	// drop rather than manufacture a cycle.
	d.EndCycle(1, nil, make([]bool, r.fab.NumLinks())) // emit toward B
	r.fab.ReleaseWorm(r.a)
	r.a.Phase = router.PhaseDelivered
	cyc := make([]bool, r.fab.NumLinks())
	d.EndCycle(2, nil, cyc) // forward at B's header toward C
	d.EndCycle(3, nil, cyc) // arrive at C: C has a free output now
	d.EndCycle(4, nil, cyc)
	pt := d.ProbeTotals()
	if pt.Returned != 0 {
		t.Fatalf("probe returned through a routable header (lifecycle %+v)", pt)
	}
	if pt.Dropped == 0 {
		t.Fatalf("probe was never dropped (lifecycle %+v)", pt)
	}
}

// TestStaleProbeDropped releases the worm a probe is sitting on: the probe
// must detect the ownership change and drop.
func TestStaleProbeDropped(t *testing.T) {
	r := newRing(t)
	d := New(r.fab, Config{InitDelay: 1})
	r.b.Attempts, r.c.Attempts = 1, 1
	registerBlocked(d, r.fab, r.a, 0)

	d.EndCycle(1, nil, make([]bool, r.fab.NumLinks())) // probe now on B's VC
	if pt := d.ProbeTotals(); pt.InFlight != 1 {
		t.Fatalf("in flight = %d, want 1", pt.InFlight)
	}
	r.fab.ReleaseWorm(r.b)
	r.b.Phase = router.PhaseDelivered
	d.EndCycle(2, nil, make([]bool, r.fab.NumLinks()))
	pt := d.ProbeTotals()
	if pt.InFlight != 0 || pt.Dropped != 1 {
		t.Fatalf("stale probe not dropped: %+v", pt)
	}
}

// TestBodyWalk builds a two-link worm on a 4-ring and verifies the probe
// walks the body link by link, charging one flit per traversal.
func TestBodyWalk(t *testing.T) {
	topo := topology.New(4, 1)
	rcfg := router.DefaultConfig()
	rcfg.VCsPerLink = 1
	fab, err := router.NewFabric(topo, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	l01 := netLink(t, fab, 0, 1)
	l12 := netLink(t, fab, 1, 2)
	l23 := netLink(t, fab, 2, 3)
	l30 := netLink(t, fab, 3, 0)

	// A: header at node 1, wants L12. B: holds L12 and L23, header at node
	// 3, wants L30. C: holds L30, header at node 0, wants L01 (held by A).
	a := fab.NewMessage(0, 2, 1, 0)
	b := fab.NewMessage(1, 0, 2, 0)
	c := fab.NewMessage(3, 1, 1, 0)
	blockWorm(fab, a, l01)
	vc1 := fab.FreeVC(l12)
	fab.Allocate(b, router.NilVC, vc1)
	vc2 := fab.FreeVC(l23)
	fab.Allocate(b, vc1, vc2)
	b.HeadVC, b.Phase = vc2, router.PhaseNetwork
	fab.VCs[vc1].Flits = 1
	fab.VCs[vc2].Flits = 1
	fab.VCs[vc2].HasHeader = true
	fab.VCs[vc1].HasTail = true
	b.Attempts, b.BlockedSince = 1, 0
	blockWorm(fab, c, l30)

	d := New(fab, Config{InitDelay: 1})
	registerBlocked(d, fab, a, 0)

	// Cycle 1: emit onto B's tail VC (flit on L12). Cycle 2: walk the body
	// to B's head VC (flit on L23). Cycle 3: forward at node 3 onto C
	// (flit on L30). Cycle 4: return at node 0 where L01 is held by A.
	cycleN(d, fab, 4)
	pt := d.ProbeTotals()
	if pt.Returned != 1 {
		t.Fatalf("probe did not return around the 4-ring: %+v", pt)
	}
	if pt.Flits != 3 {
		t.Fatalf("probe flits = %d, want 3 (L12, L23 body walk, L30)", pt.Flits)
	}
}

// TestRouteSucceededClearsState ensures a message that routes after probes
// were launched neither marks nor initiates further waves.
func TestRouteSucceededClearsState(t *testing.T) {
	r := newRing(t)
	d := New(r.fab, Config{InitDelay: 1})
	r.b.Attempts, r.c.Attempts = 1, 1
	registerBlocked(d, r.fab, r.a, 0)
	cycleN(d, r.fab, 3) // probe returns, pendingMark[A] set

	d.RouteSucceeded(r.a, r.fab.LinkOfVC(r.a.HeadVC))
	outs := r.fab.Candidates(1, int(r.a.Dst), nil)
	if d.RouteFailed(r.a, r.fab.LinkOfVC(r.a.HeadVC), outs, false, 10) {
		t.Fatal("mark survived RouteSucceeded")
	}

	emitted := d.ProbeTotals().Emitted
	transmitted := make([]bool, r.fab.NumLinks())
	d.EndCycle(10, nil, transmitted)
	// A re-blocked with first=false above, so it initiates again — but only
	// because it genuinely re-registered; a fully routed message would not
	// appear. Just assert the detector stayed consistent.
	pt := d.ProbeTotals()
	if pt.Emitted < emitted {
		t.Fatalf("emitted went backwards: %d -> %d", emitted, pt.Emitted)
	}
}

// TestSelfDeadlockDetected covers a worm that wrapped all the way around a
// torus dimension and blocks on its own body: the whole 3-ring is occupied
// by one message whose header, back at its source node, wants the channel
// its own tail still holds. The seed fan-out must recognize the initiator's
// own worm on a feasible output as a cycle — a virtual return with zero
// hops, zero flits, and no probe ever in flight.
func TestSelfDeadlockDetected(t *testing.T) {
	topo := topology.New(3, 1)
	rcfg := router.DefaultConfig()
	rcfg.VCsPerLink = 1
	fab, err := router.NewFabric(topo, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	l01 := netLink(t, fab, 0, 1)
	l12 := netLink(t, fab, 1, 2)
	l20 := netLink(t, fab, 2, 0)

	m := fab.NewMessage(0, 1, 3, 10)
	var prev router.VCID = router.NilVC
	for _, l := range []router.LinkID{l01, l12, l20} {
		vc := fab.FreeVC(l)
		fab.Allocate(m, prev, vc)
		fab.VCs[vc].Flits = 1
		prev = vc
	}
	fab.VCOf(l01, 0).HasTail = true
	fab.VCs[prev].HasHeader = true
	m.HeadVC, m.Phase = prev, router.PhaseNetwork
	m.Attempts = 1
	m.BlockedSince = 0

	d := New(fab, Config{InitDelay: 1})
	if registerBlocked(d, fab, m, 0) {
		t.Fatal("RouteFailed marked the worm before any probe ran")
	}
	now := cycleN(d, fab, 2)

	pt := d.ProbeTotals()
	if pt.Returned != 1 || pt.Emitted != 0 || pt.Forwarded != 0 {
		t.Fatalf("probe totals = %+v, want exactly one virtual return and no spawns", pt)
	}
	if pt.Flits != 0 {
		t.Fatalf("probe flits = %d, want 0 (self-cycle found without leaving the router)", pt.Flits)
	}
	if pt.InFlight != 0 {
		t.Fatalf("probes in flight = %d, want 0", pt.InFlight)
	}
	outs := fab.Candidates(0, int(m.Dst), nil)
	if !d.RouteFailed(m, fab.LinkOfVC(m.HeadVC), outs, false, now) {
		t.Fatal("self-deadlocked worm was not marked")
	}
}
