package probe

import (
	"testing"

	"wormnet/internal/router"
	"wormnet/internal/topology"
)

// FuzzProbeDigest drives the detector with an arbitrary interleaving of the
// events the engine can deliver — worm creation and release, first and
// repeated routing failures, routing successes, end-of-cycle advances with
// arbitrary transmission bitmaps, and worm extension — and asserts the
// probe-accounting invariants that the forward/dedupe/return machinery must
// preserve no matter the sequence:
//
//   - conservation: every probe ever spawned is either still in flight or
//     was consumed exactly once (relayed at a header, returned, or dropped);
//   - flits only come from link traversals, so the flit count is at least
//     the number of spawns (each spawn crosses one link);
//   - no in-flight probe exceeds the hop cap, and each sits on a VC still
//     owned by the worm it chases.
//
// The byte stream is an op-code program; indices are reduced modulo the
// fabric's sizes so every input is valid by construction. The header bytes
// reach both transports, both victim policies and a spread of hop caps.
func FuzzProbeDigest(f *testing.F) {
	f.Add([]byte{0, 0, 0, 3, 0, 5, 2, 9, 4, 4})                      // create + fail + cycle
	f.Add([]byte{1, 2, 0, 1, 0, 2, 4, 0, 4, 3, 4, 7, 1, 1})          // ctrl-vc, release mid-flight
	f.Add([]byte{2, 7, 0, 8, 0, 0, 1, 0, 2, 1, 3, 2, 4, 3, 5, 0, 1}) // every op once
	f.Add([]byte{3, 1, 0, 1, 0, 9, 0, 17, 2, 9, 127, 4, 0, 4, 0, 4, 0, 4, 0, 4, 0, 5, 9, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		cfg := Config{InitDelay: 1, MaxHops: int32(data[0]%8) + 1}
		if data[0]&1 == 1 {
			cfg.Transport = TransportControlVC
		}
		if data[0]&2 == 2 {
			cfg.Victim = VictimOldest
		}
		cfg.ReprobeEvery = int64(data[1]%16) + 1
		data = data[2:]

		topo := topology.New(3, 2)
		rcfg := router.DefaultConfig()
		rcfg.VCsPerLink = 2
		fab, err := router.NewFabric(topo, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		d := New(fab, cfg)

		nLinks := fab.NumLinks()
		nNodes := topo.Nodes()
		transmitted := make([]bool, nLinks)
		var txLinks []router.LinkID
		var live []*router.Message
		outsBuf := make([]router.LinkID, 0, 8)
		now := int64(1)

		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		link := func() router.LinkID { return router.LinkID(int(next()) % nLinks) }

		for pos < len(data) {
			switch next() % 6 {
			case 0: // create a blocked single-flit worm and register it
				l := link()
				vc := fab.FreeVC(l)
				if vc == router.NilVC {
					break
				}
				m := fab.NewMessage(0, int(next())%nNodes, 1, now)
				fab.Allocate(m, router.NilVC, vc)
				m.HeadVC, m.Phase = vc, router.PhaseNetwork
				fab.VCs[vc].Flits = 1
				fab.VCs[vc].HasHeader = true
				fab.VCs[vc].HasTail = true
				m.Attempts = 1
				m.BlockedSince = now
				outsBuf = outsBuf[:0]
				for i := int(next())%4 + 1; i > 0; i-- {
					outsBuf = append(outsBuf, link())
				}
				d.RouteFailed(m, l, outsBuf, true, now)
				live = append(live, m)
			case 1: // release a worm (probes on it must go stale)
				if len(live) == 0 {
					break
				}
				i := int(next()) % len(live)
				m := live[i]
				for _, vc := range fab.ReleaseWorm(m) {
					d.VCFreed(fab.LinkOfVC(vc))
				}
				m.Phase = router.PhaseDelivered
				d.RouteSucceeded(m, router.NilLink)
				fab.FreeMessage(m)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case 2: // repeated failed attempt on a live worm
				if len(live) == 0 {
					break
				}
				m := live[int(next())%len(live)]
				outsBuf = outsBuf[:0]
				for i := int(next())%4 + 1; i > 0; i-- {
					outsBuf = append(outsBuf, link())
				}
				m.Attempts++
				d.RouteFailed(m, fab.LinkOfVC(m.HeadVC), outsBuf, false, now)
			case 3: // successful routing of a live worm
				if len(live) == 0 {
					break
				}
				m := live[int(next())%len(live)]
				m.Attempts = 0
				d.RouteSucceeded(m, fab.LinkOfVC(m.HeadVC))
			case 4: // end of cycle with an arbitrary transmission bitmap
				txLinks = txLinks[:0]
				for i := range transmitted {
					transmitted[i] = false
				}
				for i := int(next()) % 8; i > 0; i-- {
					l := link()
					if !transmitted[l] {
						transmitted[l] = true
						txLinks = append(txLinks, l)
					}
				}
				d.EndCycle(now, txLinks, transmitted)
				now++
			case 5: // extend a live worm by one VC (grow its body)
				if len(live) == 0 {
					break
				}
				m := live[int(next())%len(live)]
				vc := fab.FreeVC(link())
				if vc == router.NilVC || m.Phase != router.PhaseNetwork {
					break
				}
				fab.VCs[m.HeadVC].HasHeader = false
				fab.Allocate(m, m.HeadVC, vc)
				m.HeadVC = vc
				fab.VCs[vc].Flits = 1
				fab.VCs[vc].HasHeader = true
			}

			// Accounting invariants, checked after every event. Seed
			// returns consume a virtual probe that was never in flight
			// (a self-cycle found during fan-out at the initiator), so
			// they sit outside the spawn/consume ledger.
			pt := d.ProbeTotals()
			consumed := d.relayed + (pt.Returned - d.seedRet) + pt.Dropped
			if int64(pt.InFlight) != pt.Emitted+pt.Forwarded-consumed {
				t.Fatalf("probe conservation violated: inflight %d != %d emitted + %d forwarded - %d consumed",
					pt.InFlight, pt.Emitted, pt.Forwarded, consumed)
			}
			if pt.Flits < pt.Emitted+pt.Forwarded {
				t.Fatalf("flits %d < spawns %d: a probe spawned without crossing a link",
					pt.Flits, pt.Emitted+pt.Forwarded)
			}
			for _, p := range d.probes {
				if p.hops > d.cfg.MaxHops {
					t.Fatalf("in-flight probe at %d hops exceeds cap %d", p.hops, d.cfg.MaxHops)
				}
			}
		}
	})
}
