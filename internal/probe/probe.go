// Package probe implements a Chandy–Misra–Haas edge-chasing deadlock
// detector for the wormhole fabric, the classic distributed alternative to
// the paper's router-local NDM/PDM mechanisms.
//
// When a header stays blocked past an initiation delay, its router launches
// probe control messages along the wait-for graph: a probe carries
// (initiator message ID, hop count, 64-bit rolling path digest) and chases
// the worm occupying a requested virtual channel, walking that worm's body
// link by link toward its header. At a blocked header the probe fans out
// onto every dependency edge not yet covered this wave (per-initiator digest
// dedupe bounds the storm, together with a MaxHops cap); a probe that
// reaches a channel held by its own initiator has traversed a cycle of the
// wait-for graph, and the initiator — or the oldest message seen on the
// path, under VictimOldest — is marked deadlocked and handed to recovery.
//
// Unlike NDM and PDM, probes are not free: every link traversal charges one
// control flit on the physical link it crosses. The transport is
// configurable: TransportControlVC models a dedicated control virtual
// channel (probes move regardless of data traffic, at most one per link per
// cycle), while TransportStealIdle only moves probes across links that
// carried no data flit this cycle. Probe returns are a router-local
// observation (the probe is already at the router holding the initiator's
// channel) and consume no flit.
package probe

import (
	"encoding/binary"
	"fmt"
	"slices"

	"wormnet/internal/detect"
	"wormnet/internal/router"
	"wormnet/internal/trace"
)

// Transport selects how probe flits share the physical links with data.
type Transport uint8

const (
	// TransportStealIdle sends probe flits only across links that carried
	// no data flit this cycle. Free of data-plane interference, but probes
	// stall under heavy load — except near deadlock, where links idle.
	TransportStealIdle Transport = iota
	// TransportControlVC models a dedicated control virtual channel: one
	// probe flit may cross each link per cycle regardless of data traffic.
	TransportControlVC
)

func (t Transport) String() string {
	if t == TransportControlVC {
		return "ctrl-vc"
	}
	return "steal-idle"
}

// Victim selects which message a returning probe marks for recovery.
type Victim uint8

const (
	// VictimLocal marks the probe's initiator — the message whose router
	// observes the cycle. Simple and always router-local.
	VictimLocal Victim = iota
	// VictimOldest marks the oldest (earliest generation time) message the
	// probe visited, the age-based selection of classic CMH variants; it
	// biases recovery toward the message most likely to stall others.
	VictimOldest
)

func (v Victim) String() string {
	if v == VictimOldest {
		return "oldest"
	}
	return "local"
}

// Config parameterizes the detector.
type Config struct {
	// InitDelay is the number of cycles a header must stay blocked before
	// its router starts probing (the analog of NDM/PDM thresholds).
	// Defaults to 8.
	InitDelay int64
	// ReprobeEvery re-opens the digest-dedupe window this many cycles after
	// a wave started, so still-blocked initiators re-probe a wait graph
	// that may have changed shape. Defaults to 4*InitDelay.
	ReprobeEvery int64
	// MaxHops caps a probe's link traversals; probes past the cap are
	// dropped. Bounds worst-case storm length. Defaults to 64.
	MaxHops int32
	// Transport selects the probe flit transport model.
	Transport Transport
	// Victim selects the victim a returning probe marks.
	Victim Victim
}

func (c Config) withDefaults() Config {
	if c.InitDelay <= 0 {
		c.InitDelay = 8
	}
	if c.ReprobeEvery <= 0 {
		c.ReprobeEvery = 4 * c.InitDelay
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 64
	}
	return c
}

// pr is one in-flight probe. It sits on virtual channel at, which belongs to
// the worm target it is chasing; each cycle it advances one link along
// target's body toward the header (charging a control flit), and at the
// header it fans out onto the worms blocking target.
type pr struct {
	initiator router.MsgID // message whose router launched the chase
	target    router.MsgID // worm currently being chased
	at        router.VCID  // VC of target the probe currently sits on
	hops      int32        // link traversals so far
	digest    uint64       // rolling FNV-1a digest of the chase path (probe payload)
	victim    router.MsgID // oldest message seen on the path (VictimOldest)
	victimGen int64        // generation time of victim
}

// initiatorState is the per-message dedupe window. seen holds the keys of
// the wait edges already chased (or self-returned) in the current wave.
type initiatorState struct {
	waveStart int64
	seen      map[uint64]struct{}
}

// Detector is the CMH edge-chasing detector. It satisfies detect.Detector,
// detect.Traceable and detect.ProbeObserver.
type Detector struct {
	fab *router.Fabric
	cfg Config
	tr  *trace.Recorder

	// In-flight probes, advanced once per cycle. next is the scratch buffer
	// the survivors of each advance are compacted into; the two are swapped
	// so steady-state advancing allocates nothing.
	probes []pr
	next   []pr

	// Blocked messages eligible to initiate probing, as a dense list with a
	// per-ID index for O(1) removal (swap-remove). blockedIdx[id] == -1
	// means absent.
	blocked    []router.MsgID
	blockedIdx []int32

	inits       []initiatorState
	pendingMark []bool // probe returned for this victim; mark on next RouteFailed

	// linkUsedAt[l] == now when a probe flit already crossed link l this
	// cycle: at most one probe flit per link per cycle in either transport.
	linkUsedAt []int64

	candBuf []router.LinkID

	emitted   int64
	forwarded int64
	dropped   int64
	returned  int64
	relayed   int64 // probes consumed by fan-out at a header (not dropped, not returned)
	seedRet   int64 // returns of virtual seed probes (self-cycles found at the initiator)
	flits     int64
}

// New constructs the detector over the fabric.
func New(f *router.Fabric, cfg Config) *Detector {
	d := &Detector{
		fab:        f,
		cfg:        cfg.withDefaults(),
		linkUsedAt: make([]int64, f.NumLinks()),
	}
	for i := range d.linkUsedAt {
		d.linkUsedAt[i] = -1
	}
	return d
}

// Name identifies the detector and its configuration in results tables.
func (d *Detector) Name() string {
	return fmt.Sprintf("cmh(init=%d,hops=%d,%s,%s)",
		d.cfg.InitDelay, d.cfg.MaxHops, d.cfg.Transport, d.cfg.Victim)
}

// SetTracer attaches the flight recorder (nil-safe).
func (d *Detector) SetTracer(tr *trace.Recorder) { d.tr = tr }

// ProbeTotals reports cumulative probe activity for the engine's metrics.
func (d *Detector) ProbeTotals() detect.ProbeTotals {
	return detect.ProbeTotals{
		Emitted:   d.emitted,
		Forwarded: d.forwarded,
		Dropped:   d.dropped,
		Returned:  d.returned,
		Flits:     d.flits,
		InFlight:  len(d.probes),
	}
}

func (d *Detector) growMsg(id router.MsgID) {
	n := int(id) + 1
	for len(d.blockedIdx) < n {
		d.blockedIdx = append(d.blockedIdx, -1)
	}
	for len(d.inits) < n {
		d.inits = append(d.inits, initiatorState{waveStart: -1})
	}
	for len(d.pendingMark) < n {
		d.pendingMark = append(d.pendingMark, false)
	}
}

func (d *Detector) addBlocked(id router.MsgID) {
	if d.blockedIdx[id] >= 0 {
		return
	}
	d.blockedIdx[id] = int32(len(d.blocked))
	d.blocked = append(d.blocked, id)
}

func (d *Detector) removeBlocked(id router.MsgID) {
	if int(id) >= len(d.blockedIdx) {
		return
	}
	i := d.blockedIdx[id]
	if i < 0 {
		return
	}
	last := d.blocked[len(d.blocked)-1]
	d.blocked[i] = last
	d.blockedIdx[last] = i
	d.blocked = d.blocked[:len(d.blocked)-1]
	d.blockedIdx[id] = -1
}

// RouteFailed records the blocked message as a probing candidate and
// reports whether a returned probe has scheduled it for marking. Message
// IDs are pooled by the fabric, so the first failed attempt of an
// incarnation resets all per-ID state.
func (d *Detector) RouteFailed(m *router.Message, in router.LinkID, outs []router.LinkID, first bool, now int64) bool {
	d.growMsg(m.ID)
	if first {
		d.pendingMark[m.ID] = false
		st := &d.inits[m.ID]
		st.waveStart = -1
		clear(st.seen)
		d.addBlocked(m.ID)
	}
	if d.pendingMark[m.ID] {
		d.pendingMark[m.ID] = false
		return true
	}
	return false
}

// RouteSucceeded retires the message from the probing candidates.
func (d *Detector) RouteSucceeded(m *router.Message, in router.LinkID) {
	if int(m.ID) < len(d.blockedIdx) {
		d.removeBlocked(m.ID)
		d.pendingMark[m.ID] = false
	}
}

// VCFreed is not needed: probes validate channel ownership as they move.
func (d *Detector) VCFreed(l router.LinkID) {}

// EndCycle advances every in-flight probe one step and launches new probes
// from eligible blocked initiators. It reads fabric state but never mutates
// it, honoring the detect.Detector contract; txLinks and transmitted are
// engine-owned scratch, consulted only within the call.
func (d *Detector) EndCycle(now int64, txLinks []router.LinkID, transmitted []bool) {
	d.advance(now, transmitted)
	d.launch(now, transmitted)
}

// channelFree reports whether a probe flit may cross link l this cycle.
func (d *Detector) channelFree(l router.LinkID, now int64, transmitted []bool) bool {
	if d.linkUsedAt[l] == now {
		return false
	}
	if d.cfg.Transport == TransportStealIdle && int(l) < len(transmitted) && transmitted[l] {
		return false
	}
	return true
}

func (d *Detector) useChannel(l router.LinkID, now int64) {
	d.linkUsedAt[l] = now
	d.flits++
}

// advance moves each in-flight probe at most one link along the worm it is
// chasing, handling arrival at the header.
func (d *Detector) advance(now int64, transmitted []bool) {
	next := d.next[:0]
	for _, p := range d.probes {
		vc := &d.fab.VCs[p.at]
		if vc.Occupant != p.target {
			d.drop(p, trace.ProbeDropStale)
			continue
		}
		m := d.fab.Msg(p.target)
		if m.HeadVC == p.at {
			next = d.arrive(p, m, now, transmitted, next)
			continue
		}
		nxt := vc.Next
		if nxt == router.NilVC {
			// The chain was cut under the probe (recovery in progress).
			d.drop(p, trace.ProbeDropStale)
			continue
		}
		nl := d.fab.LinkOfVC(nxt)
		if d.fab.LinkFailed(nl) {
			d.drop(p, trace.ProbeDropStale)
			continue
		}
		if !d.channelFree(nl, now, transmitted) {
			next = append(next, p) // wait for the link
			continue
		}
		d.useChannel(nl, now)
		p.hops++
		if p.hops > d.cfg.MaxHops {
			d.drop(p, trace.ProbeDropHops)
			continue
		}
		p.at = nxt
		next = append(next, p)
	}
	d.probes, d.next = next, d.probes
}

// arrive handles a probe that reached the header VC of the worm it chased.
func (d *Detector) arrive(p pr, m *router.Message, now int64, transmitted []bool, next []pr) []pr {
	if m.Phase != router.PhaseNetwork || m.Attempts == 0 {
		// The worm is no longer wait-blocked; the edge evaporated.
		d.drop(p, trace.ProbeDropStale)
		return next
	}
	if p.hops >= d.cfg.MaxHops {
		d.drop(p, trace.ProbeDropHops)
		return next
	}
	if d.cfg.Victim == VictimOldest && m.GenTime < p.victimGen {
		p.victim = m.ID
		p.victimGen = m.GenTime
	}
	node := d.fab.RouterOf(d.fab.LinkOfVC(p.at))
	return d.expand(p, m, node, now, transmitted, next, false)
}

// expand fans a probe out from the blocked header of m at node onto the
// worms holding its feasible outputs. When emit is true the probe is a
// freshly seeded initiator probe (launch path): children go out as
// KindProbeEmit with hops starting at 1 and the parent is virtual. When
// emit is false the probe physically arrived here: children are
// KindProbeForward and the parent is consumed (relayed, returned, or
// dropped).
func (d *Detector) expand(p pr, m *router.Message, node int, now int64, transmitted []bool, next []pr, emit bool) []pr {
	outs := d.fab.Candidates(node, int(m.Dst), d.candBuf[:0])
	d.candBuf = outs[:0]
	st := &d.inits[p.initiator]

	// A header with a free VC on a feasible, healthy output is not
	// wait-blocked — it will route; chasing past it would manufacture
	// false cycles.
	for _, out := range outs {
		if d.fab.LinkFailed(out) {
			continue
		}
		if d.fab.FreeVC(out) != router.NilVC {
			if !emit {
				d.drop(p, trace.ProbeDropRoutable)
			}
			return next
		}
	}

	kind := trace.KindProbeForward
	if emit {
		kind = trace.KindProbeEmit
	}
	spawned := false
	blockedCh := false
	for _, out := range outs {
		if d.fab.LinkFailed(out) {
			continue
		}
		lk := &d.fab.Links[out]
		for v := lk.FirstVC; v < lk.FirstVC+router.VCID(lk.NumVC); v++ {
			occ := d.fab.VCs[v].Occupant
			if occ == router.NilMsg {
				continue
			}
			// The initiator check must precede the own-worm skip: for a
			// seed probe target == initiator, and a feasible output held
			// by the initiator's own body is a self-cycle (the worm
			// wrapped around a torus dimension and blocks itself) that
			// the skip would otherwise swallow.
			if occ == p.initiator {
				if emit {
					// Dedupe the self-edge per wave like any spawned
					// edge, or an unmarked initiator would count a
					// fresh return every single cycle.
					key := edgeKey(out, occ)
					if st.seen == nil {
						st.seen = make(map[uint64]struct{})
					}
					if _, dup := st.seen[key]; dup {
						continue
					}
					st.seen[key] = struct{}{}
					d.seedRet++
				}
				d.ret(p, out, node, now)
				return next
			}
			if occ == p.target {
				continue
			}
			// Dedupe on the wait edge itself, not the path that reached
			// it. This is CMH's classic "dependent" memory: once a wave
			// has chased worm occ from channel out, any other probe of
			// the same wave reaching that edge adds nothing — the chase
			// outcome is path-independent, and every path that closes a
			// cycle returns via the initiator check above before getting
			// here. Path-keyed dedupe would instead let probes of
			// initiators that merely wait ON a cycle orbit it until the
			// hop cap (each lap is a fresh path), monopolizing the
			// cycle's links and starving the cycle members' own seed
			// launches — the deadlock would sit undetected behind its
			// own probe storm.
			key := edgeKey(out, occ)
			if st.seen == nil {
				st.seen = make(map[uint64]struct{})
			}
			if _, dup := st.seen[key]; dup {
				continue
			}
			if !d.channelFree(out, now, transmitted) {
				blockedCh = true
				continue
			}
			d.useChannel(out, now)
			st.seen[key] = struct{}{}
			dig := roll(p.digest, out, occ)
			child := pr{
				initiator: p.initiator,
				target:    occ,
				at:        v,
				hops:      p.hops + 1,
				digest:    dig,
				victim:    p.victim,
				victimGen: p.victimGen,
			}
			if emit {
				d.emitted++
			} else {
				d.forwarded++
			}
			d.tr.Emit(kind, p.initiator, out, int32(node), int64(child.hops), int32(occ))
			next = append(next, child)
			spawned = true
		}
	}
	if emit {
		return next
	}
	switch {
	case blockedCh:
		next = append(next, p) // retry the gated edges next cycle
	case spawned:
		d.relayed++
	default:
		d.drop(p, trace.ProbeDropDeadEnd)
	}
	return next
}

// ret consumes a probe that found a channel held by its own initiator: a
// wait-for cycle. The victim is scheduled for marking on its next failed
// routing attempt (the engine calls RouteFailed for every blocked message
// every cycle, so the mark lands in the same cycle's route pass). The
// return is a router-local observation and consumes no flit.
func (d *Detector) ret(p pr, out router.LinkID, node int, now int64) {
	victim := p.initiator
	if d.cfg.Victim == VictimOldest {
		victim = p.victim
	}
	// Message IDs are pooled; a probe whose victim slot was recycled to a
	// different incarnation must not mark the newcomer.
	if vm := d.fab.Msg(victim); vm == nil || vm.GenTime != p.victimGen {
		d.drop(p, trace.ProbeDropStale)
		return
	}
	d.returned++
	d.growMsg(victim)
	d.pendingMark[victim] = true
	d.tr.Emit(trace.KindProbeReturn, p.initiator, out, int32(node), int64(p.hops), int32(victim))
}

func (d *Detector) drop(p pr, reason int64) {
	d.dropped++
	d.tr.Emit(trace.KindProbeDrop, p.initiator, d.fab.LinkOfVC(p.at), -1, reason, int32(p.target))
}

// launch seeds probes from every message blocked past InitDelay. The seed
// probe is virtual — it sits at the initiator's own header — and fans out
// immediately; per-wave digest dedupe makes repeated launches idempotent
// until ReprobeEvery re-opens the window, so edges gated by busy links are
// retried every cycle without duplicating edges already probed.
func (d *Detector) launch(now int64, transmitted []bool) {
	for i := 0; i < len(d.blocked); i++ {
		id := d.blocked[i]
		m := d.fab.Msg(id)
		if m == nil || m.Phase != router.PhaseNetwork || m.Attempts == 0 {
			d.removeBlocked(id)
			i--
			continue
		}
		if now-m.BlockedSince < d.cfg.InitDelay || m.HeadVC == router.NilVC {
			continue
		}
		st := &d.inits[id]
		if st.waveStart < m.BlockedSince || now-st.waveStart >= d.cfg.ReprobeEvery {
			st.waveStart = now
			clear(st.seen)
		}
		node := d.fab.RouterOf(d.fab.LinkOfVC(m.HeadVC))
		seed := pr{
			initiator: id,
			target:    id,
			at:        m.HeadVC,
			hops:      0,
			digest:    digestSeed(id),
			victim:    id,
			victimGen: m.GenTime,
		}
		d.probes = d.expand(seed, m, node, now, transmitted, d.probes, true)
	}
}

// AppendState implements detect.Encodable for the model checker. The
// encoding covers everything that influences future probe behavior:
//
//   - every in-flight probe, in advance order (ordering is behavioral: the
//     per-link one-flit budget is consumed first come, first served);
//   - every blocked initiator, in launch order, with its blocked age clamped
//     at InitDelay (beyond which eligibility no longer changes);
//   - the pending-mark bits;
//   - every non-default per-initiator wave window: wave age clamped at
//     ReprobeEvery (beyond which the next launch reopens it), the
//     wave-predates-blocking bit, and the sorted dedupe keys.
//
// Absolute cycle stamps never appear: ages are clamped at the point past
// their largest behavioral threshold, and a probe's victim generation stamp
// is encoded as its freshness (does the pooled slot still hold that
// incarnation) plus its rank among live generation times (which fixes every
// VictimOldest comparison it can still participate in). The rolling path
// digest is carried but never compared (dedupe is edge-keyed), so it is
// excluded. linkUsedAt and the cumulative counters are scratch/telemetry.
func (d *Detector) AppendState(buf []byte, now int64) []byte {
	buf = append(buf, byte(len(d.probes)))
	for i := range d.probes {
		p := &d.probes[i]
		buf = appendID(buf, int32(p.initiator))
		buf = appendID(buf, int32(p.target))
		buf = appendID(buf, int32(p.at))
		buf = appendID(buf, p.hops)
		buf = appendID(buf, int32(p.victim))
		buf = d.appendGenRank(buf, p.victim, p.victimGen)
	}
	buf = append(buf, byte(len(d.blocked)))
	for _, id := range d.blocked {
		buf = appendID(buf, int32(id))
		m := d.fab.Msg(id)
		if m == nil || m.Phase != router.PhaseNetwork {
			buf = append(buf, 0xff, 0xff) // stale entry; launch retires it
			continue
		}
		age := now - m.BlockedSince
		if age > d.cfg.InitDelay {
			age = d.cfg.InitDelay
		}
		buf = appendID(buf, int32(age))
	}
	for id := range d.pendingMark {
		if d.pendingMark[id] {
			buf = appendID(buf, int32(id))
		}
	}
	buf = append(buf, 0xfe) // section separator (never a length byte above)
	var keys []uint64
	for id := range d.inits {
		st := &d.inits[id]
		if st.waveStart < 0 && len(st.seen) == 0 {
			continue
		}
		buf = appendID(buf, int32(id))
		var waveAge int32 = -1
		var predates byte
		if st.waveStart >= 0 {
			a := now - st.waveStart
			if a > d.cfg.ReprobeEvery {
				a = d.cfg.ReprobeEvery
			}
			waveAge = int32(a)
			if m := d.fab.Msg(router.MsgID(id)); m == nil || st.waveStart < m.BlockedSince {
				predates = 1
			}
		}
		buf = appendID(buf, waveAge)
		buf = append(buf, predates, byte(len(st.seen)))
		keys = keys[:0]
		for k := range st.seen {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		for _, k := range keys {
			buf = binary.LittleEndian.AppendUint64(buf, k)
		}
	}
	return buf
}

// appendGenRank encodes a probe's victim generation stamp relative to the
// live message population: freshness plus strictly-less / equal counts.
func (d *Detector) appendGenRank(buf []byte, victim router.MsgID, gen int64) []byte {
	var fresh, lt, eq byte
	if vm := d.fab.Msg(victim); vm != nil && vm.GenTime == gen {
		fresh = 1
	}
	d.fab.LiveMessages(func(m *router.Message) {
		switch {
		case m.GenTime < gen:
			lt++
		case m.GenTime == gen:
			eq++
		}
	})
	return append(buf, fresh, lt, eq)
}

// appendID appends a small signed value as two little-endian bytes (-1
// survives as 0xffff; model-checked fabrics keep every ID tiny).
func appendID(buf []byte, v int32) []byte {
	return append(buf, byte(v), byte(v>>8))
}

// FNV-1a parameters for the rolling path digest.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func digestSeed(initiator router.MsgID) uint64 {
	return (fnvOffset ^ uint64(initiator)) * fnvPrime
}

// roll folds one wait edge (output link, worm occupying it) into the path
// digest a probe carries. Distinct edge sequences collide with probability
// ~2^-64 per pair, so the digest identifies the chase path in practice.
func roll(d uint64, out router.LinkID, occ router.MsgID) uint64 {
	d = (d ^ uint64(out)) * fnvPrime
	d = (d ^ uint64(occ)) * fnvPrime
	return d
}

// edgeKey hashes one wait edge in isolation — the per-wave dedupe key.
// Unlike the rolling path digest it is path-independent, so a wave chases
// each edge at most once no matter how many routes lead to it.
func edgeKey(out router.LinkID, occ router.MsgID) uint64 {
	return roll(fnvOffset, out, occ)
}
