package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d times", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100_000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	for i := 0; i < 100_000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / 100_000; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(9)
	hits := 0
	const draws = 100_000
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %.4f", got)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	if s.Bool(-1) {
		t.Error("Bool(-1) returned true")
	}
	if !s.Bool(2) {
		t.Error("Bool(2) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	for n := 0; n <= 20; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	wantSum := 0
	for _, v := range orig {
		wantSum += v
	}
	if sum != wantSum {
		t.Fatalf("shuffle altered elements: %v", xs)
	}
}

func TestExpMean(t *testing.T) {
	s := New(19)
	const draws = 200_000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := s.Exp(10)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-10) > 0.2 {
		t.Errorf("Exp(10) mean %.3f", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(23)
	const p, draws = 0.25, 200_000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(s.Geometric(p))
	}
	want := (1 - p) / p // mean of geometric on {0,1,...}
	if mean := sum / draws; math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%.2f) mean %.3f, want about %.3f", p, mean, want)
	}
	if v := s.Geometric(1); v != 0 {
		t.Errorf("Geometric(1) = %d, want 0", v)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(17)
	}
}
