package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d times", same)
	}
}

func TestDeriveDistinctIndices(t *testing.T) {
	// Streams for different point indices of the same sweep must be
	// independent: no collisions among the derived seeds, and no correlated
	// values between the resulting streams.
	seen := map[uint64]bool{}
	for point := uint64(0); point < 64; point++ {
		for rep := uint64(0); rep < 8; rep++ {
			s := Derive(1, point, rep)
			if seen[s] {
				t.Fatalf("seed collision at (point=%d, rep=%d)", point, rep)
			}
			seen[s] = true
		}
	}
	a := New(Derive(1, 0, 0))
	b := New(Derive(1, 1, 0))
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for point 0 and 1 matched %d times in 1000 draws", same)
	}
}

func TestDeriveReproducible(t *testing.T) {
	// The same (seed, indices) path yields the same stream every time.
	a := New(Derive(7, 3, 2))
	b := New(Derive(7, 3, 2))
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("repeated derivation diverged at step %d", i)
		}
	}
}

func TestDeriveStableAcrossRestarts(t *testing.T) {
	// Golden values: Derive is a pure function of its arguments, so these
	// must hold in every process on every platform. A failure here means the
	// derivation changed and old checkpoint journals no longer describe the
	// streams they were recorded from.
	golden := []struct {
		seed    uint64
		indices []uint64
		want    uint64
	}{
		{1, nil, 0x910a2dec89025cc1},
		{1, []uint64{0}, 0x5e41ab087439611e},
		{1, []uint64{0, 0}, 0xb18a02f46d8d86c3},
		{1, []uint64{1, 0}, 0xc22bdfbf79ce0d60},
		{1, []uint64{0, 1}, 0xae1bb8ad37bd2ccf},
		{42, []uint64{7, 3}, 0x7a36c2ff5c8d5d0e},
	}
	for _, g := range golden {
		if got := Derive(g.seed, g.indices...); got != g.want {
			t.Errorf("Derive(%d, %v) = %#x, want %#x", g.seed, g.indices, got, g.want)
		}
	}
	// And the stream seeded from a derived value is itself stable.
	s := New(Derive(42, 7, 3))
	for i, want := range []uint64{0x5008729dbae83502, 0x2bf01d9fa5a22890, 0xc478ea52ccf4aec3} {
		if got := s.Uint64(); got != want {
			t.Errorf("draw %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a := New(99)
	b := New(99)
	_ = a.Fork(5)
	_ = a.Fork(6)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Fork advanced the parent (diverged at step %d)", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(99)
	f5 := parent.Fork(5)
	f6 := parent.Fork(6)
	f5again := parent.Fork(5)
	same56 := 0
	for i := 0; i < 1000; i++ {
		v5, v6 := f5.Uint64(), f6.Uint64()
		if v5 == v6 {
			same56++
		}
		if v5 != f5again.Uint64() {
			t.Fatal("Fork(5) is not reproducible at the same parent state")
		}
	}
	if same56 > 0 {
		t.Fatalf("Fork(5) and Fork(6) matched %d times in 1000 draws", same56)
	}
	// Forks taken at different parent states differ even with equal indices.
	parent.Uint64()
	later := parent.Fork(5)
	if later.Uint64() == New(99).Fork(5).Uint64() {
		t.Error("forks at different parent states coincided")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100_000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	for i := 0; i < 100_000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / 100_000; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(9)
	hits := 0
	const draws = 100_000
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %.4f", got)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	if s.Bool(-1) {
		t.Error("Bool(-1) returned true")
	}
	if !s.Bool(2) {
		t.Error("Bool(2) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	for n := 0; n <= 20; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	wantSum := 0
	for _, v := range orig {
		wantSum += v
	}
	if sum != wantSum {
		t.Fatalf("shuffle altered elements: %v", xs)
	}
}

func TestExpMean(t *testing.T) {
	s := New(19)
	const draws = 200_000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := s.Exp(10)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-10) > 0.2 {
		t.Errorf("Exp(10) mean %.3f", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(23)
	const p, draws = 0.25, 200_000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(s.Geometric(p))
	}
	want := (1 - p) / p // mean of geometric on {0,1,...}
	if mean := sum / draws; math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%.2f) mean %.3f, want about %.3f", p, mean, want)
	}
	if v := s.Geometric(1); v != 0 {
		t.Errorf("Geometric(1) = %d, want 0", v)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(17)
	}
}
