// Package rng provides small, fast, deterministic pseudo-random number
// generators for the simulator. Every component that needs randomness owns
// its own generator seeded from the run seed, so simulations are exactly
// reproducible regardless of goroutine scheduling or iteration order.
//
// The generator is xoshiro256**, seeded through SplitMix64, following the
// reference implementations by Blackman and Vigna. It is not intended for
// cryptographic use.
package rng

import "math"

// Source is a deterministic pseudo-random generator. The zero value is not
// valid; construct one with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances the SplitMix64 state and returns the next value.
// It is used only to expand a 64-bit seed into the 256-bit xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield streams that
// are, for simulation purposes, statistically independent.
func New(seed uint64) *Source {
	st := seed
	var s Source
	s.s0 = splitMix64(&st)
	s.s1 = splitMix64(&st)
	s.s2 = splitMix64(&st)
	s.s3 = splitMix64(&st)
	// xoshiro must not be seeded with all zeros; SplitMix64 cannot produce
	// four consecutive zeros, so this is a safeguard only.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
	return &s
}

// Split derives a new independent Source from s. It consumes one value from
// s, so the parent stream advances deterministically.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd1b54a32d192ed03)
}

// Derive deterministically maps a base seed plus a path of indices to a new
// seed. It is a pure function of its arguments — no generator state is
// involved — so the result is stable across processes and machines, which is
// what lets a parallel sweep reproduce a serial one bit for bit: run
// (point p, replicate r) of a sweep with base seed s always simulates with
// seed Derive(s, p, r), no matter which worker picks it up or in what order.
//
// Each step feeds the previous output plus an odd-multiplier spread of the
// index back through SplitMix64, so at every level distinct indices yield
// distinct inputs to the finalizer (the pre-mix is bijective in the index).
func Derive(seed uint64, indices ...uint64) uint64 {
	st := seed
	out := splitMix64(&st)
	for _, idx := range indices {
		st = out + idx*0xd1b54a32d192ed03
		out = splitMix64(&st)
	}
	return out
}

// Fork returns a new Source derived from s's current state and index,
// without consuming any values from s. Forks taken at the same parent state
// with distinct indices produce independent streams; forking is therefore
// safe to do once per worker or per sub-component regardless of the order
// in which the forks are later used.
func (s *Source) Fork(index uint64) *Source {
	// Fold the full 256-bit state into the derivation so forks of distinct
	// parents are unrelated even when their indices collide.
	h := s.s0 ^ rotl(s.s1, 13) ^ rotl(s.s2, 29) ^ rotl(s.s3, 43)
	return New(Derive(h, index))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed value in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to remove modulo bias.
	threshold := -n % n
	for {
		v := s.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. Values of p outside [0,1] clamp to
// always-false or always-true.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given mean.
// It is used by inter-arrival processes that want Poisson injection.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, i.e. a geometric variate with support {0, 1, 2, ...}. For p >= 1
// it returns 0; for p <= 0 it panics since the variate is undefined.
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	u := s.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Log(1-u) / math.Log(1-p))
}
