package exp

// Reference data transcribed from the paper, used by the comparison report
// and by EXPERIMENTS.md generation. Values are percentages of messages
// detected as possibly deadlocked on the 512-node bidirectional 8-ary
// 3-cube.
//
// PaperTable1 and PaperTable2 are complete (uniform traffic; rows Th 2,
// 4, ..., 1024; columns rate-major then size s, l, L, sl). PaperTh32Rows
// holds the Th=32 row of Tables 3-7 (sizes s, l, sl), enough to check the
// paper's headline claim that threshold 32 bounds worst-case false
// detection.

// PaperThresholds are the row labels of Tables 1 and 2.
var PaperThresholds = []int64{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// PaperUniformRates are the column groups of Tables 1 and 2 in
// flits/cycle/node; the last is the saturated load.
var PaperUniformRates = []float64{0.428, 0.471, 0.514, 0.600}

// PaperTable1 is the PDM reference (Table 1): [threshold][rate*4+size].
var PaperTable1 = [10][16]float64{
	{.055, .191, .295, .299, .199, .662, 1.08, 1.03, .605, 2.37, 4.61, 4.86, 26.0, 30.5, 33.4, 36.0},
	{.000, .014, .025, .033, .023, .043, .088, .094, .100, .205, .335, .736, 13.1, 7.75, 6.64, 13.4},
	{.000, .003, .010, .005, .007, .011, .026, .036, .020, .095, .115, .355, 8.58, 5.07, 3.95, 9.87},
	{.000, .003, .010, .005, .004, .007, .026, .024, .000, .072, .115, .260, 5.45, 4.42, 3.83, 8.32},
	{.000, .002, .010, .005, .000, .005, .023, .013, .000, .050, .110, .155, 2.96, 3.24, 3.66, 5.87},
	{.000, .000, .010, .001, .000, .004, .021, .005, .000, .012, .090, .038, 1.71, 1.63, 3.30, 3.20},
	{.000, .000, .005, .001, .000, .002, .018, .000, .000, .002, .070, .008, 1.24, .350, 2.50, 1.57},
	{.000, .000, .005, .000, .000, .000, .005, .000, .000, .000, .045, .000, .840, .020, 1.27, 1.01},
	{.000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .005, .000, .400, .000, .290, .680},
	{.000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .002, .000, .110, .000, .020, .290},
}

// PaperTable2 is the NDM reference (Table 2): [threshold][rate*4+size].
var PaperTable2 = [10][16]float64{
	{.000, .021, .055, .028, .015, .069, .123, .086, .045, .097, .555, .513, 2.40, 3.75, 4.33, 3.92},
	{.000, .000, .005, .001, .001, .005, .000, .002, .000, .002, .125, .045, .830, .551, .412, .900},
	{.000, .000, .000, .000, .000, .001, .000, .002, .000, .000, .005, .020, .417, .283, .178, .560},
	{.000, .000, .000, .000, .000, .000, .000, .001, .000, .000, .005, .010, .205, .218, .168, .447},
	{.000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .005, .006, .069, .138, .159, .280},
	{.000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .005, .001, .035, .054, .132, .100},
	{.000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .002, .000, .027, .011, .084, .040},
	{.000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .002, .000, .015, .002, .037, .030},
	{.000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .005, .000, .009, .017},
	{.000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .000, .007},
}

// PaperTh32Rows holds the Th=32 rows of Tables 3-7 ([table-3][rate*3+size],
// sizes s, l, sl).
var PaperTh32Rows = map[int][12]float64{
	3: {.000, .000, .002, .000, .000, .000, .000, .004, .004, .001, .005, .004},
	4: {.000, .000, .000, .000, .000, .002, .001, .000, .007, .009, .001, .043},
	5: {.000, .000, .000, .000, .000, .000, .000, .000, .006, .073, .090, .124},
	6: {.000, .000, .000, .000, .000, .002, .000, .000, .063, .191, .015, 1.03},
	7: {.001, .000, .001, .000, .003, .007, .020, .052, .060, .203, .347, .260},
}

// PaperNDMOverPDMImprovement is the paper's headline claim: NDM reduces the
// number of (false) deadlock detections by about a factor of 10 relative to
// PDM (and by two orders of magnitude relative to crude timeouts).
const PaperNDMOverPDMImprovement = 10.0

// SaturatedImprovementRatio compares two measured uniform-traffic results
// (a Table-1-style PDM run and a Table-2-style NDM run) the way the paper
// summarizes them: the mean, over matched saturated-load cells with nonzero
// PDM detection, of PDM% / NDM% (cells where NDM measured zero contribute
// the cap value 100).
func SaturatedImprovementRatio(pdm, ndm *Result) float64 {
	sum, n := 0.0, 0
	last := len(pdm.Rates) - 1
	for thIdx := range pdm.Table.Thresholds {
		for si := range pdm.Table.Sizes {
			p := pdm.Cells[thIdx][last][si].Pct
			q := ndm.Cells[thIdx][last][si].Pct
			if p == 0 {
				continue
			}
			ratio := 100.0
			if q > 0 {
				ratio = p / q
				if ratio > 100 {
					ratio = 100
				}
			}
			sum += ratio
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
