package exp

import (
	"bytes"
	"strings"
	"testing"
)

// fakeResult builds a Result with uniform Pct values per threshold row.
func fakeResult(t *testing.T, mech Mechanism, rowPcts []float64) *Result {
	t.Helper()
	tbl, _ := PaperTable(2)
	tbl.Mechanism = mech
	tbl.Thresholds = []int64{2, 4}
	tbl.Sizes = []Size{SizeS, SizeL}
	r := &Result{Table: tbl, Rates: []float64{0.4, 0.6}}
	for ti := range tbl.Thresholds {
		row := make([][]Cell, len(r.Rates))
		for ri := range r.Rates {
			row[ri] = []Cell{{Pct: rowPcts[ti]}, {Pct: rowPcts[ti] * 2}}
		}
		r.Cells = append(r.Cells, row)
	}
	return r
}

func TestCompareReport(t *testing.T) {
	pdm := fakeResult(t, MechPDM, []float64{10, 5})
	ndm := fakeResult(t, MechNDM, []float64{1, 0.5})
	var buf bytes.Buffer
	if err := CompareReport(&buf, pdm, ndm); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Th 2", "Th 4", "10.0x", "mean saturated-cell improvement"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// NDM all-zero rows render the ratio as ">inf".
	zero := fakeResult(t, MechNDM, []float64{0, 0})
	buf.Reset()
	if err := CompareReport(&buf, pdm, zero); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ">inf") {
		t.Errorf("unbounded ratio missing:\n%s", buf.String())
	}
}

func TestCompareReportShapeMismatch(t *testing.T) {
	pdm := fakeResult(t, MechPDM, []float64{1, 1})
	ndm := fakeResult(t, MechNDM, []float64{1, 1})
	ndm.Rates = ndm.Rates[:1]
	if err := CompareReport(&bytes.Buffer{}, pdm, ndm); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
}

// TestFormatGolden pins the exact table rendering (the paper-style layout
// consumed by EXPERIMENTS.md and the results/ files).
func TestFormatGolden(t *testing.T) {
	tbl, _ := PaperTable(2)
	tbl.Thresholds = []int64{2, 32}
	tbl.Sizes = []Size{SizeS, SizeL}
	r := &Result{
		Table:   tbl,
		Options: Options{K: 4, N: 2},
		Rates:   []float64{0.3, 0.6},
		Cells: [][][]Cell{
			{{{Pct: 0.055}, {Pct: 1.08}}, {{Pct: 26.0, TrueDeadlock: true}, {Pct: 0}}},
			{{{Pct: 0}, {Pct: 0.005}}, {{Pct: 0.84}, {Pct: 100}}},
		},
	}
	var buf bytes.Buffer
	r.Format(&buf)
	// Normalize trailing spaces (the header pads column groups).
	normalize := func(s string) string {
		lines := strings.Split(s, "\n")
		for i := range lines {
			lines[i] = strings.TrimRight(lines[i], " ")
		}
		return strings.Join(lines, "\n")
	}
	want := `Table 2. Percentage of messages detected as possibly deadlocked (NDM, uniform traffic, 4-ary 2-cube).
(*) marks cells in which actual deadlocks were detected.

        |      0.3      |   0.6 (sat)
M. Size |      s|      l|      s|      l
----------------------------------------
Th 2    |   .055|   1.08|  26.0*|   .000
Th 32   |   .000|   .005|   .840|    100
`
	if got := normalize(buf.String()); got != normalize(want) {
		t.Errorf("format changed:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLengthSensitivity(t *testing.T) {
	r := fakeResult(t, MechNDM, []float64{1, 0.05})
	// Column "s" has pcts {1, 0.05}; column "l" twice that.
	sens := LengthSensitivity(r, 0.1)
	if sens["s"] != 4 {
		t.Errorf("s threshold = %d, want 4", sens["s"])
	}
	if sens["l"] != 4 { // column l holds {2, 0.1}; 0.1 <= 0.1 at Th 4
		t.Errorf("l threshold = %d, want 4", sens["l"])
	}
	strict := LengthSensitivity(r, 0.09)
	if strict["l"] != -1 {
		t.Errorf("strict l threshold = %d, want -1 (never below target)", strict["l"])
	}
}
