package exp

import (
	"bytes"
	"strings"
	"testing"
)

func tinyResult(t *testing.T) *Result {
	t.Helper()
	tbl, _ := PaperTable(2)
	tbl.Thresholds = []int64{4, 32}
	tbl.Sizes = []Size{SizeS, SizeSL}
	tbl.Rates = []float64{0.3, 0.6}
	opt := DefaultOptions()
	opt.K, opt.N = 4, 2
	opt.Warmup, opt.Measure = 200, 1000
	res, err := Run(tbl, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestJSONRoundTrip(t *testing.T) {
	res := tinyResult(t)
	var buf bytes.Buffer
	if err := res.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Table.ID != 2 || back.Options.K != 4 {
		t.Errorf("metadata lost: %+v", back.Options)
	}
	if len(back.Cells) != len(res.Cells) {
		t.Fatal("cells lost")
	}
	for ti := range res.Cells {
		for ri := range res.Cells[ti] {
			for si := range res.Cells[ti][ri] {
				if back.Cells[ti][ri][si] != res.Cells[ti][ri][si] {
					t.Fatalf("cell %d/%d/%d differs", ti, ri, si)
				}
			}
		}
	}
	// The restored result renders identically.
	var a, b bytes.Buffer
	res.Format(&a)
	back.Format(&b)
	if a.String() != b.String() {
		t.Error("restored result renders differently")
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, err := DecodeJSON(strings.NewReader(`{"table":9}`)); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := DecodeJSON(strings.NewReader(`{"table":2,"sizes":["x"]}`)); err == nil {
		t.Error("unknown size accepted")
	}
}
