package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestPaperTablesSpec(t *testing.T) {
	tbls := PaperTables()
	if len(tbls) != 8 {
		t.Fatalf("%d tables, want 8 (paper's 1-7 plus the CMH extension)", len(tbls))
	}
	for i, tbl := range tbls {
		if tbl.ID != i+1 {
			t.Errorf("table %d has ID %d", i, tbl.ID)
		}
		if len(tbl.Rates) != 4 {
			t.Errorf("table %d has %d rates", tbl.ID, len(tbl.Rates))
		}
		for j := 1; j < len(tbl.Rates); j++ {
			if tbl.Rates[j] <= tbl.Rates[j-1] {
				t.Errorf("table %d rates not increasing", tbl.ID)
			}
		}
		if tbl.Pattern == nil {
			t.Errorf("table %d missing pattern", tbl.ID)
		}
		if len(tbl.Thresholds) == 0 || tbl.Thresholds[0] != 2 {
			t.Errorf("table %d thresholds start at %v", tbl.ID, tbl.Thresholds)
		}
	}
	if tbls[0].Mechanism != MechPDM {
		t.Error("table 1 must use PDM")
	}
	for _, tbl := range tbls[1:7] {
		if tbl.Mechanism != MechNDM {
			t.Errorf("table %d must use NDM", tbl.ID)
		}
	}
	if tbls[7].Mechanism != MechCMH {
		t.Error("table 8 must use CMH")
	}
	// Table 8 mirrors Table 2's grid so the mechanisms compare cell for cell.
	if tbls[7].PatternName != tbls[1].PatternName ||
		len(tbls[7].Thresholds) != len(tbls[1].Thresholds) {
		t.Error("table 8 must mirror table 2's uniform grid")
	}
	// Tables 1, 2 and 8 carry all four sizes; tables 3-7 three.
	if len(tbls[0].Sizes) != 4 || len(tbls[1].Sizes) != 4 || len(tbls[7].Sizes) != 4 {
		t.Error("tables 1-2 and 8 must have 4 size columns")
	}
	for _, tbl := range tbls[2:7] {
		if len(tbl.Sizes) != 3 {
			t.Errorf("table %d has %d sizes, want 3", tbl.ID, len(tbl.Sizes))
		}
	}
}

func TestPaperTableLookup(t *testing.T) {
	tbl, err := PaperTable(4)
	if err != nil || tbl.ID != 4 {
		t.Fatalf("PaperTable(4) = %v, %v", tbl.ID, err)
	}
	if tbl, err := PaperTable(8); err != nil || tbl.Mechanism != MechCMH {
		t.Fatalf("PaperTable(8) = %v, %v; want the CMH extension table", tbl.Mechanism, err)
	}
	if _, err := PaperTable(9); err == nil {
		t.Fatal("table 9 found")
	}
}

func TestRunTinyTable(t *testing.T) {
	tbl, _ := PaperTable(2)
	// Shrink the sweep for test speed: two thresholds, one size.
	tbl.Thresholds = []int64{4, 32}
	tbl.Sizes = []Size{SizeS}
	tbl.Rates = []float64{0.3, 0.6}
	opt := DefaultOptions()
	opt.K, opt.N = 4, 2
	opt.Warmup, opt.Measure = 300, 1500
	var calls int
	opt.Progress = func(done, total int) {
		calls++
		if total != 4 {
			t.Errorf("total = %d", total)
		}
	}
	res, err := Run(tbl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Errorf("progress calls = %d", calls)
	}
	if len(res.Cells) != 2 || len(res.Cells[0]) != 2 || len(res.Cells[0][0]) != 1 {
		t.Fatalf("cell shape wrong")
	}
	for ti := range res.Cells {
		for ri := range res.Cells[ti] {
			c := res.Cells[ti][ri][0]
			if c.Delivered == 0 {
				t.Errorf("cell %d/%d delivered nothing", ti, ri)
			}
			if c.Pct < 0 || c.Pct > 100 {
				t.Errorf("cell pct %v out of range", c.Pct)
			}
		}
	}
	var buf bytes.Buffer
	res.Format(&buf)
	out := buf.String()
	for _, want := range []string{"Table 2", "NDM", "uniform", "Th 4", "Th 32", "(sat)"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestRunRelativeRates(t *testing.T) {
	tbl, _ := PaperTable(2)
	tbl.Thresholds = []int64{32}
	tbl.Sizes = []Size{SizeS}
	opt := DefaultOptions()
	opt.K, opt.N = 4, 2
	opt.Warmup, opt.Measure = 300, 2000
	opt.RelativeRates = true
	res, err := Run(tbl, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The rescaled top rate equals the measured saturation (not the
	// paper's 0.6 for the 512-node network).
	top := res.Rates[len(res.Rates)-1]
	if top == tbl.Rates[len(tbl.Rates)-1] {
		t.Error("relative mode did not rescale rates")
	}
	for i := 1; i < len(res.Rates); i++ {
		if res.Rates[i] <= res.Rates[i-1] {
			t.Error("rescaled rates not increasing")
		}
	}
	// Ratios must be preserved.
	r0 := res.Rates[0] / top
	want := tbl.Rates[0] / tbl.Rates[len(tbl.Rates)-1]
	if diff := r0 - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("rate ratio %v, want %v", r0, want)
	}
}

func TestRunWithRepeats(t *testing.T) {
	tbl, _ := PaperTable(2)
	tbl.Thresholds = []int64{4}
	tbl.Sizes = []Size{SizeS}
	tbl.Rates = []float64{1.2} // saturated on the small torus: marks happen
	opt := DefaultOptions()
	opt.K, opt.N = 4, 2
	opt.Warmup, opt.Measure = 300, 2000
	opt.Repeats = 3
	res, err := Run(tbl, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0][0][0]
	if c.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Three repeats of 2000 cycles deliver roughly 3x one repeat.
	single := opt
	single.Repeats = 1
	res1, err := Run(tbl, single)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delivered < 2*res1.Cells[0][0][0].Delivered {
		t.Errorf("repeats did not accumulate: %d vs %d", c.Delivered, res1.Cells[0][0][0].Delivered)
	}
	if c.PctStd < 0 {
		t.Error("negative std")
	}
}

func TestEstimateSaturationSmall(t *testing.T) {
	opt := DefaultOptions()
	opt.K, opt.N = 4, 2
	opt.Warmup, opt.Measure = 300, 2000
	tbl, _ := PaperTable(2)
	sat, err := EstimateSaturation(tbl.Pattern, SizeS.Dist, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The 4x4 torus has 4 links per node and average distance 2: the
	// theoretical bound is 2 flits/cycle/node; real saturation lands well
	// below the bound but far above a trickle.
	if sat < 0.4 || sat > 2.0 {
		t.Errorf("saturation %v outside plausible range", sat)
	}
}

func TestRunUnknownMechanism(t *testing.T) {
	tbl, _ := PaperTable(2)
	tbl.Mechanism = "nope"
	tbl.Thresholds = []int64{2}
	tbl.Sizes = []Size{SizeS}
	tbl.Rates = []float64{0.2}
	opt := DefaultOptions()
	opt.K, opt.N = 4, 2
	opt.Warmup, opt.Measure = 100, 500
	if _, err := Run(tbl, opt); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestFormatPct(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, ".000"},
		{0.055, ".055"},
		{0.5, ".500"},
		{1.08, "1.08"},
		{26.0, "26.0"},
		{100, "100"},
	} {
		if got := formatPct(tc.in); got != tc.want {
			t.Errorf("formatPct(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPaperDataShape(t *testing.T) {
	if len(PaperThresholds) != 10 {
		t.Error("threshold rows")
	}
	// Spot checks against the transcription.
	if PaperTable1[0][12] != 26.0 {
		t.Errorf("Table1[Th2][sat,s] = %v", PaperTable1[0][12])
	}
	if PaperTable2[4][13] != .138 {
		t.Errorf("Table2[Th32][sat,l] = %v", PaperTable2[4][13])
	}
	if row, ok := PaperTh32Rows[7]; !ok || row[9] != .203 {
		t.Error("Th32 row of table 7")
	}
	// NDM improves on PDM in the reference data at every saturated cell of
	// the Th4..Th64 rows.
	for th := 1; th <= 5; th++ {
		for c := 12; c < 16; c++ {
			if PaperTable2[th][c] >= PaperTable1[th][c] {
				t.Errorf("paper data: NDM not better at row %d col %d", th, c)
			}
		}
	}
}

func TestSaturatedImprovementRatio(t *testing.T) {
	mk := func(vals [2]float64) *Result {
		tbl, _ := PaperTable(2)
		tbl.Thresholds = []int64{2, 4}
		tbl.Sizes = []Size{SizeS}
		r := &Result{Table: tbl, Rates: []float64{0.6}}
		r.Cells = [][][]Cell{
			{{{Pct: vals[0]}}},
			{{{Pct: vals[1]}}},
		}
		return r
	}
	pdm := mk([2]float64{1.0, 0.5})
	ndm := mk([2]float64{0.1, 0.05})
	if got := SaturatedImprovementRatio(pdm, ndm); got != 10 {
		t.Errorf("ratio = %v, want 10", got)
	}
	// NDM zero caps at 100.
	ndm0 := mk([2]float64{0, 0})
	if got := SaturatedImprovementRatio(pdm, ndm0); got != 100 {
		t.Errorf("capped ratio = %v, want 100", got)
	}
	// PDM zero cells are skipped entirely.
	pdm0 := mk([2]float64{0, 0})
	if got := SaturatedImprovementRatio(pdm0, ndm); got != 0 {
		t.Errorf("empty ratio = %v, want 0", got)
	}
}
