package exp

import (
	"fmt"
	"io"
)

// CompareReport writes a paper-style summary comparing a measured PDM table
// and a measured NDM table over the same workload grid (Tables 1 and 2):
// per-threshold detection percentages in the saturated column, their
// ratios, and the claim-level aggregates the paper quotes.
func CompareReport(w io.Writer, pdm, ndm *Result) error {
	if len(pdm.Rates) != len(ndm.Rates) || len(pdm.Table.Sizes) != len(ndm.Table.Sizes) {
		return fmt.Errorf("exp: mismatched table shapes")
	}
	last := len(pdm.Rates) - 1
	fmt.Fprintf(w, "PDM vs NDM at the saturated load (%.4g flits/cycle/node), by threshold:\n\n", pdm.Rates[last])
	fmt.Fprintf(w, "%-10s %12s %12s %10s\n", "threshold", "PDM worst%", "NDM worst%", "ratio")
	for ti, th := range pdm.Table.Thresholds {
		ndmTi := -1
		for tj, th2 := range ndm.Table.Thresholds {
			if th2 == th {
				ndmTi = tj
				break
			}
		}
		if ndmTi < 0 {
			continue
		}
		var pWorst, nWorst float64
		for si := range pdm.Table.Sizes {
			if p := pdm.Cells[ti][last][si].Pct; p > pWorst {
				pWorst = p
			}
		}
		for si := range ndm.Table.Sizes {
			if p := ndm.Cells[ndmTi][last][si].Pct; p > nWorst {
				nWorst = p
			}
		}
		ratio := "-"
		if nWorst > 0 {
			ratio = fmt.Sprintf("%.1fx", pWorst/nWorst)
		} else if pWorst > 0 {
			ratio = ">inf"
		}
		fmt.Fprintf(w, "Th %-7d %12s %12s %10s\n", th, formatPct(pWorst), formatPct(nWorst), ratio)
	}
	fmt.Fprintf(w, "\nmean saturated-cell improvement (PDM%%/NDM%%, capped at 100x): %.1fx\n",
		SaturatedImprovementRatio(pdm, ndm))
	fmt.Fprintf(w, "(the paper reports a reduction \"on average by a factor of %.0f\")\n",
		PaperNDMOverPDMImprovement)
	return nil
}

// LengthSensitivity quantifies the paper's message-length claim for one
// measured table: for each message-size column at the saturated load, the
// smallest threshold whose detection percentage drops below the target.
// PDM's threshold should grow steeply with message length; NDM's should
// barely move.
func LengthSensitivity(r *Result, target float64) map[string]int64 {
	out := make(map[string]int64, len(r.Table.Sizes))
	last := len(r.Rates) - 1
	for si, size := range r.Table.Sizes {
		out[size.Key] = -1 // never reaches the target
		for ti, th := range r.Table.Thresholds {
			if r.Cells[ti][last][si].Pct <= target {
				out[size.Key] = th
				break
			}
		}
	}
	return out
}
