package exp

import "testing"

// TestSaturationFullScale measures the saturation (offered-load tracking
// boundary) of the 512-node 8-ary 3-cube for every pattern in the paper's
// evaluation and compares against the paper's saturated injection rates.
// It is long-running; skipped in -short mode.
func TestSaturationFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale saturation sweep")
	}
	opt := DefaultOptions()
	opt.Warmup, opt.Measure = 2000, 8000
	for _, tbl := range PaperTables()[1:] {
		sat, err := EstimateSaturation(tbl.Pattern, SizeS.Dist, opt)
		if err != nil {
			t.Fatal(err)
		}
		paper := tbl.Rates[len(tbl.Rates)-1]
		t.Logf("pattern %-16s saturation %.4f flits/cycle/node (paper: %.4f)", tbl.PatternName, sat, paper)
		if sat <= 0 {
			t.Errorf("%s: zero saturation estimate", tbl.PatternName)
		}
	}
}
