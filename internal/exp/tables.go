// Package exp is the experiment harness that regenerates the paper's
// evaluation, Tables 1 through 7 (plus the extension Table 8, which reruns
// the uniform grid under the CMH edge-chasing detector): the percentage of
// messages detected as possibly deadlocked, for each detection mechanism,
// message destination distribution, message length mix, network load and
// detection threshold.
package exp

import (
	"fmt"
	"io"

	"wormnet/internal/detect"
	"wormnet/internal/harness"
	"wormnet/internal/probe"
	"wormnet/internal/router"
	"wormnet/internal/sim"
	"wormnet/internal/topology"
	"wormnet/internal/traffic"
)

// Mechanism selects the detection mechanism a table evaluates.
type Mechanism string

// Mechanisms used by the paper's tables, plus the CMH edge-chasing
// baseline evaluated in the extension table.
const (
	MechPDM Mechanism = "PDM"
	MechNDM Mechanism = "NDM"
	MechCMH Mechanism = "CMH"
)

// Size is one message-length column of a table.
type Size struct {
	// Key is the paper's column label: "s" (16 flits), "l" (64), "L" (256)
	// or "sl" (60% 16-flit + 40% 64-flit).
	Key  string
	Dist traffic.LengthDist
}

// standard length columns.
var (
	SizeS  = Size{Key: "s", Dist: traffic.Fixed(16)}
	SizeL  = Size{Key: "l", Dist: traffic.Fixed(64)}
	SizeLL = Size{Key: "L", Dist: traffic.Fixed(256)}
	SizeSL = Size{Key: "sl", Dist: traffic.Bimodal{Short: 16, Long: 64, PShort: 0.6}}
)

// Table describes one of the paper's evaluation tables.
type Table struct {
	// ID is the paper's table number, 1..7 (8 is the CMH extension).
	ID int
	// Mechanism under test (Table 1 uses PDM, the rest NDM).
	Mechanism Mechanism
	// PatternName identifies the destination distribution.
	PatternName string
	// Pattern builds the distribution for a topology.
	Pattern sim.PatternFactory
	// Rates are the paper's injection rates in flits/cycle/node on the
	// 8-ary 3-cube; the last one is the saturated load.
	Rates []float64
	// Sizes are the message-length columns.
	Sizes []Size
	// Thresholds is the swept detection threshold (t2 for NDM).
	Thresholds []int64
}

func thresholds(max int64) []int64 {
	var ths []int64
	for t := int64(2); t <= max; t *= 2 {
		ths = append(ths, t)
	}
	return ths
}

// PaperTables returns the specifications of Tables 1 through 7 exactly as
// evaluated in the paper, plus the CMH extension Table 8.
func PaperTables() []Table {
	uniform := func(t *topology.Torus) traffic.Pattern { return traffic.NewUniform(t) }
	all := []Size{SizeS, SizeL, SizeLL, SizeSL}
	three := []Size{SizeS, SizeL, SizeSL}
	return []Table{
		{
			ID: 1, Mechanism: MechPDM, PatternName: "uniform", Pattern: uniform,
			Rates: []float64{0.428, 0.471, 0.514, 0.600},
			Sizes: all, Thresholds: thresholds(1024),
		},
		{
			ID: 2, Mechanism: MechNDM, PatternName: "uniform", Pattern: uniform,
			Rates: []float64{0.428, 0.471, 0.514, 0.600},
			Sizes: all, Thresholds: thresholds(1024),
		},
		{
			ID: 3, Mechanism: MechNDM, PatternName: "locality",
			Pattern: func(t *topology.Torus) traffic.Pattern { return traffic.NewLocality(t, 2) },
			Rates:   []float64{1.429, 1.571, 1.857, 2.000},
			Sizes:   three, Thresholds: thresholds(128),
		},
		{
			ID: 4, Mechanism: MechNDM, PatternName: "bit-reversal",
			Pattern: func(t *topology.Torus) traffic.Pattern { return traffic.NewBitReversal(t) },
			Rates:   []float64{0.352, 0.386, 0.421, 0.451},
			Sizes:   three, Thresholds: thresholds(256),
		},
		{
			ID: 5, Mechanism: MechNDM, PatternName: "perfect-shuffle",
			Pattern: func(t *topology.Torus) traffic.Pattern { return traffic.NewPerfectShuffle(t) },
			Rates:   []float64{0.214, 0.250, 0.286, 0.320},
			Sizes:   three, Thresholds: thresholds(1024),
		},
		{
			ID: 6, Mechanism: MechNDM, PatternName: "butterfly",
			Pattern: func(t *topology.Torus) traffic.Pattern { return traffic.NewButterfly(t) },
			Rates:   []float64{0.107, 0.118, 0.129, 0.139},
			Sizes:   three, Thresholds: thresholds(1024),
		},
		{
			ID: 7, Mechanism: MechNDM, PatternName: "hot-spot",
			Pattern: func(t *topology.Torus) traffic.Pattern { return traffic.NewHotSpot(t, 0, 0.05) },
			Rates:   []float64{0.0628, 0.0707, 0.0786, 0.0862},
			Sizes:   three, Thresholds: thresholds(1024),
		},
		// Table 8 is not in the paper: it reruns Table 1/2's uniform-traffic
		// grid under the Chandy–Misra–Haas edge-chasing detector, with the
		// threshold column reinterpreted as the probe initiation delay, so
		// the three mechanisms can be compared cell for cell.
		{
			ID: 8, Mechanism: MechCMH, PatternName: "uniform", Pattern: uniform,
			Rates: []float64{0.428, 0.471, 0.514, 0.600},
			Sizes: all, Thresholds: thresholds(1024),
		},
	}
}

// PaperTable returns the specification of table id (1..8).
func PaperTable(id int) (Table, error) {
	for _, t := range PaperTables() {
		if t.ID == id {
			return t, nil
		}
	}
	return Table{}, fmt.Errorf("exp: no such table %d", id)
}

// Options control how a table is reproduced.
type Options struct {
	// K and N select the network; the paper uses 8 and 3. Smaller networks
	// run much faster; combine with RelativeRates to keep loads meaningful.
	K, N int
	// Warmup and Measure are the simulation phases per cell, in cycles.
	Warmup, Measure int64
	// Seed makes the sweep reproducible; cell c uses Seed+c.
	Seed uint64
	// Repeats runs each cell this many times with different seeds and
	// averages the detection percentage (0 or 1 = single run). The paper
	// reports single runs; repeats quantify run-to-run spread via PctStd.
	Repeats int
	// InjectionLimit is the injection-limitation threshold (busy network
	// output VCs); negative disables. The paper keeps the mechanism on.
	InjectionLimit int
	// RelativeRates reinterprets each table's rates as fractions of its
	// saturated (last) rate, scaled by the measured saturation throughput
	// of the configured network. Use when K, N differ from the paper's
	// 8-ary 3-cube, where the absolute rates would be meaningless.
	RelativeRates bool
	// Promotion selects the NDM P->G re-arming policy.
	Promotion detect.PromotionPolicy
	// Progress, when non-nil, is called after each finished cell.
	Progress func(done, total int)
	// Workers bounds the number of cells simulated concurrently; values
	// < 1 select GOMAXPROCS. Results are independent of Workers: every
	// run's seed is a pure function of (Seed, cell index, repeat index).
	Workers int
	// Journal is the path of a harness checkpoint journal ("" disables);
	// with Resume, cells already journaled are loaded instead of re-run.
	Journal string
	Resume  bool
	// ProgressWriter, when non-nil, receives the harness's live progress
	// line (runs done, ETA, worker utilization).
	ProgressWriter io.Writer
	// Observe configures per-cell flight-recorder and metrics-series dumps
	// (see harness.Observe).
	Observe harness.Observe
}

// DefaultOptions returns full-scale reproduction settings (the paper's
// 512-node 8-ary 3-cube).
func DefaultOptions() Options {
	return Options{
		K: 8, N: 3,
		Warmup:  5_000,
		Measure: 30_000,
		Seed:    1,
		// With 6 network channels x 3 VCs = 18 output VCs per node, admit
		// a new message only while at most a third are busy. This is the
		// calibration knob of the López/Duato injection-limitation
		// mechanism; 6 reproduces the paper's low false-detection regime
		// (see EXPERIMENTS.md for the sensitivity probe).
		InjectionLimit: 6,
	}
}

// Cell is one measured table entry.
type Cell struct {
	Threshold int64
	Rate      float64 // actual offered rate in flits/cycle/node
	SizeKey   string
	// Pct is the percentage of messages detected as possibly deadlocked
	// (averaged over repeats when Options.Repeats > 1).
	Pct float64
	// PctStd is the across-repeat sample standard deviation of Pct (zero
	// for single runs).
	PctStd float64
	// PctCI is the half-width of the 95% confidence interval for Pct
	// (zero for single runs).
	PctCI float64
	// TrueDeadlock reports whether actual deadlocks were detected in this
	// cell (the paper's "(*)" annotation) in any repeat.
	TrueDeadlock bool
	// Delivered and Marked are the raw counts behind Pct, summed over
	// repeats.
	Delivered, Marked int64
}

// Result is a fully measured table.
type Result struct {
	Table   Table
	Options Options
	// Rates holds the offered rates actually used (equal to Table.Rates
	// unless RelativeRates rescaled them).
	Rates []float64
	// Cells is indexed [threshold][rate][size] following the spec order.
	Cells [][][]Cell
}

// Run reproduces a table. Each (cell, repeat) is an independent simulation
// run; the runs are scheduled across Options.Workers goroutines by the
// sweep harness. The measured table is independent of Workers — every
// run's seed is a pure function of (Options.Seed, cell index, repeat
// index) — and, with Options.Journal set, an interrupted sweep resumes
// from the journaled cells.
func Run(tbl Table, opt Options) (*Result, error) {
	if opt.K == 0 || opt.N == 0 {
		return nil, fmt.Errorf("exp: options missing topology")
	}
	rates := append([]float64(nil), tbl.Rates...)
	if opt.RelativeRates {
		sat, err := EstimateSaturation(tbl.Pattern, SizeS.Dist, opt)
		if err != nil {
			return nil, err
		}
		// Anchor the paper's highest NON-saturated rate (the penultimate
		// column) at the measured saturation boundary: the lower rates land
		// below saturation and the last column proportionally beyond it,
		// matching the paper's "several loads near saturation, the last one
		// saturated" methodology.
		base := tbl.Rates[len(tbl.Rates)-2]
		for i, r := range tbl.Rates {
			rates[i] = r / base * sat
		}
	}
	res := &Result{Table: tbl, Options: opt, Rates: rates}

	// Expand the table grid into harness points in threshold -> rate ->
	// size order, the order the legacy serial sweep used, so the per-cell
	// seeds (and therefore every measured number) are unchanged.
	var points []harness.Point
	for _, th := range tbl.Thresholds {
		for _, rate := range rates {
			for _, size := range tbl.Sizes {
				cfg, err := cellConfig(tbl, opt, th, rate, size)
				if err != nil {
					return nil, err
				}
				points = append(points, harness.Point{
					Key:    fmt.Sprintf("th=%d/rate=%.6g/%s", th, rate, size.Key),
					Config: cfg,
				})
			}
		}
	}
	seed := opt.Seed
	sweep, err := harness.Run(points, harness.Options{
		Workers:    opt.Workers,
		Replicates: max(opt.Repeats, 1),
		BaseSeed:   opt.Seed,
		// Legacy derivation, predating rng.Derive: keeps every published
		// table reproducible from the same -seed.
		SeedFunc: func(point, rep int) uint64 {
			return seed + uint64(point)*0x9e3779b9 + uint64(rep)*0x2545f491
		},
		Journal:     opt.Journal,
		Resume:      opt.Resume,
		Progress:    opt.ProgressWriter,
		OnPointDone: opt.Progress,
		Observe:     opt.Observe,
	})
	if err != nil {
		return nil, err
	}

	res.Cells = make([][][]Cell, len(tbl.Thresholds))
	idx := 0
	for ti, th := range tbl.Thresholds {
		res.Cells[ti] = make([][]Cell, len(rates))
		for ri, rate := range rates {
			res.Cells[ti][ri] = make([]Cell, len(tbl.Sizes))
			for si, size := range tbl.Sizes {
				pr := &sweep[idx]
				idx++
				if !pr.OK() {
					return nil, fmt.Errorf("exp: cell %s: %s", pr.Key, pr.Err())
				}
				cell := Cell{Threshold: th, Rate: rate, SizeKey: size.Key}
				pcts := pr.Metric((*sim.Result).PctMarked)
				cell.Pct = pcts.Mean
				cell.PctStd = pcts.Std
				cell.PctCI = pcts.CI95
				for _, r := range pr.Runs {
					cell.TrueDeadlock = cell.TrueDeadlock || r.TrueMarked > 0
					cell.Delivered += r.Delivered
					cell.Marked += r.Marked
				}
				res.Cells[ti][ri][si] = cell
			}
		}
	}
	return res, nil
}

// cellConfig builds the simulation for one table cell; the harness fills in
// the per-repeat seed.
func cellConfig(tbl Table, opt Options, th int64, rate float64, size Size) (sim.Config, error) {
	cfg := sim.DefaultConfig()
	cfg.K, cfg.N = opt.K, opt.N
	cfg.Pattern = tbl.Pattern
	cfg.Lengths = size.Dist
	cfg.Load = rate
	cfg.InjectionLimit = opt.InjectionLimit
	cfg.Warmup, cfg.Measure = opt.Warmup, opt.Measure
	switch tbl.Mechanism {
	case MechPDM:
		cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewPDM(f, th) }
	case MechNDM:
		cfg.Detector = func(f *router.Fabric) detect.Detector {
			return detect.NewNDMOpt(f, 1, th, opt.Promotion)
		}
	case MechCMH:
		cfg.Detector = func(f *router.Fabric) detect.Detector {
			return probe.New(f, probe.Config{InitDelay: th})
		}
	default:
		return cfg, fmt.Errorf("exp: unknown mechanism %q", tbl.Mechanism)
	}
	return cfg, nil
}

// EstimateSaturation locates the saturation load of the configured network
// under the given pattern: the largest offered load the network still
// tracks (accepted throughput at least 95% of offered). This is the proper
// criterion for non-uniform workloads such as hot-spot traffic, where the
// aggregate throughput keeps rising long after the hot region has
// saturated and latency has diverged.
//
// The estimate first measures the throughput ceiling under unbounded
// offered load, then bisects the tracking boundary below it.
func EstimateSaturation(pattern sim.PatternFactory, lengths traffic.LengthDist, opt Options) (float64, error) {
	probe := func(load float64) (offered, accepted float64, err error) {
		cfg := sim.DefaultConfig()
		cfg.K, cfg.N = opt.K, opt.N
		cfg.Pattern = pattern
		cfg.Lengths = lengths
		cfg.Load = load
		cfg.InjectionLimit = opt.InjectionLimit
		cfg.Warmup = opt.Warmup * 2
		cfg.Measure = opt.Measure / 2
		if cfg.Measure < 2000 {
			cfg.Measure = 2000
		}
		cfg.Seed = opt.Seed
		cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, 32) }
		eng, err := sim.New(cfg)
		if err != nil {
			return 0, 0, err
		}
		r, err := eng.Run()
		if err != nil {
			return 0, 0, err
		}
		return load, r.Throughput(), nil
	}

	// Throughput ceiling under unbounded load bounds the search.
	_, ceiling, err := probe(100)
	if err != nil {
		return 0, err
	}
	if ceiling <= 0 {
		return 0, fmt.Errorf("exp: network delivered nothing under saturating load")
	}
	lo, hi := 0.0, ceiling*1.25
	for i := 0; i < 7; i++ {
		mid := (lo + hi) / 2
		offered, accepted, err := probe(mid)
		if err != nil {
			return 0, err
		}
		if accepted >= 0.95*offered {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
