package exp

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonResult is the serialized form of a measured table: enough to re-render
// or post-process without re-running the sweep.
type jsonResult struct {
	Table       int        `json:"table"`
	Mechanism   Mechanism  `json:"mechanism"`
	PatternName string     `json:"pattern"`
	K           int        `json:"k"`
	N           int        `json:"n"`
	Warmup      int64      `json:"warmup"`
	Measure     int64      `json:"measure"`
	Seed        uint64     `json:"seed"`
	Repeats     int        `json:"repeats,omitempty"`
	Relative    bool       `json:"relativeRates"`
	Rates       []float64  `json:"rates"`
	Thresholds  []int64    `json:"thresholds"`
	Sizes       []string   `json:"sizes"`
	Cells       [][][]Cell `json:"cells"`
}

// EncodeJSON writes the result as JSON.
func (r *Result) EncodeJSON(w io.Writer) error {
	sizes := make([]string, len(r.Table.Sizes))
	for i, s := range r.Table.Sizes {
		sizes[i] = s.Key
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonResult{
		Table:       r.Table.ID,
		Mechanism:   r.Table.Mechanism,
		PatternName: r.Table.PatternName,
		K:           r.Options.K,
		N:           r.Options.N,
		Warmup:      r.Options.Warmup,
		Measure:     r.Options.Measure,
		Seed:        r.Options.Seed,
		Repeats:     r.Options.Repeats,
		Relative:    r.Options.RelativeRates,
		Rates:       r.Rates,
		Thresholds:  r.Table.Thresholds,
		Sizes:       sizes,
		Cells:       r.Cells,
	})
}

// DecodeJSON reads a result previously written by EncodeJSON. The restored
// Result supports formatting and cell lookup (its Table spec is rebuilt
// from the paper's specification for the table ID).
func DecodeJSON(r io.Reader) (*Result, error) {
	var jr jsonResult
	if err := json.NewDecoder(r).Decode(&jr); err != nil {
		return nil, err
	}
	tbl, err := PaperTable(jr.Table)
	if err != nil {
		return nil, err
	}
	tbl.Thresholds = jr.Thresholds
	// Restore the size columns actually present.
	var sizes []Size
	for _, key := range jr.Sizes {
		switch key {
		case "s":
			sizes = append(sizes, SizeS)
		case "l":
			sizes = append(sizes, SizeL)
		case "L":
			sizes = append(sizes, SizeLL)
		case "sl":
			sizes = append(sizes, SizeSL)
		default:
			return nil, fmt.Errorf("exp: unknown size key %q", key)
		}
	}
	tbl.Sizes = sizes
	opt := Options{
		K: jr.K, N: jr.N,
		Warmup: jr.Warmup, Measure: jr.Measure,
		Seed: jr.Seed, Repeats: jr.Repeats, RelativeRates: jr.Relative,
	}
	return &Result{Table: tbl, Options: opt, Rates: jr.Rates, Cells: jr.Cells}, nil
}
