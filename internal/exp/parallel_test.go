package exp

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestRunWorkersDeterministic: the measured table is bit-identical no
// matter how many workers simulate it, and a journaled sweep resumes to
// the same bytes.
func TestRunWorkersDeterministic(t *testing.T) {
	tbl, _ := PaperTable(2)
	tbl.Thresholds = []int64{4, 32}
	tbl.Sizes = []Size{SizeS}
	tbl.Rates = []float64{0.3, 0.9}
	opt := DefaultOptions()
	opt.K, opt.N = 4, 2
	opt.Warmup, opt.Measure = 200, 800
	opt.Repeats = 2

	render := func(o Options) []byte {
		t.Helper()
		res, err := Run(tbl, o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serialOpt := opt
	serialOpt.Workers = 1
	want := render(serialOpt)

	parOpt := opt
	parOpt.Workers = 4
	if got := render(parOpt); !bytes.Equal(got, want) {
		t.Fatal("4-worker table differs from 1-worker table")
	}

	// Journal a sweep, then resume against the complete journal: no cell
	// re-runs and the output still matches.
	jOpt := opt
	jOpt.Workers = 4
	jOpt.Journal = filepath.Join(t.TempDir(), "cells.jsonl")
	if got := render(jOpt); !bytes.Equal(got, want) {
		t.Fatal("journaled sweep differs")
	}
	jOpt.Resume = true
	if got := render(jOpt); !bytes.Equal(got, want) {
		t.Fatal("resumed sweep differs")
	}
}

// TestRunRepeatsCI: multi-repeat cells report a CI and render it.
func TestRunRepeatsCI(t *testing.T) {
	tbl, _ := PaperTable(2)
	tbl.Thresholds = []int64{2}
	tbl.Sizes = []Size{SizeS}
	tbl.Rates = []float64{1.2} // saturated on the small torus: detections happen
	opt := DefaultOptions()
	opt.K, opt.N = 4, 2
	opt.Warmup, opt.Measure = 200, 1500
	opt.Repeats = 3
	res, err := Run(tbl, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0][0][0]
	if c.Pct <= 0 {
		t.Fatalf("saturated cell detected nothing: %+v", c)
	}
	if c.PctStd > 0 && c.PctCI <= 0 {
		t.Errorf("spread without CI: %+v", c)
	}
	want := 1.96 * c.PctStd / 1.7320508075688772 // sqrt(3)
	if diff := c.PctCI - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("PctCI = %v, want %v", c.PctCI, want)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("±")) {
		t.Error("multi-repeat table does not render ±ci")
	}
	if !bytes.Contains(buf.Bytes(), []byte("mean±ci95 over 3 repeats")) {
		t.Error("missing repeats legend")
	}
}
