package exp

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// formatPct renders a percentage the way the paper's tables do: three
// significant-ish digits, ".000"-style for small values.
func formatPct(p float64) string {
	switch {
	case p == 0:
		return ".000"
	case p < 0.9995:
		return strings.TrimPrefix(fmt.Sprintf("%.3f", p), "0")
	case p < 9.995:
		return fmt.Sprintf("%.2f", p)
	case p < 99.95:
		return fmt.Sprintf("%.1f", p)
	default:
		return fmt.Sprintf("%.0f", p)
	}
}

// Format renders the result as a text table in the paper's layout: one row
// per threshold, one column group per injection rate with one column per
// message size. Multi-repeat results render each cell as mean±ci95 over
// the repeats.
func (r *Result) Format(w io.Writer) {
	tbl := r.Table
	fmt.Fprintf(w, "Table %d. Percentage of messages detected as possibly deadlocked (%s, %s traffic, %d-ary %d-cube).\n",
		tbl.ID, tbl.Mechanism, tbl.PatternName, r.Options.K, r.Options.N)
	fmt.Fprintf(w, "(*) marks cells in which actual deadlocks were detected.\n")
	colw := 8
	withCI := r.Options.Repeats > 1
	if withCI {
		fmt.Fprintf(w, "Cells are mean±ci95 over %d repeats.\n", r.Options.Repeats)
		colw = 14
	}
	fmt.Fprintln(w)
	// Header line 1: injection rates.
	fmt.Fprintf(w, "%-8s", "")
	for ri, rate := range r.Rates {
		label := fmt.Sprintf("%.4g", rate)
		if ri == len(r.Rates)-1 {
			label += " (sat)"
		}
		width := colw * len(tbl.Sizes)
		fmt.Fprintf(w, "|%-*s", width-1, center(label, width-1))
	}
	fmt.Fprintln(w)
	// Header line 2: sizes.
	fmt.Fprintf(w, "%-8s", "M. Size")
	for range r.Rates {
		for _, s := range tbl.Sizes {
			fmt.Fprintf(w, "|%*s", colw-1, s.Key)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 8+len(r.Rates)*len(tbl.Sizes)*colw))

	for ti, th := range tbl.Thresholds {
		fmt.Fprintf(w, "Th %-5d", th)
		for ri := range r.Rates {
			for si := range tbl.Sizes {
				c := r.Cells[ti][ri][si]
				v := formatPct(c.Pct)
				if withCI {
					v += "±" + formatPct(c.PctCI)
				}
				if c.TrueDeadlock {
					v += "*"
				}
				// Pad on visible width: ± is multi-byte.
				fmt.Fprintf(w, "|%*s", colw-1+len(v)-utf8.RuneCountInString(v), v)
			}
		}
		fmt.Fprintln(w)
	}
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

// SummaryRow returns the worst (largest) percentage in the row for the
// given threshold, useful for headline comparisons such as "a threshold of
// 32 keeps false detection under 0.16% in the worst case".
func (r *Result) SummaryRow(threshold int64) (worst float64, ok bool) {
	for ti, th := range r.Table.Thresholds {
		if th != threshold {
			continue
		}
		for ri := range r.Cells[ti] {
			for si := range r.Cells[ti][ri] {
				if p := r.Cells[ti][ri][si].Pct; p > worst {
					worst = p
				}
			}
		}
		return worst, true
	}
	return 0, false
}

// Cell returns the measured cell for (threshold, rateIndex, sizeKey).
func (r *Result) Cell(threshold int64, rateIdx int, sizeKey string) (Cell, bool) {
	for ti, th := range r.Table.Thresholds {
		if th != threshold {
			continue
		}
		for si, s := range r.Table.Sizes {
			if s.Key == sizeKey {
				return r.Cells[ti][rateIdx][si], true
			}
		}
	}
	return Cell{}, false
}
