// Package trace is the simulator's flight recorder: a fixed-capacity ring
// buffer of typed, packed event records emitted by the engine, the detection
// mechanisms and the recovery path. It exists to make detection *behavior*
// observable — the I/DT flag transitions, G/P promotions and demotions, and
// verdicts that produce the paper's numbers — rather than only end-of-run
// aggregates.
//
// Cost contract. A nil *Recorder is valid everywhere: every method
// nil-checks its receiver and returns immediately, so an untraced simulation
// pays one predictable branch per emit site and performs zero allocations.
// With a recorder attached, events are written into a pre-allocated ring
// (overwriting the oldest when full), still without allocating; an optional
// sink additionally streams each event as one JSON line through a reusable
// encode buffer.
//
// Event ordering is the emission order within one engine cycle, which
// follows the engine's pipeline stages (transfer, detector EndCycle,
// routing, recovery). Conformance tests replay this stream to check the
// paper's flag-transition rules.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"wormnet/internal/router"
)

// Kind identifies an event type.
type Kind uint8

// Event kinds. The zero Kind is invalid so an all-zero Event is detectably
// empty.
const (
	KindInvalid Kind = iota
	// KindInject: message admitted into the network. Msg, Link (injection
	// port), Node (source).
	KindInject
	// KindDeliver: tail consumed at the destination. Msg, Node, Arg =
	// generation-to-delivery latency in cycles.
	KindDeliver
	// KindVCAlloc: virtual channel allocated to a message. Msg, Link, Aux =
	// VC id.
	KindVCAlloc
	// KindVCFree: a virtual channel of Link was released (tail passed,
	// recovery released the worm, or a fault killed it) — exactly the
	// flow-control event the detection hardware observes.
	KindVCFree
	// KindRouteOK: a blocked or newly arrived header was routed. Msg, Link
	// (input channel), Node, Arg = output link id, Aux = output VC id.
	KindRouteOK
	// KindRouteFail: a routing attempt failed. Msg, Link (input channel),
	// Node, Arg = failed attempts so far at this router (1 = first).
	KindRouteFail
	// KindISet / KindIClear: the I (inactivity, threshold t1) flag of output
	// channel Link transitioned.
	KindISet
	KindIClear
	// KindDTSet / KindDTClear: the DT (deadlock-threshold t2) flag of output
	// channel Link transitioned. PDM's single inactivity flag is reported
	// with these kinds, since it is that mechanism's detection threshold.
	KindDTSet
	KindDTClear
	// KindGSet: the G/P flag of input channel Link changed to G. Arg = the
	// rule that fired (GRuleFirstAttempt or GRulePromotion), Aux = the
	// witness output link (the still-active requested output for rule 1, the
	// output whose I flag reset for the promotion rule), Msg = the blocked
	// message for rule 1 (NilMsg for promotions).
	KindGSet
	// KindPSet: the G/P flag of input channel Link changed to P. Arg = the
	// reason (PReason*), Msg = the routed message when known.
	KindPSet
	// KindDetect: a mechanism marked Msg as deadlocked at Node. Arg = 1 if
	// the oracle confirmed a true deadlock, 0 for a false detection.
	KindDetect
	// KindRecoverStart: recovery of Msg began at Node. Arg = recovery style
	// (0 progressive, 1 regressive).
	KindRecoverStart
	// KindRecoverEnd: Msg has been fully removed from the fabric. Node = the
	// node it re-enters from; Arg = 1 when recovery delivered it (the
	// absorbing node was the destination).
	KindRecoverEnd
	// KindOracleDeadlock: the omniscient oracle observed Msg entering a true
	// deadlock for the first time. Arg = size of the deadlocked set. The
	// interval from this event to the matching KindDetect is the detection
	// latency.
	KindOracleDeadlock
	// KindProbeEmit: blocked initiator Msg launched a CMH edge-chasing probe
	// onto output channel Link at router Node, chasing the worm Aux that
	// holds the channel. Arg = the probe's hop count (1 for a fresh probe).
	KindProbeEmit
	// KindProbeForward: a probe of initiator Msg reached the blocked header
	// of the worm it was chasing and was forwarded onto output channel Link
	// at router Node, now chasing worm Aux. Arg = hop count.
	KindProbeForward
	// KindProbeDrop: a probe of initiator Msg terminated without returning.
	// Link = the probe's last position, Aux = the worm it was chasing, Arg =
	// the ProbeDrop* reason.
	KindProbeDrop
	// KindProbeReturn: a probe of initiator Msg arrived at output channel
	// Link (router Node) whose virtual channels include one held by its own
	// initiator — an edge-chasing cycle. Arg = hop count, Aux = the victim
	// the detector schedules for marking.
	KindProbeReturn

	numKinds
)

var kindNames = [numKinds]string{
	KindInvalid:        "invalid",
	KindInject:         "inject",
	KindDeliver:        "deliver",
	KindVCAlloc:        "vc-alloc",
	KindVCFree:         "vc-free",
	KindRouteOK:        "route-ok",
	KindRouteFail:      "route-fail",
	KindISet:           "i-set",
	KindIClear:         "i-clear",
	KindDTSet:          "dt-set",
	KindDTClear:        "dt-clear",
	KindGSet:           "g-set",
	KindPSet:           "p-set",
	KindDetect:         "detect",
	KindRecoverStart:   "recover-start",
	KindRecoverEnd:     "recover-end",
	KindOracleDeadlock: "oracle-deadlock",
	KindProbeEmit:      "probe-emit",
	KindProbeForward:   "probe-forward",
	KindProbeDrop:      "probe-drop",
	KindProbeReturn:    "probe-return",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindNames returns the JSONL names of every valid event kind, in
// declaration order. Callers use it to report the legal values when
// rejecting an unknown kind name.
func KindNames() []string {
	names := make([]string, 0, int(numKinds)-1)
	for k := KindInvalid + 1; k < numKinds; k++ {
		names = append(names, kindNames[k])
	}
	return names
}

// KindByName returns the Kind with the given JSONL name.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name && Kind(k) != KindInvalid {
			return Kind(k), true
		}
	}
	return KindInvalid, false
}

// G-rule codes carried in KindGSet.Arg.
const (
	// GRuleFirstAttempt is the paper's rule 1: on the first failed routing
	// attempt, with every virtual channel of the input busy, some requested
	// output channel was still active (I clear) — this message waits on the
	// possible root of the tree of blocked messages.
	GRuleFirstAttempt = 1
	// GRulePromotion is the Figure 5 re-arm: an I flag reset by a flit
	// transmission promotes waiting inputs from P back to G.
	GRulePromotion = 2
)

// P-reason codes carried in KindPSet.Arg.
const (
	// PReasonRouteOK: the channel's last arrival routed successfully.
	PReasonRouteOK = 1
	// PReasonVCFreed: a virtual channel of the input was released.
	PReasonVCFreed = 2
	// PReasonNotLastArrival: first failed attempt, but a VC of the input is
	// still free — the message is not the latest arrival (rule 2a).
	PReasonNotLastArrival = 3
	// PReasonAllInactive: first failed attempt and every requested output is
	// already inactive — another message blocked first and owns detection
	// (rule 2b).
	PReasonAllInactive = 4
)

// Probe-drop reason codes carried in KindProbeDrop.Arg.
const (
	// ProbeDropStale: the channel the probe sat on changed hands, or the
	// worm it was chasing moved or left the network — the wait edge the
	// probe was traversing no longer exists.
	ProbeDropStale = 1
	// ProbeDropRoutable: the probe reached a blocked header that has a free
	// virtual channel on some feasible output — the worm is not actually
	// wait-blocked, so the edge chase ends here.
	ProbeDropRoutable = 2
	// ProbeDropHops: the probe exceeded the detector's MaxHops cap.
	ProbeDropHops = 3
	// ProbeDropDeadEnd: the blocked header's dependency edges were all
	// either already probed this wave (digest dedupe) or chased the probe's
	// own target, leaving nothing to forward onto.
	ProbeDropDeadEnd = 4
)

// Event is one packed flight-recorder record. Unused reference fields hold
// the router package's Nil sentinels (or -1 for Node/Aux).
type Event struct {
	Cycle int64
	Arg   int64
	Msg   router.MsgID
	Link  router.LinkID
	Node  int32
	Aux   int32
	Kind  Kind
}

// Recorder accumulates events into a fixed ring and, optionally, a JSONL
// sink. The zero value is not usable; construct with NewRecorder. A nil
// *Recorder is a valid no-op recorder.
//
// Recorders are not safe for concurrent use: each simulation engine owns at
// most one. Sweeps that trace must attach a distinct recorder per run.
type Recorder struct {
	cycle int64
	ring  []Event
	next  int // ring write position
	size  int // valid events in ring
	total uint64

	sink    *bufio.Writer
	buf     []byte
	sinkErr error

	obs func(Event)
}

// DefaultCapacity is the ring size NewRecorder uses for last <= 0.
const DefaultCapacity = 4096

// NewRecorder returns a recorder whose ring keeps the most recent `last`
// events (DefaultCapacity when last <= 0).
func NewRecorder(last int) *Recorder {
	if last <= 0 {
		last = DefaultCapacity
	}
	return &Recorder{ring: make([]Event, last), buf: make([]byte, 0, 160)}
}

// NewStreaming returns a recorder that streams every event to w as JSONL
// while keeping the most recent `last` events in its ring (DefaultCapacity
// when last <= 0). It is NewRecorder + SetSink; callers must Flush before
// reading w's destination.
func NewStreaming(w io.Writer, last int) *Recorder {
	r := NewRecorder(last)
	r.SetSink(w)
	return r
}

// SetSink additionally streams every subsequent event to w as one JSON line.
// Encoding errors are sticky and reported by SinkErr; the ring keeps
// recording regardless.
func (r *Recorder) SetSink(w io.Writer) {
	if r == nil {
		return
	}
	r.sink = bufio.NewWriterSize(w, 1<<16)
}

// BeginCycle stamps the cycle subsequent events are recorded under. The
// engine calls it once per Step.
func (r *Recorder) BeginCycle(now int64) {
	if r == nil {
		return
	}
	r.cycle = now
}

// Emit records one event under the current cycle. It is safe (and free
// beyond one branch) on a nil receiver.
func (r *Recorder) Emit(k Kind, msg router.MsgID, link router.LinkID, node int32, arg int64, aux int32) {
	if r == nil {
		return
	}
	r.record(Event{Cycle: r.cycle, Kind: k, Msg: msg, Link: link, Node: node, Arg: arg, Aux: aux})
}

func (r *Recorder) record(ev Event) {
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	if r.size < len(r.ring) {
		r.size++
	}
	r.total++
	if r.sink != nil && r.sinkErr == nil {
		r.buf = AppendJSON(r.buf[:0], ev)
		r.buf = append(r.buf, '\n')
		if _, err := r.sink.Write(r.buf); err != nil {
			r.sinkErr = err
		}
	}
	if r.obs != nil {
		r.obs(ev)
	}
}

// SetObserver attaches fn to be called synchronously with every recorded
// event, after the ring (and sink, if any) have seen it. Pass nil to detach.
// Because all emit sites run on the engine's serial commit spine, fn sees
// events in a single-threaded, deterministic order even under sharded
// stepping. Nil-safe.
func (r *Recorder) SetObserver(fn func(Event)) {
	if r == nil {
		return
	}
	r.obs = fn
}

// Total returns how many events have been emitted over the recorder's
// lifetime (>= Len when the ring has wrapped).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Len returns how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.size
}

// Events appends the ring's contents, oldest first, to buf and returns it.
func (r *Recorder) Events(buf []Event) []Event {
	if r == nil || r.size == 0 {
		return buf
	}
	start := r.next - r.size
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.size; i++ {
		buf = append(buf, r.ring[(start+i)%len(r.ring)])
	}
	return buf
}

// Contains reports whether the ring currently holds an event of kind k.
func (r *Recorder) Contains(k Kind) bool {
	if r == nil {
		return false
	}
	start := r.next - r.size
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.size; i++ {
		if r.ring[(start+i)%len(r.ring)].Kind == k {
			return true
		}
	}
	return false
}

// Flush flushes the sink, if any, and returns any sticky sink error.
func (r *Recorder) Flush() error {
	if r == nil || r.sink == nil {
		return r.SinkErr()
	}
	if err := r.sink.Flush(); err != nil && r.sinkErr == nil {
		r.sinkErr = err
	}
	return r.sinkErr
}

// SinkErr returns the first error the sink produced, if any.
func (r *Recorder) SinkErr() error {
	if r == nil {
		return nil
	}
	return r.sinkErr
}

// Dump writes the ring's contents, oldest first, to w as JSONL.
func (r *Recorder) Dump(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 160)
	start := r.next - r.size
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.size; i++ {
		buf = AppendJSON(buf[:0], r.ring[(start+i)%len(r.ring)])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// AppendJSON appends ev as one JSON object (no trailing newline) to buf.
// Reference fields holding Nil sentinels are omitted.
func AppendJSON(buf []byte, ev Event) []byte {
	buf = append(buf, `{"cycle":`...)
	buf = strconv.AppendInt(buf, ev.Cycle, 10)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, ev.Kind.String()...)
	buf = append(buf, '"')
	if ev.Msg != router.NilMsg {
		buf = append(buf, `,"msg":`...)
		buf = strconv.AppendInt(buf, int64(ev.Msg), 10)
	}
	if ev.Link != router.NilLink {
		buf = append(buf, `,"link":`...)
		buf = strconv.AppendInt(buf, int64(ev.Link), 10)
	}
	if ev.Node >= 0 {
		buf = append(buf, `,"node":`...)
		buf = strconv.AppendInt(buf, int64(ev.Node), 10)
	}
	if ev.Arg != 0 {
		buf = append(buf, `,"arg":`...)
		buf = strconv.AppendInt(buf, ev.Arg, 10)
	}
	if ev.Aux >= 0 {
		buf = append(buf, `,"aux":`...)
		buf = strconv.AppendInt(buf, int64(ev.Aux), 10)
	}
	return append(buf, '}')
}

// jsonEvent mirrors the JSONL field layout for decoding.
type jsonEvent struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	Msg   int32  `json:"msg"`
	Link  int32  `json:"link"`
	Node  int32  `json:"node"`
	Arg   int64  `json:"arg"`
	Aux   int32  `json:"aux"`
}

// Scan streams a JSONL event stream written by Dump or a streaming sink,
// calling fn once per event in file order. Unlike Decode it never holds more
// than one line in memory, so arbitrarily long traces can be processed.
// Malformed lines abort the scan with the 1-based line number and the byte
// offset at which the line starts; an error returned by fn aborts it as-is.
func Scan(rd io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	var offset int64
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		lineStart := offset
		offset += int64(len(line)) + 1
		if len(line) == 0 {
			continue
		}
		je := jsonEvent{Msg: -1, Link: -1, Node: -1, Aux: -1}
		if err := json.Unmarshal(line, &je); err != nil {
			return fmt.Errorf("trace: line %d (byte %d): %w", lineNo, lineStart, err)
		}
		kind, ok := KindByName(je.Kind)
		if !ok {
			return fmt.Errorf("trace: line %d (byte %d): unknown event kind %q", lineNo, lineStart, je.Kind)
		}
		if err := fn(Event{
			Cycle: je.Cycle,
			Kind:  kind,
			Msg:   router.MsgID(je.Msg),
			Link:  router.LinkID(je.Link),
			Node:  je.Node,
			Arg:   je.Arg,
			Aux:   je.Aux,
		}); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Decode reads a JSONL event stream written by Dump or a streaming sink.
// It loads the whole trace into memory; use Scan to stream instead.
func Decode(rd io.Reader) ([]Event, error) {
	var out []Event
	if err := Scan(rd, func(ev Event) error {
		out = append(out, ev)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
