package trace_test

// Trace-driven conformance for the CMH edge-chasing detector: run it on
// randomized small tori driven into saturation, capture the full event
// stream, and replay it against the probe protocol's invariants:
//
//  (a) provenance — every detection mark is caused by a probe return for
//      that victim, in the same or an earlier cycle; there are no
//      spontaneous marks;
//  (b) wave discipline — every probe forward, drop or return belongs to an
//      initiator that emitted a probe in the same or an earlier cycle, and
//      drops carry a known reason code;
//  (c) verdict accounting — every true (oracle-confirmed) detection is
//      preceded by an oracle deadlock event, and every mark is either a
//      true positive or explicitly counted as a false positive;
//  (d) liveness — every deadlock the oracle confirms (except those forming
//      too close to the end of the run) is eventually followed by a true
//      detection;
//  (e) purity — CMH owns no I/DT or G/P flags, so none of NDM's or PDM's
//      flag kinds may appear in its trace.

import (
	"fmt"
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/probe"
	"wormnet/internal/router"
	"wormnet/internal/trace"
)

func TestCMHTraceConformance(t *testing.T) {
	const initDelay = 8
	// CMH's detection latency tail is much longer than NDM's threshold
	// crossing: a probe wave must chase worm bodies link by link, losing
	// races for channels along the way (p99 observed in the hundreds of
	// cycles). The liveness exemption margin is sized accordingly.
	const measure, margin = 5000, 1500
	cases := []struct {
		k, n int
		seed uint64
	}{
		{3, 2, 1},
		{4, 2, 2},
		{4, 2, 7},
		{5, 2, 3},
	}
	sawDeadlock := false
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("k%d_n%d_seed%d", tc.k, tc.n, tc.seed), func(t *testing.T) {
			cfg := saturatedConfig(tc.k, tc.n, initDelay, tc.seed)
			cfg.Measure = measure
			cfg.Detector = func(f *router.Fabric) detect.Detector {
				return probe.New(f, probe.Config{InitDelay: initDelay})
			}
			events := captureTrace(t, cfg)
			if len(events) == 0 {
				t.Fatal("empty trace")
			}
			checkProbeDiscipline(t, events)
			if checkCMHLiveness(t, events, margin) {
				sawDeadlock = true
			}
		})
	}
	if !sawDeadlock {
		t.Fatal("no configuration produced an oracle-confirmed deadlock; the liveness check never engaged")
	}
}

// checkProbeDiscipline replays the stream in order, enforcing assertions
// (a), (b), (c) and (e).
func checkProbeDiscipline(t *testing.T, events []trace.Event) {
	t.Helper()
	errs := 0
	fail := func(format string, args ...any) {
		if errs < 10 {
			t.Errorf(format, args...)
		}
		errs++
	}

	emitted := map[router.MsgID]bool{}  // initiators that launched a wave
	returned := map[router.MsgID]bool{} // victims with a probe return so far
	sawOracle := false
	var trueDetects, falseDetects, returns int

	for _, ev := range events {
		switch ev.Kind {
		case trace.KindISet, trace.KindIClear, trace.KindDTSet,
			trace.KindDTClear, trace.KindGSet, trace.KindPSet:
			fail("cycle %d: CMH emitted %s; it has no I/DT or G/P flags", ev.Cycle, ev.Kind)

		case trace.KindProbeEmit:
			emitted[ev.Msg] = true
			if ev.Arg != 1 {
				fail("cycle %d: seed probe of initiator %d emitted at %d hops, want 1", ev.Cycle, ev.Msg, ev.Arg)
			}

		case trace.KindProbeForward:
			if !emitted[ev.Msg] {
				fail("cycle %d: probe of initiator %d forwarded without a prior emit", ev.Cycle, ev.Msg)
			}
			if ev.Arg < 2 {
				fail("cycle %d: forwarded probe of initiator %d at %d hops; forwards start at 2", ev.Cycle, ev.Msg, ev.Arg)
			}

		case trace.KindProbeDrop:
			if !emitted[ev.Msg] {
				fail("cycle %d: probe of initiator %d dropped without a prior emit", ev.Cycle, ev.Msg)
			}
			switch ev.Arg {
			case trace.ProbeDropStale, trace.ProbeDropRoutable,
				trace.ProbeDropHops, trace.ProbeDropDeadEnd:
			default:
				fail("cycle %d: probe of initiator %d dropped with unknown reason %d", ev.Cycle, ev.Msg, ev.Arg)
			}

		case trace.KindProbeReturn:
			if !emitted[ev.Msg] {
				fail("cycle %d: probe of initiator %d returned without a prior emit", ev.Cycle, ev.Msg)
			}
			returned[router.MsgID(ev.Aux)] = true
			returns++

		case trace.KindOracleDeadlock:
			sawOracle = true

		case trace.KindDetect:
			if !returned[ev.Msg] {
				fail("cycle %d: msg %d marked without a probe return naming it as victim", ev.Cycle, ev.Msg)
			}
			switch ev.Arg {
			case 1:
				trueDetects++
				if !sawOracle {
					fail("cycle %d: detection of msg %d claims oracle confirmation before any oracle deadlock event", ev.Cycle, ev.Msg)
				}
			case 0:
				falseDetects++
			default:
				fail("cycle %d: detection of msg %d with unknown verdict %d", ev.Cycle, ev.Msg, ev.Arg)
			}
		}
	}
	if errs > 10 {
		t.Errorf("... and %d further probe-discipline violations", errs-10)
	}
	if returns > 0 && trueDetects+falseDetects == 0 {
		t.Errorf("%d probe returns produced no detections at all", returns)
	}
	t.Logf("probe returns %d, detections %d true + %d false", returns, trueDetects, falseDetects)
}

// checkCMHLiveness implements assertion (d): like the NDM check, but with
// an explicit exemption margin instead of one derived from t2. Reports
// whether any oracle-confirmed deadlock was seen.
func checkCMHLiveness(t *testing.T, events []trace.Event, margin int64) bool {
	t.Helper()
	last := events[len(events)-1].Cycle
	var trueDetects []int64
	for _, ev := range events {
		if ev.Kind == trace.KindDetect && ev.Arg == 1 {
			trueDetects = append(trueDetects, ev.Cycle)
		}
	}
	saw := false
	di := 0
	for _, ev := range events {
		if ev.Kind != trace.KindOracleDeadlock {
			continue
		}
		saw = true
		if ev.Cycle > last-margin {
			continue
		}
		for di < len(trueDetects) && trueDetects[di] < ev.Cycle {
			di++
		}
		if di == len(trueDetects) {
			t.Errorf("oracle confirmed a deadlock at cycle %d (msg %d) but no true detection ever followed (run ends at %d)",
				ev.Cycle, ev.Msg, last)
			return saw
		}
	}
	return saw
}
