package trace_test

// Trace-driven conformance tests: run NDM on randomized small tori driven
// into saturation, capture the full event stream, and replay it against the
// paper's Section 3 flag-transition rules and the omniscient oracle:
//
//  (a) liveness — every deadlock the oracle confirms is eventually followed
//      by a true (oracle-confirmed) detection event;
//  (b) G discipline — a G flag is only raised when rule 1's precondition
//      held in the preceding events: a first failed routing attempt whose
//      witness output channel was still active (I clear), or a Figure 5
//      promotion whose witness output's I flag was set and resetting;
//  (c) P discipline — every G -> P demotion carries a matching cause
//      earlier in the same cycle: a route success or VC release on that
//      input channel, or a first failed attempt that demoted it.
//
// The replay also enforces the transition-only contract: flag events must
// alternate set/clear, so the stream stays inside the legal I/DT x G/P
// lattice.

import (
	"bytes"
	"fmt"
	"testing"

	"wormnet/internal/detect"
	"wormnet/internal/router"
	"wormnet/internal/sim"
	"wormnet/internal/trace"
)

// saturatedConfig drives a small k-ary n-cube torus well past saturation
// with single-VC fully adaptive routing, the most deadlock-prone regime the
// simulator supports.
func saturatedConfig(k, n int, t2 int64, seed uint64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.K, cfg.N = k, n
	cfg.Router.VCsPerLink = 1
	cfg.Load = 2.0
	cfg.InjectionLimit = -1
	cfg.Warmup = 0
	cfg.Measure = 2500
	cfg.OracleEvery = 1 // exact oracle stamps for the liveness check
	cfg.Seed = seed
	cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewNDM(f, t2) }
	return cfg
}

func captureTrace(t *testing.T, cfg sim.Config) []trace.Event {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(1)
	rec.SetSink(&buf)
	cfg.Trace = rec
	eng, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestNDMConformance(t *testing.T) {
	const t2 = 8
	cases := []struct {
		k, n int
		seed uint64
	}{
		{3, 2, 1},
		{4, 2, 2},
		{4, 2, 7},
		{5, 2, 3},
		{3, 3, 4},
	}
	sawDeadlock := false
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("k%d_n%d_seed%d", tc.k, tc.n, tc.seed), func(t *testing.T) {
			events := captureTrace(t, saturatedConfig(tc.k, tc.n, t2, tc.seed))
			if len(events) == 0 {
				t.Fatal("empty trace")
			}
			if checkLiveness(t, events, t2) {
				sawDeadlock = true
			}
			checkFlagDiscipline(t, events)
		})
	}
	if !sawDeadlock {
		t.Fatal("no configuration produced an oracle-confirmed deadlock; the liveness check never engaged")
	}
}

// checkLiveness implements assertion (a). Deadlocks forming too close to
// the end of the run are exempted: the detector needs on the order of t2
// cycles to cross its threshold. Reports whether any deadlock was seen.
func checkLiveness(t *testing.T, events []trace.Event, t2 int64) bool {
	t.Helper()
	last := events[len(events)-1].Cycle
	margin := 32 * t2
	// Cycles of true (oracle-confirmed) detections, in order.
	var trueDetects []int64
	for _, ev := range events {
		if ev.Kind == trace.KindDetect && ev.Arg == 1 {
			trueDetects = append(trueDetects, ev.Cycle)
		}
	}
	saw := false
	di := 0
	for _, ev := range events {
		if ev.Kind != trace.KindOracleDeadlock {
			continue
		}
		saw = true
		if ev.Cycle > last-margin {
			continue // formed too late to demand a detection before the run ended
		}
		for di < len(trueDetects) && trueDetects[di] < ev.Cycle {
			di++
		}
		if di == len(trueDetects) {
			t.Errorf("oracle confirmed a deadlock at cycle %d (msg %d) but no true detection ever followed (run ends at %d)",
				ev.Cycle, ev.Msg, last)
			return saw
		}
	}
	return saw
}

// cycleMemo holds the per-cycle context the discipline checks consult: the
// route outcomes and VC releases seen so far in the current cycle.
type cycleMemo struct {
	cycle      int64
	routeOK    map[router.LinkID]router.MsgID
	routeFail1 map[router.LinkID]router.MsgID // first attempts only
	vcFreed    map[router.LinkID]bool
}

func (m *cycleMemo) reset(cycle int64) {
	m.cycle = cycle
	m.routeOK = map[router.LinkID]router.MsgID{}
	m.routeFail1 = map[router.LinkID]router.MsgID{}
	m.vcFreed = map[router.LinkID]bool{}
}

// checkFlagDiscipline implements assertions (b) and (c) plus the
// transition-only lattice contract, by replaying the stream in order.
func checkFlagDiscipline(t *testing.T, events []trace.Event) {
	t.Helper()
	iState := map[router.LinkID]bool{}
	dtState := map[router.LinkID]bool{}
	gState := map[router.LinkID]bool{}
	var memo cycleMemo
	memo.reset(-1)

	errs := 0
	fail := func(format string, args ...any) {
		if errs < 10 {
			t.Errorf(format, args...)
		}
		errs++
	}

	for _, ev := range events {
		if ev.Cycle != memo.cycle {
			if ev.Cycle < memo.cycle {
				fail("event stream goes back in time: %d after %d", ev.Cycle, memo.cycle)
			}
			memo.reset(ev.Cycle)
		}
		switch ev.Kind {
		case trace.KindRouteOK:
			memo.routeOK[ev.Link] = ev.Msg
		case trace.KindRouteFail:
			if ev.Arg == 1 {
				memo.routeFail1[ev.Link] = ev.Msg
			}
		case trace.KindVCFree:
			memo.vcFreed[ev.Link] = true

		case trace.KindISet:
			if iState[ev.Link] {
				fail("cycle %d: I flag of link %d set while already set", ev.Cycle, ev.Link)
			}
			iState[ev.Link] = true
		case trace.KindIClear:
			if !iState[ev.Link] {
				fail("cycle %d: I flag of link %d cleared while already clear", ev.Cycle, ev.Link)
			}
			iState[ev.Link] = false
		case trace.KindDTSet:
			if dtState[ev.Link] {
				fail("cycle %d: DT flag of link %d set while already set", ev.Cycle, ev.Link)
			}
			dtState[ev.Link] = true
			if !iState[ev.Link] {
				// t1 <= t2: a counter past t2 is necessarily past t1.
				fail("cycle %d: DT set on link %d whose I flag is clear (t1 <= t2 violated)", ev.Cycle, ev.Link)
			}
		case trace.KindDTClear:
			if !dtState[ev.Link] {
				fail("cycle %d: DT flag of link %d cleared while already clear", ev.Cycle, ev.Link)
			}
			dtState[ev.Link] = false

		case trace.KindGSet:
			if gState[ev.Link] {
				fail("cycle %d: G raised on input %d already holding G", ev.Cycle, ev.Link)
			}
			gState[ev.Link] = true
			witness := router.LinkID(ev.Aux)
			switch ev.Arg {
			case trace.GRuleFirstAttempt:
				// Rule 1: the same cycle must already hold this message's
				// first failed attempt on this input, and the witness output
				// it was waiting on must still have been active.
				if m, ok := memo.routeFail1[ev.Link]; !ok || m != ev.Msg {
					fail("cycle %d: G(rule 1) on input %d for msg %d without a preceding first failed attempt this cycle",
						ev.Cycle, ev.Link, ev.Msg)
				}
				if ev.Aux < 0 {
					fail("cycle %d: G(rule 1) on input %d without a witness output", ev.Cycle, ev.Link)
				} else if iState[witness] {
					fail("cycle %d: G(rule 1) on input %d but witness output %d was inactive (I set)",
						ev.Cycle, ev.Link, witness)
				}
			case trace.GRulePromotion:
				// Figure 5: the witness output's I flag is being reset by a
				// transmission; at emission time it must still read set.
				if ev.Aux < 0 {
					fail("cycle %d: G(promotion) on input %d without a witness output", ev.Cycle, ev.Link)
				} else if !iState[witness] {
					fail("cycle %d: G(promotion) on input %d but witness output %d had no I flag to reset",
						ev.Cycle, ev.Link, witness)
				}
			default:
				fail("cycle %d: G raised on input %d with unknown rule %d", ev.Cycle, ev.Link, ev.Arg)
			}

		case trace.KindPSet:
			if !gState[ev.Link] {
				fail("cycle %d: P asserted on input %d already holding P", ev.Cycle, ev.Link)
			}
			gState[ev.Link] = false
			switch ev.Arg {
			case trace.PReasonRouteOK:
				if m, ok := memo.routeOK[ev.Link]; !ok || (ev.Msg != router.NilMsg && m != ev.Msg) {
					fail("cycle %d: G->P(route-ok) on input %d without a matching route success this cycle",
						ev.Cycle, ev.Link)
				}
			case trace.PReasonVCFreed:
				if !memo.vcFreed[ev.Link] {
					fail("cycle %d: G->P(vc-freed) on input %d without a VC release this cycle",
						ev.Cycle, ev.Link)
				}
			case trace.PReasonNotLastArrival, trace.PReasonAllInactive:
				if m, ok := memo.routeFail1[ev.Link]; !ok || m != ev.Msg {
					fail("cycle %d: G->P(first-attempt rule) on input %d without that first failed attempt",
						ev.Cycle, ev.Link)
				}
			default:
				fail("cycle %d: G->P on input %d with unknown reason %d", ev.Cycle, ev.Link, ev.Arg)
			}
		}
	}
	if errs > 10 {
		t.Errorf("... and %d further flag-discipline violations", errs-10)
	}
}

// TestPDMTraceConformance runs the same replay machinery over PDM: its
// single inactivity flag is reported as DT events and must obey the
// transition-only contract (no G/P events should appear at all).
func TestPDMTraceConformance(t *testing.T) {
	cfg := saturatedConfig(4, 2, 8, 5)
	cfg.Detector = func(f *router.Fabric) detect.Detector { return detect.NewPDM(f, 8) }
	events := captureTrace(t, cfg)

	dtState := map[router.LinkID]bool{}
	sawDT := false
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindGSet, trace.KindPSet, trace.KindISet, trace.KindIClear:
			t.Fatalf("cycle %d: PDM emitted %s; it has no I or G/P flags", ev.Cycle, ev.Kind)
		case trace.KindDTSet:
			sawDT = true
			if dtState[ev.Link] {
				t.Fatalf("cycle %d: PDM IF flag of link %d set while already set", ev.Cycle, ev.Link)
			}
			dtState[ev.Link] = true
		case trace.KindDTClear:
			if !dtState[ev.Link] {
				t.Fatalf("cycle %d: PDM IF flag of link %d cleared while already clear", ev.Cycle, ev.Link)
			}
			dtState[ev.Link] = false
		}
	}
	if !sawDT {
		t.Fatal("saturated PDM run produced no inactivity-flag events")
	}
}
