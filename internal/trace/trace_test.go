package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"wormnet/internal/router"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.BeginCycle(1)
	r.Emit(KindInject, 1, 2, 3, 4, 5)
	r.SetSink(&bytes.Buffer{})
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("nil recorder reported contents")
	}
	if got := r.Events(nil); got != nil {
		t.Fatalf("nil recorder returned events: %v", got)
	}
	if r.Contains(KindInject) {
		t.Fatal("nil recorder contains events")
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Dump(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.BeginCycle(int64(i))
		r.Emit(KindRouteFail, router.MsgID(i), 0, 0, 0, -1)
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	evs := r.Events(nil)
	if len(evs) != 4 {
		t.Fatalf("Events returned %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := int64(6 + i) // oldest-first: cycles 6..9 survive
		if ev.Cycle != want || ev.Msg != router.MsgID(want) {
			t.Fatalf("event %d = cycle %d msg %d, want %d", i, ev.Cycle, ev.Msg, want)
		}
	}
	if !r.Contains(KindRouteFail) || r.Contains(KindDetect) {
		t.Fatal("Contains answered wrong")
	}
}

func TestDefaultCapacity(t *testing.T) {
	if got := len(NewRecorder(0).ring); got != DefaultCapacity {
		t.Fatalf("NewRecorder(0) ring size = %d, want %d", got, DefaultCapacity)
	}
	if got := len(NewRecorder(-5).ring); got != DefaultCapacity {
		t.Fatalf("NewRecorder(-5) ring size = %d, want %d", got, DefaultCapacity)
	}
}

// TestJSONLRoundTrip: every event written through a streaming sink or Dump
// decodes back to the identical Event, including Nil sentinel fields.
func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 0, Kind: KindInject, Msg: 7, Link: 3, Node: 1, Arg: 16, Aux: 9},
		{Cycle: 2, Kind: KindVCFree, Msg: router.NilMsg, Link: 5, Node: -1, Arg: 0, Aux: -1},
		{Cycle: 2, Kind: KindGSet, Msg: 7, Link: 4, Node: 1, Arg: GRuleFirstAttempt, Aux: 12},
		{Cycle: 9, Kind: KindDetect, Msg: 7, Link: router.NilLink, Node: 1, Arg: 1, Aux: -1},
		{Cycle: 11, Kind: KindOracleDeadlock, Msg: 8, Link: router.NilLink, Node: -1, Arg: 3, Aux: -1},
	}

	var stream bytes.Buffer
	r := NewRecorder(len(events))
	r.SetSink(&stream)
	for _, ev := range events {
		r.BeginCycle(ev.Cycle)
		r.Emit(ev.Kind, ev.Msg, ev.Link, ev.Node, ev.Arg, ev.Aux)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	var dumped bytes.Buffer
	if err := r.Dump(&dumped); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), dumped.Bytes()) {
		t.Fatalf("sink stream and Dump differ:\n%s\nvs\n%s", stream.Bytes(), dumped.Bytes())
	}

	got, err := Decode(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("Decode accepted malformed JSON")
	}
	if _, err := Decode(strings.NewReader(`{"cycle":1,"kind":"no-such-kind"}` + "\n")); err == nil {
		t.Fatal("Decode accepted an unknown kind")
	}
}

// TestScanReportsPosition: a malformed line aborts the scan naming the line
// and the byte offset it starts at, so corrupt multi-gigabyte traces are
// seekable to the damage.
func TestScanReportsPosition(t *testing.T) {
	good := `{"cycle":1,"kind":"inject","msg":1}` + "\n"
	in := good + good + "{broken\n"
	err := Scan(strings.NewReader(in), func(Event) error { return nil })
	if err == nil {
		t.Fatal("Scan accepted a malformed line")
	}
	if !strings.Contains(err.Error(), "line 3") ||
		!strings.Contains(err.Error(), fmt.Sprintf("byte %d", 2*len(good))) {
		t.Fatalf("err = %v, want line 3 at byte %d", err, 2*len(good))
	}
}

// TestScanStopsOnCallbackError: fn's error aborts the scan unchanged.
func TestScanStopsOnCallbackError(t *testing.T) {
	in := strings.Repeat(`{"cycle":1,"kind":"inject"}`+"\n", 5)
	seen := 0
	sentinel := fmt.Errorf("stop")
	err := Scan(strings.NewReader(in), func(Event) error {
		seen++
		if seen == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || seen != 2 {
		t.Fatalf("err = %v after %d events; want the sentinel after 2", err, seen)
	}
}

func TestKindNames(t *testing.T) {
	for k := KindInvalid + 1; k < numKinds; k++ {
		name := k.String()
		if strings.Contains(name, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Fatalf("KindByName(%q) = %v, %v; want %v", name, back, ok, k)
		}
	}
	if _, ok := KindByName("invalid"); ok {
		t.Fatal("KindByName resolved the invalid kind")
	}
}

// TestEmitDoesNotAllocate: the ring path must be allocation-free even while
// wrapping, and the streaming path must reuse its encode buffer.
func TestEmitDoesNotAllocate(t *testing.T) {
	r := NewRecorder(8)
	avg := testing.AllocsPerRun(1000, func() {
		r.Emit(KindRouteFail, 1, 2, 3, 4, 5)
	})
	if avg != 0 {
		t.Fatalf("ring Emit allocates %.3f times, want 0", avg)
	}

	var sink bytes.Buffer
	sink.Grow(1 << 20)
	rs := NewRecorder(8)
	rs.SetSink(&sink)
	rs.Emit(KindRouteFail, 1, 2, 3, 4, 5) // warm the encode buffer
	avg = testing.AllocsPerRun(1000, func() {
		rs.Emit(KindRouteFail, 1, 2, 3, 4, 5)
	})
	if avg != 0 {
		t.Fatalf("streaming Emit allocates %.3f times, want 0", avg)
	}
}
