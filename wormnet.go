// Package wormnet is a flit-level simulator of wormhole-switched k-ary
// n-cube networks with true fully adaptive routing, built to reproduce
//
//	P. López, J. M. Martínez, J. Duato,
//	"A Very Efficient Distributed Deadlock Detection Mechanism for
//	Wormhole Networks", HPCA 1998.
//
// The package exposes a small, stable configuration surface: pick a
// topology, a traffic workload, a deadlock detection mechanism (the paper's
// NDM, the earlier PDM, or crude timeouts) and a recovery style, then Run.
// The returned metrics include the paper's figure of merit — the percentage
// of messages detected as possibly deadlocked — with every detection
// classified as true or false by an omniscient deadlock oracle.
//
// The complete experiment harness for the paper's Tables 1-7 lives in
// RunPaperTable; the cmd/tables tool wraps it.
package wormnet

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"wormnet/internal/detect"
	"wormnet/internal/exp"
	"wormnet/internal/forensics"
	"wormnet/internal/harness"
	"wormnet/internal/metrics"
	"wormnet/internal/probe"
	"wormnet/internal/recovery"
	"wormnet/internal/router"
	"wormnet/internal/routing"
	"wormnet/internal/sim"
	"wormnet/internal/stats"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
	"wormnet/internal/viz"
)

// Pattern names a message destination distribution (paper Section 4).
type Pattern string

// Destination distributions.
const (
	Uniform        Pattern = "uniform"
	Locality       Pattern = "locality"
	BitReversal    Pattern = "bit-reversal"
	PerfectShuffle Pattern = "perfect-shuffle"
	Butterfly      Pattern = "butterfly"
	HotSpot        Pattern = "hot-spot"
	// Transpose and Tornado extend the paper's workloads with two further
	// classic adversarial patterns.
	Transpose Pattern = "transpose"
	Tornado   Pattern = "tornado"
)

// Mechanism names a deadlock detection mechanism.
type Mechanism string

// Detection mechanisms.
const (
	// NDM is the paper's mechanism (Section 3).
	NDM Mechanism = "ndm"
	// PDM is the previous mechanism it improves on (Section 2).
	PDM Mechanism = "pdm"
	// SourceAge, SourceStall and HeaderBlock are the crude timeout
	// heuristics referenced in the introduction.
	SourceAge   Mechanism = "src-age"
	SourceStall Mechanism = "src-stall"
	HeaderBlock Mechanism = "hdr-block"
	// CMH is Chandy–Misra–Haas edge chasing: blocked headers launch probe
	// control messages along the wait-for graph, and a probe returning to a
	// channel held by its initiator proves a cycle. Unlike the router-local
	// mechanisms its control messages consume link bandwidth (see
	// internal/probe and the Probe* Config knobs).
	CMH Mechanism = "cmh"
	// NoDetection disables detection (and therefore recovery).
	NoDetection Mechanism = "none"
)

// ProbeTransport names how CMH probe flits share physical links with data.
type ProbeTransport string

// Probe transports.
const (
	// ProbeStealIdle moves probes only across links that carried no data
	// flit this cycle (the default).
	ProbeStealIdle ProbeTransport = "steal-idle"
	// ProbeControlVC models a dedicated control virtual channel: one probe
	// flit per link per cycle regardless of data traffic.
	ProbeControlVC ProbeTransport = "ctrl-vc"
)

// ProbeVictim names CMH's victim-selection policy.
type ProbeVictim string

// Probe victim policies.
const (
	// ProbeVictimLocal marks the probe's initiator (the default).
	ProbeVictimLocal ProbeVictim = "local"
	// ProbeVictimOldest marks the oldest message the probe visited.
	ProbeVictimOldest ProbeVictim = "oldest"
)

// Routing names a routing algorithm.
type Routing string

// Routing algorithms.
const (
	// Adaptive is the paper's true fully adaptive minimal routing: any
	// virtual channel of any profitable physical channel. Deadlock-prone;
	// pair it with detection + recovery.
	Adaptive Routing = "adaptive"
	// DOR is deterministic dimension-order routing with Dally-Seitz
	// virtual channel classes: deadlock-free, no detection needed.
	DOR Routing = "dor"
	// Duato is Duato's protocol: fully adaptive over the adaptive virtual
	// channels with a dimension-order escape path. Deadlock-free.
	Duato Routing = "duato"
)

// Recovery names a deadlock recovery style.
type Recovery string

// Recovery styles.
const (
	// Progressive absorbs the deadlocked message at the node holding its
	// header and re-injects it there (software-based recovery).
	Progressive Recovery = "progressive"
	// Regressive kills the deadlocked message and retries from the source
	// (abort-and-retry).
	Regressive Recovery = "regressive"
)

// Lengths describes the message length distribution. Set Fixed for a
// constant size, or Short/Long/PShort for the paper's bimodal "sl" mix.
type Lengths struct {
	Fixed  int
	Short  int
	Long   int
	PShort float64
}

// Fixed16 etc. are the paper's standard workloads.
var (
	Len16  = Lengths{Fixed: 16}
	Len64  = Lengths{Fixed: 64}
	Len256 = Lengths{Fixed: 256}
	LenSL  = Lengths{Short: 16, Long: 64, PShort: 0.6}
)

func (l Lengths) dist() (traffic.LengthDist, error) {
	if l.Fixed > 0 {
		return traffic.Fixed(l.Fixed), nil
	}
	if l.Short > 0 && l.Long > 0 {
		return traffic.Bimodal{Short: l.Short, Long: l.Long, PShort: l.PShort}, nil
	}
	return nil, fmt.Errorf("wormnet: empty Lengths")
}

// Config describes one simulation. The zero value is not runnable; start
// from DefaultConfig.
type Config struct {
	// K-ary N-cube topology (the paper evaluates K=8, N=3: 512 nodes).
	K, N int

	// Router microarchitecture: virtual channels per physical channel,
	// flit buffer depth per VC, injection/delivery ports per node.
	VirtualChannels int
	BufferFlits     int
	Ports           int

	// Workload.
	Pattern Pattern
	// LocalityRadius applies to the Locality pattern (default 2).
	LocalityRadius int
	// HotFraction and HotNode apply to the HotSpot pattern (default 5%
	// destined for node 0).
	HotFraction float64
	HotNode     int
	Lengths     Lengths
	// Load is the offered traffic in flits/cycle/node.
	Load float64
	// Burstiness > 1 switches the sources to a two-state burst model whose
	// ON-state rate is Burstiness times the average Load; BurstLength is
	// the mean ON duration in cycles (default 64). Burstiness <= 1 keeps
	// the paper's Bernoulli process.
	Burstiness  float64
	BurstLength int

	// Routing selects the routing algorithm (default: the paper's true
	// fully adaptive routing). The deadlock-free algorithms (DOR, Duato)
	// must run with Mechanism == NoDetection.
	Routing Routing

	// Detection mechanism and its threshold (t2 for NDM).
	Mechanism Mechanism
	Threshold int64
	// T1 is NDM's short threshold (default 1, as in the paper).
	T1 int64
	// SelectivePromotion enables the selective P->G re-arming variant the
	// paper mentions as future work (default: the paper's simple policy).
	SelectivePromotion bool

	// CMH-only knobs; ignored by the other mechanisms. Threshold doubles
	// as CMH's probe initiation delay. Zero values select the internal/probe
	// defaults (steal-idle transport, local victim, 64-hop cap).
	ProbeTransport ProbeTransport
	ProbeVictim    ProbeVictim
	ProbeMaxHops   int

	// Recovery style for marked messages.
	Recovery Recovery

	// InjectionLimit is the injection-limitation threshold (maximum busy
	// network output VCs that still admits a new message); negative
	// disables the mechanism.
	InjectionLimit int

	// Simulation phases in cycles, and the RNG seed.
	Warmup, Measure int64
	Seed            uint64

	// Shards is the number of workers each cycle's work is partitioned
	// over: the torus is split into that many contiguous node blocks,
	// stepped concurrently under a deterministic two-phase cycle barrier.
	// Results are byte-identical for every shard count (see DESIGN.md §11).
	// Zero selects 1 (fully serial); the count must not exceed the node
	// count.
	Shards int

	// DenseKernel selects the reference cycle kernel, which rescans the
	// whole fabric every cycle, instead of the default sparse kernel that
	// iterates only active sets (scheduled arrivals, nonempty source
	// queues, fed links, occupied delivery VCs). Both kernels produce
	// byte-identical results (see DESIGN.md §12); the dense one exists for
	// equivalence testing and diagnosis.
	DenseKernel bool

	// OracleEvery > 0 additionally runs the global deadlock oracle every
	// so many cycles to measure actual deadlock frequency.
	OracleEvery int64

	// TracePath, when non-empty, enables the flight recorder (see
	// internal/trace) and names the JSONL file receiving events. With
	// TraceLast == 0 every event is streamed to the file as it happens;
	// with TraceLast > 0 only the most recent TraceLast events are kept in
	// a ring, written out only when the run marked at least one message
	// (or failed), so long healthy runs leave no file behind. Missing
	// parent directories are created.
	TracePath string
	TraceLast int

	// MetricsAddr, when non-empty, attaches the live metrics collector
	// (see internal/metrics) and serves it over HTTP at this address
	// ("host:port"; ":0" picks an ephemeral port) for the duration of the
	// run: Prometheus-text /metrics, a JSON /status snapshot, the sampled
	// time series at /series, and the runtime profiles at /debug/pprof.
	// Metrics are pure observation: results are identical with or without
	// them.
	MetricsAddr string
	// MetricsWindow is the collector's sampling window in cycles (default
	// 256). It also applies when SeriesPath alone enables the collector.
	MetricsWindow int64
	// SeriesPath, when non-empty, attaches the collector (with or without
	// MetricsAddr) and writes its sampled time series to this file when the
	// run finishes — JSONL by default, CSV when the path ends in ".csv".
	// Missing parent directories are created.
	SeriesPath string
	// MetricsReady, when non-nil, is called with the exporter's bound
	// address once it is listening (mainly useful with ":0").
	MetricsReady func(addr string)

	// ForensicsPath, when non-empty, attaches the episode correlator (see
	// internal/forensics) as an online trace observer and writes the
	// per-episode incident report (JSONL, one episode per line) to this
	// file when the run finishes — even when no episodes occurred, so a
	// sweep can distinguish "clean run" from "forensics off". Forensics
	// requires the flight recorder: if TracePath is unset a ring-only
	// recorder is attached internally (no trace file is produced).
	// Incident reports are a pure function of the trace event stream, so
	// they inherit its determinism contract: byte-identical for a fixed
	// seed across shard counts and sparse/dense kernels.
	ForensicsPath string
}

// DefaultConfig returns the paper's baseline: 8-ary 3-cube, 3 VCs with
// 4-flit buffers, 4 ports, uniform 16-flit traffic at a moderate load, NDM
// with threshold 32, progressive recovery, injection limitation on.
func DefaultConfig() Config {
	return Config{
		K: 8, N: 3,
		VirtualChannels: 3,
		BufferFlits:     4,
		Ports:           4,
		Pattern:         Uniform,
		Routing:         Adaptive,
		LocalityRadius:  2,
		HotFraction:     0.05,
		Lengths:         Len16,
		Load:            0.3,
		Mechanism:       NDM,
		Threshold:       32,
		T1:              1,
		Recovery:        Progressive,
		InjectionLimit:  6,
		Warmup:          5_000,
		Measure:         30_000,
		Seed:            1,
	}
}

// Metrics are the measurements accumulated over the measurement window.
// See the stats package for field documentation; the most important are
// Marked / Delivered (the paper's detection percentage, via PctMarked),
// TrueMarked / FalseMarked, Throughput and AvgLatency.
type Metrics = stats.Counters

// Result of a simulation run.
type Result struct {
	Metrics
	// DetectorName describes the active mechanism, e.g. "ndm(t2=32)".
	DetectorName string
	// TotalCycles includes warm-up.
	TotalCycles int64
	// LatencyP50, LatencyP95 and LatencyP99 are generation-to-delivery
	// latency percentiles in cycles (approximate to within ~12%).
	LatencyP50, LatencyP95, LatencyP99 int64
	// DetectDelayP50 and DetectDelayP99 are percentiles of the detection
	// delay: cycles from a message's first failed routing attempt at its
	// final node until it was marked as deadlocked (0 when nothing was
	// marked). For NDM this hugs the configured threshold, the paper's
	// "deadlock is detected at once" once t2 expires.
	DetectDelayP50, DetectDelayP99 int64
	// DetectLatencyP50 and DetectLatencyP99 are percentiles of the
	// detection latency: cycles from the oracle first observing a message
	// in the deadlocked set until the mechanism marked it. Only populated
	// when OracleEvery > 0; it is the end-to-end "how long did the
	// hardware take to notice" metric the detection-delay histogram (which
	// starts at the message's own first failed attempt) cannot provide.
	DetectLatencyP50, DetectLatencyP99 int64
	// DetectLatencySamples counts the marks that contributed to the
	// detection-latency percentiles.
	DetectLatencySamples int64
}

func (c Config) patternFactory() (sim.PatternFactory, error) {
	switch c.Pattern {
	case Uniform, "":
		return func(t *topology.Torus) traffic.Pattern { return traffic.NewUniform(t) }, nil
	case Locality:
		r := c.LocalityRadius
		if r == 0 {
			r = 2
		}
		return func(t *topology.Torus) traffic.Pattern { return traffic.NewLocality(t, r) }, nil
	case BitReversal:
		return func(t *topology.Torus) traffic.Pattern { return traffic.NewBitReversal(t) }, nil
	case PerfectShuffle:
		return func(t *topology.Torus) traffic.Pattern { return traffic.NewPerfectShuffle(t) }, nil
	case Butterfly:
		return func(t *topology.Torus) traffic.Pattern { return traffic.NewButterfly(t) }, nil
	case HotSpot:
		frac := c.HotFraction
		if frac == 0 {
			frac = 0.05
		}
		node := c.HotNode
		return func(t *topology.Torus) traffic.Pattern { return traffic.NewHotSpot(t, node, frac) }, nil
	case Transpose:
		return func(t *topology.Torus) traffic.Pattern { return traffic.NewTranspose(t) }, nil
	case Tornado:
		return func(t *topology.Torus) traffic.Pattern { return traffic.NewTornado(t) }, nil
	default:
		return nil, fmt.Errorf("wormnet: unknown pattern %q", c.Pattern)
	}
}

func (c Config) detectorFactory() (sim.DetectorFactory, error) {
	th := c.Threshold
	switch c.Mechanism {
	case NDM, "":
		t1 := c.T1
		if t1 == 0 {
			t1 = 1
		}
		prom := detect.PromoteAll
		if c.SelectivePromotion {
			prom = detect.PromoteWaiting
		}
		return func(f *router.Fabric) detect.Detector {
			return detect.NewNDMOpt(f, t1, th, prom)
		}, nil
	case PDM:
		return func(f *router.Fabric) detect.Detector { return detect.NewPDM(f, th) }, nil
	case SourceAge:
		return func(f *router.Fabric) detect.Detector { return detect.NewSourceAgeTimeout(th) }, nil
	case SourceStall:
		return func(f *router.Fabric) detect.Detector { return detect.NewSourceStallTimeout(th) }, nil
	case HeaderBlock:
		return func(f *router.Fabric) detect.Detector { return detect.NewHeaderBlockTimeout(th) }, nil
	case CMH:
		pc := probe.Config{InitDelay: th, MaxHops: int32(c.ProbeMaxHops)}
		switch c.ProbeTransport {
		case ProbeStealIdle, "":
			pc.Transport = probe.TransportStealIdle
		case ProbeControlVC:
			pc.Transport = probe.TransportControlVC
		default:
			return nil, fmt.Errorf("wormnet: unknown probe transport %q", c.ProbeTransport)
		}
		switch c.ProbeVictim {
		case ProbeVictimLocal, "":
			pc.Victim = probe.VictimLocal
		case ProbeVictimOldest:
			pc.Victim = probe.VictimOldest
		default:
			return nil, fmt.Errorf("wormnet: unknown probe victim %q", c.ProbeVictim)
		}
		return func(f *router.Fabric) detect.Detector { return probe.New(f, pc) }, nil
	case NoDetection:
		return nil, nil
	default:
		return nil, fmt.Errorf("wormnet: unknown mechanism %q", c.Mechanism)
	}
}

func (c Config) simConfig() (sim.Config, error) {
	sc := sim.DefaultConfig()
	sc.K, sc.N = c.K, c.N
	sc.Router = router.Config{
		VCsPerLink: c.VirtualChannels,
		BufFlits:   c.BufferFlits,
		InjPorts:   c.Ports,
		DelPorts:   c.Ports,
	}
	pat, err := c.patternFactory()
	if err != nil {
		return sc, err
	}
	sc.Pattern = pat
	dist, err := c.Lengths.dist()
	if err != nil {
		return sc, err
	}
	sc.Lengths = dist
	sc.Load = c.Load
	if c.Burstiness > 1 {
		burstLen := c.BurstLength
		if burstLen == 0 {
			burstLen = 64
		}
		burstiness := c.Burstiness
		load := c.Load
		sc.Process = func(t *topology.Torus) traffic.Process {
			return traffic.NewBursty(t, pat(t), dist, load, burstiness, burstLen)
		}
	}
	if c.Routing != "" {
		alg, ok := routing.ByName(string(c.Routing))
		if !ok {
			return sc, fmt.Errorf("wormnet: unknown routing %q", c.Routing)
		}
		sc.Routing = alg
	}
	det, err := c.detectorFactory()
	if err != nil {
		return sc, err
	}
	sc.Detector = det
	switch c.Recovery {
	case Progressive, "":
		sc.Recovery = recovery.Progressive
	case Regressive:
		sc.Recovery = recovery.Regressive
	default:
		return sc, fmt.Errorf("wormnet: unknown recovery %q", c.Recovery)
	}
	sc.InjectionLimit = c.InjectionLimit
	sc.Warmup, sc.Measure = c.Warmup, c.Measure
	sc.OracleEvery = c.OracleEvery
	sc.Seed = c.Seed
	sc.Shards = c.Shards
	sc.DenseKernel = c.DenseKernel
	return sc, nil
}

// SimConfig expands the public configuration into the internal simulation
// config consumed by the sim engine and the sweep harness
// (internal/harness). Tools inside this module use it to build harness
// points from the same configuration surface Run accepts.
func (c Config) SimConfig() (sim.Config, error) {
	return c.simConfig()
}

// ResultFromSim converts a raw engine result into the public Result,
// deriving the reported latency and detection-delay percentiles.
func ResultFromSim(r *sim.Result) *Result {
	res := &Result{
		Metrics:        r.Counters,
		DetectorName:   r.Detector,
		TotalCycles:    r.TotalCycles,
		LatencyP50:     r.LatencyHist.Quantile(0.50),
		LatencyP95:     r.LatencyHist.Quantile(0.95),
		LatencyP99:     r.LatencyHist.Quantile(0.99),
		DetectDelayP50: r.DetectDelayHist.Quantile(0.50),
		DetectDelayP99: r.DetectDelayHist.Quantile(0.99),
	}
	if h := r.DetectLatencyHist; h != nil && h.Count() > 0 {
		res.DetectLatencyP50 = h.Quantile(0.50)
		res.DetectLatencyP99 = h.Quantile(0.99)
		res.DetectLatencySamples = h.Count()
	}
	return res
}

// createFile creates path's missing parent directories, then the file.
func createFile(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.Create(path)
}

// writeSeries dumps a collector's sampled time series to path, as CSV when
// the path ends in ".csv" and JSONL otherwise.
func writeSeries(path string, mc *metrics.Collector) error {
	f, err := createFile(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = mc.WriteSeriesCSV(f)
	} else {
		err = mc.WriteSeriesJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeForensics dumps a correlator's incident report to path as JSONL.
func writeForensics(path string, fc *forensics.Correlator) error {
	f, err := createFile(path)
	if err != nil {
		return err
	}
	err = fc.WriteReport(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Run executes the simulation described by cfg and returns its metrics.
func Run(cfg Config) (*Result, error) {
	sc, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	var rec *trace.Recorder
	var sink *os.File
	if cfg.TracePath != "" {
		rec = trace.NewRecorder(cfg.TraceLast)
		if cfg.TraceLast <= 0 {
			// Streaming mode: every event goes to the file as it happens.
			sink, err = createFile(cfg.TracePath)
			if err != nil {
				return nil, err
			}
			rec.SetSink(sink)
		}
		sc.Trace = rec
	}
	var mc *metrics.Collector
	if cfg.MetricsAddr != "" || cfg.SeriesPath != "" {
		mc = metrics.NewCollector(metrics.Options{Window: cfg.MetricsWindow})
		sc.Metrics = mc
	}
	var fc *forensics.Correlator
	if cfg.ForensicsPath != "" {
		if rec == nil {
			// Forensics rides the trace event stream; attach a ring-only
			// recorder (never dumped) when tracing itself is off.
			rec = trace.NewRecorder(cfg.TraceLast)
			sc.Trace = rec
		}
		fc = forensics.New(forensics.Options{Metrics: mc})
		rec.SetObserver(fc.Observe)
	}
	eng, err := sim.New(sc)
	if err != nil {
		if sink != nil {
			sink.Close()
		}
		return nil, err
	}
	if cfg.MetricsAddr != "" {
		srv, serr := metrics.Serve(cfg.MetricsAddr, mc)
		if serr != nil {
			if sink != nil {
				sink.Close()
			}
			return nil, fmt.Errorf("wormnet: metrics exporter: %w", serr)
		}
		defer srv.Close()
		if cfg.MetricsReady != nil {
			cfg.MetricsReady(srv.Addr())
		}
	}
	r, runErr := eng.Run()
	if fc != nil {
		fc.Finish()
		if runErr == nil {
			if werr := writeForensics(cfg.ForensicsPath, fc); werr != nil {
				runErr = fmt.Errorf("wormnet: writing incidents %s: %w", cfg.ForensicsPath, werr)
			}
		}
	}
	if runErr == nil && cfg.SeriesPath != "" {
		if werr := writeSeries(cfg.SeriesPath, mc); werr != nil {
			return nil, fmt.Errorf("wormnet: writing series %s: %w", cfg.SeriesPath, werr)
		}
	}
	if sink != nil {
		ferr := rec.Flush()
		if cerr := sink.Close(); ferr == nil {
			ferr = cerr
		}
		if runErr == nil && ferr != nil {
			return nil, fmt.Errorf("wormnet: writing trace %s: %w", cfg.TracePath, ferr)
		}
	} else if rec != nil && cfg.TracePath != "" && (runErr != nil || rec.Contains(trace.KindDetect)) {
		// Ring mode: dump the flight recorder only when something went
		// wrong or a detection fired, so healthy runs stay file-free.
		f, cerr := createFile(cfg.TracePath)
		if cerr == nil {
			if derr := rec.Dump(f); cerr == nil {
				cerr = derr
			}
			if clerr := f.Close(); cerr == nil {
				cerr = clerr
			}
		}
		if runErr == nil && cerr != nil {
			return nil, fmt.Errorf("wormnet: writing trace %s: %w", cfg.TracePath, cerr)
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	return ResultFromSim(r), nil
}

// Observe runs the simulation like Run, additionally invoking fn every
// `every` cycles with a one-line fabric occupancy summary and, for 2-D
// networks, an ASCII utilization heatmap. Useful for watching congestion
// and blocked-message trees build up.
func Observe(cfg Config, every int64, fn func(cycle int64, summary, heatmap string)) (*Result, error) {
	if every <= 0 {
		return nil, fmt.Errorf("wormnet: Observe requires every > 0")
	}
	sc, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	eng, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	total := sc.Warmup + sc.Measure
	for eng.Now() < total {
		if err := eng.Step(); err != nil {
			return nil, err
		}
		if eng.Now()%every == 0 {
			fn(eng.Now(), viz.Summarize(eng.Fabric()).String(), viz.Heatmap(eng.Fabric()))
		}
	}
	return &Result{
		Metrics:      *eng.Stats(),
		DetectorName: eng.Detector().Name(),
		TotalCycles:  total,
		LatencyP50:   eng.LatencyHistogram().Quantile(0.50),
		LatencyP95:   eng.LatencyHistogram().Quantile(0.95),
		LatencyP99:   eng.LatencyHistogram().Quantile(0.99),
	}, nil
}

// TableOptions configure a paper-table reproduction.
type TableOptions struct {
	// K and N select the network (default: the paper's 8-ary 3-cube).
	K, N int
	// Warmup and Measure are per-cell simulation phases in cycles.
	Warmup, Measure int64
	// Seed seeds the sweep.
	Seed uint64
	// RelativeRates rescales the paper's injection rates to the measured
	// saturation throughput of the configured network; use it whenever
	// K and N differ from 8 and 3.
	RelativeRates bool
	// SelectivePromotion runs NDM with the selective P->G variant.
	SelectivePromotion bool
	// Workers bounds concurrent cell simulations; 0 means GOMAXPROCS.
	// Results are identical for every worker count.
	Workers int
	// Repeats runs each cell this many times with independently derived
	// seeds and reports mean±ci95; 0 or 1 means a single run.
	Repeats int
	// Journal, if non-empty, is a JSONL checkpoint file recording each
	// completed (cell, repeat) run; with Resume set, runs already in the
	// journal are reused instead of re-simulated.
	Journal string
	Resume  bool
	// Progress, if non-nil, receives (done, total) after each cell.
	Progress func(done, total int)
	// TraceDir, if non-empty, attaches a flight recorder to every cell run
	// and dumps the last TraceLast events of runs that failed or detected
	// a deadlock to per-run JSONL files in that directory.
	TraceDir  string
	TraceLast int
	// SeriesDir, if non-empty, attaches a metrics collector to every cell
	// run, dumps per-run sampled time series there and merges the per-run
	// registries into SeriesDir/aggregate.prom. SeriesWindow is the
	// sampling window in cycles (default 256).
	SeriesDir    string
	SeriesWindow int64
}

// TableResult is a measured paper table; render it with Render.
type TableResult struct {
	inner *exp.Result
}

// Render writes the table in the paper's layout.
func (t *TableResult) Render(w io.Writer) {
	t.inner.Format(w)
}

// RenderJSON writes the table as JSON (reloadable with the exp package's
// DecodeJSON).
func (t *TableResult) RenderJSON(w io.Writer) error {
	return t.inner.EncodeJSON(w)
}

// WorstAtThreshold returns the largest detection percentage across the
// table's cells at the given threshold.
func (t *TableResult) WorstAtThreshold(th int64) (float64, bool) {
	return t.inner.SummaryRow(th)
}

// Pct returns the measured percentage for (threshold, rate index, size key).
func (t *TableResult) Pct(th int64, rateIdx int, size string) (float64, bool) {
	c, ok := t.inner.Cell(th, rateIdx, size)
	return c.Pct, ok
}

// RunPaperTable reproduces the paper's table id (1..7).
func RunPaperTable(id int, opt TableOptions) (*TableResult, error) {
	tbl, err := exp.PaperTable(id)
	if err != nil {
		return nil, err
	}
	eo := exp.DefaultOptions()
	if opt.K != 0 {
		eo.K = opt.K
	}
	if opt.N != 0 {
		eo.N = opt.N
	}
	if opt.Warmup != 0 {
		eo.Warmup = opt.Warmup
	}
	if opt.Measure != 0 {
		eo.Measure = opt.Measure
	}
	if opt.Seed != 0 {
		eo.Seed = opt.Seed
	}
	eo.RelativeRates = opt.RelativeRates
	if opt.SelectivePromotion {
		eo.Promotion = detect.PromoteWaiting
	}
	eo.Workers = opt.Workers
	eo.Repeats = opt.Repeats
	eo.Journal = opt.Journal
	eo.Resume = opt.Resume
	eo.Progress = opt.Progress
	eo.Observe = harness.Observe{
		TraceDir:     opt.TraceDir,
		TraceLast:    opt.TraceLast,
		SeriesDir:    opt.SeriesDir,
		SeriesWindow: opt.SeriesWindow,
	}
	res, err := exp.Run(tbl, eo)
	if err != nil {
		return nil, err
	}
	return &TableResult{inner: res}, nil
}
