package wormnet

import (
	"bytes"
	"strings"
	"testing"
)

// small returns a fast configuration on a 16-node torus.
func small() Config {
	cfg := DefaultConfig()
	cfg.K, cfg.N = 4, 2
	cfg.Warmup, cfg.Measure = 500, 3000
	return cfg
}

func TestRunDefaultsOnSmallTorus(t *testing.T) {
	res, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.DetectorName != "ndm(t2=32)" {
		t.Errorf("detector %q", res.DetectorName)
	}
	if res.TotalCycles != 3500 {
		t.Errorf("TotalCycles = %d", res.TotalCycles)
	}
}

func TestRunAllPatterns(t *testing.T) {
	for _, p := range []Pattern{Uniform, Locality, BitReversal, PerfectShuffle, Butterfly, HotSpot} {
		cfg := small()
		cfg.Pattern = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", p)
		}
	}
}

func TestRunAllMechanisms(t *testing.T) {
	for _, m := range []Mechanism{NDM, PDM, SourceAge, SourceStall, HeaderBlock, NoDetection} {
		cfg := small()
		cfg.Mechanism = m
		cfg.Threshold = 64
		cfg.Load = 1.0
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestRunAllLengths(t *testing.T) {
	for _, l := range []Lengths{Len16, Len64, Len256, LenSL} {
		cfg := small()
		cfg.Lengths = l
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunRecoveryStyles(t *testing.T) {
	for _, r := range []Recovery{Progressive, Regressive} {
		cfg := small()
		cfg.Recovery = r
		cfg.Load = 2.0
		cfg.VirtualChannels = 1
		cfg.InjectionLimit = -1
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"pattern":   func(c *Config) { c.Pattern = "nope" },
		"mechanism": func(c *Config) { c.Mechanism = "nope" },
		"recovery":  func(c *Config) { c.Recovery = "nope" },
		"lengths":   func(c *Config) { c.Lengths = Lengths{} },
		"topology":  func(c *Config) { c.K = 0 },
	} {
		cfg := small()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: bad config accepted", name)
		}
	}
}

func TestSelectivePromotionRuns(t *testing.T) {
	cfg := small()
	cfg.SelectivePromotion = true
	cfg.Load = 2.0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.DetectorName, "selective") {
		t.Errorf("detector %q", res.DetectorName)
	}
}

func TestOracleEvery(t *testing.T) {
	cfg := small()
	cfg.OracleEvery = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleRuns == 0 {
		t.Error("oracle never ran")
	}
}

func TestRunPaperTableScaledDown(t *testing.T) {
	var progressCalls int
	res, err := RunPaperTable(2, TableOptions{
		K: 4, N: 2,
		Warmup:        300,
		Measure:       1500,
		RelativeRates: true,
		Progress:      func(done, total int) { progressCalls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if progressCalls != 10*4*4 {
		t.Errorf("progress calls = %d, want 160", progressCalls)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "Th 1024") {
		t.Errorf("rendered table malformed:\n%s", out)
	}
	if _, ok := res.WorstAtThreshold(32); !ok {
		t.Error("threshold 32 row missing")
	}
	if _, ok := res.Pct(32, 0, "s"); !ok {
		t.Error("cell lookup failed")
	}
	if _, ok := res.Pct(3, 0, "s"); ok {
		t.Error("nonexistent threshold found")
	}
}

func TestRunRoutingAlgorithms(t *testing.T) {
	for _, r := range []Routing{Adaptive, DOR, Duato} {
		cfg := small()
		cfg.Routing = r
		if r != Adaptive {
			cfg.Mechanism = NoDetection
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", r)
		}
	}
	// Unknown routing rejected.
	cfg := small()
	cfg.Routing = "nope"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown routing accepted")
	}
	// Detection with avoidance routing rejected.
	cfg = small()
	cfg.Routing = DOR
	if _, err := Run(cfg); err == nil {
		t.Error("detection accepted with DOR")
	}
}

func TestRunExtendedPatterns(t *testing.T) {
	for _, p := range []Pattern{Transpose, Tornado} {
		cfg := small()
		cfg.Pattern = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", p)
		}
	}
}

func TestRunBurstySources(t *testing.T) {
	cfg := small()
	cfg.Burstiness = 4
	cfg.BurstLength = 32
	cfg.Load = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered under bursty sources")
	}
	// The long-run accepted load should still track the configured average.
	if thr := res.Throughput(); thr < 0.3 || thr > 0.7 {
		t.Errorf("bursty throughput %.4f far from configured 0.5", thr)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	res, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyP50 <= 0 || res.LatencyP99 < res.LatencyP50 || res.LatencyP95 > res.LatencyP99 {
		t.Errorf("percentiles p50=%d p95=%d p99=%d", res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
}

// TestDetectionDelayHugsThreshold: once a deadlock forms, NDM marks within
// a small number of cycles after t2 expires — the detection delay
// percentiles sit at or just above the threshold.
func TestDetectionDelayHugsThreshold(t *testing.T) {
	cfg := small()
	cfg.VirtualChannels = 1
	cfg.InjectionLimit = -1
	cfg.Load = 2.0
	cfg.Threshold = 16
	cfg.Warmup, cfg.Measure = 0, 15000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Marked == 0 {
		t.Skip("no marks this seed")
	}
	if res.DetectDelayP50 < cfg.Threshold {
		t.Errorf("p50 detection delay %d below the threshold %d", res.DetectDelayP50, cfg.Threshold)
	}
	if res.DetectDelayP50 > cfg.Threshold*8 {
		t.Errorf("p50 detection delay %d far above the threshold %d", res.DetectDelayP50, cfg.Threshold)
	}
}

func TestObserve(t *testing.T) {
	cfg := small()
	var calls int
	var lastHeat string
	res, err := Observe(cfg, 500, func(cycle int64, summary, heatmap string) {
		calls++
		if summary == "" {
			t.Error("empty summary")
		}
		lastHeat = heatmap
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != int((cfg.Warmup+cfg.Measure)/500) {
		t.Errorf("observer called %d times", calls)
	}
	if !strings.Contains(lastHeat, "\n") {
		t.Errorf("heatmap missing for 2-D network: %q", lastHeat)
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered")
	}
	if _, err := Observe(cfg, 0, func(int64, string, string) {}); err == nil {
		t.Error("every=0 accepted")
	}
}

func TestRunPaperTableUnknownID(t *testing.T) {
	if _, err := RunPaperTable(9, TableOptions{K: 4, N: 2}); err == nil {
		t.Fatal("table 9 accepted")
	}
}
