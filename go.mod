module wormnet

go 1.22
