# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test race vet smoke shard-smoke sparse-smoke trace-smoke metrics-smoke forensics-smoke conformance-exhaustive conformance-nightly conformance-cex conformance-fuzz-seeds shootout bench-harness bench-kernel bench-json bench-trace bench-metrics bench-shards bench-sparse profile clean

all: vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Determinism smoke: a 4-worker checkpointed sweep must be byte-identical
# to a serial sweep, and so must a resume against the finished journal.
smoke: build
	$(GO) build -o /tmp/wormnet-loadsweep ./cmd/loadsweep
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 1 -quiet -json > /tmp/wormnet-serial.json
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 4 -checkpoint /tmp/wormnet-sweep.jsonl -quiet -json > /tmp/wormnet-par.json
	cmp /tmp/wormnet-serial.json /tmp/wormnet-par.json
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 4 -checkpoint /tmp/wormnet-sweep.jsonl -resume -quiet -json > /tmp/wormnet-resumed.json
	cmp /tmp/wormnet-serial.json /tmp/wormnet-resumed.json
	@echo "smoke: parallel and resumed sweeps byte-identical to serial"

# Sharded determinism smoke: a sweep stepped by 4 worker shards per
# simulation must be byte-identical to the serial sweep. This is the
# two-phase cycle barrier's core guarantee (DESIGN.md §11).
shard-smoke: build
	$(GO) build -o /tmp/wormnet-loadsweep ./cmd/loadsweep
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 1 -quiet -json > /tmp/wormnet-serial.json
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 1 -shards 4 -quiet -json > /tmp/wormnet-sharded.json
	cmp /tmp/wormnet-serial.json /tmp/wormnet-sharded.json
	@echo "shard-smoke: 4-shard sweep byte-identical to serial"

# Sparse-kernel smoke: the activity-driven sparse cycle kernel (the
# default) must be byte-identical to the dense reference kernel that
# rescans the whole fabric every cycle — serial and sharded. This is the
# sparse kernel's conformance contract (DESIGN.md §12).
sparse-smoke: build
	$(GO) build -o /tmp/wormnet-loadsweep ./cmd/loadsweep
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 1 -quiet -json > /tmp/wormnet-sparse.json
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 1 -dense-kernel -quiet -json > /tmp/wormnet-dense.json
	cmp /tmp/wormnet-sparse.json /tmp/wormnet-dense.json
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 1 -dense-kernel -shards 4 -quiet -json > /tmp/wormnet-dense-sharded.json
	cmp /tmp/wormnet-sparse.json /tmp/wormnet-dense-sharded.json
	@echo "sparse-smoke: dense reference kernel byte-identical to sparse, serial and sharded"

# Flight-recorder smoke: a saturated single-VC run must capture a decodable
# event stream containing detection verdicts, and the bounded ring mode must
# dump on detection too. Both files are checked by parsing them back through
# traceview.
trace-smoke: build
	$(GO) build -o /tmp/wormnet-wormsim ./cmd/wormsim
	$(GO) build -o /tmp/wormnet-traceview ./cmd/traceview
	/tmp/wormnet-wormsim -k 4 -n 2 -vcs 1 -load 2.0 -inject-limit -1 -th 8 \
		-warmup 0 -measure 3000 -oracle-every 1 \
		-trace /tmp/wormnet-events.jsonl > /dev/null
	/tmp/wormnet-traceview -summary /tmp/wormnet-events.jsonl \
		| tee /tmp/wormnet-trace-summary.txt
	grep -q 'detect' /tmp/wormnet-trace-summary.txt
	/tmp/wormnet-wormsim -k 4 -n 2 -vcs 1 -load 2.0 -inject-limit -1 -th 8 \
		-warmup 0 -measure 3000 -oracle-every 1 \
		-trace /tmp/wormnet-ring.jsonl -trace-last 256 > /dev/null
	/tmp/wormnet-traceview -summary /tmp/wormnet-ring.jsonl > /dev/null
	@echo "trace-smoke: stream and ring captures decode, detections present"

# Forensics pipeline gate: a fixed-seed saturated run dumps a deadlock
# incident report; cmd/forensics parses it; the report is byte-identical
# across shard counts and between the online observer and an offline replay
# of the streamed trace; and enabling forensics leaves the run's stdout
# byte-identical (pure observation).
FORENSICS_ARGS = -k 4 -n 2 -vcs 1 -load 2.0 -inject-limit -1 -th 64 \
	-warmup 0 -measure 3000 -oracle-every 1 -seed 7
forensics-smoke: build
	$(GO) build -o /tmp/wormnet-wormsim ./cmd/wormsim
	$(GO) build -o /tmp/wormnet-forensics ./cmd/forensics
	/tmp/wormnet-wormsim $(FORENSICS_ARGS) \
		-forensics /tmp/wormnet-incidents.jsonl \
		-trace /tmp/wormnet-forensics-events.jsonl \
		> /tmp/wormnet-forensics-on.txt
	/tmp/wormnet-wormsim $(FORENSICS_ARGS) > /tmp/wormnet-forensics-off.txt
	cmp /tmp/wormnet-forensics-on.txt /tmp/wormnet-forensics-off.txt
	/tmp/wormnet-wormsim $(FORENSICS_ARGS) -shards 4 \
		-forensics /tmp/wormnet-incidents-s4.jsonl > /dev/null
	cmp /tmp/wormnet-incidents.jsonl /tmp/wormnet-incidents-s4.jsonl
	/tmp/wormnet-forensics -write /tmp/wormnet-incidents-replay.jsonl \
		/tmp/wormnet-forensics-events.jsonl \
		| tee /tmp/wormnet-forensics-summary.txt
	cmp /tmp/wormnet-incidents.jsonl /tmp/wormnet-incidents-replay.jsonl
	grep -q 'true-deadlock' /tmp/wormnet-forensics-summary.txt
	@echo "forensics-smoke: incidents parse; byte-identical across shards, online/offline, stdout unchanged"

# Exhaustive conformance gate (CI-required, well under 2 minutes): the
# bounded model checker (internal/mc, cmd/mcheck) explores EVERY reachable
# blocking/advancing/injection interleaving of the scripted workloads and
# checks the paper's invariants — safety (structural + NDM flag lattice),
# liveness (every true deadlock marked and drained within a horizon) and
# mark economy (>= 1 true mark per drained episode) — for all three
# mechanisms.
#
#   3x3, window 0/1: exhaustive to fixpoint; the face cycle DOES deadlock
#   (-min-deadlocks guards against the liveness check going vacuous).
#   3x3, window 2:   exhaustive to depth 14 (the documented depth bound;
#   fixpoint is the nightly tier).
#   2x2, window 1:   exhaustive to fixpoint; proves the k=2 face cycle can
#   NEVER deadlock (parallel minimal channels always leave an escape), so
#   zero deadlocked states is the expected — and verified — outcome there.
#
# Any violation exits nonzero with a minimized choice path; re-run with
# -cex to emit a trace stream for traceview. The committed regression
# counterexample (a liveness violation with detection disabled) must keep
# rendering.
conformance-exhaustive: build
	$(GO) build -o /tmp/wormnet-mcheck ./cmd/mcheck
	$(GO) build -o /tmp/wormnet-traceview ./cmd/traceview
	/tmp/wormnet-mcheck -k 3 -mech ndm,pdm,cmh -script face -window 0 -min-deadlocks 1
	/tmp/wormnet-mcheck -k 3 -mech ndm,pdm,cmh -script face -window 1 -min-deadlocks 1
	/tmp/wormnet-mcheck -k 3 -mech ndm,pdm,cmh -script face -window 2 -depth 14 -min-deadlocks 1
	/tmp/wormnet-mcheck -k 2 -mech ndm,pdm,cmh -script face -window 1
	/tmp/wormnet-traceview -summary internal/mc/testdata/liveness-cex-3x3-none.jsonl \
		| grep -q 'oracle-deadlock'
	@echo "conformance-exhaustive: all interleavings verified (safety, liveness, mark economy)"

# Nightly-depth conformance tier (~1-2 min of pure exploration; not a PR
# gate). Adds the 8-message double-face script on the 2x2 — ~1M states,
# exhaustive proof that even with both parallel channels saturated the k=2
# torus cannot deadlock — and pushes the 3x3 window-2 space to fixpoint.
conformance-nightly: build
	$(GO) build -o /tmp/wormnet-mcheck ./cmd/mcheck
	/tmp/wormnet-mcheck -k 2 -mech ndm -script dblface -window 0 -max-states 1500000
	/tmp/wormnet-mcheck -k 3 -mech ndm,pdm,cmh -script face -window 2 -min-deadlocks 1
	@echo "conformance-nightly: deep exploration clean"

# Regenerate the committed regression counterexample: the minimized
# liveness violation the checker finds when detection is disabled.
conformance-cex: build
	$(GO) build -o /tmp/wormnet-mcheck ./cmd/mcheck
	-/tmp/wormnet-mcheck -k 3 -mech none -script face -window 0 \
		-cex internal/mc/testdata/liveness-cex-3x3-none.jsonl
	@echo "conformance-cex: regenerated internal/mc/testdata/liveness-cex-3x3-none.jsonl"

# Regenerate the committed fuzz corpora from model-checker frontier states
# (canonical state encodings make structured opcode programs for the
# detect/probe fuzz harnesses).
conformance-fuzz-seeds: build
	$(GO) build -o /tmp/wormnet-mcheck ./cmd/mcheck
	/tmp/wormnet-mcheck -k 3 -mech ndm -script face -window 1 \
		-emit-fuzz-seeds internal/detect/testdata/fuzz/FuzzNDMFlags -seeds 12
	/tmp/wormnet-mcheck -k 3 -mech pdm -script face -window 1 \
		-emit-fuzz-seeds internal/detect/testdata/fuzz/FuzzPDMFlags -seeds 12
	/tmp/wormnet-mcheck -k 3 -mech cmh -script face -window 1 \
		-emit-fuzz-seeds internal/probe/testdata/fuzz/FuzzProbeDigest -seeds 12
	@echo "conformance-fuzz-seeds: corpora regenerated"

# Metrics smoke: scrape a live run's /metrics, /status and /debug/pprof,
# check that an emitted time series parses back through metricsview, and
# hold a fixed-seed sweep to byte-identical output with metrics on and off
# (metrics are pure observation).
metrics-smoke: build
	$(GO) build -o /tmp/wormnet-wormsim ./cmd/wormsim
	$(GO) build -o /tmp/wormnet-metricsview ./cmd/metricsview
	$(GO) build -o /tmp/wormnet-loadsweep ./cmd/loadsweep
	/tmp/wormnet-wormsim -k 4 -n 2 -vcs 1 -load 2.0 -inject-limit -1 -th 16 \
		-warmup 0 -measure 100000000 -metrics-addr 127.0.0.1:19815 \
		>/dev/null 2>&1 & echo $$! > /tmp/wormnet-metrics.pid
	sleep 1; ok=0; \
	{ curl -sf http://127.0.0.1:19815/metrics | grep -q '^wormnet_cycles_total' \
		&& curl -sf http://127.0.0.1:19815/status | grep -q '"detector"' \
		&& curl -sf http://127.0.0.1:19815/debug/pprof/cmdline >/dev/null; } || ok=1; \
	kill `cat /tmp/wormnet-metrics.pid`; exit $$ok
	/tmp/wormnet-wormsim -k 4 -n 2 -vcs 1 -load 2.0 -inject-limit -1 -th 16 \
		-warmup 0 -measure 4000 -metrics-window 200 \
		-series /tmp/wormnet-run.series.jsonl > /dev/null
	/tmp/wormnet-metricsview -summary /tmp/wormnet-run.series.jsonl
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 2 -warmup 300 -measure 1500 \
		-workers 4 -quiet -json > /tmp/wormnet-plain.json
	rm -rf /tmp/wormnet-series
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 2 -warmup 300 -measure 1500 \
		-workers 4 -series-dir /tmp/wormnet-series -quiet -json > /tmp/wormnet-metered.json
	cmp /tmp/wormnet-plain.json /tmp/wormnet-metered.json
	/tmp/wormnet-metricsview -summary /tmp/wormnet-series/p000-r0-*.series.jsonl
	grep -q '^wormnet_cycles_total' /tmp/wormnet-series/aggregate.prom
	@echo "metrics-smoke: live scrape OK, series parse OK, metered sweep byte-identical"

# Serial vs parallel sweep wall-clock; writes results/harness_bench.txt.
bench-harness:
	$(GO) test -run NONE -bench 'BenchmarkSweep' -benchtime 2x \
		./internal/harness/ | tee results/harness_bench.txt

# Hot-path kernel benchmarks (engine cycle + deadlock oracle) with
# allocation reporting; writes results/kernel_bench.txt. The oracle and
# engine Step must report 0 allocs/op.
bench-kernel:
	$(GO) test -run NONE -bench 'EngineStep|Oracle' -benchmem -benchtime 2s \
		. | tee results/kernel_bench.txt

# Machine-readable perf baseline: the same kernel benchmarks parsed into
# BENCH_kernel.json (op times, allocs/op, fabric sizes) via cmd/benchjson,
# so the perf trajectory is tracked across PRs instead of living only in
# results/*.txt.
bench-json:
	$(GO) build -o /tmp/wormnet-benchjson ./cmd/benchjson
	$(GO) test -run NONE -bench 'EngineStep|Oracle' -benchmem -benchtime 2s \
		. | tee /tmp/wormnet-kernel-bench.txt | /tmp/wormnet-benchjson \
		> BENCH_kernel.json
	@echo "bench-json: wrote BENCH_kernel.json"

# Flight-recorder overhead: the engine cycle benched with tracing off, with
# the ring recorder, and with streaming JSONL encoding; writes
# results/trace_overhead.txt. The TraceOff row must match the untraced
# saturation bench (disabled tracing is one predicted branch per emit site)
# and TraceRing must report 0 allocs/op.
bench-trace:
	$(GO) test -run NONE -bench 'EngineStepTrace' -benchmem -benchtime 2s \
		. | tee results/trace_overhead.txt

# Metrics overhead: the engine cycle benched with metrics off, with the
# registry counters only, with the default-window sampler, and with the
# sampler plus a continuously scraped HTTP exporter; writes
# results/metrics_overhead.txt. The MetricsOff row must match the unmetered
# saturation bench, and the Registry/Sampler rows must report 0 allocs/op.
bench-metrics:
	$(GO) test -run NONE -bench 'EngineStepMetrics' -benchmem -benchtime 2s \
		. | tee results/metrics_overhead.txt

# Engine-cycle wall-clock vs shard count on the paper-scale 8-ary 3-cube;
# writes results/shard_scaling.txt. Output is byte-identical across the row
# by construction, so this only measures speed. Real speedup requires real
# cores: the file records how many were available when it was generated.
bench-shards:
	@echo "# Saturated engine cycle vs shard count (8-ary 3-cube, 512 nodes)." > results/shard_scaling.txt
	@echo "# Generated on a machine with $$(nproc) CPU(s) visible to the Go runtime." >> results/shard_scaling.txt
	@echo "# Speedup needs real cores: on a single-CPU host the barrier's" >> results/shard_scaling.txt
	@echo "# per-phase goroutine fan-out is pure overhead, so shards>1 can only" >> results/shard_scaling.txt
	@echo "# be slower there; regenerate on a multi-core machine to measure scaling." >> results/shard_scaling.txt
	$(GO) test -run NONE -bench 'EngineStepShards' -benchmem -benchtime 2s \
		. | tee -a results/shard_scaling.txt

# Sparse vs dense cycle-kernel wall-clock on a large 16-ary 3-cube
# (4096 nodes), at light load (where the sparse kernel's advantage is the
# idle fraction of the fabric) and at saturation (where it must stay
# within a few percent of dense); writes results/sparse_kernel.txt.
bench-sparse:
	@echo "# Engine cycle: sparse (activity-driven) vs dense (full-rescan) kernel" > results/sparse_kernel.txt
	@echo "# on a 16-ary 3-cube (4096 nodes); byte-identical output, wall-clock only." >> results/sparse_kernel.txt
	@echo "# Generated on a machine with $$(nproc) CPU(s)." >> results/sparse_kernel.txt
	$(GO) test -run NONE -bench 'EngineStepSparse' -benchmem -benchtime 2s \
		. | tee -a results/sparse_kernel.txt

# Three-way NDM/PDM/CMH detection shootout at a deadlock-prone operating
# point; regenerates results/cmh_shootout.txt (detection-latency
# histograms, true/false mark split, probe bandwidth). See EXPERIMENTS.md.
shootout: build
	$(GO) run ./cmd/compare -detlat -mechs pdm,ndm,cmh -k 4 -n 2 -th 16 \
		-measure 20000 > results/cmh_shootout.txt
	@echo "shootout: wrote results/cmh_shootout.txt"

# CPU and heap profiles of the kernel benchmarks; writes pprof artifacts
# under results/. Inspect with: go tool pprof results/cpu.pprof
profile:
	$(GO) test -run NONE -bench 'EngineStepSaturation|OracleSaturation' \
		-benchtime 2s -cpuprofile results/cpu.pprof -memprofile results/mem.pprof \
		. | tee results/profile_bench.txt
	@echo "profile: wrote results/cpu.pprof and results/mem.pprof"

clean:
	rm -f /tmp/wormnet-loadsweep /tmp/wormnet-serial.json \
		/tmp/wormnet-par.json /tmp/wormnet-resumed.json /tmp/wormnet-sweep.jsonl \
		/tmp/wormnet-wormsim /tmp/wormnet-traceview /tmp/wormnet-events.jsonl \
		/tmp/wormnet-ring.jsonl /tmp/wormnet-trace-summary.txt \
		/tmp/wormnet-metricsview /tmp/wormnet-metrics.pid \
		/tmp/wormnet-run.series.jsonl /tmp/wormnet-plain.json /tmp/wormnet-metered.json \
		/tmp/wormnet-sparse.json /tmp/wormnet-dense.json /tmp/wormnet-dense-sharded.json \
		/tmp/wormnet-forensics /tmp/wormnet-benchjson /tmp/wormnet-kernel-bench.txt \
		/tmp/wormnet-incidents.jsonl /tmp/wormnet-incidents-s4.jsonl \
		/tmp/wormnet-incidents-replay.jsonl /tmp/wormnet-forensics-events.jsonl \
		/tmp/wormnet-forensics-on.txt /tmp/wormnet-forensics-off.txt \
		/tmp/wormnet-forensics-summary.txt
	rm -rf /tmp/wormnet-series
