# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test race vet smoke bench-harness clean

all: vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Determinism smoke: a 4-worker checkpointed sweep must be byte-identical
# to a serial sweep, and so must a resume against the finished journal.
smoke: build
	$(GO) build -o /tmp/wormnet-loadsweep ./cmd/loadsweep
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 1 -quiet -json > /tmp/wormnet-serial.json
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 4 -checkpoint /tmp/wormnet-sweep.jsonl -quiet -json > /tmp/wormnet-par.json
	cmp /tmp/wormnet-serial.json /tmp/wormnet-par.json
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 4 -checkpoint /tmp/wormnet-sweep.jsonl -resume -quiet -json > /tmp/wormnet-resumed.json
	cmp /tmp/wormnet-serial.json /tmp/wormnet-resumed.json
	@echo "smoke: parallel and resumed sweeps byte-identical to serial"

# Serial vs parallel sweep wall-clock; writes results/harness_bench.txt.
bench-harness:
	$(GO) test -run NONE -bench 'BenchmarkSweep' -benchtime 2x \
		./internal/harness/ | tee results/harness_bench.txt

clean:
	rm -f /tmp/wormnet-loadsweep /tmp/wormnet-serial.json \
		/tmp/wormnet-par.json /tmp/wormnet-resumed.json /tmp/wormnet-sweep.jsonl
