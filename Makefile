# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test race vet smoke trace-smoke bench-harness bench-kernel bench-trace profile clean

all: vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Determinism smoke: a 4-worker checkpointed sweep must be byte-identical
# to a serial sweep, and so must a resume against the finished journal.
smoke: build
	$(GO) build -o /tmp/wormnet-loadsweep ./cmd/loadsweep
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 1 -quiet -json > /tmp/wormnet-serial.json
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 4 -checkpoint /tmp/wormnet-sweep.jsonl -quiet -json > /tmp/wormnet-par.json
	cmp /tmp/wormnet-serial.json /tmp/wormnet-par.json
	/tmp/wormnet-loadsweep -k 4 -n 2 -points 4 -warmup 500 -measure 2000 \
		-workers 4 -checkpoint /tmp/wormnet-sweep.jsonl -resume -quiet -json > /tmp/wormnet-resumed.json
	cmp /tmp/wormnet-serial.json /tmp/wormnet-resumed.json
	@echo "smoke: parallel and resumed sweeps byte-identical to serial"

# Flight-recorder smoke: a saturated single-VC run must capture a decodable
# event stream containing detection verdicts, and the bounded ring mode must
# dump on detection too. Both files are checked by parsing them back through
# traceview.
trace-smoke: build
	$(GO) build -o /tmp/wormnet-wormsim ./cmd/wormsim
	$(GO) build -o /tmp/wormnet-traceview ./cmd/traceview
	/tmp/wormnet-wormsim -k 4 -n 2 -vcs 1 -load 2.0 -inject-limit -1 -th 8 \
		-warmup 0 -measure 3000 -oracle-every 1 \
		-trace /tmp/wormnet-events.jsonl > /dev/null
	/tmp/wormnet-traceview -summary /tmp/wormnet-events.jsonl \
		| tee /tmp/wormnet-trace-summary.txt
	grep -q 'detect' /tmp/wormnet-trace-summary.txt
	/tmp/wormnet-wormsim -k 4 -n 2 -vcs 1 -load 2.0 -inject-limit -1 -th 8 \
		-warmup 0 -measure 3000 -oracle-every 1 \
		-trace /tmp/wormnet-ring.jsonl -trace-last 256 > /dev/null
	/tmp/wormnet-traceview -summary /tmp/wormnet-ring.jsonl > /dev/null
	@echo "trace-smoke: stream and ring captures decode, detections present"

# Serial vs parallel sweep wall-clock; writes results/harness_bench.txt.
bench-harness:
	$(GO) test -run NONE -bench 'BenchmarkSweep' -benchtime 2x \
		./internal/harness/ | tee results/harness_bench.txt

# Hot-path kernel benchmarks (engine cycle + deadlock oracle) with
# allocation reporting; writes results/kernel_bench.txt. The oracle and
# engine Step must report 0 allocs/op.
bench-kernel:
	$(GO) test -run NONE -bench 'EngineStep|Oracle' -benchmem -benchtime 2s \
		. | tee results/kernel_bench.txt

# Flight-recorder overhead: the engine cycle benched with tracing off, with
# the ring recorder, and with streaming JSONL encoding; writes
# results/trace_overhead.txt. The TraceOff row must match the untraced
# saturation bench (disabled tracing is one predicted branch per emit site)
# and TraceRing must report 0 allocs/op.
bench-trace:
	$(GO) test -run NONE -bench 'EngineStepTrace' -benchmem -benchtime 2s \
		. | tee results/trace_overhead.txt

# CPU and heap profiles of the kernel benchmarks; writes pprof artifacts
# under results/. Inspect with: go tool pprof results/cpu.pprof
profile:
	$(GO) test -run NONE -bench 'EngineStepSaturation|OracleSaturation' \
		-benchtime 2s -cpuprofile results/cpu.pprof -memprofile results/mem.pprof \
		. | tee results/profile_bench.txt
	@echo "profile: wrote results/cpu.pprof and results/mem.pprof"

clean:
	rm -f /tmp/wormnet-loadsweep /tmp/wormnet-serial.json \
		/tmp/wormnet-par.json /tmp/wormnet-resumed.json /tmp/wormnet-sweep.jsonl \
		/tmp/wormnet-wormsim /tmp/wormnet-traceview /tmp/wormnet-events.jsonl \
		/tmp/wormnet-ring.jsonl /tmp/wormnet-trace-summary.txt
