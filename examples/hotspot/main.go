// Hot-spot study: the workload of Table 7. Five percent of all messages
// target a single node, which congests its neighborhood long before the
// rest of the network saturates. Congestion trees around the hot spot look
// a lot like deadlock to naive detectors — this is the hardest pattern in
// the paper's evaluation (the only one where NDM's false-detection rate at
// threshold 32 exceeds 0.16%).
//
// The example sweeps load from light to saturated and shows, side by side,
// what a crude header-blocked timeout, PDM and NDM each report, plus what
// the omniscient oracle says actually happened.
//
// Run with:
//
//	go run ./examples/hotspot
package main

import (
	"flag"
	"fmt"
	"log"

	"wormnet"
)

func main() {
	var (
		k       = flag.Int("k", 8, "radix")
		n       = flag.Int("n", 2, "dimensions")
		measure = flag.Int64("measure", 15000, "measured cycles per point")
	)
	flag.Parse()

	// Loads are fractions of the uniform saturation estimate; the hot spot
	// saturates the network at a small fraction of that.
	base := float64(2**n) / (float64(*n**k) / 4)
	fmt.Printf("hot-spot traffic (5%% to node 0) on a %d-ary %d-cube\n\n", *k, *n)
	fmt.Printf("%-10s %12s %12s %12s %12s %12s\n",
		"load", "hdr-block%", "PDM%", "NDM%", "NDM true", "throughput")

	for _, frac := range []float64{0.1, 0.15, 0.2, 0.25, 0.3} {
		load := base * frac
		var pcts []float64
		var ndmTrue int64
		var thr float64
		for _, mech := range []wormnet.Mechanism{wormnet.HeaderBlock, wormnet.PDM, wormnet.NDM} {
			cfg := wormnet.DefaultConfig()
			cfg.K, cfg.N = *k, *n
			cfg.Pattern = wormnet.HotSpot
			cfg.Load = load
			cfg.Mechanism = mech
			cfg.Threshold = 32
			cfg.Warmup = 3000
			cfg.Measure = *measure
			res, err := wormnet.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			pcts = append(pcts, res.PctMarked())
			if mech == wormnet.NDM {
				ndmTrue = res.TrueMarked
				thr = res.Throughput()
			}
		}
		fmt.Printf("%-10.4f %11.3f%% %11.3f%% %11.3f%% %12d %12.4f\n",
			load, pcts[0], pcts[1], pcts[2], ndmTrue, thr)
	}

	fmt.Println("\nthe crude timeout misfires on hot-spot congestion; NDM stays close to")
	fmt.Println("the oracle's truth because blocked messages behind the hot spot hold P")
	fmt.Println("flags and never become eligible to detect.")
}
