// Quickstart: simulate the paper's baseline network — a 512-node 8-ary
// 3-cube with true fully adaptive routing, 3 virtual channels per physical
// channel and the NDM deadlock detection mechanism — under uniform traffic
// near saturation, and print what the detector saw.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wormnet"
)

func main() {
	cfg := wormnet.DefaultConfig()
	cfg.Load = 0.514 // the paper's highest non-saturated uniform load
	cfg.Warmup = 2_000
	cfg.Measure = 10_000

	res, err := wormnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d-ary %d-cube for %d cycles under %s traffic at %.3f flits/cycle/node\n",
		cfg.K, cfg.N, res.TotalCycles, cfg.Pattern, cfg.Load)
	fmt.Printf("delivered %d messages, throughput %.4f flits/cycle/node, average latency %.1f cycles\n",
		res.Delivered, res.Throughput(), res.AvgLatency())
	fmt.Printf("detector %s marked %d messages as possibly deadlocked (%.3f%%)\n",
		res.DetectorName, res.Marked, res.PctMarked())
	fmt.Printf("of those, %d were true deadlocks and %d false detections\n",
		res.TrueMarked, res.FalseMarked)

	// The same run with the previous-generation mechanism (PDM) at the same
	// threshold detects far more false deadlocks at saturation; try it:
	cfg.Mechanism = wormnet.PDM
	cfg.Load = 0.78 // beyond this simulator's measured saturation (~0.68)
	pdm, err := wormnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Mechanism = wormnet.NDM
	ndm, err := wormnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat saturation (load %.1f, threshold %d):\n", cfg.Load, cfg.Threshold)
	fmt.Printf("  PDM marked %.3f%% of messages\n", pdm.PctMarked())
	fmt.Printf("  NDM marked %.3f%% of messages\n", ndm.PctMarked())
}
