// Threshold sweep: the experiment behind Tables 1 and 2 of the paper, in
// miniature. For each detection threshold, measure the percentage of
// messages detected as possibly deadlocked by the previous mechanism (PDM)
// and the paper's mechanism (NDM) under saturated uniform traffic, for
// short and long messages.
//
// The paper's two claims should be visible directly in the output:
//
//  1. At every threshold NDM detects roughly an order of magnitude fewer
//     (false) deadlocks than PDM.
//  2. PDM needs a much larger threshold for long messages than for short
//     ones, while NDM's useful threshold barely moves — so a single small
//     constant threshold works for NDM regardless of message length.
//
// Run with (about a minute; shrink -k/-measure for a faster look):
//
//	go run ./examples/threshold-sweep
package main

import (
	"flag"
	"fmt"
	"log"

	"wormnet"
)

func main() {
	var (
		k       = flag.Int("k", 8, "radix")
		n       = flag.Int("n", 2, "dimensions")
		load    = flag.Float64("load", 0, "offered load in flits/cycle/node (0 = auto near saturation)")
		measure = flag.Int64("measure", 15000, "measured cycles per point")
	)
	flag.Parse()

	if *load == 0 {
		// Saturation scales roughly with 2n links per node over the average
		// distance nk/4: use a load safely beyond it so the network runs
		// saturated, as in the paper's rightmost table columns.
		*load = 1.2 * float64(2**n) / (float64(*n**k) / 4)
	}

	fmt.Printf("saturated uniform traffic on a %d-ary %d-cube, offered load %.3f flits/cycle/node\n\n", *k, *n, *load)
	fmt.Printf("%-10s %14s %14s %14s %14s\n", "threshold", "PDM s (16f)", "NDM s (16f)", "PDM l (64f)", "NDM l (64f)")

	for th := int64(2); th <= 256; th *= 2 {
		row := make([]float64, 0, 4)
		for _, lengths := range []wormnet.Lengths{wormnet.Len16, wormnet.Len64} {
			for _, mech := range []wormnet.Mechanism{wormnet.PDM, wormnet.NDM} {
				cfg := wormnet.DefaultConfig()
				cfg.K, cfg.N = *k, *n
				cfg.Load = *load
				cfg.Lengths = lengths
				cfg.Mechanism = mech
				cfg.Threshold = th
				cfg.Warmup = 2000
				cfg.Measure = *measure
				res, err := wormnet.Run(cfg)
				if err != nil {
					log.Fatal(err)
				}
				row = append(row, res.PctMarked())
			}
		}
		// row = [PDM16, NDM16, PDM64, NDM64]
		fmt.Printf("Th %-7d %13.3f%% %13.3f%% %13.3f%% %13.3f%%\n", th, row[0], row[1], row[2], row[3])
	}
}
