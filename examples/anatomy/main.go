// Anatomy of a detection: a step-by-step walkthrough of Figures 2-5 of the
// paper on a ring of eight unidirectional channels, driving the real NDM
// hardware model directly (this example reaches below the public API into
// the building blocks, which live in the same module).
//
// The story:
//
//	Figure 2 — messages B, C, D pile up behind the advancing message A.
//	           Nothing is deadlocked; NDM detects nothing. (The previous
//	           mechanism would have falsely detected C and D.)
//	Figure 3 — A drains away; E takes its channel and then blocks on D's
//	           channel, closing the cycle B -> E -> D -> C -> B.
//	Figure 4 — B, the one message holding a G flag, detects the deadlock;
//	           recovery absorbs it.
//	Figure 5 — F grabs B's freed channel and re-closes the cycle. The
//	           transmission of F's first flit resets a stale I flag, which
//	           promotes C from P to G — and C detects the new deadlock.
//
// Run with:
//
//	go run ./examples/anatomy
package main

import (
	"fmt"
	"log"

	"wormnet/internal/detect"
	"wormnet/internal/router"
	"wormnet/internal/topology"
)

// world wraps a ring fabric, the NDM detector and a tiny event loop.
type world struct {
	f        *router.Fabric
	ndm      *detect.NDM
	now      int64
	attempts map[router.MsgID]int
	names    map[router.MsgID]string
}

func newWorld() *world {
	f, err := router.NewFabric(topology.New(8, 1),
		router.Config{VCsPerLink: 1, BufFlits: 4, InjPorts: 1, DelPorts: 1})
	if err != nil {
		log.Fatal(err)
	}
	return &world{
		f:        f,
		ndm:      detect.NewNDM(f, 16),
		attempts: map[router.MsgID]int{},
		names:    map[router.MsgID]string{},
	}
}

// c returns the ring channel i -> i+1.
func (w *world) c(i int) router.LinkID { return w.f.NetLink(i, 0) }

// place puts a named 16-flit message on channel l, header blocked at the
// downstream router.
func (w *world) place(name string, l router.LinkID) *router.Message {
	m := w.f.NewMessage(int(w.f.Links[l].Src), (int(w.f.Links[l].Dst)+3)%8, 16, w.now)
	m.Phase = router.PhaseNetwork
	vc := w.f.Links[l].FirstVC
	w.f.Allocate(m, router.NilVC, vc)
	m.HeadVC = vc
	w.f.VCs[vc].Flits = 16
	w.f.VCs[vc].HasHeader = true
	w.f.VCs[vc].HasTail = true
	w.names[m.ID] = name
	return m
}

// leave drains a message off its channel (tail passed or recovery absorbed
// it).
func (w *world) leave(m *router.Message) {
	vc := m.HeadVC
	l := w.f.LinkOfVC(vc)
	w.f.VCs[vc].Flits = 0
	w.f.ReleaseEmptyVC(vc)
	m.HeadVC = router.NilVC
	w.ndm.VCFreed(l)
	delete(w.attempts, m.ID)
}

type attempt struct {
	m    *router.Message
	in   router.LinkID
	outs []router.LinkID
}

// cycle advances one clock: tx lists channels that transmitted a flit;
// every attempt is a blocked message re-trying its routing. Marked
// messages are reported.
func (w *world) cycle(tx []router.LinkID, atts ...attempt) []string {
	transmitted := make([]bool, w.f.NumLinks())
	for _, l := range tx {
		transmitted[l] = true
	}
	w.ndm.EndCycle(w.now, tx, transmitted)
	var marked []string
	for _, a := range atts {
		first := w.attempts[a.m.ID] == 0
		w.attempts[a.m.ID]++
		if w.ndm.RouteFailed(a.m, a.in, a.outs, first, w.now) {
			marked = append(marked, w.names[a.m.ID])
		}
	}
	w.now++
	return marked
}

func (w *world) gp(l router.LinkID) string {
	if w.ndm.GPIsGenerate(l) {
		return "G"
	}
	return "P"
}

func main() {
	w := newWorld()

	fmt.Println("== Figure 2: blocked but not deadlocked ==")
	mA := w.place("A", w.c(3))
	mB := w.place("B", w.c(2))
	mC := w.place("C", w.c(1))
	mD := w.place("D", w.c(0))
	attB := attempt{mB, w.c(2), []router.LinkID{w.c(3)}}
	attC := attempt{mC, w.c(1), []router.LinkID{w.c(2)}}
	attD := attempt{mD, w.c(0), []router.LinkID{w.c(1)}}

	for i := 0; i < 30; i++ {
		atts := []attempt{attB}
		if i >= 3 {
			atts = append(atts, attC)
		}
		if i >= 6 {
			atts = append(atts, attD)
		}
		if marked := w.cycle([]router.LinkID{w.c(3)}, atts...); len(marked) > 0 {
			log.Fatalf("unexpected detection: %v", marked)
		}
	}
	fmt.Printf("after 30 cycles with A advancing: no detections.\n")
	fmt.Printf("G/P flags: B=%s (saw activity: eligible), C=%s, D=%s (arrived behind blocked messages)\n\n",
		w.gp(w.c(2)), w.gp(w.c(1)), w.gp(w.c(0)))

	fmt.Println("== Figure 3: A leaves, E closes a true deadlock ==")
	w.cycle([]router.LinkID{w.c(3)}, attB, attC, attD)
	w.leave(mA)
	mE := w.place("E", w.c(3))
	w.cycle([]router.LinkID{w.c(3)}, attC, attD) // E's flits arrive over c3
	w.cycle([]router.LinkID{w.c(3)}, attB, attC, attD)
	attE := attempt{mE, w.c(3), []router.LinkID{w.c(0)}}
	fmt.Printf("E now blocks requesting D's channel: cycle B->E->D->C->B is closed.\n")
	fmt.Printf("E's first failed attempt sees I set on c0 (D long blocked): E gets %s.\n\n", w.gp(w.c(3)))

	fmt.Println("== Figure 4: exactly one message detects ==")
	var detected []string
	for i := 0; i < 40 && len(detected) == 0; i++ {
		detected = w.cycle(nil, attB, attC, attD, attE)
	}
	fmt.Printf("after threshold t2=16 expires, detected: %v (B was the branch head)\n", detected)
	fmt.Printf("recovery absorbs B, freeing its channel c2.\n\n")
	w.leave(mB)

	fmt.Println("== Figure 5: F re-closes the cycle; the I-flag reset re-arms C ==")
	w.cycle(nil, attC, attD, attE)
	fmt.Printf("before F arrives: C holds %s, I flag on c2 is still set (stale) = %v\n",
		w.gp(w.c(1)), w.ndm.IFlagSet(w.c(2)))
	mF := w.place("F", w.c(2))
	w.cycle([]router.LinkID{w.c(2)}, attC, attD, attE)
	fmt.Printf("F's first flit crosses c2, resetting I: C promoted to %s\n", w.gp(w.c(1)))
	attF := attempt{mF, w.c(2), []router.LinkID{w.c(3)}}
	detected = nil
	for i := 0; i < 40 && len(detected) == 0; i++ {
		detected = w.cycle(nil, attC, attD, attE, attF)
	}
	fmt.Printf("second deadlock detected by: %v\n", detected)
}
