// Command mcheck runs the bounded model checker (internal/mc): it
// exhaustively explores every blocking/advancing/injection interleaving of a
// tiny fabric under a scripted workload and checks the paper's detection
// invariants — safety, liveness (every true deadlock is marked and drained
// within a horizon) and mark economy — for one or more mechanisms.
//
// Typical CI gate (see `make conformance-exhaustive`):
//
//	mcheck -k 3 -mech ndm,pdm,cmh -script face -window 0 -min-deadlocks 1
//	mcheck -k 2 -mech ndm,pdm,cmh -script face -window 1
//
// The workload is either a named preset (-script face | dblface) or an
// explicit comma-separated list of src>dst[xlen] entries:
//
//	mcheck -k 3 -script '0>4x2,1>3x2,4>0x2,3>1x2'
//
// The presets place corner-turning messages around the unit face of the
// torus — the minimal wait cycle under minimal adaptive routing; dblface
// doubles every message to also saturate the parallel channels of a k=2
// fabric (the nightly 2x2 configuration, ~1M states).
//
// On a violation, mcheck prints the counterexample's choice path, minimizes
// it, optionally replays it into a trace stream (-cex file.jsonl) that
// `traceview` renders, and exits 1. -min-deadlocks guards against vacuous
// liveness runs: if fewer deadlocked states were reached the run fails even
// without a violation. -emit-fuzz-seeds writes sampled frontier-state
// encodings as Go fuzz corpus files (see internal/detect's fuzz harnesses).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"wormnet/internal/mc"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcheck: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		k          = flag.Int("k", 3, "torus arity (nodes per dimension)")
		n          = flag.Int("n", 2, "torus dimensions")
		vcs        = flag.Int("vcs", 1, "virtual channels per physical link")
		buf        = flag.Int("buf", 2, "flit buffer depth per virtual channel")
		mechs      = flag.String("mech", "ndm,pdm,cmh", "comma-separated mechanisms to check: ndm, pdm, cmh, none")
		threshold  = flag.Int64("threshold", 4, "detection threshold (NDM t2 / PDM threshold / CMH init delay)")
		script     = flag.String("script", "face", "workload: 'face', 'dblface', or src>dst[xlen] entries (comma-separated)")
		window     = flag.Int("window", 0, "injection deferral window in cycles (each deferral is an explored branch)")
		depth      = flag.Int("depth", 0, "max explored depth in cycles (0 = to fixpoint)")
		horizon    = flag.Int("horizon", 0, "liveness horizon in cycles (0 = auto)")
		strict     = flag.Bool("strict", false, "require exactly one true mark per drained deadlock (see DESIGN.md §13)")
		maxStates  = flag.Int("max-states", 2_000_000, "visited-state cap")
		minDL      = flag.Int("min-deadlocks", 0, "fail unless at least this many deadlocked states were reached")
		cex        = flag.String("cex", "", "write the minimized counterexample trace (JSONL) to this file")
		seedDir    = flag.String("emit-fuzz-seeds", "", "write sampled frontier encodings as Go fuzz corpus files into this directory")
		seedCount  = flag.Int("seeds", 16, "how many fuzz seeds to sample (with -emit-fuzz-seeds)")
		seedPrefix = flag.String("seed-prefix", "mc", "corpus file name prefix (with -emit-fuzz-seeds)")
		verbose    = flag.Bool("v", false, "progress output while exploring")
	)
	flag.Parse()

	inj, err := parseScript(*script, *k)
	if err != nil {
		fail("%v", err)
	}

	failed := false
	for _, mech := range strings.Split(*mechs, ",") {
		mech = strings.TrimSpace(mech)
		if mech == "" {
			continue
		}
		o := mc.Options{
			K: *k, N: *n, VCs: *vcs, BufFlits: *buf,
			Mechanism: mech, Threshold: *threshold,
			Script: inj, InjectWindow: *window,
			MaxDepth: *depth, Horizon: *horizon, Strict: *strict,
			MaxStates: *maxStates,
		}
		if *seedDir != "" {
			o.CollectSeeds = *seedCount
		}
		if *verbose {
			o.Log = os.Stderr
		}
		res, err := mc.Check(o)
		if err != nil {
			fail("%s: %v", mech, err)
		}
		scope := "complete"
		switch {
		case res.Violation != nil:
			scope = "stopped at first violation"
		case !res.Complete:
			scope = "TRUNCATED at max-states"
		case res.DepthCapped:
			scope = fmt.Sprintf("complete to depth %d", *depth)
		}
		fmt.Printf("mcheck %s on %dx%d (%d msgs, window %d): %d states, %d interleavings, depth %d, %s; %d deadlocked states, %d true marks\n",
			mech, *k, *k, len(inj), *window, res.States, res.Leaves, res.Depth, scope, res.DeadlockStates, res.TrueMarks)

		if res.Violation != nil {
			v, err := mc.Minimize(o, res.Violation)
			if err != nil {
				fail("%s: minimize: %v", mech, err)
			}
			fmt.Printf("  %v\n  choice path: %v\n", v, v.Path)
			if *cex != "" {
				f, err := os.Create(*cex)
				if err != nil {
					fail("%v", err)
				}
				if err := mc.WriteTrace(o, v.Path, f); err != nil {
					fail("writing counterexample: %v", err)
				}
				if err := f.Close(); err != nil {
					fail("writing counterexample: %v", err)
				}
				fmt.Printf("  counterexample trace: %s (render with: go run ./cmd/traceview %s)\n", *cex, *cex)
			}
			failed = true
			continue
		}
		if res.DeadlockStates < *minDL {
			fmt.Printf("  FAIL: %d deadlocked states reached, need >= %d (liveness check too vacuous)\n",
				res.DeadlockStates, *minDL)
			failed = true
		}
		if *seedDir != "" {
			wrote, err := writeSeeds(*seedDir, *seedPrefix, mech, res.Seeds)
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("  wrote %d fuzz corpus seeds into %s\n", wrote, *seedDir)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseScript resolves the workload: the face/dblface presets place
// corner-turning messages around the unit face at the origin (nodes 0, 1, k,
// k+1 in row-major id order); explicit entries are src>dst or src>dstxlen.
func parseScript(s string, k int) ([]mc.Inject, error) {
	switch s {
	case "face", "dblface":
		a, b, c, d := 0, 1, k, k+1
		face := []mc.Inject{
			{Src: a, Dst: d, Length: 2},
			{Src: b, Dst: c, Length: 2},
			{Src: d, Dst: a, Length: 2},
			{Src: c, Dst: b, Length: 2},
		}
		if s == "dblface" {
			dbl := make([]mc.Inject, 0, 8)
			for _, m := range face {
				dbl = append(dbl, m, m)
			}
			return dbl, nil
		}
		return face, nil
	}
	var out []mc.Inject
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		sd, lenStr, hasLen := strings.Cut(ent, "x")
		srcStr, dstStr, ok := strings.Cut(sd, ">")
		if !ok {
			return nil, fmt.Errorf("bad script entry %q (want src>dst or src>dstxlen)", ent)
		}
		src, err1 := strconv.Atoi(strings.TrimSpace(srcStr))
		dst, err2 := strconv.Atoi(strings.TrimSpace(dstStr))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad script entry %q", ent)
		}
		length := 2
		if hasLen {
			length, err1 = strconv.Atoi(strings.TrimSpace(lenStr))
			if err1 != nil || length < 1 {
				return nil, fmt.Errorf("bad length in script entry %q", ent)
			}
		}
		out = append(out, mc.Inject{Src: src, Dst: dst, Length: length})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty script %q", s)
	}
	return out, nil
}

// writeSeeds emits frontier-state encodings as Go fuzz corpus files: two
// header bytes (exercising the harness's policy/threshold decoding) followed
// by the raw canonical encoding as the opcode program. Any byte string is a
// valid program for the detect/probe fuzz harnesses, and model-checker
// states carry far more structure than random bytes.
func writeSeeds(dir, prefix, mech string, seeds [][]byte) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	for i, enc := range seeds {
		data := append([]byte{byte(i), byte(len(enc))}, enc...)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		name := filepath.Join(dir, fmt.Sprintf("%s-%s-%03d", prefix, mech, i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return i, err
		}
	}
	return len(seeds), nil
}
