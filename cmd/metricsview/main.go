// Command metricsview summarizes and plots the time series sampled by the
// metrics collector (`wormsim -series`, the harness's -series-dir option, or
// the /series endpoint of `wormsim -metrics-addr`).
//
// Default view: a run summary followed by a per-window table — injection and
// delivery rates (differenced from the cumulative counters), blocked
// headers, VC/link occupancy, I/DT/G flag populations, detector marks per
// window split true/false, and recovery depth — with an ASCII bar column
// plotting one field over time:
//
//	metricsview run.series.jsonl
//	metricsview -plot dtFlags -width 60 run.series.jsonl
//	curl -s localhost:8080/series | metricsview
//
// The input is the JSONL form of the series (one sample object per line);
// use `wormsim -series run.jsonl` or the /series endpoint without
// ?format=csv.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"wormnet/internal/metrics"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricsview: "+format+"\n", args...)
	os.Exit(1)
}

// field is one plottable column: a value extracted from a sample, with the
// previous sample available so cumulative counters can be differenced into
// per-window rates.
type field struct {
	name string
	desc string
	rate bool // per-cycle rate (differenced cumulative counter)
	get  func(prev, cur *metrics.Sample) float64
}

func delta(get func(*metrics.Sample) int64) func(prev, cur *metrics.Sample) float64 {
	return func(prev, cur *metrics.Sample) float64 {
		v := get(cur)
		if prev != nil {
			v -= get(prev)
		}
		return float64(v)
	}
}

func gauge(get func(*metrics.Sample) int32) func(prev, cur *metrics.Sample) float64 {
	return func(_, cur *metrics.Sample) float64 { return float64(get(cur)) }
}

var fields = []field{
	{"injected", "messages injected per cycle", true, delta(func(s *metrics.Sample) int64 { return s.Injected })},
	{"delivered", "messages delivered per cycle", true, delta(func(s *metrics.Sample) int64 { return s.Delivered })},
	{"flits", "flits delivered per cycle", true, delta(func(s *metrics.Sample) int64 { return s.DeliveredFlit })},
	{"marks", "detector marks per window", false, delta(func(s *metrics.Sample) int64 { return s.MarkedTrue + s.MarkedFalse })},
	{"queued", "messages waiting in source queues", false, gauge(func(s *metrics.Sample) int32 { return s.Queued })},
	{"blocked", "blocked headers", false, gauge(func(s *metrics.Sample) int32 { return s.Blocked })},
	{"busyVCs", "occupied virtual channels", false, gauge(func(s *metrics.Sample) int32 { return s.BusyVCs })},
	{"busyLinks", "busy physical channels", false, gauge(func(s *metrics.Sample) int32 { return s.BusyLinks })},
	{"nonemptyQueues", "nodes with waiting source queues", false, gauge(func(s *metrics.Sample) int32 { return s.NonemptyQueues })},
	{"activeLinks", "links that carried a flit this cycle", false, gauge(func(s *metrics.Sample) int32 { return s.ActiveLinks })},
	{"wormsInFlight", "worms between admission and delivery", false, gauge(func(s *metrics.Sample) int32 { return s.WormsInFlight })},
	{"iFlags", "output channels with I set", false, gauge(func(s *metrics.Sample) int32 { return s.IFlags })},
	{"dtFlags", "output channels with DT set", false, gauge(func(s *metrics.Sample) int32 { return s.DTFlags })},
	{"gFlags", "input channels holding G", false, gauge(func(s *metrics.Sample) int32 { return s.GFlags })},
	{"recoveryDepth", "messages undergoing recovery", false, gauge(func(s *metrics.Sample) int32 { return s.RecoveryDepth })},
	{"oracleSet", "oracle deadlocked-set size", false, gauge(func(s *metrics.Sample) int32 { return s.OracleSet })},
	{"probesInFlight", "cmh probes in flight", false, gauge(func(s *metrics.Sample) int32 { return s.ProbesInFlight })},
	{"episodes", "deadlock episodes closed per window", false, delta(func(s *metrics.Sample) int64 { return s.EpisodesTrue + s.EpisodesFalse })},
	{"episodesOpen", "deadlock episodes in flight", false, gauge(func(s *metrics.Sample) int32 { return s.EpisodesOpen })},
}

func fieldByName(name string) *field {
	for i := range fields {
		if fields[i].name == name {
			return &fields[i]
		}
	}
	return nil
}

func main() {
	var (
		plot    = flag.String("plot", "busyVCs", "field rendered as the bar column (see -fields)")
		width   = flag.Int("width", 40, "bar column width in characters")
		summary = flag.Bool("summary", false, "print only the run summary, no per-window table")
		list    = flag.Bool("fields", false, "list plottable fields and exit")
	)
	flag.Parse()

	if *list {
		for _, f := range fields {
			fmt.Printf("  %-14s %s\n", f.name, f.desc)
		}
		return
	}
	pf := fieldByName(*plot)
	if pf == nil {
		fail("unknown -plot field %q (see -fields)", *plot)
	}
	if *width < 1 {
		fail("-width must be >= 1, got %d", *width)
	}

	var rd io.Reader = os.Stdin
	name := "<stdin>"
	switch len(flag.Args()) {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		rd, name = f, flag.Arg(0)
	default:
		fail("at most one series file (or stdin)")
	}

	samples, err := metrics.DecodeSeries(rd)
	if err != nil {
		fail("%v", err)
	}
	if len(samples) == 0 {
		fail("%s: empty series", name)
	}
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Cycle < samples[j].Cycle })

	printSummary(name, samples)
	if *summary {
		return
	}
	fmt.Println()
	printTable(samples, pf, *width)
}

// printSummary reports the series' span, the cumulative totals at its last
// sample, and the peak of every gauge.
func printSummary(name string, samples []metrics.Sample) {
	first, last := &samples[0], &samples[len(samples)-1]
	window := int64(0)
	if len(samples) > 1 {
		window = samples[1].Cycle - samples[0].Cycle
	}
	fmt.Printf("%s: %d samples, cycles %d..%d", name, len(samples), first.Cycle, last.Cycle)
	if window > 0 {
		fmt.Printf(" (window %d)", window)
	}
	fmt.Println()
	fmt.Printf("totals:  generated %d  injected %d  delivered %d (%d flits)\n",
		last.Generated, last.Injected, last.Delivered, last.DeliveredFlit)
	fmt.Printf("marks:   %d true, %d false; recovered %d, reinjected %d\n",
		last.MarkedTrue, last.MarkedFalse, last.Recovered, last.Reinjected)
	if last.EpisodesTrue+last.EpisodesFalse > 0 || last.EpisodesOpen > 0 {
		fmt.Printf("episodes: %d true-deadlock, %d false-positive (%d still open)\n",
			last.EpisodesTrue, last.EpisodesFalse, last.EpisodesOpen)
		if last.MTTDCount > 0 {
			fmt.Printf("MTTD:    %.1f cycles mean over %d episode(s)\n",
				float64(last.MTTDSum)/float64(last.MTTDCount), last.MTTDCount)
		}
		if last.MTTRCount > 0 {
			fmt.Printf("MTTR:    %.1f cycles mean over %d episode(s)\n",
				float64(last.MTTRSum)/float64(last.MTTRCount), last.MTTRCount)
		}
	}

	var peaks strings.Builder
	for _, f := range fields {
		if f.rate || f.name == "marks" || f.name == "episodes" {
			continue
		}
		max := 0.0
		for i := range samples {
			if v := f.get(nil, &samples[i]); v > max {
				max = v
			}
		}
		fmt.Fprintf(&peaks, " %s %g", f.name, max)
	}
	fmt.Printf("peaks:  %s\n", peaks.String())
}

// printTable renders the per-window table plus the bar plot of one field.
func printTable(samples []metrics.Sample, pf *field, width int) {
	max := 0.0
	for i := range samples {
		var prev *metrics.Sample
		if i > 0 {
			prev = &samples[i-1]
		}
		if v := value(pf, prev, &samples[i]); v > max {
			max = v
		}
	}
	fmt.Printf("%-9s %7s %7s %6s %5s %6s %4s %4s %4s %4s %10s  |%s (max %g)\n",
		"cycle", "inj/c", "dlv/c", "blkd", "vcs", "links", "I", "DT", "G", "rec", "marks(T/F)", pf.name, max)
	for i := range samples {
		var prev *metrics.Sample
		if i > 0 {
			prev = &samples[i-1]
		}
		s := &samples[i]
		cycles := int64(1)
		if prev != nil {
			cycles = s.Cycle - prev.Cycle
		} else if s.Cycle > 0 {
			cycles = s.Cycle
		}
		injRate := ratePer(prev, s, cycles, func(x *metrics.Sample) int64 { return x.Injected })
		dlvRate := ratePer(prev, s, cycles, func(x *metrics.Sample) int64 { return x.Delivered })
		mt := deltaOf(prev, s, func(x *metrics.Sample) int64 { return x.MarkedTrue })
		mf := deltaOf(prev, s, func(x *metrics.Sample) int64 { return x.MarkedFalse })
		v := value(pf, prev, s)
		bar := 0
		if max > 0 {
			bar = int(v / max * float64(width))
		}
		fmt.Printf("%-9d %7.3f %7.3f %6d %5d %6d %4d %4d %4d %4d %7d/%-3d |%s\n",
			s.Cycle, injRate, dlvRate, s.Blocked, s.BusyVCs, s.BusyLinks,
			s.IFlags, s.DTFlags, s.GFlags, s.RecoveryDepth, mt, mf,
			strings.Repeat("#", bar))
	}
}

// value evaluates a field for one row, scaling rates to per-cycle.
func value(f *field, prev, cur *metrics.Sample) float64 {
	v := f.get(prev, cur)
	if f.rate {
		cycles := int64(1)
		if prev != nil {
			cycles = cur.Cycle - prev.Cycle
		} else if cur.Cycle > 0 {
			cycles = cur.Cycle
		}
		if cycles > 0 {
			v /= float64(cycles)
		}
	}
	return v
}

func deltaOf(prev, cur *metrics.Sample, get func(*metrics.Sample) int64) int64 {
	v := get(cur)
	if prev != nil {
		v -= get(prev)
	}
	return v
}

func ratePer(prev, cur *metrics.Sample, cycles int64, get func(*metrics.Sample) int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(deltaOf(prev, cur, get)) / float64(cycles)
}
