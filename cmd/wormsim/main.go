// Command wormsim runs a single wormhole-network simulation and prints its
// metrics, including the percentage of messages detected as possibly
// deadlocked — the figure of merit of López, Martínez & Duato (HPCA 1998).
//
// Examples:
//
//	wormsim -k 8 -n 3 -load 0.514 -pattern uniform -len 16 -mech ndm -th 32
//	wormsim -k 4 -n 2 -load 2.0 -vcs 1 -mech pdm -th 16 -inject-limit -1
package main

import (
	"flag"
	"fmt"
	"os"

	"wormnet"
)

func main() {
	cfg := wormnet.DefaultConfig()
	var (
		k         = flag.Int("k", cfg.K, "radix of the k-ary n-cube")
		n         = flag.Int("n", cfg.N, "dimensions of the k-ary n-cube")
		vcs       = flag.Int("vcs", cfg.VirtualChannels, "virtual channels per physical channel")
		buf       = flag.Int("buf", cfg.BufferFlits, "flit buffer depth per virtual channel")
		ports     = flag.Int("ports", cfg.Ports, "injection/delivery ports per node")
		pattern   = flag.String("pattern", string(cfg.Pattern), "traffic pattern: uniform|locality|bit-reversal|perfect-shuffle|butterfly|hot-spot")
		radius    = flag.Int("locality-radius", cfg.LocalityRadius, "radius of the locality pattern")
		hotFrac   = flag.Float64("hot-fraction", cfg.HotFraction, "fraction of traffic to the hot node")
		length    = flag.Int("len", 16, "fixed message length in flits (0 selects the bimodal sl mix)")
		load      = flag.Float64("load", cfg.Load, "offered load in flits/cycle/node")
		mech      = flag.String("mech", string(cfg.Mechanism), "detection mechanism: ndm|pdm|cmh|src-age|src-stall|hdr-block|none")
		th        = flag.Int64("th", cfg.Threshold, "detection threshold in cycles (t2 for ndm, probe initiation delay for cmh)")
		t1        = flag.Int64("t1", cfg.T1, "ndm short threshold t1")
		sel       = flag.Bool("selective", false, "use the selective P->G promotion variant of ndm")
		probeTr   = flag.String("probe-transport", "", "cmh probe transport: steal-idle|ctrl-vc (default steal-idle)")
		probeVic  = flag.String("probe-victim", "", "cmh victim selection: local|oldest (default local)")
		probeHop  = flag.Int("probe-hops", 0, "cmh probe hop cap (0 = default 64)")
		rec       = flag.String("recovery", string(cfg.Recovery), "recovery style: progressive|regressive")
		injLimit  = flag.Int("inject-limit", cfg.InjectionLimit, "injection limitation threshold (busy output VCs); negative disables")
		warmup    = flag.Int64("warmup", cfg.Warmup, "warm-up cycles")
		measure   = flag.Int64("measure", cfg.Measure, "measured cycles")
		seed      = flag.Uint64("seed", cfg.Seed, "random seed")
		shards    = flag.Int("shards", 0, "worker shards stepping the fabric under the deterministic cycle barrier (0 = serial; results are identical for any count)")
		oracle    = flag.Int64("oracle-every", 0, "run the global deadlock oracle every N cycles (0 = only at detections)")
		observe   = flag.Int64("observe", 0, "print a fabric occupancy summary (and 2-D heatmap) every N cycles")
		tracePath = flag.String("trace", "", "write flight-recorder events to this JSONL file")
		traceLast = flag.Int("trace-last", 0, "keep only the last N events in a ring, written only if a detection fires or the run fails (0 streams everything)")

		metricsAddr   = flag.String("metrics-addr", "", "serve live Prometheus /metrics, JSON /status and /debug/pprof on this address while the run is in flight (\":0\" picks a free port, printed to stderr)")
		metricsWindow = flag.Int64("metrics-window", 0, "cycles per time-series sample window (0 = default)")
		seriesPath    = flag.String("series", "", "write the sampled time series to this file after the run (.csv for CSV, anything else JSONL)")

		forensicsPath = flag.String("forensics", "", "reconstruct deadlock episodes online and write the incident report (JSONL) to this file after the run")
	)
	flag.Parse()

	cfg.K, cfg.N = *k, *n
	cfg.VirtualChannels, cfg.BufferFlits, cfg.Ports = *vcs, *buf, *ports
	cfg.Pattern = wormnet.Pattern(*pattern)
	cfg.LocalityRadius = *radius
	cfg.HotFraction = *hotFrac
	if *length > 0 {
		cfg.Lengths = wormnet.Lengths{Fixed: *length}
	} else {
		cfg.Lengths = wormnet.LenSL
	}
	cfg.Load = *load
	cfg.Mechanism = wormnet.Mechanism(*mech)
	cfg.Threshold = *th
	cfg.T1 = *t1
	cfg.SelectivePromotion = *sel
	cfg.ProbeTransport = wormnet.ProbeTransport(*probeTr)
	cfg.ProbeVictim = wormnet.ProbeVictim(*probeVic)
	cfg.ProbeMaxHops = *probeHop
	cfg.Recovery = wormnet.Recovery(*rec)
	cfg.InjectionLimit = *injLimit
	cfg.Warmup, cfg.Measure = *warmup, *measure
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.OracleEvery = *oracle
	cfg.TracePath = *tracePath
	cfg.TraceLast = *traceLast
	cfg.MetricsAddr = *metricsAddr
	cfg.MetricsWindow = *metricsWindow
	cfg.SeriesPath = *seriesPath
	cfg.ForensicsPath = *forensicsPath
	if *metricsAddr != "" {
		cfg.MetricsReady = func(addr string) {
			fmt.Fprintf(os.Stderr, "wormsim: metrics listening on http://%s/metrics\n", addr)
		}
	}
	if nodes := intPow(*k, *n); *shards < 0 || *shards > nodes {
		fmt.Fprintf(os.Stderr, "wormsim: -shards must be between 0 and the node count (%d), got %d\n", nodes, *shards)
		os.Exit(2)
	}
	if *traceLast > 0 && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "wormsim: -trace-last requires -trace")
		os.Exit(2)
	}
	if *metricsWindow > 0 && *metricsAddr == "" && *seriesPath == "" {
		fmt.Fprintln(os.Stderr, "wormsim: -metrics-window requires -metrics-addr or -series")
		os.Exit(2)
	}
	if *tracePath != "" && *observe > 0 {
		fmt.Fprintln(os.Stderr, "wormsim: -trace cannot be combined with -observe")
		os.Exit(2)
	}
	if (*metricsAddr != "" || *seriesPath != "") && *observe > 0 {
		fmt.Fprintln(os.Stderr, "wormsim: -metrics-addr/-series cannot be combined with -observe")
		os.Exit(2)
	}
	if *forensicsPath != "" && *observe > 0 {
		fmt.Fprintln(os.Stderr, "wormsim: -forensics cannot be combined with -observe")
		os.Exit(2)
	}

	var res *wormnet.Result
	var err error
	if *observe > 0 {
		res, err = wormnet.Observe(cfg, *observe, func(cycle int64, summary, heatmap string) {
			fmt.Fprintf(os.Stderr, "cycle %d: %s\n", cycle, summary)
			if cfg.N == 2 {
				fmt.Fprint(os.Stderr, heatmap)
			}
		})
	} else {
		res, err = wormnet.Run(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormsim:", err)
		os.Exit(1)
	}

	fmt.Printf("network:        %d-ary %d-cube, %d VCs x %d flits, %d ports\n",
		cfg.K, cfg.N, cfg.VirtualChannels, cfg.BufferFlits, cfg.Ports)
	fmt.Printf("workload:       %s, load %.4g flits/cycle/node\n", cfg.Pattern, cfg.Load)
	fmt.Printf("detector:       %s, recovery %s\n", res.DetectorName, cfg.Recovery)
	fmt.Printf("cycles:         %d measured (after %d warm-up)\n", cfg.Measure, cfg.Warmup)
	fmt.Println()
	fmt.Printf("generated:      %d messages\n", res.Generated)
	fmt.Printf("delivered:      %d messages (%d flits)\n", res.Delivered, res.DeliveredFlits)
	fmt.Printf("throughput:     %.4f flits/cycle/node\n", res.Throughput())
	fmt.Printf("latency:        avg %.1f cycles (net %.1f, max %d)\n",
		res.AvgLatency(), res.AvgNetLatency(), res.MaxLatency)
	fmt.Println()
	fmt.Printf("detected:       %d messages (%.3f%% of delivered)\n", res.Marked, res.PctMarked())
	fmt.Printf("  true:         %d (actual deadlock confirmed by the oracle)\n", res.TrueMarked)
	fmt.Printf("  false:        %d (%.3f%% of delivered)\n", res.FalseMarked, res.PctFalseMarked())
	fmt.Printf("recovery:       %d absorbed, %d aborted, %d re-injected, %d delivered by recovery\n",
		res.Absorbed, res.Aborted, res.Reinjected, res.RecoveredDelivered)
	if res.DetectLatencySamples > 0 {
		fmt.Printf("detect latency: p50 %d p99 %d cycles over %d true detections (oracle to mark)\n",
			res.DetectLatencyP50, res.DetectLatencyP99, res.DetectLatencySamples)
	}
	if res.DTFlagCycleSum > 0 {
		fmt.Printf("dt occupancy:   %.3f channels with DT set per measured cycle\n", res.AvgDTFlags())
	}
	if res.ProbesEmitted > 0 || res.ProbeFlits > 0 {
		fmt.Printf("probes:         %d emitted, %d forwarded, %d returned, %d dropped\n",
			res.ProbesEmitted, res.ProbesForwarded, res.ProbesReturned, res.ProbesDropped)
		fmt.Printf("probe traffic:  %d control flits (%.4f%% of link capacity)\n",
			res.ProbeFlits, res.ProbeBandwidthPct())
	}
	if res.OracleRuns > 0 {
		fmt.Printf("oracle:         %d runs, %d saw deadlock (max set %d)\n",
			res.OracleRuns, res.DeadlockCycles, res.MaxDeadlockSet)
	}
	if res.Marked > 0 {
		fmt.Printf("marks/cycle:    ")
		for k := 1; k < len(res.MarksPerCycleHist); k++ {
			if res.MarksPerCycleHist[k] > 0 {
				fmt.Printf("%dx%d ", k, res.MarksPerCycleHist[k])
			}
		}
		if res.MarksPerCycleHist[0] > 0 {
			fmt.Printf(">=%dx%d", len(res.MarksPerCycleHist), res.MarksPerCycleHist[0])
		}
		fmt.Println()
	}
}

// intPow computes k^n in integer arithmetic (the node count).
func intPow(k, n int) int {
	p := 1
	for i := 0; i < n; i++ {
		p *= k
	}
	return p
}
