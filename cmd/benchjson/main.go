// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON baseline, so the perf trajectory of the hot
// kernels (engine cycle, oracle, observability overheads) can be tracked
// across changes instead of living only in results/*.txt.
//
//	go test -run NONE -bench 'EngineStep|Oracle' -benchmem . | benchjson > BENCH_kernel.json
//
// The output document carries the platform header (goos/goarch/cpu/pkg)
// and one record per benchmark: iteration count, ns/op, B/op, allocs/op,
// any custom ReportMetric units, GOMAXPROCS (the -N name suffix), and the
// fabric size the benchmark steps. Fabric sizes come from an explicit
// `k<K>n<N>` fragment in the benchmark name when present, else from the
// table of known kernel benchmarks below.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// fabric is the k-ary n-cube a benchmark steps.
type fabric struct {
	K     int `json:"k"`
	N     int `json:"n"`
	Nodes int `json:"nodes"`
}

// knownFabrics maps benchmark-name prefixes to the fabric they construct
// (see bench_test.go; benchK=8, benchN=2). Longest prefix wins.
var knownFabrics = map[string]fabric{
	"EngineStepShards": {K: 8, N: 3, Nodes: 512},
	"EngineStepSparse": {K: 16, N: 3, Nodes: 4096},
	"EngineStep":       {K: 8, N: 2, Nodes: 64},
	"EngineCycle":      {K: 8, N: 2, Nodes: 64},
	"Oracle":           {K: 8, N: 2, Nodes: 64},
}

var inlineFabric = regexp.MustCompile(`k(\d+)n(\d+)`)

type record struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  *int64             `json:"bytesPerOp,omitempty"`
	AllocsPerOp *int64             `json:"allocsPerOp,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Fabric      *fabric            `json:"fabric,omitempty"`
}

type document struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

var benchLine = regexp.MustCompile(`^Benchmark([^\s]+)\s+(\d+)\s+(.+)$`)

func main() {
	var rd io.Reader = os.Stdin
	switch len(os.Args) {
	case 1:
	case 2:
		f, err := os.Open(os.Args[1])
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		rd = f
	default:
		fail("usage: benchjson [bench-output.txt] (default stdin)")
	}

	doc := document{Benchmarks: []record{}}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if m := benchLine.FindStringSubmatch(line); m != nil {
				rec, err := parseBench(m[1], m[2], m[3])
				if err != nil {
					fail("parsing %q: %v", line, err)
				}
				doc.Benchmarks = append(doc.Benchmarks, rec)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail("%v", err)
	}
	if len(doc.Benchmarks) == 0 {
		fail("no benchmark lines found (expected `go test -bench` output)")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail("%v", err)
	}
}

// parseBench decodes one benchmark result line: the name (with its
// GOMAXPROCS suffix), the iteration count, and the whitespace-separated
// "<value> <unit>" measurement pairs.
func parseBench(name, iters, rest string) (record, error) {
	rec := record{Name: name}
	// The trailing -N is GOMAXPROCS, not part of the benchmark's identity.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			rec.Name, rec.Procs = name[:i], p
		}
	}
	n, err := strconv.ParseInt(iters, 10, 64)
	if err != nil {
		return rec, err
	}
	rec.Iterations = n

	f := strings.Fields(rest)
	if len(f)%2 != 0 {
		return rec, fmt.Errorf("odd measurement fields: %q", rest)
	}
	for i := 0; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return rec, fmt.Errorf("value %q: %w", f[i], err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			b := int64(v)
			rec.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			rec.AllocsPerOp = &a
		default:
			if rec.Metrics == nil {
				rec.Metrics = map[string]float64{}
			}
			rec.Metrics[unit] = v
		}
	}
	rec.Fabric = fabricOf(rec.Name)
	return rec, nil
}

// fabricOf resolves a benchmark's fabric: an explicit k<K>n<N> fragment in
// the name wins, else the longest matching known prefix.
func fabricOf(name string) *fabric {
	if m := inlineFabric.FindStringSubmatch(name); m != nil {
		k, _ := strconv.Atoi(m[1])
		n, _ := strconv.Atoi(m[2])
		nodes := 1
		for i := 0; i < n; i++ {
			nodes *= k
		}
		return &fabric{K: k, N: n, Nodes: nodes}
	}
	best, bestLen := (*fabric)(nil), 0
	for prefix := range knownFabrics {
		if strings.HasPrefix(name, prefix) && len(prefix) > bestLen {
			f := knownFabrics[prefix]
			best, bestLen = &f, len(prefix)
		}
	}
	return best
}
