// Command tables regenerates the evaluation tables (1 through 7) of López,
// Martínez & Duato, "A Very Efficient Distributed Deadlock Detection
// Mechanism for Wormhole Networks" (HPCA 1998): the percentage of messages
// detected as possibly deadlocked for each mechanism, traffic pattern,
// message length, load and threshold.
//
// Full-scale reproduction (512-node 8-ary 3-cube, the paper's setting):
//
//	tables -table 2
//
// Quick reduced-scale reproduction (64-node 8-ary 2-cube, rates rescaled
// to the measured saturation point of the smaller network):
//
//	tables -table 2 -k 8 -n 2 -relative -measure 20000
//
// -table 0 runs all seven tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wormnet"
	"wormnet/internal/harness"
)

func main() {
	var (
		table      = flag.Int("table", 0, "table to reproduce (1-8); 0 = all")
		k          = flag.Int("k", 8, "radix of the k-ary n-cube")
		n          = flag.Int("n", 3, "dimensions of the k-ary n-cube")
		warmup     = flag.Int64("warmup", 5000, "warm-up cycles per cell")
		measure    = flag.Int64("measure", 30000, "measured cycles per cell")
		seed       = flag.Uint64("seed", 1, "random seed")
		relative   = flag.Bool("relative", false, "rescale the paper's rates to this network's measured saturation throughput")
		sel        = flag.Bool("selective", false, "use the selective P->G promotion variant of ndm")
		workers    = flag.Int("workers", 0, "concurrent cell simulations (0 = GOMAXPROCS); results are identical for any value")
		repeats    = flag.Int("repeats", 1, "independently seeded runs per cell, reported as mean±ci95")
		checkpoint = flag.String("checkpoint", "", "JSONL checkpoint journal path prefix (per-table suffix .t<N> is appended)")
		resume     = flag.Bool("resume", false, "resume completed cells from the -checkpoint journals")
		quiet      = flag.Bool("quiet", false, "suppress per-cell progress")
		asJSON     = flag.Bool("json", false, "emit JSON instead of the text table")
	)
	var obs harness.Observe
	obs.AddFlags(flag.CommandLine)
	flag.Parse()

	switch {
	case len(flag.Args()) > 0:
		fmt.Fprintf(os.Stderr, "tables: unexpected arguments %q (tables takes only flags)\n", flag.Args())
		os.Exit(2)
	case *workers < 0:
		fmt.Fprintf(os.Stderr, "tables: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	case *repeats < 1:
		fmt.Fprintf(os.Stderr, "tables: -repeats must be >= 1, got %d\n", *repeats)
		os.Exit(2)
	case *resume && *checkpoint == "":
		fmt.Fprintln(os.Stderr, "tables: -resume requires -checkpoint")
		os.Exit(2)
	}
	if err := obs.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(2)
	}

	ids := []int{1, 2, 3, 4, 5, 6, 7}
	if *table != 0 {
		ids = []int{*table}
	}
	for _, id := range ids {
		opt := wormnet.TableOptions{
			K: *k, N: *n,
			Warmup:             *warmup,
			Measure:            *measure,
			Seed:               *seed,
			RelativeRates:      *relative,
			SelectivePromotion: *sel,
			Workers:            *workers,
			Repeats:            *repeats,
			Resume:             *resume,
		}
		if *checkpoint != "" {
			opt.Journal = fmt.Sprintf("%s.t%d", *checkpoint, id)
		}
		// Per-table suffix keeps one table's dumps apart from the next.
		tObs := obs.WithSuffix(fmt.Sprintf(".t%d", id))
		opt.TraceDir, opt.TraceLast = tObs.TraceDir, tObs.TraceLast
		opt.SeriesDir, opt.SeriesWindow = tObs.SeriesDir, tObs.SeriesWindow
		start := time.Now()
		if !*quiet {
			opt.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\rtable %d: %d/%d cells (%.0fs)",
					id, done, total, time.Since(start).Seconds())
			}
		}
		res, err := wormnet.RunPaperTable(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "\ntables:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		if *asJSON {
			if err := res.RenderJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
				os.Exit(1)
			}
			continue
		}
		res.Render(os.Stdout)
		fmt.Println()
	}
}
