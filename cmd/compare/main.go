// Command compare prints the paper's headline comparison between the PDM
// and NDM detection mechanisms over the same workload grid: per-threshold
// worst-case detection percentages at the saturated load, their ratios, the
// mean improvement factor (the paper reports ~10x), and the message-length
// sensitivity of each mechanism.
//
// Two modes:
//
// File mode (the original): load two tables saved as JSON by `tables -json`:
//
//	tables -table 1 -relative -json > t1.json
//	tables -table 2 -relative -json > t2.json
//	compare t1.json t2.json
//
// Run mode (-run): measure both tables in-process on the parallel sweep
// harness, then compare:
//
//	compare -run -k 4 -n 2 -relative -workers 8 -replicates 3 \
//	        -checkpoint cmp.jsonl
//
// In run mode each (cell, replicate) is an independent simulation scheduled
// across -workers goroutines; seeds derive purely from (-seed, cell,
// replicate), so results are independent of -workers, and -checkpoint /
// -resume continue an interrupted measurement (one journal per table,
// suffixed .pdm and .ndm).
package main

import (
	"flag"
	"fmt"
	"os"

	"wormnet/internal/exp"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "compare: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string) (*exp.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return exp.DecodeJSON(f)
}

func main() {
	var (
		run        = flag.Bool("run", false, "measure both tables now instead of loading JSON files")
		pdmTable   = flag.Int("pdm-table", 1, "paper table measured for the PDM side (run mode)")
		ndmTable   = flag.Int("ndm-table", 2, "paper table measured for the NDM side (run mode)")
		k          = flag.Int("k", 8, "radix (run mode)")
		n          = flag.Int("n", 3, "dimensions (run mode)")
		warmup     = flag.Int64("warmup", 5000, "warm-up cycles per cell (run mode)")
		measure    = flag.Int64("measure", 30000, "measured cycles per cell (run mode)")
		seed       = flag.Uint64("seed", 1, "base random seed (run mode)")
		relative   = flag.Bool("relative", false, "rescale the paper's rates to measured saturation (run mode)")
		workers    = flag.Int("workers", 0, "concurrent simulations, 0 = GOMAXPROCS (run mode)")
		replicates = flag.Int("replicates", 1, "independently seeded runs per cell (run mode)")
		checkpoint = flag.String("checkpoint", "", "checkpoint journal path prefix (run mode)")
		resume     = flag.Bool("resume", false, "resume from the -checkpoint journals (run mode)")
		quiet      = flag.Bool("quiet", false, "suppress progress output (run mode)")
	)
	flag.Parse()

	// Flags that only make sense in run mode must not be silently ignored.
	if !*run {
		runOnly := map[string]bool{
			"pdm-table": true, "ndm-table": true, "k": true, "n": true,
			"warmup": true, "measure": true, "seed": true, "relative": true,
			"workers": true, "replicates": true, "checkpoint": true,
			"resume": true, "quiet": true,
		}
		var misused []string
		flag.Visit(func(f *flag.Flag) {
			if runOnly[f.Name] {
				misused = append(misused, "-"+f.Name)
			}
		})
		if len(misused) > 0 {
			fail("%v only apply with -run (file mode just loads two JSON tables)", misused)
		}
		if len(flag.Args()) != 2 {
			fmt.Fprintln(os.Stderr, "usage: compare <pdm.json> <ndm.json>")
			fmt.Fprintln(os.Stderr, "       compare -run [options]   (see -h)")
			os.Exit(2)
		}
	}

	var pdm, ndm *exp.Result
	if *run {
		switch {
		case len(flag.Args()) > 0:
			fail("unexpected arguments %q in -run mode", flag.Args())
		case *k < 2 || *n < 1:
			fail("invalid topology: %d-ary %d-cube (need -k >= 2, -n >= 1)", *k, *n)
		case *warmup < 0 || *measure <= 0:
			fail("need -warmup >= 0 and -measure > 0, got %d and %d", *warmup, *measure)
		case *workers < 0:
			fail("-workers must be >= 0, got %d", *workers)
		case *replicates < 1:
			fail("-replicates must be >= 1, got %d", *replicates)
		case *resume && *checkpoint == "":
			fail("-resume requires -checkpoint")
		}
		pdm = measureTable(*pdmTable, "pdm", *k, *n, *warmup, *measure, *seed,
			*relative, *workers, *replicates, *checkpoint, *resume, *quiet)
		ndm = measureTable(*ndmTable, "ndm", *k, *n, *warmup, *measure, *seed,
			*relative, *workers, *replicates, *checkpoint, *resume, *quiet)
	} else {
		var err error
		if pdm, err = load(flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(1)
		}
		if ndm, err = load(flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(1)
		}
	}

	if err := exp.CompareReport(os.Stdout, pdm, ndm); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("smallest threshold with <= 0.1% detections at the saturated load, per message size:")
	for _, side := range []struct {
		name string
		r    *exp.Result
	}{{"PDM", pdm}, {"NDM", ndm}} {
		fmt.Printf("  %s: ", side.name)
		sens := exp.LengthSensitivity(side.r, 0.1)
		for _, size := range side.r.Table.Sizes {
			th := sens[size.Key]
			if th < 0 {
				fmt.Printf("%s=never ", size.Key)
			} else {
				fmt.Printf("%s=%d ", size.Key, th)
			}
		}
		fmt.Println()
	}
}

// measureTable runs one paper table on the harness.
func measureTable(id int, suffix string, k, n int, warmup, measure int64, seed uint64,
	relative bool, workers, replicates int, checkpoint string, resume, quiet bool) *exp.Result {
	tbl, err := exp.PaperTable(id)
	if err != nil {
		fail("%v", err)
	}
	opt := exp.DefaultOptions()
	opt.K, opt.N = k, n
	opt.Warmup, opt.Measure = warmup, measure
	opt.Seed = seed
	opt.RelativeRates = relative
	opt.Workers = workers
	opt.Repeats = replicates
	opt.Resume = resume
	if checkpoint != "" {
		opt.Journal = checkpoint + "." + suffix
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "compare: measuring table %d (%s, %s)\n",
			tbl.ID, tbl.Mechanism, tbl.PatternName)
		opt.ProgressWriter = os.Stderr
	}
	res, err := exp.Run(tbl, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	return res
}
