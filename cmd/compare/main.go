// Command compare loads two measured tables saved as JSON by
// `tables -json` — a PDM run (Table 1) and an NDM run (Table 2) over the
// same workload grid — and prints the paper's headline comparison: the
// per-threshold worst-case detection percentages at the saturated load,
// their ratios, and the mean improvement factor (the paper reports ~10x),
// plus the message-length sensitivity of each mechanism.
//
// Usage:
//
//	tables -table 1 -relative -json > t1.json
//	tables -table 2 -relative -json > t2.json
//	compare t1.json t2.json
package main

import (
	"fmt"
	"os"

	"wormnet/internal/exp"
)

func load(path string) (*exp.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return exp.DecodeJSON(f)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: compare <pdm.json> <ndm.json>")
		os.Exit(2)
	}
	pdm, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	ndm, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	if err := exp.CompareReport(os.Stdout, pdm, ndm); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("smallest threshold with <= 0.1% detections at the saturated load, per message size:")
	for name, r := range map[string]*exp.Result{"PDM": pdm, "NDM": ndm} {
		fmt.Printf("  %s: ", name)
		sens := exp.LengthSensitivity(r, 0.1)
		for _, size := range r.Table.Sizes {
			th := sens[size.Key]
			if th < 0 {
				fmt.Printf("%s=never ", size.Key)
			} else {
				fmt.Printf("%s=%d ", size.Key, th)
			}
		}
		fmt.Println()
	}
}
