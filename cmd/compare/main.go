// Command compare prints the paper's headline comparison between the PDM
// and NDM detection mechanisms over the same workload grid: per-threshold
// worst-case detection percentages at the saturated load, their ratios, the
// mean improvement factor (the paper reports ~10x), and the message-length
// sensitivity of each mechanism.
//
// Two modes:
//
// File mode (the original): load two tables saved as JSON by `tables -json`:
//
//	tables -table 1 -relative -json > t1.json
//	tables -table 2 -relative -json > t2.json
//	compare t1.json t2.json
//
// Run mode (-run): measure both tables in-process on the parallel sweep
// harness, then compare:
//
//	compare -run -k 4 -n 2 -relative -workers 8 -replicates 3 \
//	        -checkpoint cmp.jsonl
//
// In run mode each (cell, replicate) is an independent simulation scheduled
// across -workers goroutines; seeds derive purely from (-seed, cell,
// replicate), so results are independent of -workers, and -checkpoint /
// -resume continue an interrupted measurement (one journal per table,
// suffixed .pdm and .ndm).
//
// Detection-latency mode (-detlat): measure, for an arbitrary list of
// mechanisms, the distribution of cycles from an oracle-confirmed deadlock
// to the mechanism's mark at one deadlock-prone operating point, together
// with each mechanism's false-positive rate and control-message overhead:
//
//	compare -detlat -mechs pdm,ndm,cmh -k 4 -n 2 -th 16 -measure 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wormnet"
	"wormnet/internal/exp"
	"wormnet/internal/harness"
	"wormnet/internal/stats"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "compare: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string) (*exp.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return exp.DecodeJSON(f)
}

func main() {
	var (
		run        = flag.Bool("run", false, "measure both tables now instead of loading JSON files")
		pdmTable   = flag.Int("pdm-table", 1, "paper table measured for the PDM side (run mode)")
		ndmTable   = flag.Int("ndm-table", 2, "paper table measured for the NDM side (run mode)")
		k          = flag.Int("k", 8, "radix (run mode)")
		n          = flag.Int("n", 3, "dimensions (run mode)")
		warmup     = flag.Int64("warmup", 5000, "warm-up cycles per cell (run mode)")
		measure    = flag.Int64("measure", 30000, "measured cycles per cell (run mode)")
		seed       = flag.Uint64("seed", 1, "base random seed (run mode)")
		relative   = flag.Bool("relative", false, "rescale the paper's rates to measured saturation (run mode)")
		workers    = flag.Int("workers", 0, "concurrent simulations, 0 = GOMAXPROCS (run mode)")
		replicates = flag.Int("replicates", 1, "independently seeded runs per cell (run mode)")
		checkpoint = flag.String("checkpoint", "", "checkpoint journal path prefix (run mode)")
		resume     = flag.Bool("resume", false, "resume from the -checkpoint journals (run mode)")
		quiet      = flag.Bool("quiet", false, "suppress progress output (run mode)")
		detlat     = flag.Bool("detlat", false, "measure per-mechanism detection-latency histograms at one deadlock-prone operating point")
		dlMechs    = flag.String("mechs", "pdm,ndm", "comma-separated detection mechanisms to compare (detlat mode): ndm|pdm|cmh|src-age|src-stall|hdr-block")
		dlLoad     = flag.Float64("load", 2.0, "offered load in flits/cycle/node (detlat mode)")
		dlVCs      = flag.Int("vcs", 1, "virtual channels per physical channel (detlat mode)")
		dlTh       = flag.Int64("th", 16, "detection threshold in cycles (detlat mode)")
	)
	var obs harness.Observe
	obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := obs.Validate(); err != nil {
		fail("%v", err)
	}

	if *detlat {
		switch {
		case len(flag.Args()) > 0:
			fail("unexpected arguments %q in -detlat mode", flag.Args())
		case *run:
			fail("-detlat and -run are mutually exclusive")
		case *k < 2 || *n < 1:
			fail("invalid topology: %d-ary %d-cube (need -k >= 2, -n >= 1)", *k, *n)
		case *warmup < 0 || *measure <= 0:
			fail("need -warmup >= 0 and -measure > 0, got %d and %d", *warmup, *measure)
		case *replicates < 1:
			fail("-replicates must be >= 1, got %d", *replicates)
		}
		mechs, err := parseMechs(*dlMechs)
		if err != nil {
			fail("%v", err)
		}
		runDetLat(detLatParams{
			k: *k, n: *n, vcs: *dlVCs, load: *dlLoad, th: *dlTh,
			mechs:  mechs,
			warmup: *warmup, measure: *measure, seed: *seed,
			workers: *workers, replicates: *replicates, quiet: *quiet,
			obs: obs,
		})
		return
	}

	// Flags that only make sense in another mode must not be silently
	// ignored: -detlat-only flags are rejected in run mode, and both sets
	// are rejected in file mode.
	detlatOnly := map[string]bool{
		"load": true, "vcs": true, "th": true, "mechs": true,
	}
	if *run {
		var misused []string
		flag.Visit(func(f *flag.Flag) {
			if detlatOnly[f.Name] {
				misused = append(misused, "-"+f.Name)
			}
		})
		if len(misused) > 0 {
			fail("%v only apply with -detlat", misused)
		}
	}
	if !*run {
		runOnly := map[string]bool{
			"pdm-table": true, "ndm-table": true, "k": true, "n": true,
			"warmup": true, "measure": true, "seed": true, "relative": true,
			"workers": true, "replicates": true, "checkpoint": true,
			"resume": true, "quiet": true, "trace-dir": true, "trace-last": true,
			"series-dir": true, "series-window": true,
		}
		var misused []string
		flag.Visit(func(f *flag.Flag) {
			if runOnly[f.Name] || detlatOnly[f.Name] {
				misused = append(misused, "-"+f.Name)
			}
		})
		if len(misused) > 0 {
			fail("%v only apply with -run or -detlat (file mode just loads two JSON tables)", misused)
		}
		if len(flag.Args()) != 2 {
			fmt.Fprintln(os.Stderr, "usage: compare <pdm.json> <ndm.json>")
			fmt.Fprintln(os.Stderr, "       compare -run [options]   (see -h)")
			os.Exit(2)
		}
	}

	var pdm, ndm *exp.Result
	if *run {
		switch {
		case len(flag.Args()) > 0:
			fail("unexpected arguments %q in -run mode", flag.Args())
		case *k < 2 || *n < 1:
			fail("invalid topology: %d-ary %d-cube (need -k >= 2, -n >= 1)", *k, *n)
		case *warmup < 0 || *measure <= 0:
			fail("need -warmup >= 0 and -measure > 0, got %d and %d", *warmup, *measure)
		case *workers < 0:
			fail("-workers must be >= 0, got %d", *workers)
		case *replicates < 1:
			fail("-replicates must be >= 1, got %d", *replicates)
		case *resume && *checkpoint == "":
			fail("-resume requires -checkpoint")
		}
		pdm = measureTable(*pdmTable, "pdm", *k, *n, *warmup, *measure, *seed,
			*relative, *workers, *replicates, *checkpoint, *resume, *quiet, obs)
		ndm = measureTable(*ndmTable, "ndm", *k, *n, *warmup, *measure, *seed,
			*relative, *workers, *replicates, *checkpoint, *resume, *quiet, obs)
	} else {
		var err error
		if pdm, err = load(flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(1)
		}
		if ndm, err = load(flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(1)
		}
	}

	if err := exp.CompareReport(os.Stdout, pdm, ndm); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("smallest threshold with <= 0.1% detections at the saturated load, per message size:")
	for _, side := range []struct {
		name string
		r    *exp.Result
	}{{"PDM", pdm}, {"NDM", ndm}} {
		fmt.Printf("  %s: ", side.name)
		sens := exp.LengthSensitivity(side.r, 0.1)
		for _, size := range side.r.Table.Sizes {
			th := sens[size.Key]
			if th < 0 {
				fmt.Printf("%s=never ", size.Key)
			} else {
				fmt.Printf("%s=%d ", size.Key, th)
			}
		}
		fmt.Println()
	}
}

// measureTable runs one paper table on the harness.
func measureTable(id int, suffix string, k, n int, warmup, measure int64, seed uint64,
	relative bool, workers, replicates int, checkpoint string, resume, quiet bool,
	obs harness.Observe) *exp.Result {
	tbl, err := exp.PaperTable(id)
	if err != nil {
		fail("%v", err)
	}
	opt := exp.DefaultOptions()
	opt.K, opt.N = k, n
	opt.Warmup, opt.Measure = warmup, measure
	opt.Seed = seed
	opt.RelativeRates = relative
	opt.Workers = workers
	opt.Repeats = replicates
	opt.Resume = resume
	opt.Observe = obs.WithSuffix("-" + suffix)
	if checkpoint != "" {
		opt.Journal = checkpoint + "." + suffix
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "compare: measuring table %d (%s, %s)\n",
			tbl.ID, tbl.Mechanism, tbl.PatternName)
		opt.ProgressWriter = os.Stderr
	}
	res, err := exp.Run(tbl, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	return res
}

// detLatMechs lists the mechanisms -detlat accepts. NoDetection is excluded:
// with no detector there is no mark to measure a latency to.
var detLatMechs = []wormnet.Mechanism{
	wormnet.NDM, wormnet.PDM, wormnet.CMH,
	wormnet.SourceAge, wormnet.SourceStall, wormnet.HeaderBlock,
}

// parseMechs validates a comma-separated mechanism list: every name must be
// known, and duplicates are rejected because the mechanism doubles as the
// harness point key.
func parseMechs(s string) ([]wormnet.Mechanism, error) {
	known := make(map[wormnet.Mechanism]bool, len(detLatMechs))
	names := make([]string, len(detLatMechs))
	for i, m := range detLatMechs {
		known[m] = true
		names[i] = string(m)
	}
	var mechs []wormnet.Mechanism
	seen := map[wormnet.Mechanism]bool{}
	for _, part := range strings.Split(s, ",") {
		m := wormnet.Mechanism(strings.TrimSpace(part))
		if m == "" {
			return nil, fmt.Errorf("empty mechanism in -mechs %q", s)
		}
		if !known[m] {
			return nil, fmt.Errorf("unknown mechanism %q in -mechs (available: %s)",
				m, strings.Join(names, ", "))
		}
		if seen[m] {
			return nil, fmt.Errorf("duplicate mechanism %q in -mechs", m)
		}
		seen[m] = true
		mechs = append(mechs, m)
	}
	return mechs, nil
}

type detLatParams struct {
	k, n, vcs           int
	load                float64
	th                  int64
	mechs               []wormnet.Mechanism
	warmup, measure     int64
	seed                uint64
	workers, replicates int
	quiet               bool
	obs                 harness.Observe
}

// runDetLat measures the detection-latency distribution — cycles from the
// omniscient oracle first seeing a message deadlocked (OracleEvery=1) until
// the mechanism marks it — for each requested mechanism at one
// deadlock-prone operating point, and prints the histograms plus each
// mechanism's accuracy (false-positive rate) and control-message overhead
// (probe flits, and the share of aggregate link bandwidth they consumed —
// zero for the router-local mechanisms).
func runDetLat(p detLatParams) {
	var pts []harness.Point
	for _, mech := range p.mechs {
		cfg := wormnet.DefaultConfig()
		cfg.K, cfg.N = p.k, p.n
		cfg.VirtualChannels = p.vcs
		cfg.Pattern = wormnet.Uniform
		cfg.Lengths = wormnet.Len16
		cfg.Load = p.load
		cfg.Mechanism = mech
		cfg.Threshold = p.th
		cfg.InjectionLimit = -1 // saturate freely: deadlocks must actually form
		cfg.Warmup, cfg.Measure = p.warmup, p.measure
		cfg.OracleEvery = 1 // exact oracle-first-deadlock stamps
		sc, err := cfg.SimConfig()
		if err != nil {
			fail("%v", err)
		}
		pts = append(pts, harness.Point{Key: string(mech), Config: sc})
	}
	opt := harness.Options{
		Workers:    p.workers,
		Replicates: p.replicates,
		BaseSeed:   p.seed,
		Observe:    p.obs,
	}
	if !p.quiet {
		opt.Progress = os.Stderr
	}
	res, err := harness.Run(pts, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}

	fmt.Printf("# detection latency: cycles from oracle-confirmed deadlock to the mechanism's mark\n")
	fmt.Printf("# %d-ary %d-cube, %d VC(s), uniform 16-flit traffic, load %.3g flits/cycle/node, threshold %d, oracle every cycle\n",
		p.k, p.n, p.vcs, p.load, p.th)
	fmt.Printf("# %d measured cycles after %d warm-up, %d replicate(s), base seed %d\n",
		p.measure, p.warmup, p.replicates, p.seed)
	fmt.Println()
	fmt.Printf("%-9s %9s %9s %7s %7s %7s %7s %9s %9s %7s %12s %9s\n",
		"mech", "samples", "mean", "p50", "p90", "p99", "max", "true", "false", "fp%", "probe-flits", "probe-bw%")
	hists := make([]*stats.Histogram, len(pts))
	for i, pr := range res {
		if !pr.OK() {
			fail("point %s failed: %s", pr.Key, pr.Err())
		}
		h := pr.MergedDetectLatency()
		hists[i] = h
		var trueMarks, falseMarks, probeFlits, linkCycles int64
		for _, r := range pr.Completed() {
			trueMarks += r.TrueMarked
			falseMarks += r.FalseMarked
			probeFlits += r.ProbeFlits
			linkCycles += r.Cycles * int64(r.NetLinks)
		}
		fpPct := 0.0
		if trueMarks+falseMarks > 0 {
			fpPct = 100 * float64(falseMarks) / float64(trueMarks+falseMarks)
		}
		bwPct := 0.0
		if linkCycles > 0 {
			bwPct = 100 * float64(probeFlits) / float64(linkCycles)
		}
		fmt.Printf("%-9s %9d %9.1f %7d %7d %7d %7d %9d %9d %7.2f %12d %9.4f\n",
			pr.Key, h.Count(), h.Mean(),
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max(),
			trueMarks, falseMarks, fpPct, probeFlits, bwPct)
	}
	for i, pr := range res {
		if hists[i].Count() == 0 {
			continue
		}
		fmt.Printf("\n%s latency histogram:\n%s", pr.Key, hists[i].Bars(48))
	}
}
