// Command loadsweep produces classic load-latency-throughput series for
// the three routing regimes the paper situates itself between:
//
//   - deterministic dimension-order routing (deadlock avoidance),
//   - Duato's adaptive protocol with escape channels (deadlock avoidance),
//   - true fully adaptive routing with NDM detection and progressive
//     recovery (the paper's regime).
//
// The paper's motivation — "deadlock recovery strategies allow the use of
// unrestricted fully adaptive routing, potentially outperforming deadlock
// avoidance techniques" — shows up as the adaptive+recovery series keeping
// the lowest latency and highest accepted throughput, at the price of the
// occasional (mostly false) deadlock detection that NDM keeps rare.
//
// Example:
//
//	loadsweep -k 8 -n 2 -pattern bit-reversal -points 8
//
// Output is a whitespace-separated table: one row per offered load, one
// column group per regime (accepted throughput, average latency, p99
// latency, % detected).
package main

import (
	"flag"
	"fmt"
	"log"

	"wormnet"
)

type regime struct {
	name    string
	routing wormnet.Routing
	mech    wormnet.Mechanism
}

func main() {
	var (
		k       = flag.Int("k", 8, "radix")
		n       = flag.Int("n", 2, "dimensions")
		pattern = flag.String("pattern", "uniform", "traffic pattern")
		length  = flag.Int("len", 16, "message length in flits")
		points  = flag.Int("points", 8, "number of load points")
		maxFrac = flag.Float64("max", 1.1, "highest load as a fraction of the theoretical bound")
		measure = flag.Int64("measure", 12000, "measured cycles per point")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	regimes := []regime{
		{"dor", wormnet.DOR, wormnet.NoDetection},
		{"duato", wormnet.Duato, wormnet.NoDetection},
		{"adaptive+ndm", wormnet.Adaptive, wormnet.NDM},
	}

	// Theoretical throughput bound for uniform-ish traffic: links per node
	// over average distance (~ n*k/4).
	bound := float64(2**n) / (float64(*n**k) / 4)

	fmt.Printf("# %s traffic, %d-flit messages, %d-ary %d-cube; loads in flits/cycle/node\n",
		*pattern, *length, *k, *n)
	fmt.Printf("%-9s", "load")
	for _, r := range regimes {
		fmt.Printf(" | %-42s", r.name+" (thr, lat, p99, det%)")
	}
	fmt.Println()

	for p := 1; p <= *points; p++ {
		load := bound * *maxFrac * float64(p) / float64(*points)
		fmt.Printf("%-9.4f", load)
		for _, r := range regimes {
			cfg := wormnet.DefaultConfig()
			cfg.K, cfg.N = *k, *n
			cfg.Pattern = wormnet.Pattern(*pattern)
			cfg.Lengths = wormnet.Lengths{Fixed: *length}
			cfg.Load = load
			cfg.Routing = r.routing
			cfg.Mechanism = r.mech
			cfg.Threshold = 32
			cfg.Warmup = 3000
			cfg.Measure = *measure
			cfg.Seed = *seed
			res, err := wormnet.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" | %8.4f %9.1f %7d %8.3f%%",
				res.Throughput(), res.AvgLatency(), res.LatencyP99, res.PctMarked())
		}
		fmt.Println()
	}
}
