// Command loadsweep produces classic load-latency-throughput series for
// the three routing regimes the paper situates itself between:
//
//   - deterministic dimension-order routing (deadlock avoidance),
//   - Duato's adaptive protocol with escape channels (deadlock avoidance),
//   - true fully adaptive routing with NDM detection and progressive
//     recovery (the paper's regime).
//
// The paper's motivation — "deadlock recovery strategies allow the use of
// unrestricted fully adaptive routing, potentially outperforming deadlock
// avoidance techniques" — shows up as the adaptive+recovery series keeping
// the lowest latency and highest accepted throughput, at the price of the
// occasional (mostly false) deadlock detection that NDM keeps rare.
//
// The sweep runs on the parallel harness: every (load, regime, replicate)
// is an independent simulation scheduled across -workers goroutines, with
// per-run seeds derived purely from (-seed, point index, replicate index).
// Output is therefore bit-identical for any -workers value, and with
// -checkpoint set an interrupted sweep resumes with -resume.
//
// Example:
//
//	loadsweep -k 8 -n 2 -pattern bit-reversal -points 8 -workers 8 \
//	          -replicates 5 -checkpoint sweep.jsonl
//
// Default output is a whitespace-separated table: one row per offered
// load, one column group per regime (accepted throughput, average latency,
// p99 latency, % detected; mean±ci95 over replicates where applicable).
// -json emits the same data as structured JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wormnet"
	"wormnet/internal/harness"
	"wormnet/internal/sim"
	"wormnet/internal/stats"
)

type regime struct {
	name    string
	routing wormnet.Routing
	mech    wormnet.Mechanism
}

var regimes = []regime{
	{"dor", wormnet.DOR, wormnet.NoDetection},
	{"duato", wormnet.Duato, wormnet.NoDetection},
	{"adaptive+ndm", wormnet.Adaptive, wormnet.NDM},
}

// seriesOut is the aggregated outcome of one (load, regime) point.
type seriesOut struct {
	Name        string        `json:"name"`
	Failed      bool          `json:"failed,omitempty"`
	Error       string        `json:"error,omitempty"`
	Throughput  stats.Summary `json:"throughput"`
	Latency     stats.Summary `json:"latency"`
	LatencyP99  int64         `json:"latencyP99"`
	PctDetected stats.Summary `json:"pctDetected"`
	Delivered   int64         `json:"delivered"`
}

type rowOut struct {
	Load   float64     `json:"load"`
	Series []seriesOut `json:"series"`
}

type sweepOut struct {
	K          int      `json:"k"`
	N          int      `json:"n"`
	Pattern    string   `json:"pattern"`
	Len        int      `json:"len"`
	Points     int      `json:"points"`
	Replicates int      `json:"replicates"`
	Seed       uint64   `json:"seed"`
	Rows       []rowOut `json:"rows"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadsweep: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		k          = flag.Int("k", 8, "radix")
		n          = flag.Int("n", 2, "dimensions")
		pattern    = flag.String("pattern", "uniform", "traffic pattern")
		length     = flag.Int("len", 16, "message length in flits")
		points     = flag.Int("points", 8, "number of load points")
		maxFrac    = flag.Float64("max", 1.1, "highest load as a fraction of the theoretical bound")
		warmup     = flag.Int64("warmup", 3000, "warm-up cycles per point")
		measure    = flag.Int64("measure", 12000, "measured cycles per point")
		seed       = flag.Uint64("seed", 1, "base random seed; per-run seeds derive from it")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		replicates = flag.Int("replicates", 1, "independently seeded runs per point, aggregated as mean±ci95")
		checkpoint = flag.String("checkpoint", "", "JSONL checkpoint journal path")
		resume     = flag.Bool("resume", false, "resume completed runs from the -checkpoint journal")
		asJSON     = flag.Bool("json", false, "emit JSON instead of the text table")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		shards     = flag.Int("shards", 0, "worker shards per simulation under the deterministic cycle barrier (0 = serial; output is identical for any count)")
		dense      = flag.Bool("dense-kernel", false, "use the dense reference cycle kernel (full-fabric scans; byte-identical to the default sparse kernel)")
	)
	var obs harness.Observe
	obs.AddFlags(flag.CommandLine)
	flag.Parse()

	// Reject invalid invocations loudly instead of running a default sweep.
	switch {
	case len(flag.Args()) > 0:
		fail("unexpected arguments %q (loadsweep takes only flags)", flag.Args())
	case *k < 2 || *n < 1:
		fail("invalid topology: %d-ary %d-cube (need -k >= 2, -n >= 1)", *k, *n)
	case *length < 1:
		fail("-len must be >= 1, got %d", *length)
	case *points < 1:
		fail("-points must be >= 1, got %d", *points)
	case *maxFrac <= 0:
		fail("-max must be > 0, got %g", *maxFrac)
	case *warmup < 0 || *measure <= 0:
		fail("need -warmup >= 0 and -measure > 0, got %d and %d", *warmup, *measure)
	case *workers < 0:
		fail("-workers must be >= 0, got %d", *workers)
	case *replicates < 1:
		fail("-replicates must be >= 1, got %d", *replicates)
	case *shards < 0 || *shards > intPow(*k, *n):
		fail("-shards must be between 0 and the node count (%d), got %d", intPow(*k, *n), *shards)
	case *resume && *checkpoint == "":
		fail("-resume requires -checkpoint")
	}
	if err := obs.Validate(); err != nil {
		fail("%v", err)
	}

	// Theoretical throughput bound for uniform-ish traffic: links per node
	// over average distance (~ n*k/4).
	bound := float64(2**n) / (float64(*n**k) / 4)

	// Expand the (load x regime) grid into harness points. Invalid
	// workload flags (unknown pattern, bad length) surface here, before
	// anything runs.
	var pts []harness.Point
	loads := make([]float64, *points)
	for p := 1; p <= *points; p++ {
		load := bound * *maxFrac * float64(p) / float64(*points)
		loads[p-1] = load
		for _, r := range regimes {
			cfg := wormnet.DefaultConfig()
			cfg.K, cfg.N = *k, *n
			cfg.Pattern = wormnet.Pattern(*pattern)
			cfg.Lengths = wormnet.Lengths{Fixed: *length}
			cfg.Load = load
			cfg.Routing = r.routing
			cfg.Mechanism = r.mech
			cfg.Threshold = 32
			cfg.Warmup = *warmup
			cfg.Measure = *measure
			cfg.Shards = *shards
			cfg.DenseKernel = *dense
			sc, err := cfg.SimConfig()
			if err != nil {
				fail("%v", err)
			}
			pts = append(pts, harness.Point{
				Key:    fmt.Sprintf("load=%.6f/%s", load, r.name),
				Config: sc,
			})
		}
	}

	opt := harness.Options{
		Workers:    *workers,
		Replicates: *replicates,
		BaseSeed:   *seed,
		Journal:    *checkpoint,
		Resume:     *resume,
		Observe:    obs,
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}
	res, err := harness.Run(pts, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadsweep:", err)
		os.Exit(1)
	}

	out := sweepOut{
		K: *k, N: *n, Pattern: *pattern, Len: *length,
		Points: *points, Replicates: *replicates, Seed: *seed,
	}
	failed := 0
	for p := 0; p < *points; p++ {
		row := rowOut{Load: loads[p]}
		for ri := range regimes {
			pr := &res[p*len(regimes)+ri]
			s := seriesOut{Name: regimes[ri].name}
			if !pr.OK() {
				failed++
				s.Failed = true
				s.Error = pr.Err()
			}
			s.Throughput = pr.Metric((*sim.Result).Throughput)
			s.Latency = pr.Metric((*sim.Result).AvgLatency)
			s.PctDetected = pr.Metric((*sim.Result).PctMarked)
			s.LatencyP99 = pr.MergedLatency().Quantile(0.99)
			for _, r := range pr.Completed() {
				s.Delivered += r.Delivered
			}
			row.Series = append(row.Series, s)
		}
		out.Rows = append(out.Rows, row)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "loadsweep:", err)
			os.Exit(1)
		}
	} else {
		printTable(out)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "loadsweep: %d of %d points failed (see output for errors)\n",
			failed, len(res))
		os.Exit(1)
	}
}

func printTable(out sweepOut) {
	fmt.Printf("# %s traffic, %d-flit messages, %d-ary %d-cube; loads in flits/cycle/node",
		out.Pattern, out.Len, out.K, out.N)
	if out.Replicates > 1 {
		fmt.Printf("; mean±ci95 over %d replicates", out.Replicates)
	}
	fmt.Println()
	colw := 42
	if out.Replicates > 1 {
		colw = 66
	}
	fmt.Printf("%-9s", "load")
	for _, r := range regimes {
		fmt.Printf(" | %-*s", colw, r.name+" (thr, lat, p99, det%)")
	}
	fmt.Println()
	for _, row := range out.Rows {
		fmt.Printf("%-9.4f", row.Load)
		for _, s := range row.Series {
			if s.Failed {
				fmt.Printf(" | %-*s", colw, "FAILED: "+s.Error)
				continue
			}
			if out.Replicates > 1 {
				fmt.Printf(" | %8.4f±%.4f %9.1f±%.1f %7d %8.3f±%.3f%%",
					s.Throughput.Mean, s.Throughput.CI95,
					s.Latency.Mean, s.Latency.CI95,
					s.LatencyP99,
					s.PctDetected.Mean, s.PctDetected.CI95)
			} else {
				fmt.Printf(" | %8.4f %9.1f %7d %8.3f%%",
					s.Throughput.Mean, s.Latency.Mean, s.LatencyP99, s.PctDetected.Mean)
			}
		}
		fmt.Println()
	}
}

// intPow computes k^n in integer arithmetic (the node count).
func intPow(k, n int) int {
	p := 1
	for i := 0; i < n; i++ {
		p *= k
	}
	return p
}
