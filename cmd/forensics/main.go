// Command forensics renders deadlock incident reports — the per-episode
// causal records reconstructed by internal/forensics from the flight
// recorder's event stream.
//
// It accepts either kind of file (or stdin) and tells them apart by
// sniffing the first line:
//
//   - an incident report (JSONL of episodes) written by `wormsim -forensics`
//     or the harness's -forensics-dir option, rendered directly;
//   - a raw trace (JSONL of events) written by `wormsim -trace`, replayed
//     through the episode correlator first. Offline replay of a streamed
//     trace reconstructs byte-for-byte the same report the online observer
//     produced during the run.
//
// Summary (default): per-verdict episode counts, mechanism, MTTD/MTTR
// aggregates and a one-line digest of every episode.
//
//	forensics incidents.jsonl
//	forensics events.jsonl
//
// Episode timeline (-episode): the full causal story of one episode —
// formation cycle, members, marks with rule attribution and blocking
// chains, victims and drain times.
//
//	forensics -episode 2 incidents.jsonl
//
// Machine output: -json re-emits the (decoded or reconstructed) episodes
// as JSONL on stdout; -write saves them to a file — `forensics -write
// incidents.jsonl events.jsonl` turns a trace into an incident report.
//
// -mech forces the mechanism stamped on reconstructed episodes when
// replaying a trace whose mechanism is not inferable from its events.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wormnet/internal/forensics"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "forensics: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		episode  = flag.Int("episode", 0, "render the full timeline of this episode id (ids start at 1; 0 = summary of all)")
		jsonOut  = flag.Bool("json", false, "re-emit the episodes as JSONL on stdout instead of rendering")
		writeTo  = flag.String("write", "", "save the episodes as JSONL to this file (useful to turn a trace into an incident report)")
		mechName = flag.String("mech", "", "force the mechanism name stamped on episodes reconstructed from a trace (default: inferred from events)")
	)
	flag.Parse()

	var rd io.Reader = os.Stdin
	name := "<stdin>"
	switch len(flag.Args()) {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		rd = f
		name = flag.Arg(0)
	default:
		fail("at most one incidents or trace file (or stdin)")
	}

	episodes, err := load(rd, *mechName)
	if err != nil {
		fail("%s: %v", name, err)
	}

	if *writeTo != "" {
		f, err := os.Create(*writeTo)
		if err != nil {
			fail("%v", err)
		}
		err = forensics.WriteJSONL(f, episodes)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail("writing %s: %v", *writeTo, err)
		}
	}
	if *jsonOut {
		if err := forensics.WriteJSONL(os.Stdout, episodes); err != nil {
			fail("%v", err)
		}
		return
	}
	if *episode > 0 {
		for _, ep := range episodes {
			if ep.ID == *episode {
				printTimeline(ep)
				return
			}
		}
		fail("%s: no episode %d (report has %d)", name, *episode, len(episodes))
	}
	printSummary(name, episodes)
}

// load sniffs whether rd is an incident report or a raw trace and returns
// the episodes either way. Sniffing keys off the first non-empty line:
// trace events always carry a "kind" field, episodes never do.
func load(rd io.Reader, mech string) ([]*forensics.Episode, error) {
	head := make([]byte, 4096)
	n, err := io.ReadFull(rd, head)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	head = head[:n]
	rd = io.MultiReader(strings.NewReader(string(head)), rd)
	if isTrace(head) {
		return forensics.Correlate(rd, forensics.Options{Mechanism: mech})
	}
	return forensics.DecodeEpisodes(rd)
}

func isTrace(head []byte) bool {
	line := string(head)
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	return strings.Contains(line, `"kind":`)
}

func printSummary(name string, episodes []*forensics.Episode) {
	if len(episodes) == 0 {
		fmt.Printf("%s: no deadlock episodes\n", name)
		return
	}
	var trues, falses, unresolved int
	var mttdSum, mttdN, mttrSum, mttrN int64
	mech := ""
	for _, ep := range episodes {
		switch ep.Verdict {
		case forensics.VerdictTrueDeadlock:
			trues++
		default:
			falses++
		}
		if ep.Unresolved {
			unresolved++
		}
		if ep.MTTDCycles >= 0 {
			mttdSum += ep.MTTDCycles
			mttdN++
		}
		if ep.MTTRCycles >= 0 {
			mttrSum += ep.MTTRCycles
			mttrN++
		}
		if mech == "" {
			mech = ep.Mechanism
		}
	}
	fmt.Printf("%s: %d episode(s), mechanism %s\n", name, len(episodes), mech)
	fmt.Printf("  verdicts:   %d true-deadlock, %d false-positive", trues, falses)
	if unresolved > 0 {
		fmt.Printf(" (%d unresolved at trace end)", unresolved)
	}
	fmt.Println()
	if mttdN > 0 {
		fmt.Printf("  MTTD:       %.1f cycles mean over %d episode(s)\n", float64(mttdSum)/float64(mttdN), mttdN)
	}
	if mttrN > 0 {
		fmt.Printf("  MTTR:       %.1f cycles mean over %d episode(s)\n", float64(mttrSum)/float64(mttrN), mttrN)
	}
	fmt.Println()
	for _, ep := range episodes {
		span := fmt.Sprintf("%d..%d", ep.OpenCycle, ep.CloseCycle)
		if ep.CloseCycle < 0 {
			span = fmt.Sprintf("%d..(open)", ep.OpenCycle)
		}
		fmt.Printf("  #%d %-14s cycles %-13s members=%d marks=%d victims=%d",
			ep.ID, ep.Verdict, span, len(ep.Members), len(ep.Marks), len(ep.Victims))
		if ep.MTTDCycles >= 0 {
			fmt.Printf(" mttd=%d", ep.MTTDCycles)
		}
		if ep.MTTRCycles >= 0 {
			fmt.Printf(" mttr=%d", ep.MTTRCycles)
		}
		fmt.Println()
	}
}

func printTimeline(ep *forensics.Episode) {
	fmt.Printf("episode %d: %s, mechanism %s\n", ep.ID, ep.Verdict, ep.Mechanism)
	span := fmt.Sprintf("%d..%d", ep.OpenCycle, ep.CloseCycle)
	if ep.CloseCycle < 0 {
		span = fmt.Sprintf("%d.. (unresolved at trace end)", ep.OpenCycle)
	}
	fmt.Printf("  span:       cycles %s\n", span)
	if ep.PeakOracleSet > 0 {
		fmt.Printf("  oracle:     peak deadlocked set %d\n", ep.PeakOracleSet)
	}
	if ep.MTTDCycles >= 0 {
		fmt.Printf("  MTTD:       %d cycles (open -> first mark)\n", ep.MTTDCycles)
	}
	if ep.MTTRCycles >= 0 {
		fmt.Printf("  MTTR:       %d cycles (first mark -> drained)\n", ep.MTTRCycles)
	}
	if len(ep.Formation) > 0 {
		fmt.Printf("  formation (channel-wait-for cycle, %d edge(s)):\n", len(ep.Formation))
		for _, e := range ep.Formation {
			fmt.Printf("    msg %d blocked at node %d waits on link %d held by msg %d\n",
				e.Msg, e.Node, e.Link, e.Next)
		}
	}
	if len(ep.Members) > 0 {
		fmt.Printf("  members (%d, oracle sighting order):\n", len(ep.Members))
		for _, m := range ep.Members {
			fmt.Printf("    msg %d sighted cycle %d, blocked at node %d in-link %d since cycle %d, holds %v\n",
				m.Msg, m.Sighted, m.Node, m.InLink, m.BlockedSince, m.Holds)
		}
	}
	if len(ep.Marks) > 0 {
		fmt.Printf("  marks (%d):\n", len(ep.Marks))
		for _, mk := range ep.Marks {
			verdict := "FALSE"
			if mk.True {
				verdict = "TRUE"
			}
			fmt.Printf("    cycle %d msg %d node %d %s rule=%s", mk.Cycle, mk.Msg, mk.Node, verdict, mk.Rule)
			if mk.Hops > 0 {
				fmt.Printf(" hops=%d", mk.Hops)
			}
			if mk.SinceBlocked >= 0 {
				fmt.Printf(" blocked-for=%d", mk.SinceBlocked)
			}
			if mk.OracleLatency >= 0 {
				fmt.Printf(" oracle-latency=%d", mk.OracleLatency)
			}
			fmt.Println()
			if len(mk.Chain) > 0 {
				fmt.Printf("      blocking chain (%s):\n", mk.ChainEnd)
				for _, e := range mk.Chain {
					fmt.Printf("        msg %d at node %d -> link %d held by msg %d\n",
						e.Msg, e.Node, e.Link, e.Next)
				}
			}
		}
	}
	if len(ep.Victims) > 0 {
		fmt.Printf("  victims (%d, ~%d flits absorbed):\n", len(ep.Victims), ep.AbsorbedFlitsEst)
		for _, v := range ep.Victims {
			style := "progressive"
			if v.Style == 1 {
				style = "regressive"
			}
			if v.End < 0 {
				fmt.Printf("    msg %d recovery started cycle %d (%s), still draining at trace end\n",
					v.Msg, v.Start, style)
				continue
			}
			how := "requeued"
			if v.Delivered {
				how = "delivered"
			}
			fmt.Printf("    msg %d recovered cycles %d..%d (%s, %d cycle(s) drain, %d flit(s), %s at node %d)\n",
				v.Msg, v.Start, v.End, style, v.DrainCycles, v.LengthFlits, how, v.Node)
		}
	}
}
