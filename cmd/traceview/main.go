// Command traceview renders flight-recorder traces captured with
// `wormsim -trace`, the harness's -trace-dir option, or trace.Recorder.Dump.
//
// Two views:
//
// Summary (default): per-kind event counts, cycle span, and the detection
// verdicts present in the trace.
//
//	traceview events.jsonl
//
// Message timeline (-msg): a per-cycle timeline of one message's life — its
// injection, routing attempts, the G/P transitions of the input channels it
// blocked on, the I/DT flag activity of the channels it requested, and its
// detection/recovery, exactly the sequence the paper's Section 3 rules
// produce. With -msg -1 (the default) the first detected message is chosen;
// if nothing was detected, the first injected one.
//
//	traceview -msg 17 events.jsonl
//
// Both views accept -kind, a comma-separated list of event-kind names
// (as printed in the summary, e.g. probe-emit,probe-return), restricting
// the output to just those kinds. Unknown names are rejected with the
// list of legal values.
//
//	traceview -kind detect,probe-return events.jsonl
//
// Traces are streamed a line at a time, never loaded whole, so traces far
// larger than memory are fine. The timeline view makes multiple passes over
// its input; stdin is spooled to a temporary file to allow that.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wormnet/internal/router"
	"wormnet/internal/trace"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceview: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		msg     = flag.Int("msg", -1, "render a per-cycle timeline of this message id (-1 = first detected, else first injected)")
		summary = flag.Bool("summary", false, "print only the per-kind summary (the default when -msg is not set)")
		kinds   = flag.String("kind", "", "comma-separated event kinds to keep (e.g. detect,probe-return); empty keeps all")
	)
	flag.Parse()
	timeline := !*summary || *msg >= 0

	keep, err := parseKinds(*kinds)
	if err != nil {
		fail("%v", err)
	}

	var f *os.File
	name := "<stdin>"
	switch len(flag.Args()) {
	case 0:
		f = os.Stdin
		if timeline {
			// The timeline needs several passes; stdin only offers one.
			spool, err := os.CreateTemp("", "traceview-*.jsonl")
			if err != nil {
				fail("%v", err)
			}
			defer os.Remove(spool.Name())
			defer spool.Close()
			if _, err := io.Copy(spool, os.Stdin); err != nil {
				fail("spooling stdin: %v", err)
			}
			if err := rewind(spool); err != nil {
				fail("%v", err)
			}
			f = spool
		}
	case 1:
		var err error
		if f, err = os.Open(flag.Arg(0)); err != nil {
			fail("%v", err)
		}
		defer f.Close()
		name = flag.Arg(0)
	default:
		fail("at most one trace file (or stdin)")
	}

	sum, err := scanSummary(f, keep)
	if err != nil {
		fail("%s: %v", name, err)
	}
	if sum.total == 0 {
		if keep != nil {
			fail("%s: no events of the requested kind(s)", name)
		}
		fail("%s: empty trace", name)
	}
	sum.print(name)
	if !timeline {
		return
	}

	id := router.MsgID(*msg)
	if *msg < 0 {
		id = sum.pickMessage()
		if id == router.NilMsg {
			return // trace has no message events at all
		}
	}
	fmt.Println()
	if err := printTimeline(f, id, keep); err != nil {
		fail("%s: %v", name, err)
	}
}

// parseKinds turns the -kind argument into a filter set. A nil map means
// no filtering. Unknown names are an error naming the legal values.
func parseKinds(s string) (map[trace.Kind]bool, error) {
	if s == "" {
		return nil, nil
	}
	keep := make(map[trace.Kind]bool)
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			return nil, fmt.Errorf("empty kind name in -kind %q", s)
		}
		k, ok := trace.KindByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown event kind %q (available: %s)",
				name, strings.Join(trace.KindNames(), ", "))
		}
		keep[k] = true
	}
	return keep, nil
}

// rewind seeks back to the start of the trace for another streaming pass.
func rewind(f *os.File) error {
	_, err := f.Seek(0, io.SeekStart)
	return err
}

// summaryStats accumulates the single-pass summary of a trace.
type summaryStats struct {
	counts               [64]int
	total                int
	first, last          int64
	detects, trueDetects int
	firstDetected        router.MsgID
	firstMsg             router.MsgID
}

// scanSummary makes one streaming pass collecting per-kind counts, the cycle
// span, detection verdicts, and the default message for the timeline view.
// A non-nil keep set restricts the summary to just those kinds.
func scanSummary(rd io.Reader, keep map[trace.Kind]bool) (*summaryStats, error) {
	s := &summaryStats{firstDetected: router.NilMsg, firstMsg: router.NilMsg}
	err := trace.Scan(rd, func(ev trace.Event) error {
		if keep != nil && !keep[ev.Kind] {
			return nil
		}
		if s.total == 0 {
			s.first, s.last = ev.Cycle, ev.Cycle
		}
		s.total++
		if int(ev.Kind) < len(s.counts) {
			s.counts[ev.Kind]++
		}
		if ev.Cycle < s.first {
			s.first = ev.Cycle
		}
		if ev.Cycle > s.last {
			s.last = ev.Cycle
		}
		if ev.Kind == trace.KindDetect {
			s.detects++
			if ev.Arg == 1 {
				s.trueDetects++
			}
			if s.firstDetected == router.NilMsg {
				s.firstDetected = ev.Msg
			}
		}
		if s.firstMsg == router.NilMsg && ev.Msg != router.NilMsg {
			s.firstMsg = ev.Msg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// print reports what the trace contains.
func (s *summaryStats) print(name string) {
	fmt.Printf("%s: %d events over cycles %d..%d\n", name, s.total, s.first, s.last)
	for k, c := range s.counts {
		if c > 0 {
			fmt.Printf("  %-16s %d\n", trace.Kind(k).String(), c)
		}
	}
	if s.detects > 0 {
		fmt.Printf("detections: %d (%d confirmed true by the oracle)\n", s.detects, s.trueDetects)
	}
}

// pickMessage selects the message to render: the first detected one, or the
// first one carrying a message id.
func (s *summaryStats) pickMessage() router.MsgID {
	if s.firstDetected != router.NilMsg {
		return s.firstDetected
	}
	return s.firstMsg
}

// printTimeline renders every event involving message id, plus the flag
// activity of the channels the message touched, cycle by cycle. Two more
// streaming passes: one to learn which channels the message used, one to
// print. A non-nil keep set restricts the printed events to those kinds
// (the channel-discovery pass still sees everything, so filtering never
// changes which channels count as the message's own).
func printTimeline(f *os.File, id router.MsgID, keep map[trace.Kind]bool) error {
	// Channels the message touched (as input or requested output), so flag
	// events on them are part of its story.
	links := map[router.LinkID]bool{}
	if err := rewind(f); err != nil {
		return err
	}
	err := trace.Scan(f, func(ev trace.Event) error {
		if ev.Msg != id {
			return nil
		}
		if ev.Link != router.NilLink {
			links[ev.Link] = true
		}
		if ev.Kind == trace.KindRouteOK && ev.Arg >= 0 {
			links[router.LinkID(ev.Arg)] = true
		}
		if ev.Kind == trace.KindGSet && ev.Aux >= 0 {
			links[router.LinkID(ev.Aux)] = true
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(links) == 0 {
		fmt.Printf("message %d: no events in trace\n", id)
		return nil
	}
	fmt.Printf("message %d timeline (own events and flag activity on its %d channel(s)):\n", id, len(links))
	lastCycle := int64(-1)
	n := 0
	if err := rewind(f); err != nil {
		return err
	}
	err = trace.Scan(f, func(ev trace.Event) error {
		if keep != nil && !keep[ev.Kind] {
			return nil
		}
		own := ev.Msg == id
		onLink := ev.Link != router.NilLink && links[ev.Link]
		// Flag events carry no message; show them when they touch one of
		// the message's channels. Foreign messages' events on those
		// channels are context too, but only the flag/VC ones matter.
		if !own && !(onLink && interesting(ev.Kind)) {
			return nil
		}
		if ev.Cycle != lastCycle {
			fmt.Printf("cycle %d:\n", ev.Cycle)
			lastCycle = ev.Cycle
		}
		marker := " "
		if own {
			marker = "*"
		}
		fmt.Printf("  %s %s\n", marker, describe(ev))
		n++
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d events\n", n)
	return nil
}

// interesting reports whether a foreign event kind is context for a message
// timeline (flag transitions and flow-control on shared channels).
func interesting(k trace.Kind) bool {
	switch k {
	case trace.KindISet, trace.KindIClear, trace.KindDTSet, trace.KindDTClear,
		trace.KindGSet, trace.KindPSet, trace.KindVCFree,
		trace.KindProbeEmit, trace.KindProbeForward, trace.KindProbeDrop,
		trace.KindProbeReturn:
		return true
	}
	return false
}

// describe renders one event as a human-readable line.
func describe(ev trace.Event) string {
	s := ev.Kind.String()
	switch ev.Kind {
	case trace.KindInject:
		return fmt.Sprintf("%s msg=%d node=%d dst=%d len=%d (port link %d)", s, ev.Msg, ev.Node, ev.Aux, ev.Arg, ev.Link)
	case trace.KindDeliver:
		return fmt.Sprintf("%s msg=%d node=%d latency=%d", s, ev.Msg, ev.Node, ev.Arg)
	case trace.KindVCAlloc:
		return fmt.Sprintf("%s msg=%d link=%d vc=%d", s, ev.Msg, ev.Link, ev.Aux)
	case trace.KindVCFree:
		if ev.Msg == router.NilMsg {
			return fmt.Sprintf("%s link=%d", s, ev.Link)
		}
		return fmt.Sprintf("%s msg=%d link=%d vc=%d", s, ev.Msg, ev.Link, ev.Aux)
	case trace.KindRouteOK:
		return fmt.Sprintf("%s msg=%d node=%d in=%d -> out link=%d vc=%d", s, ev.Msg, ev.Node, ev.Link, ev.Arg, ev.Aux)
	case trace.KindRouteFail:
		return fmt.Sprintf("%s msg=%d node=%d in=%d attempt=%d", s, ev.Msg, ev.Node, ev.Link, ev.Arg)
	case trace.KindISet, trace.KindIClear, trace.KindDTSet, trace.KindDTClear:
		return fmt.Sprintf("%s link=%d", s, ev.Link)
	case trace.KindGSet:
		rule := "first-attempt"
		if ev.Arg == trace.GRulePromotion {
			rule = "promotion"
		}
		return fmt.Sprintf("%s in=%d node=%d rule=%s witness-out=%d msg=%d", s, ev.Link, ev.Node, rule, ev.Aux, ev.Msg)
	case trace.KindPSet:
		reason := "?"
		switch ev.Arg {
		case trace.PReasonRouteOK:
			reason = "route-ok"
		case trace.PReasonVCFreed:
			reason = "vc-freed"
		case trace.PReasonNotLastArrival:
			reason = "not-last-arrival"
		case trace.PReasonAllInactive:
			reason = "all-inactive"
		}
		return fmt.Sprintf("%s in=%d node=%d reason=%s", s, ev.Link, ev.Node, reason)
	case trace.KindDetect:
		verdict := "FALSE"
		if ev.Arg == 1 {
			verdict = "TRUE"
		}
		return fmt.Sprintf("%s msg=%d node=%d oracle=%s", s, ev.Msg, ev.Node, verdict)
	case trace.KindRecoverStart:
		style := "progressive"
		if ev.Arg == 1 {
			style = "regressive"
		}
		return fmt.Sprintf("%s msg=%d node=%d style=%s", s, ev.Msg, ev.Node, style)
	case trace.KindRecoverEnd:
		how := "requeued"
		if ev.Arg == 1 {
			how = "delivered"
		}
		return fmt.Sprintf("%s msg=%d node=%d %s", s, ev.Msg, ev.Node, how)
	case trace.KindOracleDeadlock:
		return fmt.Sprintf("%s msg=%d set-size=%d", s, ev.Msg, ev.Arg)
	case trace.KindProbeEmit:
		return fmt.Sprintf("%s initiator=%d node=%d out-link=%d hops=%d chasing msg=%d", s, ev.Msg, ev.Node, ev.Link, ev.Arg, ev.Aux)
	case trace.KindProbeForward:
		return fmt.Sprintf("%s initiator=%d node=%d out-link=%d hops=%d chasing msg=%d", s, ev.Msg, ev.Node, ev.Link, ev.Arg, ev.Aux)
	case trace.KindProbeDrop:
		reason := "?"
		switch ev.Arg {
		case trace.ProbeDropStale:
			reason = "stale"
		case trace.ProbeDropRoutable:
			reason = "routable-header"
		case trace.ProbeDropHops:
			reason = "hop-cap"
		case trace.ProbeDropDeadEnd:
			reason = "dead-end"
		}
		return fmt.Sprintf("%s initiator=%d link=%d reason=%s chasing msg=%d", s, ev.Msg, ev.Link, reason, ev.Aux)
	case trace.KindProbeReturn:
		return fmt.Sprintf("%s initiator=%d node=%d link=%d hops=%d victim=%d", s, ev.Msg, ev.Node, ev.Link, ev.Arg, ev.Aux)
	}
	return fmt.Sprintf("%s msg=%d link=%d node=%d arg=%d aux=%d", s, ev.Msg, ev.Link, ev.Node, ev.Arg, ev.Aux)
}
