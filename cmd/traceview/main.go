// Command traceview renders flight-recorder traces captured with
// `wormsim -trace`, the harness's -trace-dir option, or trace.Recorder.Dump.
//
// Two views:
//
// Summary (default): per-kind event counts, cycle span, and the detection
// verdicts present in the trace.
//
//	traceview events.jsonl
//
// Message timeline (-msg): a per-cycle timeline of one message's life — its
// injection, routing attempts, the G/P transitions of the input channels it
// blocked on, the I/DT flag activity of the channels it requested, and its
// detection/recovery, exactly the sequence the paper's Section 3 rules
// produce. With -msg -1 (the default) the first detected message is chosen;
// if nothing was detected, the first injected one.
//
//	traceview -msg 17 events.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wormnet/internal/router"
	"wormnet/internal/trace"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceview: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		msg     = flag.Int("msg", -1, "render a per-cycle timeline of this message id (-1 = first detected, else first injected)")
		summary = flag.Bool("summary", false, "print only the per-kind summary (the default when -msg is not set)")
	)
	flag.Parse()

	var rd io.Reader = os.Stdin
	name := "<stdin>"
	switch len(flag.Args()) {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		rd, name = f, flag.Arg(0)
	default:
		fail("at most one trace file (or stdin)")
	}

	events, err := trace.Decode(rd)
	if err != nil {
		fail("%v", err)
	}
	if len(events) == 0 {
		fail("%s: empty trace", name)
	}

	timeline := !*summary || *msg >= 0
	printSummary(name, events)
	if !timeline {
		return
	}

	id := router.MsgID(*msg)
	if *msg < 0 {
		id = pickMessage(events)
		if id == router.NilMsg {
			return // trace has no message events at all
		}
	}
	fmt.Println()
	printTimeline(events, id)
}

// printSummary reports what the trace contains.
func printSummary(name string, events []trace.Event) {
	var counts [64]int
	first, last := events[0].Cycle, events[0].Cycle
	var detects, trueDetects int
	for _, ev := range events {
		if int(ev.Kind) < len(counts) {
			counts[ev.Kind]++
		}
		if ev.Cycle < first {
			first = ev.Cycle
		}
		if ev.Cycle > last {
			last = ev.Cycle
		}
		if ev.Kind == trace.KindDetect {
			detects++
			if ev.Arg == 1 {
				trueDetects++
			}
		}
	}
	fmt.Printf("%s: %d events over cycles %d..%d\n", name, len(events), first, last)
	for k, c := range counts {
		if c > 0 {
			fmt.Printf("  %-16s %d\n", trace.Kind(k).String(), c)
		}
	}
	if detects > 0 {
		fmt.Printf("detections: %d (%d confirmed true by the oracle)\n", detects, trueDetects)
	}
}

// pickMessage selects the message to render: the first detected one, or the
// first injected one.
func pickMessage(events []trace.Event) router.MsgID {
	for _, ev := range events {
		if ev.Kind == trace.KindDetect {
			return ev.Msg
		}
	}
	for _, ev := range events {
		if ev.Msg != router.NilMsg {
			return ev.Msg
		}
	}
	return router.NilMsg
}

// printTimeline renders every event involving message id, plus the flag
// activity of the channels the message touched, cycle by cycle.
func printTimeline(events []trace.Event, id router.MsgID) {
	// Channels the message touched (as input or requested output), so flag
	// events on them are part of its story.
	links := map[router.LinkID]bool{}
	for _, ev := range events {
		if ev.Msg != id {
			continue
		}
		if ev.Link != router.NilLink {
			links[ev.Link] = true
		}
		if ev.Kind == trace.KindRouteOK && ev.Arg >= 0 {
			links[router.LinkID(ev.Arg)] = true
		}
		if ev.Kind == trace.KindGSet && ev.Aux >= 0 {
			links[router.LinkID(ev.Aux)] = true
		}
	}
	if len(links) == 0 {
		fmt.Printf("message %d: no events in trace\n", id)
		return
	}
	fmt.Printf("message %d timeline (own events and flag activity on its %d channel(s)):\n", id, len(links))
	lastCycle := int64(-1)
	n := 0
	for _, ev := range events {
		own := ev.Msg == id
		onLink := ev.Link != router.NilLink && links[ev.Link]
		// Flag events carry no message; show them when they touch one of
		// the message's channels. Foreign messages' events on those
		// channels are context too, but only the flag/VC ones matter.
		if !own && !(onLink && interesting(ev.Kind)) {
			continue
		}
		if ev.Cycle != lastCycle {
			fmt.Printf("cycle %d:\n", ev.Cycle)
			lastCycle = ev.Cycle
		}
		marker := " "
		if own {
			marker = "*"
		}
		fmt.Printf("  %s %s\n", marker, describe(ev))
		n++
	}
	fmt.Printf("%d events\n", n)
}

// interesting reports whether a foreign event kind is context for a message
// timeline (flag transitions and flow-control on shared channels).
func interesting(k trace.Kind) bool {
	switch k {
	case trace.KindISet, trace.KindIClear, trace.KindDTSet, trace.KindDTClear,
		trace.KindGSet, trace.KindPSet, trace.KindVCFree:
		return true
	}
	return false
}

// describe renders one event as a human-readable line.
func describe(ev trace.Event) string {
	s := ev.Kind.String()
	switch ev.Kind {
	case trace.KindInject:
		return fmt.Sprintf("%s msg=%d node=%d dst=%d len=%d (port link %d)", s, ev.Msg, ev.Node, ev.Aux, ev.Arg, ev.Link)
	case trace.KindDeliver:
		return fmt.Sprintf("%s msg=%d node=%d latency=%d", s, ev.Msg, ev.Node, ev.Arg)
	case trace.KindVCAlloc:
		return fmt.Sprintf("%s msg=%d link=%d vc=%d", s, ev.Msg, ev.Link, ev.Aux)
	case trace.KindVCFree:
		if ev.Msg == router.NilMsg {
			return fmt.Sprintf("%s link=%d", s, ev.Link)
		}
		return fmt.Sprintf("%s msg=%d link=%d vc=%d", s, ev.Msg, ev.Link, ev.Aux)
	case trace.KindRouteOK:
		return fmt.Sprintf("%s msg=%d node=%d in=%d -> out link=%d vc=%d", s, ev.Msg, ev.Node, ev.Link, ev.Arg, ev.Aux)
	case trace.KindRouteFail:
		return fmt.Sprintf("%s msg=%d node=%d in=%d attempt=%d", s, ev.Msg, ev.Node, ev.Link, ev.Arg)
	case trace.KindISet, trace.KindIClear, trace.KindDTSet, trace.KindDTClear:
		return fmt.Sprintf("%s link=%d", s, ev.Link)
	case trace.KindGSet:
		rule := "first-attempt"
		if ev.Arg == trace.GRulePromotion {
			rule = "promotion"
		}
		return fmt.Sprintf("%s in=%d node=%d rule=%s witness-out=%d msg=%d", s, ev.Link, ev.Node, rule, ev.Aux, ev.Msg)
	case trace.KindPSet:
		reason := "?"
		switch ev.Arg {
		case trace.PReasonRouteOK:
			reason = "route-ok"
		case trace.PReasonVCFreed:
			reason = "vc-freed"
		case trace.PReasonNotLastArrival:
			reason = "not-last-arrival"
		case trace.PReasonAllInactive:
			reason = "all-inactive"
		}
		return fmt.Sprintf("%s in=%d node=%d reason=%s", s, ev.Link, ev.Node, reason)
	case trace.KindDetect:
		verdict := "FALSE"
		if ev.Arg == 1 {
			verdict = "TRUE"
		}
		return fmt.Sprintf("%s msg=%d node=%d oracle=%s", s, ev.Msg, ev.Node, verdict)
	case trace.KindRecoverStart:
		style := "progressive"
		if ev.Arg == 1 {
			style = "regressive"
		}
		return fmt.Sprintf("%s msg=%d node=%d style=%s", s, ev.Msg, ev.Node, style)
	case trace.KindRecoverEnd:
		how := "requeued"
		if ev.Arg == 1 {
			how = "delivered"
		}
		return fmt.Sprintf("%s msg=%d node=%d %s", s, ev.Msg, ev.Node, how)
	case trace.KindOracleDeadlock:
		return fmt.Sprintf("%s msg=%d set-size=%d", s, ev.Msg, ev.Arg)
	}
	return fmt.Sprintf("%s msg=%d link=%d node=%d arg=%d aux=%d", s, ev.Msg, ev.Link, ev.Node, ev.Arg, ev.Aux)
}
